//! Quickstart: deploy one convolution layer on a simulated 128 KB MCU.
//!
//! Reproduces the headline of the paper's Figure 7 in a dozen lines: the
//! `80×80×16 → 80×80×16` pointwise convolution needs ~210 KB under
//! tensor-level memory management (out of memory on an STM32-F411RE) but
//! fits comfortably once the output is allowed to chase the input through
//! vMCU's circular segment pool.
//!
//! Run with: `cargo run --release --example quickstart`

use vmcu::prelude::*;

fn main() -> Result<(), EngineError> {
    // Figure 7, case 1: H/W 80, C 16, K 16, int8.
    let case = vmcu::vmcu_graph::zoo::fig7_cases()[0].clone();
    let layer = LayerDesc::Pointwise(case.params);
    let weights = LayerWeights::random(&layer, 1);
    let input = vmcu::vmcu_tensor::random::tensor_i8(&layer.in_shape(), 2);

    let device = Device::stm32_f411re();
    println!("device: {device}");
    println!("layer:  {} ({})", case.name, layer.kind());
    println!(
        "tensors: in {} KB + out {} KB",
        layer.in_bytes() / 1024,
        layer.out_bytes() / 1024
    );

    // Tensor-level management (TinyEngine policy): out of memory.
    match Engine::new(device.clone())
        .planner(PlannerKind::TinyEngine)
        .run_layer(&case.name, &layer, &weights, &input)
    {
        Err(EngineError::DoesNotFit {
            needed, available, ..
        }) => println!(
            "TinyEngine: OUT OF MEMORY — needs {} KB, device has {} KB",
            needed / 1024,
            available / 1024
        ),
        other => println!("TinyEngine: unexpected outcome {other:?}"),
    }

    // Segment-level management (vMCU): fits and runs. Deploy once (fit
    // validated, plans memoized, weights staged into Flash), then serve
    // as many inferences as you like with zero replanning.
    let graph = Graph::linear(case.name.clone(), vec![layer.clone()]).expect("one-layer graph");
    let graph_weights = vec![weights.clone()];
    let deployment = Engine::new(device).deploy(&graph, &graph_weights)?;
    let mut session = deployment.session();
    let report = session.infer(&input)?;
    let again = session.infer(&input)?; // same session, no planning, bit-identical
    assert_eq!(report.output, again.output);
    println!(
        "vMCU:       fits — {} KB RAM, {:.1} ms, {:.2} mJ ({} inferences served)",
        report.peak_ram_bytes() / 1024,
        report.latency_ms(),
        report.energy_mj(),
        session.inferences()
    );
    let output = report.output;
    println!("output shape: {:?}", output.shape());

    // The result is bit-exact with the reference operator.
    let w = match &weights {
        LayerWeights::Pointwise(w) => w.clone(),
        _ => unreachable!(),
    };
    let expected = vmcu::vmcu_tensor::reference::pointwise(
        &input,
        &w,
        None,
        1,
        case.params.rq,
        case.params.clamp,
    );
    assert_eq!(output, expected, "simulated execution matches the oracle");
    println!("verified bit-exact against the reference operator ✓");
    Ok(())
}
