//! Compiler support (§6): author a kernel in the builder DSL, validate it,
//! execute it on the simulator through the IR interpreter, then emit the C
//! library a real deployment would compile with `arm-none-eabi-gcc`.
//!
//! Run with: `cargo run --release --example codegen_c`

use vmcu::vmcu_codegen::cgen::emit_library;
use vmcu::vmcu_codegen::interp::interpret;
use vmcu::vmcu_codegen::kernels_ir::{build_fc_kernel, FcIrSpec};
use vmcu::vmcu_pool::SegmentPool;
use vmcu::vmcu_sim::{Device, Machine};
use vmcu::vmcu_tensor::{random, reference, Requant, Tensor, NO_CLAMP};

fn main() {
    let spec = FcIrSpec {
        m: 8,
        k: 16,
        n: 8,
        seg: 8,
        rq: Requant::from_scale(1.0 / 64.0, 0),
    };
    let kernel = build_fc_kernel(&spec);
    println!(
        "built IR kernel `{}` ({} params, loop depth {})",
        kernel.name,
        kernel.params.len(),
        kernel.body.loop_depth()
    );

    // Execute the IR on the simulated MCU and check it against the oracle.
    let mut machine = Machine::new(Device::stm32_f411re());
    let input = random::tensor_i8(&[spec.m, spec.k], 1);
    let weight = random::tensor_i8(&[spec.k, spec.n], 2);
    let w_base = machine.host_program_flash(&weight.as_bytes()).unwrap() as i64;
    let d = spec.exec_distance();
    let mut pool = SegmentPool::new(&machine, 0, spec.window_bytes(), spec.seg).unwrap();
    pool.host_fill_live(&mut machine, 0, &input.as_bytes())
        .unwrap();
    interpret(
        &kernel,
        &[("in_base", 0), ("out_base", -d), ("w_base", w_base)],
        &mut machine,
        &mut pool,
    )
    .expect("IR kernel executes cleanly at the planned offset");
    let out = pool.host_read(&machine, -d, spec.m * spec.n).unwrap();
    let out = Tensor::from_bytes(&[spec.m, spec.n], &out);
    let expected = reference::dense(&input, &weight, None, spec.rq, NO_CLAMP);
    assert_eq!(out, expected);
    println!(
        "interpreted on the simulator: bit-exact vs reference ✓ ({} MACs, {} boundary checks)",
        machine.counters.macs, machine.counters.modulo_ops
    );

    // Emit the deployable C library.
    let library = emit_library(&[kernel]);
    println!(
        "\n===== generated C library ({} lines) =====\n",
        library.lines().count()
    );
    println!("{library}");
}
