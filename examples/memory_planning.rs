//! Inside the §4 formulation: watch the solver place the output pointer.
//!
//! Walks the paper's GEMM example (Figure 1(c) / Figure 3), prints the
//! minimal pointer distance and footprint from all three solvers, and then
//! renders an ASCII timeline of the circular pool showing output segments
//! replacing freed input segments — the mechanism behind every RAM number
//! in the paper.
//!
//! Run with: `cargo run --release --example memory_planning`

use vmcu::vmcu_solver::{analytic, closed_form, enumerate, FootprintProblem};

fn main() {
    let (m, n, k) = (2i64, 2i64, 3i64);
    println!("GEMM: In[{m}x{k}] x W[{k}x{n}] -> Out[{m}x{n}] (segments)\n");

    let problem = FootprintProblem::gemm(m, n, k);
    let exact = enumerate::solve(&problem);
    let fast = analytic::solve(&problem);
    let closed = closed_form::gemm_min_footprint(m, n, k);
    println!(
        "exact scan        : D* = {}, footprint = {}",
        exact.min_distance, exact.footprint
    );
    println!(
        "lex decomposition : D* = {}, footprint = {}",
        fast.min_distance, fast.footprint
    );
    println!("paper closed form : footprint = {closed} = max(MN, MK) + min(N, K) - 1");
    println!(
        "disjoint baseline : footprint = {}\n",
        problem.in_size + problem.out_size
    );

    // Timeline: pool of `footprint` slots; input segments i0..i5 start
    // live; each step stores one output segment into the slot the affine
    // schedule assigns and frees input as the kernel retires it.
    let pool = exact.footprint as usize;
    let b_in = exact.used_distance; // input starts D* slots into the pool
    println!("pool timeline ({pool} slots, output placed {b_in} behind input):");
    let mut slots: Vec<String> = (0..pool)
        .map(|s| {
            let rel = s as i64 - b_in;
            if (0..m * k).contains(&rel) {
                format!("i{rel}")
            } else {
                "..".to_owned()
            }
        })
        .collect();
    println!("  start : {}", slots.join(" "));
    for mi in 0..m {
        // Figure 4 order: all N output segments of row mi stored, then the
        // input row freed.
        for ni in 0..n {
            let addr = (mi * n + ni).rem_euclid(pool as i64) as usize;
            slots[addr] = format!("o{}", mi * n + ni);
            println!("  store : {}", slots.join(" "));
        }
        for ki in 0..k {
            let addr = (b_in + mi * k + ki).rem_euclid(pool as i64) as usize;
            if slots[addr].starts_with('i') {
                slots[addr] = "..".to_owned();
            }
        }
        println!("  free  : {}   (input row {mi} retired)", slots.join(" "));
    }
    println!(
        "\nThe output lives where the input used to — {} segments instead of {}.",
        exact.footprint,
        problem.in_size + problem.out_size
    );

    // The same machinery on a padded convolution, where the exact solver
    // skips padding reads the analytic solver must over-approximate.
    let conv = FootprintProblem::conv2d(8, 8, 4, 4, 3, 3, 1, 1);
    println!(
        "\n3x3 conv 8x8x4 (same padding): exact D* = {} B, analytic (conservative) D* = {} B",
        enumerate::min_distance(&conv).unwrap(),
        analytic::min_distance(&conv)
    );
}
