//! Deploy MCUNet-5fps-VWW module by module on a simulated STM32-F411RE,
//! comparing the three memory planners of the paper's Figure 9 and
//! executing every module under vMCU.
//!
//! Run with: `cargo run --release --example deploy_mcunet_vww`

use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_plan::planner::named_ib_layers;
use vmcu::vmcu_tensor::random;

fn main() -> Result<(), EngineError> {
    let device = Device::stm32_f411re();
    let modules = zoo::mcunet_5fps_vww();
    let layers = named_ib_layers(&modules);

    // Plan the whole backbone under each policy.
    let te = TinyEnginePlanner.plan(&layers, &device);
    let hm = HmcosPlanner.plan(&layers, &device);
    let vm = VmcuPlanner::default().plan(&layers, &device);
    println!(
        "{:8} {:>12} {:>12} {:>12}",
        "module", "TinyEngine", "HMCOS", "vMCU"
    );
    for ((t, h), v) in te.layers.iter().zip(&hm.layers).zip(&vm.layers) {
        println!(
            "{:8} {:>10.1}KB {:>10.1}KB {:>10.1}KB",
            t.name,
            t.measured_bytes as f64 / 1000.0,
            h.measured_bytes as f64 / 1000.0,
            v.measured_bytes as f64 / 1000.0
        );
    }
    println!(
        "bottlenecks: TinyEngine {:.1} KB | HMCOS {:.1} KB | vMCU {:.1} KB ({:.1}% reduction)",
        te.bottleneck_bytes() as f64 / 1000.0,
        hm.bottleneck_bytes() as f64 / 1000.0,
        vm.bottleneck_bytes() as f64 / 1000.0,
        100.0 * (1.0 - vm.bottleneck_bytes() as f64 / te.bottleneck_bytes() as f64)
    );

    // Execute every module under vMCU and account the whole backbone.
    let engine = Engine::new(device);
    let mut total_ms = 0.0;
    let mut total_mj = 0.0;
    for m in &modules {
        let layer = LayerDesc::Ib(m.params);
        let weights = LayerWeights::random(&layer, 7);
        let input = random::tensor_i8(&layer.in_shape(), 8);
        let (_, report) = engine.run_layer(m.name, &layer, &weights, &input)?;
        total_ms += report.exec.latency_ms;
        total_mj += report.exec.energy_mj;
        println!(
            "executed {:3}: {:>7.1} ms, {:>6.2} mJ, {:>9} MACs",
            m.name, report.exec.latency_ms, report.exec.energy_mj, report.exec.counters.macs
        );
    }
    println!("backbone total: {total_ms:.1} ms, {total_mj:.2} mJ — all modules within 128 KB");
    Ok(())
}
