//! NAS headroom (§7.4, Figures 11 and 12): the memory vMCU frees is
//! capacity a NAS search can spend. For every VWW module, find the largest
//! image and channel sizes whose vMCU footprint still fits in exactly the
//! RAM TinyEngine needs for the original module.
//!
//! Run with: `cargo run --release --example fit_bigger_models`

use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_plan::headroom::{max_channel_scale, max_image_scale, tinyengine_budget};

fn main() {
    let planner = VmcuPlanner::default();
    println!(
        "{:8} {:>14} {:>12} {:>14}",
        "module", "TE budget KB", "image scale", "channel scale"
    );
    let mut img = Vec::new();
    let mut ch = Vec::new();
    for m in zoo::mcunet_5fps_vww() {
        let budget = tinyengine_budget(&m.params);
        let ri = max_image_scale(&m.params, &planner, budget);
        let rc = max_channel_scale(&m.params, &planner, budget);
        img.push(ri);
        ch.push(rc);
        println!(
            "{:8} {:>12.1}   {:>10.2}x {:>12.2}x",
            m.name,
            budget as f64 / 1000.0,
            ri,
            rc
        );
    }
    let span = |v: &[f64]| {
        (
            v.iter().copied().fold(f64::INFINITY, f64::min),
            v.iter().copied().fold(0.0f64, f64::max),
        )
    };
    let (i_lo, i_hi) = span(&img);
    let (c_lo, c_hi) = span(&ch);
    println!("\nimage-size headroom {i_lo:.2}x-{i_hi:.2}x  (paper: 1.29x-2.58x)");
    println!("channel headroom    {c_lo:.2}x-{c_hi:.2}x  (paper: 1.26x-3.17x)");
    println!("more OPs at the same RAM -> accuracy headroom for NAS, with zero retraining cost.");
}
