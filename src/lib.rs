//! # vmcu-repro — workspace root for the vMCU (MLSys 2024) reproduction
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; all functionality lives in the workspace crates and is
//! re-exported through the [`vmcu`] facade.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use vmcu;

/// The README, included as rustdoc so its code blocks (the engine
/// quickstart and the fleet-serving example, which uses the
/// `vmcu-serve` dev-dependency) compile and run under
/// `cargo test --doc` — the README cannot drift from the API.
#[doc = include_str!("../README.md")]
mod readme_doctests {}
