//! Minimal offline stand-in for the crates.io `rand` crate.
//!
//! This workspace builds in environments with no network access, so the
//! handful of `rand` APIs the reproduction uses are provided here, backed
//! by a SplitMix64 generator. The surface is intentionally tiny:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! Determinism is the only contract the reproduction relies on (seeded
//! synthetic tensors, the random-net generator in `vmcu-graph::zoo`);
//! statistical quality beyond SplitMix64 is not required. Swapping the
//! real `rand` back in only changes which pseudo-random values are drawn,
//! never correctness.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (stand-in for `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 bits of mantissa gives a uniform draw in [0, 1).
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }
}

/// A range that values of type `T` can be sampled from.
///
/// Implemented as blanket impls over [`UniformInt`] (rather than one impl
/// per integer type) so that integer-literal inference unifies through
/// the range exactly as it does with the real `rand` crate.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly sampleable through an `i128` widening.
pub trait UniformInt: Copy {
    /// Narrows from the sampling domain.
    fn from_i128(v: i128) -> Self;
    /// Widens into the sampling domain.
    fn to_i128(self) -> i128;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_i128(v: i128) -> Self {
                v as $t
            }
            fn to_i128(self) -> i128 {
                // A cast (not `From`) so the macro also covers usize/isize,
                // which have no platform-independent `From` into i128.
                #[allow(clippy::cast_lossless)]
                {
                    self as i128
                }
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

fn sample_span(rng: &mut (impl Rng + ?Sized), lo: i128, hi_inclusive: i128) -> i128 {
    assert!(lo <= hi_inclusive, "cannot sample from an empty range");
    let span = (hi_inclusive - lo) as u128 + 1;
    // Modulo bias is negligible for the tiny spans this workspace samples.
    lo + (u128::from(rng.next_u64()) % span) as i128
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::from_i128(sample_span(
            rng,
            self.start.to_i128(),
            self.end.to_i128() - 1,
        ))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::from_i128(sample_span(
            rng,
            self.start().to_i128(),
            self.end().to_i128(),
        ))
    }
}

/// Concrete generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-64i8..=63);
            assert!((-64..=63).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let w = rng.gen_range(-512i32..=512);
            assert!((-512..=512).contains(&w));
        }
    }

    #[test]
    fn all_values_of_small_ranges_appear() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "got {hits}");
    }
}
