//! Minimal offline stand-in for the crates.io `proptest` crate.
//!
//! This workspace builds in environments with no network access, so the
//! property-testing surface the reproduction uses is provided here:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * integer range strategies (`0u8..2`, `1i64..=6`, …),
//! * tuple strategies, [`Just`], and [`prop::collection::vec`],
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from real proptest: generation is plain seeded-PRNG
//! sampling (no size ramping) and **there is no shrinking** — a failure
//! reports the generated arguments verbatim instead of a minimal
//! counterexample. Seeds derive deterministically from the test name, so
//! failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count.
    Reject,
    /// A property assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        Self::Fail(msg)
    }
}

/// Deterministic SplitMix64 generator driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a), so every property
    /// gets a distinct but reproducible stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn span(&mut self, lo: i128, hi_inclusive: i128) -> i128 {
        assert!(lo <= hi_inclusive, "cannot sample from an empty range");
        let span = (hi_inclusive - lo) as u128 + 1;
        lo + (u128::from(self.next_u64()) % span) as i128
    }
}

/// A generator of test-case values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                // Casts (not `From`) so the macro also covers usize/isize.
                #[allow(clippy::cast_lossless)]
                {
                    rng.span(self.start as i128, self.end as i128 - 1) as $t
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                #[allow(clippy::cast_lossless)]
                {
                    rng.span(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A size bound for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Namespace mirror of the crate root, as re-exported by the prelude
/// (`prop::collection::vec(..)`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// A strategy producing `Vec`s of `element` with a length drawn
        /// from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.span(self.size.lo as i128, self.size.hi_inclusive as i128) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the
/// generated arguments on failure instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current generated case without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let ctx = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(20) + 1000,
                                "prop_assume! rejected too many cases ({rejected})"
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed after {} passing case(s): {}\n  inputs: {}",
                                stringify!($name),
                                accepted,
                                msg,
                                ctx
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i64> {
        (0i64..50).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(v in 1i64..=6, w in 8usize..64) {
            prop_assert!((1..=6).contains(&v));
            prop_assert!((8..64).contains(&w));
        }

        /// prop_map applies; assume rejects without failing.
        #[test]
        fn map_and_assume(e in evens(), raw in 0u8..10) {
            prop_assert_eq!(e % 2, 0);
            prop_assume!(raw < 9);
            prop_assert_ne!(raw, 9);
        }

        /// Collections honour their size range; flat_map sees the
        /// dependent value.
        #[test]
        fn vec_and_flat_map(
            v in prop::collection::vec(0i64..4, 1..=5),
            pair in (1usize..4).prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..2, n..n + 1))),
        ) {
            prop_assert!((1..=5).contains(&v.len()));
            let (n, items) = pair;
            prop_assert_eq!(items.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(v in 0i64..2) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        always_fails();
    }
}
