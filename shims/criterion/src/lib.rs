//! Minimal offline stand-in for the crates.io `criterion` crate.
//!
//! This workspace builds in environments with no network access, so the
//! benchmark surface the `vmcu-bench` benches use is provided here:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: each benchmark is warmed up, then
//! timed over `sample_size` samples of adaptively-chosen iteration
//! counts, reporting min/mean/max wall-clock time per iteration. There
//! are no statistical outlier analyses, plots, or baselines — swap the
//! real criterion back in for those.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so older `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
/// Target wall-clock budget for one benchmark's measurement phase.
const TARGET_MEASURE: Duration = Duration::from_millis(500);

/// Entry point handed to benchmark functions (stand-in for
/// `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; printing is eager).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up + calibration: discover the per-iteration cost.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let budget_per_sample = TARGET_MEASURE / self.sample_size.max(1) as u32;
        let iters_per_sample =
            (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "  {}/{id}: time [{} {} {}] ({} samples x {iters_per_sample} iters)",
            self.name,
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A benchmark identifier built from a function name and a parameter
/// (stand-in for `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; a filter arg is
            // accepted and ignored to stay drop-in compatible.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim-self-test");
        g.sample_size(5);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("sum", 16), &16u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_times() {
        benches();
    }

    #[test]
    fn id_formats_as_function_slash_parameter() {
        assert_eq!(
            BenchmarkId::new("enumerate", "64x8x8").0,
            "enumerate/64x8x8"
        );
    }
}
