//! Compiles the emitted C library with the host compiler (scalar fallback
//! path) and runs it against the same inputs as the IR interpreter: the
//! generated code must produce bit-identical results.
//!
//! Before the compiler ever runs, the emitted source must pass the
//! static C lint (`vmcu_codegen::clint`) with zero findings, and the
//! compile itself runs under `-Wall -Wextra -Wconversion -Werror` — the
//! generated code has no excuse for warnings.
//!
//! Skipped silently when no `cc` is on PATH (e.g. minimal CI images).

use std::io::Write;
use std::process::Command;
use vmcu::vmcu_codegen::cgen::emit_library;
use vmcu::vmcu_codegen::clint::lint_c;
use vmcu::vmcu_codegen::kernels_ir::{build_fc_kernel, FcIrSpec};
use vmcu::vmcu_tensor::{random, reference, Requant, Tensor, NO_CLAMP};

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .is_ok_and(|o| o.status.success())
}

#[test]
fn generated_c_matches_reference_when_compiled() {
    if !have_cc() {
        eprintln!("skipping: no host C compiler");
        return;
    }
    let spec = FcIrSpec {
        m: 6,
        k: 8,
        n: 8,
        seg: 8,
        rq: Requant::from_scale(1.0 / 64.0, 3),
    };
    let input = random::tensor_i8(&[spec.m, spec.k], 77);
    let weight = random::tensor_i8(&[spec.k, spec.n], 78);
    let expected = reference::dense(&input, &weight, None, spec.rq, NO_CLAMP);

    let library = emit_library(&[build_fc_kernel(&spec)]);
    let findings = lint_c(&library);
    assert!(
        findings.is_empty(),
        "emitted C fails the static lint:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let d = spec.exec_distance();
    let window = spec.window_bytes();

    // Test harness: stage the input in the circular pool, run the kernel,
    // print the output bytes.
    let fmt_array = |data: &[u8]| {
        data.iter()
            .map(|b| format!("{}", *b as i8))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let main_c = format!(
        r#"
#include <stdio.h>
int8_t *vmcu_pool_base;
int32_t vmcu_pool_len;
const int8_t *vmcu_flash_base;
static int8_t pool_mem[{window}];
static const int8_t flash_mem[] = {{ {flash} }};
static const int8_t input_mem[] = {{ {input} }};
int main(void) {{
  vmcu_pool_base = pool_mem;
  vmcu_pool_len = {window};
  vmcu_flash_base = flash_mem;
  for (int i = 0; i < {in_len}; ++i) pool_mem[vmcu_wrap(i)] = input_mem[i];
  vmcu_fc(0, {out_base}, 0);
  for (int i = 0; i < {out_len}; ++i)
    printf("%d\n", (int)pool_mem[vmcu_wrap({out_base} + i)]);
  return 0;
}}
"#,
        flash = fmt_array(&weight.as_bytes()),
        input = fmt_array(&input.as_bytes()),
        in_len = spec.m * spec.k,
        out_len = spec.m * spec.n,
        out_base = -d,
    );

    let dir = std::env::temp_dir().join(format!("vmcu-cgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("kernel_test.c");
    let bin = dir.join("kernel_test");
    let mut f = std::fs::File::create(&src).unwrap();
    f.write_all(library.as_bytes()).unwrap();
    f.write_all(main_c.as_bytes()).unwrap();
    drop(f);

    let compile = Command::new("cc")
        .args([
            "-O1",
            "-std=c11",
            "-Wall",
            "-Wextra",
            "-Wconversion",
            "-Werror",
            "-o",
        ])
        .arg(&bin)
        .arg(&src)
        .output()
        .expect("cc invocation");
    assert!(
        compile.status.success(),
        "generated C failed to compile:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );

    let run = Command::new(&bin).output().expect("run compiled kernel");
    assert!(run.status.success());
    let got: Vec<i8> = String::from_utf8_lossy(&run.stdout)
        .lines()
        .map(|l| l.trim().parse::<i32>().unwrap() as i8)
        .collect();
    let got = Tensor::from_vec(&[spec.m, spec.n], got);
    assert_eq!(
        got, expected,
        "compiled C output diverges from the reference operator"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
