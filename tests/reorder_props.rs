//! Property tests for the execution-order search: on random branchy
//! DAGs the searched order is always a valid topological order, its
//! liveness-priced peak is never worse than the default (index) order,
//! the deployed reorder plan's rows are byte-identical to the search's
//! per-step pricing, and on chain graphs the search degenerates to the
//! identity plan.

use proptest::prelude::*;
use vmcu::prelude::*;
use vmcu::vmcu_graph::{zoo, NodeInput};
use vmcu::vmcu_plan::order::{peak_for_order, price_order};
use vmcu::vmcu_plan::plan_order;
use vmcu::vmcu_tensor::random;

fn planner() -> VmcuPlanner {
    VmcuPlanner::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The acceptance property: across ≥100 seeded random DAGs the
    /// searched order's peak is never worse than the default topological
    /// order — the ≤-fallback contract, checked against an independent
    /// re-pricing of both orders.
    #[test]
    fn reordered_peak_is_never_worse_than_default(
        seed in 0u64..1_000_000,
        body in 1usize..9,
    ) {
        let g = zoo::random_dag_net(seed, body);
        let plan = plan_order(&planner(), &g);
        prop_assert!(
            plan.peak_bytes <= plan.default_peak_bytes,
            "searched peak {} exceeds default peak {}",
            plan.peak_bytes,
            plan.default_peak_bytes
        );
        // Both recorded peaks match an independent re-pricing.
        let ident: Vec<usize> = (0..g.len()).collect();
        prop_assert_eq!(plan.default_peak_bytes, peak_for_order(&planner(), &g, &ident));
        prop_assert_eq!(plan.peak_bytes, peak_for_order(&planner(), &g, &plan.order));
        prop_assert_eq!(
            plan.peak_bytes,
            plan.step_demand_bytes.iter().copied().max().unwrap_or(0)
        );
    }

    /// Every searched order is a permutation of the nodes in valid
    /// topological order: each node executes after all of its inputs.
    #[test]
    fn searched_order_is_a_valid_topological_order(
        seed in 0u64..1_000_000,
        body in 1usize..9,
    ) {
        let g = zoo::random_dag_net(seed, body);
        let plan = plan_order(&planner(), &g);
        prop_assert_eq!(plan.order.len(), g.len());
        let mut pos = vec![usize::MAX; g.len()];
        for (step, &v) in plan.order.iter().enumerate() {
            prop_assert!(v < g.len(), "order names node {v} out of range");
            prop_assert_eq!(pos[v], usize::MAX);
            pos[v] = step;
        }
        for (v, ins) in g.inputs().iter().enumerate() {
            for edge in ins {
                if let NodeInput::Node(j) = edge {
                    prop_assert!(
                        pos[*j] < pos[v],
                        "node {v} executes at step {} before its input {} at step {}",
                        pos[v], j, pos[*j]
                    );
                }
            }
        }
    }

    /// Deploying under `PlannerKind::VmcuReorder` memoizes exactly the
    /// searched plan: the report's rows follow the searched order and
    /// carry the search's per-step demand byte for byte, so the executed
    /// bottleneck *is* the searched peak (plus the fixed runtime
    /// overhead) — and the output still matches every other policy.
    #[test]
    fn deployed_reorder_rows_match_the_searched_pricing(
        seed in 0u64..1_000_000,
        body in 1usize..7,
    ) {
        let g = zoo::random_dag_net(seed, body);
        let plan = plan_order(&planner(), &g);
        let priced = price_order(&planner(), &g, &plan.order);
        let device = Device::stm32_f767zi();
        let weights = g.random_weights(seed ^ 0xABCD);
        let input = random::tensor_i8(&g.in_shape(), seed ^ 0x1234);
        let report = Engine::new(device.clone())
            .planner(PlannerKind::VmcuReorder(IbScheme::RowBuffer))
            .deploy(&g, &weights)
            .and_then(|d| d.session().infer(&input))
            .unwrap_or_else(|e| panic!("seed {seed} reproduces: reorder deploy failed: {e}"));
        prop_assert_eq!(report.layers.len(), g.len());
        for (step, (row, &(act, ws))) in report.layers.iter().zip(&priced).enumerate() {
            prop_assert_eq!(
                row.plan.activation_bytes + row.plan.workspace_bytes,
                plan.step_demand_bytes[step]
            );
            prop_assert_eq!(row.plan.activation_bytes, act);
            prop_assert_eq!(row.plan.workspace_bytes, ws);
        }
        prop_assert_eq!(
            report.peak_ram_bytes(),
            plan.peak_bytes + device.runtime_overhead_bytes
        );
        // Bit-exactness against the default-order vMCU walk.
        let base = Engine::new(device)
            .planner(PlannerKind::Vmcu(IbScheme::RowBuffer))
            .deploy(&g, &weights)
            .and_then(|d| d.session().infer(&input))
            .unwrap_or_else(|e| panic!("seed {seed} reproduces: vMCU deploy failed: {e}"));
        prop_assert_eq!(report.output, base.output);
    }

    /// Chains have nothing to reorder: the search returns the identity
    /// order with an unchanged peak (§8.4 — no scheduling slack on
    /// linear nets).
    #[test]
    fn chains_reorder_to_the_identity_plan(
        seed in 0u64..1_000_000,
        layers in 1usize..8,
    ) {
        let g = zoo::random_linear_net(seed, layers);
        let plan = plan_order(&planner(), &g);
        let ident: Vec<usize> = (0..g.len()).collect();
        prop_assert_eq!(&plan.order, &ident);
        prop_assert_eq!(plan.peak_bytes, plan.default_peak_bytes);
        prop_assert!(!plan.improved());
    }
}
