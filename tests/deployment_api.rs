//! The deploy-once/run-many contract, end to end: `Engine::deploy` →
//! `Deployment::session` → `Session::infer` must be bit-exact with the
//! legacy `run_graph*` entry points for every policy, repeatable call
//! after call (outputs AND execution counters), and must perform zero
//! planning work after deploy — asserted via the `vmcu_plan::telemetry`
//! plan-call counter.

use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_tensor::random;

fn all_kinds() -> [PlannerKind; 5] {
    [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
    ]
}

/// `(model, device, policies that deploy it)` — including the zoo models
/// that exist precisely because only one policy admits them.
fn matrix() -> Vec<(Graph, Device, Vec<PlannerKind>)> {
    vec![
        (
            zoo::demo_linear_net(),
            Device::stm32_f767zi(),
            all_kinds().to_vec(),
        ),
        (
            zoo::mbv2_block_unfused(),
            Device::stm32_f411re(),
            vec![
                PlannerKind::Vmcu(IbScheme::RowBuffer),
                PlannerKind::VmcuFused(IbScheme::RowBuffer),
                PlannerKind::VmcuPatched(IbScheme::RowBuffer),
            ],
        ),
        (
            zoo::wide_expand_chain(),
            Device::stm32_f411re(),
            vec![
                PlannerKind::VmcuFused(IbScheme::RowBuffer),
                PlannerKind::VmcuPatched(IbScheme::RowBuffer),
            ],
        ),
        (
            zoo::hires_front_stage(),
            Device::stm32_f411re(),
            vec![PlannerKind::VmcuPatched(IbScheme::RowBuffer)],
        ),
    ]
}

#[test]
#[allow(deprecated)]
fn deploy_once_infer_many_is_bit_exact_with_the_legacy_paths() {
    for (g, device, kinds) in matrix() {
        let weights = g.random_weights(0xDEB);
        let input = random::tensor_i8(&g.in_shape(), 0x1417);
        for kind in kinds {
            let engine = Engine::new(device.clone()).planner(kind);
            let legacy = engine
                .run_graph(&g, &weights, &input)
                .unwrap_or_else(|e| panic!("{}/{kind:?} legacy: {e}", g.name));
            let mut session = engine
                .deploy(&g, &weights)
                .unwrap_or_else(|e| panic!("{}/{kind:?} deploy: {e}", g.name))
                .session();
            let new = session.infer(&input).unwrap();
            assert_eq!(legacy.output, new.output, "{}/{kind:?} output", g.name);
            assert_eq!(
                legacy.layers.len(),
                new.layers.len(),
                "{}/{kind:?} node count",
                g.name
            );
            for (old, fresh) in legacy.layers.iter().zip(&new.layers) {
                assert_eq!(old.name, fresh.name, "{}/{kind:?} node name", g.name);
                assert_eq!(old.plan, fresh.plan, "{}/{kind:?} node plan", g.name);
                assert_eq!(
                    old.exec.counters, fresh.exec.counters,
                    "{}/{kind:?}/{} exec counters",
                    g.name, old.name
                );
            }
            assert_eq!(legacy.latency_ms(), new.latency_ms());
            assert_eq!(legacy.energy_mj(), new.energy_mj());
            assert_eq!(legacy.peak_ram_bytes(), new.peak_ram_bytes());
        }
    }
}

#[test]
fn repeated_infer_on_one_session_is_bit_identical_including_counters() {
    for (g, device, kinds) in matrix() {
        let weights = g.random_weights(0x5E55);
        let input = random::tensor_i8(&g.in_shape(), 0x10);
        for kind in kinds {
            let mut session = Engine::new(device.clone())
                .planner(kind)
                .deploy(&g, &weights)
                .unwrap()
                .session();
            let first = session.infer(&input).unwrap();
            let second = session.infer(&input).unwrap();
            assert_eq!(first.output, second.output, "{}/{kind:?}", g.name);
            for (a, b) in first.layers.iter().zip(&second.layers) {
                assert_eq!(
                    a.exec.counters, b.exec.counters,
                    "{}/{kind:?}/{}: the machine reset must not leak state \
                     between inferences",
                    g.name, a.name
                );
                assert_eq!(a.plan, b.plan);
            }
            assert_eq!(session.inferences(), 2);
        }
    }
}

#[test]
fn session_infer_performs_zero_planning_after_deploy() {
    // The acceptance criterion, per policy: every plan artifact is
    // memoized at deploy time; `infer` must not add a single planning
    // pass (the counter is thread-local, so concurrent tests cannot
    // interfere).
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(0xAB5);
    let input = random::tensor_i8(&g.in_shape(), 2);
    for kind in all_kinds() {
        let mut session = Engine::new(Device::stm32_f767zi())
            .planner(kind)
            .deploy(&g, &weights)
            .unwrap()
            .session();
        let before = vmcu::vmcu_plan::telemetry::plan_calls();
        session.infer(&input).unwrap();
        session.infer(&input).unwrap();
        session.infer(&input).unwrap();
        assert_eq!(
            vmcu::vmcu_plan::telemetry::plan_calls(),
            before,
            "{kind:?}: infer must do zero planning work after deploy"
        );
    }
    // The chained mode executes the memoized chain plan too.
    let mut session = Engine::new(Device::stm32_f767zi())
        .deploy(&g, &weights)
        .unwrap()
        .session();
    let before = vmcu::vmcu_plan::telemetry::plan_calls();
    session.infer_chained(&input).unwrap();
    session.infer_chained(&input).unwrap();
    assert_eq!(vmcu::vmcu_plan::telemetry::plan_calls(), before);
}

#[test]
#[allow(deprecated)]
fn chained_session_matches_the_legacy_chained_path() {
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(0xC4A1);
    let input = random::tensor_i8(&g.in_shape(), 0xC4A2);
    let engine = Engine::new(Device::stm32_f411re());
    let (legacy, legacy_plan) = engine.run_graph_chained(&g, &weights, &input).unwrap();
    let deployment = engine.deploy(&g, &weights).unwrap();
    let mut session = deployment.session();
    let (new, plan) = session.infer_chained(&input).unwrap();
    assert_eq!(legacy.output, new.output);
    assert_eq!(legacy_plan, plan);
    assert_eq!(legacy.latency_ms(), new.latency_ms());
    // And a second chained inference repeats exactly.
    let (again, _) = session.infer_chained(&input).unwrap();
    assert_eq!(new.output, again.output);
    assert_eq!(new.latency_ms(), again.latency_ms());
}

#[test]
fn one_deployment_serves_many_sessions() {
    // The fleet pattern: one shared deployment, one session per device.
    let g = zoo::mbv2_block_unfused();
    let weights = g.random_weights(0xF1EE);
    let deployment = Engine::new(Device::stm32_f411re())
        .planner(PlannerKind::VmcuFused(IbScheme::RowBuffer))
        .deploy(&g, &weights)
        .unwrap();
    let shared = deployment.clone(); // Arc-backed: cloning shares the plans
    let input = random::tensor_i8(&g.in_shape(), 0xAB);
    let mut outputs = Vec::new();
    for _device in 0..3 {
        let mut session = shared.session();
        outputs.push(session.infer(&input).unwrap().output.clone());
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn deploy_rejects_what_the_planner_rejects() {
    // The deploy path carries the same typed fails-to-run outcome the
    // paper reports — and it matches `check_fit` exactly.
    let g = zoo::hires_front_stage();
    let weights = g.random_weights(1);
    let dev = Device::stm32_f411re();
    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
    ] {
        let engine = Engine::new(dev.clone()).planner(kind);
        let deploy_err = engine.deploy(&g, &weights).unwrap_err();
        let fit_err = engine.check_fit(&g).unwrap_err();
        match (deploy_err, fit_err) {
            (
                EngineError::DoesNotFit {
                    layer: a,
                    needed: na,
                    ..
                },
                EngineError::DoesNotFit {
                    layer: b,
                    needed: nb,
                    ..
                },
            ) => {
                assert_eq!(a, b, "{kind:?}");
                assert_eq!(na, nb, "{kind:?}");
            }
            other => panic!("{kind:?}: expected DoesNotFit twice, got {other:?}"),
        }
    }
}
