//! Theory meets implementation: the §4 affine bound (`D*` from the
//! read-based constraint) must never exceed the executable distance the
//! kernels need (frees are coarser than last-reads), and the gap must stay
//! bounded by the kernels' free granularity — one input row.

use proptest::prelude::*;
use vmcu::vmcu_kernels::depthwise::depthwise_exec_distance;
use vmcu::vmcu_kernels::fc::fc_exec_distance;
use vmcu::vmcu_kernels::params::{DepthwiseParams, FcParams};
use vmcu::vmcu_solver::{analytic, enumerate, FootprintProblem};
use vmcu::vmcu_tensor::Requant;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// FC: affine D* (element granularity) <= executable D <= affine D* +
    /// one output row of slack (Figure 4 stores a row before freeing).
    #[test]
    fn fc_affine_bound_vs_executable(m in 1i64..8, k in 1i64..12, n in 1i64..12) {
        let p = FootprintProblem::gemm(m, n, k); // segment = 1 element
        let affine = enumerate::min_distance(&p).unwrap();
        prop_assert_eq!(affine, analytic::min_distance(&p));
        let params = FcParams {
            m: m as usize,
            k: k as usize,
            n: n as usize,
            seg: (k.min(n)) as usize,
            rq: Requant::identity(),
            clamp: vmcu::vmcu_tensor::NO_CLAMP,
        };
        let exec = fc_exec_distance(&params);
        prop_assert!(
            exec >= affine,
            "executable distance {exec} below the affine lower bound {affine}"
        );
        prop_assert!(
            exec <= affine + k.max(n),
            "gap {} exceeds one row of free-granularity slack",
            exec - affine
        );
    }

    /// Depthwise stride 1: both the affine view and the kernel agree the
    /// overlap is near-in-place (within ~window rows of input).
    #[test]
    fn depthwise_is_near_in_place(h in 4usize..10, w in 4usize..10, c in 1usize..6) {
        let params = DepthwiseParams::new(h, w, c, 3, 3, 1, 1, Requant::identity());
        let exec = depthwise_exec_distance(&params);
        let row = (w * c) as i64;
        prop_assert!(exec <= 3 * row, "distance {exec} exceeds the 3-row window");
        let footprint = (params.in_bytes() as i64 + exec.max(0)) as usize;
        prop_assert!(footprint < params.in_bytes() + params.out_bytes());
    }

    /// The affine solver's footprint is a true lower bound for the
    /// kernel-executable footprint on pointwise layers (both in bytes).
    #[test]
    fn affine_footprint_lower_bounds_executable(hw in 2i64..10, c in 1i64..8, kk in 1i64..8) {
        let seg = c.min(kk);
        let p = FootprintProblem::pointwise(hw * hw, c * seg, kk * seg, seg);
        let affine_bytes = enumerate::solve(&p).footprint * seg;
        let params = vmcu::vmcu_kernels::params::PointwiseParams::new(
            hw as usize,
            hw as usize,
            (c * seg) as usize,
            (kk * seg) as usize,
            Requant::identity(),
        );
        let exec_bytes =
            vmcu::vmcu_kernels::pointwise::pointwise_exec_footprint(&params) as i64;
        prop_assert!(
            exec_bytes >= affine_bytes,
            "executable {exec_bytes} below affine bound {affine_bytes}"
        );
    }
}
