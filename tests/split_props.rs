//! Property tests for the multi-device split partitioner: for random
//! linear nets and any device count, the partition is a true partition
//! (every layer in exactly one stage, in order), every stage respects
//! its own fused pricing, the transferred bytes are exactly the
//! cut-edge tensor sizes, and splitting never needs more RAM per device
//! than running the whole model on one device under vMCU.

use proptest::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_kernels::IbScheme;
use vmcu::vmcu_plan::{fuse_graph, peak_demand_bytes, plan_split, VmcuPlanner};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_layer_lands_in_exactly_one_stage(
        seed in 0u64..1_000_000,
        layers in 1usize..14,
        devices in 1u8..9,
    ) {
        let g = zoo::random_linear_net(seed, layers);
        let split = plan_split(&g, devices, IbScheme::RowBuffer);
        // Stages tile [0, n) contiguously, in order, with no overlap
        // and no gap — the partition property.
        let mut next = 0usize;
        for stage in split.stages() {
            prop_assert_eq!(stage.start, next);
            prop_assert!(stage.end > stage.start, "stages must be non-empty");
            next = stage.end;
        }
        prop_assert_eq!(next, g.len());
        prop_assert!(split.device_count() >= 1);
        prop_assert!(
            split.device_count() <= usize::from(devices.clamp(1, 8)).min(g.len()),
            "stage count {} exceeds the device budget",
            split.device_count()
        );
    }

    #[test]
    fn stage_demands_match_their_own_fused_pricing(
        seed in 0u64..1_000_000,
        layers in 1usize..12,
        devices in 2u8..9,
    ) {
        let g = zoo::random_linear_net(seed, layers);
        let split = plan_split(&g, devices, IbScheme::RowBuffer);
        for stage in split.stages() {
            // Each stage's priced demand is exactly the fused planner's
            // peak for that stage's sub-graph — no hidden slack.
            let fused = fuse_graph(&stage.graph, IbScheme::RowBuffer);
            prop_assert_eq!(stage.demand_bytes, fused.peak_demand_bytes());
        }
    }

    #[test]
    fn transferred_bytes_are_exactly_the_cut_edge_tensors(
        seed in 0u64..1_000_000,
        layers in 1usize..14,
        devices in 2u8..9,
    ) {
        let g = zoo::random_linear_net(seed, layers);
        let split = plan_split(&g, devices, IbScheme::RowBuffer);
        let stages = split.stages();
        let mut expected = 0usize;
        for (k, stage) in stages.iter().enumerate() {
            if k + 1 < stages.len() {
                // The wire carries the boundary activation: the output
                // tensor of the stage's last layer, nothing more.
                let boundary = g.layers()[stage.end - 1].out_bytes();
                prop_assert_eq!(stage.cut_bytes, boundary);
                expected += boundary;
            } else {
                prop_assert_eq!(stage.cut_bytes, 0);
            }
        }
        prop_assert_eq!(split.transfer_bytes(), expected);
    }

    #[test]
    fn splitting_never_needs_more_ram_per_device_than_single_device_vmcu(
        seed in 0u64..1_000_000,
        layers in 1usize..12,
        devices in 1u8..9,
    ) {
        let g = zoo::random_linear_net(seed, layers);
        let split = plan_split(&g, devices, IbScheme::RowBuffer);
        let single = peak_demand_bytes(
            &VmcuPlanner { scheme: IbScheme::RowBuffer },
            &g,
        );
        // The partitioner minimizes the max per-device peak; the trivial
        // one-stage partition already fuses the whole graph, which is
        // never worse than unfused single-device vMCU — so the optimum
        // cannot be either.
        prop_assert!(
            split.max_stage_demand_bytes() <= single,
            "split max-stage {} exceeds single-device vMCU peak {}",
            split.max_stage_demand_bytes(),
            single
        );
    }
}
