//! Differential fuzzing across executors: randomly generated linear
//! networks must produce bit-identical outputs under every policy
//! (re-staged and chained), all matching the reference executor. This is
//! the widest-coverage correctness net in the repository.

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo};
use vmcu::vmcu_tensor::random;

/// Base seed for the generated networks. Defaults to 0 (the committed CI
/// run); set `VMCU_TEST_SEED=<n>` to explore other net/weight/input
/// combinations or to reproduce a CI failure locally — every panic
/// message names the exact seed to export.
fn base_seed() -> u64 {
    match std::env::var("VMCU_TEST_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("VMCU_TEST_SEED=`{s}` is not a u64: {e}")),
        Err(_) => 0,
    }
}

fn check_seed(seed: u64) {
    let g = zoo::random_linear_net(seed, 4);
    let weights = g.random_weights(seed ^ 0xABCD);
    let input = random::tensor_i8(&g.in_shape(), seed ^ 0x1234);
    let expected = exec::run_reference(&g, &weights, &input);
    let expected = expected.last().unwrap();
    let device = Device::stm32_f767zi();

    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::SlidingWindow),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
    ] {
        let report = Engine::new(device.clone())
            .planner(kind)
            .deploy(&g, &weights)
            .and_then(|d| d.session().infer(&input))
            .unwrap_or_else(|e| panic!("VMCU_TEST_SEED={seed} reproduces: {kind:?} failed: {e}"));
        assert_eq!(
            &report.output, expected,
            "VMCU_TEST_SEED={seed} reproduces: {kind:?} diverges from reference"
        );
    }

    // Chained single-window execution must agree as well.
    let (chained, plan) = Engine::new(device)
        .deploy(&g, &weights)
        .and_then(|d| d.session().infer_chained(&input))
        .unwrap_or_else(|e| panic!("VMCU_TEST_SEED={seed} reproduces: chained: {e}"));
    assert_eq!(
        &chained.output, expected,
        "VMCU_TEST_SEED={seed} reproduces: chained execution diverges"
    );
    assert!(plan.window > 0);
}

#[test]
fn random_networks_agree_across_all_executors() {
    let base = base_seed();
    for seed in base..base + 12 {
        check_seed(seed);
    }
}

#[test]
fn random_networks_agree_more_seeds() {
    let base = base_seed();
    for seed in base + 12..base + 24 {
        check_seed(seed);
    }
}
