//! Differential fuzzing across executors: randomly generated linear
//! networks must produce bit-identical outputs under every policy
//! (re-staged and chained), all matching the reference executor. This is
//! the widest-coverage correctness net in the repository.

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo};
use vmcu::vmcu_tensor::random;

fn check_seed(seed: u64) {
    let g = zoo::random_linear_net(seed, 4);
    let weights = g.random_weights(seed ^ 0xABCD);
    let input = random::tensor_i8(&g.in_shape(), seed ^ 0x1234);
    let expected = exec::run_reference(&g, &weights, &input);
    let expected = expected.last().unwrap();
    let device = Device::stm32_f767zi();

    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::SlidingWindow),
        PlannerKind::TinyEngine,
    ] {
        let report = Engine::new(device.clone())
            .planner(kind)
            .run_graph(&g, &weights, &input)
            .unwrap_or_else(|e| panic!("seed {seed} {kind:?}: {e}"));
        assert_eq!(
            &report.output, expected,
            "seed {seed}: {kind:?} diverges from reference"
        );
    }

    // Chained single-window execution must agree as well.
    let (chained, plan) = Engine::new(device)
        .run_graph_chained(&g, &weights, &input)
        .unwrap_or_else(|e| panic!("seed {seed} chained: {e}"));
    assert_eq!(
        &chained.output, expected,
        "seed {seed}: chained execution diverges"
    );
    assert!(plan.window > 0);
}

#[test]
fn random_networks_agree_across_all_executors() {
    for seed in 0..12 {
        check_seed(seed);
    }
}

#[test]
fn random_networks_agree_more_seeds() {
    for seed in 12..24 {
        check_seed(seed);
    }
}
