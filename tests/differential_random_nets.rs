//! Differential fuzzing across executors: randomly generated linear
//! networks and branchy DAGs (random skip edges flowing into add/concat
//! merges) must produce bit-identical outputs under every policy
//! (re-staged and chained), all matching the reference executor. This is
//! the widest-coverage correctness net in the repository.

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo};
use vmcu::vmcu_kernels::conv2d::{conv2d_exec_distance, run_conv2d};
use vmcu::vmcu_kernels::im2col::{conv2d_im2col_workspace_bytes, run_conv2d_im2col};
use vmcu::vmcu_kernels::params::Conv2dParams;
use vmcu::vmcu_pool::SegmentPool;
use vmcu::vmcu_sim::Machine;
use vmcu::vmcu_tensor::random;

/// Base seed for the generated networks. Defaults to 0 (the committed CI
/// run); set `VMCU_TEST_SEED=<n>` to explore other net/weight/input
/// combinations or to reproduce a CI failure locally — every panic
/// message names the exact seed to export.
fn base_seed() -> u64 {
    match std::env::var("VMCU_TEST_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("VMCU_TEST_SEED=`{s}` is not a u64: {e}")),
        Err(_) => 0,
    }
}

fn check_seed(seed: u64) {
    let g = zoo::random_linear_net(seed, 4);
    let weights = g.random_weights(seed ^ 0xABCD);
    let input = random::tensor_i8(&g.in_shape(), seed ^ 0x1234);
    let expected = exec::run_reference(&g, &weights, &input);
    let expected = expected.last().unwrap();
    let device = Device::stm32_f767zi();

    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::SlidingWindow),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        // The multi-device pipeline at every supported width: cutting a
        // net across 2, 4, or 8 devices must not move a single bit.
        PlannerKind::VmcuSplit {
            devices: 2,
            scheme: IbScheme::RowBuffer,
        },
        PlannerKind::VmcuSplit {
            devices: 4,
            scheme: IbScheme::RowBuffer,
        },
        PlannerKind::VmcuSplit {
            devices: 8,
            scheme: IbScheme::RowBuffer,
        },
    ] {
        let report = Engine::new(device.clone())
            .planner(kind)
            .deploy(&g, &weights)
            .and_then(|d| d.session().infer(&input))
            .unwrap_or_else(|e| panic!("VMCU_TEST_SEED={seed} reproduces: {kind:?} failed: {e}"));
        assert_eq!(
            &report.output, expected,
            "VMCU_TEST_SEED={seed} reproduces: {kind:?} diverges from reference"
        );
    }

    // Chained single-window execution must agree as well.
    let (chained, plan) = Engine::new(device)
        .deploy(&g, &weights)
        .and_then(|d| d.session().infer_chained(&input))
        .unwrap_or_else(|e| panic!("VMCU_TEST_SEED={seed} reproduces: chained: {e}"));
    assert_eq!(
        &chained.output, expected,
        "VMCU_TEST_SEED={seed} reproduces: chained execution diverges"
    );
    assert!(plan.window > 0);
}

/// The branchy-DAG side of the net: every planner that can walk a DAG
/// (including the policies that drop their chain-only plan and fall back
/// to the order-aware graph walk) must agree bit for bit with the
/// reference executor, and the chain-only single-window path must fail
/// with a typed error instead of silently mis-executing.
fn check_dag_seed(seed: u64) {
    let g = zoo::random_dag_net(seed, 6);
    let weights = g.random_weights(seed ^ 0xABCD);
    let input = random::tensor_i8(&g.in_shape(), seed ^ 0x1234);
    let expected = exec::run_reference(&g, &weights, &input);
    let expected = expected.last().unwrap();
    let device = Device::stm32_f767zi();

    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::SlidingWindow),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
        // Split degrades to a single whole-graph stage on a DAG — the
        // fallback walk must still be bit-exact.
        PlannerKind::VmcuSplit {
            devices: 4,
            scheme: IbScheme::RowBuffer,
        },
        PlannerKind::VmcuReorder(IbScheme::RowBuffer),
        PlannerKind::VmcuReorder(IbScheme::SlidingWindow),
    ] {
        let report = Engine::new(device.clone())
            .planner(kind)
            .deploy(&g, &weights)
            .and_then(|d| d.session().infer(&input))
            .unwrap_or_else(|e| panic!("VMCU_TEST_SEED={seed} reproduces: {kind:?} failed: {e}"));
        assert_eq!(
            &report.output, expected,
            "VMCU_TEST_SEED={seed} reproduces: {kind:?} diverges from reference on a DAG"
        );
    }

    // Chained single-window execution is a chain-only contract.
    if !g.is_chain() {
        let err = Engine::new(device)
            .deploy(&g, &weights)
            .and_then(|d| d.session().infer_chained(&input))
            .map(|_| ())
            .expect_err("chained execution must reject a branchy DAG");
        assert!(
            matches!(err, EngineError::Unsupported { .. }),
            "VMCU_TEST_SEED={seed} reproduces: expected Unsupported, got {err}"
        );
    }
}

/// Tiny splitmix-style generator so conv shapes derive deterministically
/// from the seed without pulling in an RNG dependency.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random conv2d workloads: the im2col + lane-blocked matmul lowering
/// must be bit-exact against the direct segment-aware kernel at scalar
/// width and at every ladder device's native lane count. This is the
/// seeded differential net for the SIMD lowering, mirroring the
/// planner-level suites above.
#[test]
fn im2col_lowering_matches_direct_kernel_on_random_convs() {
    let base = base_seed();
    for seed in base..base + 8 {
        let mut s = seed;
        let pick = |state: &mut u64, lo: usize, span: usize| lo + (mix(state) as usize) % span;
        let r = [1, 3][pick(&mut s, 0, 2)];
        let p = Conv2dParams::new(
            pick(&mut s, 5, 6),
            pick(&mut s, 5, 6),
            pick(&mut s, 2, 7),
            pick(&mut s, 2, 7),
            r,
            r,
            1,
            if r > 1 { pick(&mut s, 0, 2) } else { 0 },
            Requant::from_scale(1.0 / 64.0, 0),
        );
        let input = random::tensor_i8(&[p.h, p.w, p.c], seed ^ 0x51);
        let weight = random::tensor_i8(&[p.r, p.s, p.c, p.k], seed ^ 0x52);
        let dist = conv2d_exec_distance(&p);
        let window = (p.in_bytes() + dist.max(0) as usize).max(p.out_bytes());

        let run = |device: &Device, lanes: Option<u64>| -> Vec<u8> {
            let mut m = Machine::new(device.clone());
            let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
            let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
            pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
            match lanes {
                None => run_conv2d(&mut m, &mut pool, &p, 0, -dist, w_base, None).unwrap(),
                Some(l) => {
                    run_conv2d_im2col(&mut m, &mut pool, &p, 0, -dist, w_base, None, window, l)
                        .unwrap();
                }
            }
            pool.host_read(&m, -dist, p.out_bytes()).unwrap()
        };

        for device in Device::simd_ladder() {
            assert!(conv2d_im2col_workspace_bytes(&p) > 0);
            let direct = run(&device, None);
            for lanes in [1, device.cost.simd.lanes] {
                assert_eq!(
                    run(&device, Some(lanes)),
                    direct,
                    "VMCU_TEST_SEED={seed} reproduces: im2col lanes={lanes} diverges \
                     from direct on {}",
                    device.name
                );
            }
        }
    }
}

/// Batched MAC charging (one call per tile row) must be counter-identical
/// to the per-tile charging loop it replaced — the host-side hot-loop
/// optimization may not move a single simulated cycle.
#[test]
fn batched_mac_charging_is_counter_identical() {
    let base = base_seed();
    for seed in base..base + 8 {
        let mut s = seed ^ 0xB41C;
        for device in Device::simd_ladder() {
            let mut batched = Machine::new(device.clone());
            let mut per_tile = Machine::new(device.clone());
            for _ in 0..16 {
                let n = 1 + mix(&mut s) % 64;
                let tiles = 1 + mix(&mut s) % 8;
                let unrolled = mix(&mut s) % 2 == 0;
                batched.charge_macs_batched(n, tiles, unrolled);
                for _ in 0..tiles {
                    per_tile.charge_macs(n, unrolled);
                }
            }
            assert_eq!(
                batched.counters.cycles, per_tile.counters.cycles,
                "VMCU_TEST_SEED={seed} reproduces: batched cycles diverge on {}",
                device.name
            );
            assert_eq!(batched.counters.macs, per_tile.counters.macs);
        }
    }
}

#[test]
fn random_networks_agree_across_all_executors() {
    let base = base_seed();
    for seed in base..base + 12 {
        check_seed(seed);
    }
}

#[test]
fn random_networks_agree_more_seeds() {
    let base = base_seed();
    for seed in base + 12..base + 24 {
        check_seed(seed);
    }
}

#[test]
fn random_dags_agree_across_all_executors() {
    let base = base_seed();
    for seed in base..base + 12 {
        check_dag_seed(seed);
    }
}

#[test]
fn random_dags_agree_more_seeds() {
    let base = base_seed();
    for seed in base + 12..base + 24 {
        check_dag_seed(seed);
    }
}
