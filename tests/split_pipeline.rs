//! End-to-end contract of the multi-device split pipeline, driven by the
//! model built for it: `zoo::hires_split_only` OOMs a 128 KB device
//! under **every** single-device policy and deploys only when cut across
//! networked MCUs. The suite checks the whole story — deployment, bit
//! exactness against the reference executor, link pricing (every cut
//! edge charged exactly once, plan and execution agreeing byte for
//! byte), serving admission against the fleet's aggregate RAM, online
//! conservation, and bit-reproducibility across repeated runs.

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo};
use vmcu::vmcu_sim::LinkModel;
use vmcu::vmcu_tensor::random;
use vmcu::EngineError;
use vmcu_serve::{
    ArrivalProfile, Fleet, FleetConfig, ModelCatalog, OnlineConfig, Outcome, RequestSpec,
};

fn split_kind(devices: u8) -> PlannerKind {
    PlannerKind::VmcuSplit {
        devices,
        scheme: IbScheme::RowBuffer,
    }
}

#[test]
fn the_split_only_model_oom_under_every_single_device_policy() {
    let g = zoo::hires_split_only();
    let weights = g.random_weights(7);
    let device = Device::stm32_f411re();
    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
    ] {
        match Engine::new(device.clone())
            .planner(kind)
            .deploy(&g, &weights)
        {
            Err(EngineError::DoesNotFit {
                needed, available, ..
            }) => {
                assert!(
                    needed > available,
                    "{kind:?}: rejection must carry needed {needed} > available {available}"
                );
            }
            other => panic!("{kind:?} must reject hires-split-only, got {other:?}"),
        }
    }
}

#[test]
fn split_deploys_the_oom_model_and_matches_the_reference_bit_for_bit() {
    let g = zoo::hires_split_only();
    let weights = g.random_weights(7);
    let input = random::tensor_i8(&g.in_shape(), 11);
    let expected = exec::run_reference(&g, &weights, &input);
    let expected = expected.last().unwrap();
    let device = Device::stm32_f411re();

    for devices in [2u8, 4, 8] {
        let dep = Engine::new(device.clone())
            .planner(split_kind(devices))
            .deploy(&g, &weights)
            .unwrap_or_else(|e| panic!("{devices}-way split must deploy: {e}"));
        let split = dep
            .split_plan()
            .expect("split deployments memoize the partition");
        assert!(
            split.device_count() >= 2,
            "{devices}-way: the model must actually be cut (got {} stage)",
            split.device_count()
        );
        // Every stage fits its own device; the whole model does not fit one.
        let budget = device.usable_ram_bytes();
        for stage in split.stages() {
            assert!(stage.demand_bytes <= budget);
        }
        assert_eq!(dep.peak_demand_bytes(), split.max_stage_demand_bytes());

        let report = dep.session().infer(&input).expect("split inference");
        assert_eq!(
            &report.output, expected,
            "{devices}-way split diverges from the reference executor"
        );
    }
}

#[test]
fn every_cut_edge_is_priced_exactly_once_and_plan_equals_execution() {
    let g = zoo::hires_split_only();
    let weights = g.random_weights(7);
    let input = random::tensor_i8(&g.in_shape(), 11);
    let dep = Engine::new(Device::stm32_f411re())
        .planner(split_kind(4))
        .deploy(&g, &weights)
        .expect("split deploys");
    let split = dep.split_plan().unwrap().clone();
    let report = dep.session().infer(&input).expect("split inference");

    // Execution emits exactly the memoized plan: one report per plan
    // entry, names agreeing in order — the plan *is* the schedule.
    assert_eq!(report.layers.len(), dep.plan().layers.len());
    for (got, planned) in report.layers.iter().zip(&dep.plan().layers) {
        assert_eq!(&got.plan, planned);
        assert_eq!(got.name, planned.name);
    }

    // One link report per cut edge, charged from the default link model
    // at exactly the boundary tensor's size — no cycles, no MACs, just
    // wire time and wire energy.
    let link = LinkModel::default();
    let links: Vec<_> = report
        .layers
        .iter()
        .filter(|l| l.plan.kind == "link")
        .collect();
    let cuts: Vec<_> = split.stages().iter().filter(|s| s.cut_bytes > 0).collect();
    assert_eq!(links.len(), split.device_count() - 1);
    assert_eq!(links.len(), cuts.len());
    for (l, stage) in links.iter().zip(&cuts) {
        assert_eq!(l.plan.activation_bytes, stage.cut_bytes);
        let bytes = stage.cut_bytes as u64;
        assert_eq!(l.exec.latency_ms, link.transfer_ms(bytes));
        assert_eq!(l.exec.energy_mj, link.transfer_energy_mj(bytes));
        assert_eq!(l.exec.counters.cycles, 0, "links burn wire time, not CPU");
        assert_eq!(l.exec.counters.macs, 0);
    }
    // Total simulated latency strictly exceeds the sum of compute-node
    // latencies: the wire is on the clock.
    let compute_ms: f64 = report
        .layers
        .iter()
        .filter(|l| l.plan.kind != "link")
        .map(|l| l.exec.latency_ms)
        .sum();
    let total_ms: f64 = report.layers.iter().map(|l| l.exec.latency_ms).sum();
    assert!(total_ms > compute_ms);
}

#[test]
fn split_inference_is_bit_reproducible_across_sessions() {
    let g = zoo::hires_split_only();
    let weights = g.random_weights(7);
    let input = random::tensor_i8(&g.in_shape(), 11);
    let engine = Engine::new(Device::stm32_f411re()).planner(split_kind(4));
    let project = |dep: &Deployment| {
        let report = dep.session().infer(&input).expect("split inference");
        (
            report.output.clone(),
            report
                .layers
                .iter()
                .map(|l| (l.name.clone(), l.plan.clone(), l.exec))
                .collect::<Vec<_>>(),
        )
    };
    // Two deployments, two sessions each: every simulated field — plan
    // entries, latencies, energies, counters, output bits — agrees.
    let dep_a = engine.deploy(&g, &weights).unwrap();
    let dep_b = engine.deploy(&g, &weights).unwrap();
    let first = project(&dep_a);
    assert_eq!(first, project(&dep_a));
    assert_eq!(first, project(&dep_b));
}

#[test]
fn serving_admits_the_split_model_against_aggregate_ram() {
    let device = Device::stm32_f411re();
    let catalog = ModelCatalog::standard();
    let hires = |seed| RequestSpec {
        id: 0,
        model: "hires-split-only".into(),
        seed,
    };

    // Single-device vMCU planning: the model never deploys, so its
    // requests are rejected as too large no matter the fleet width.
    let single = Fleet::new(
        FleetConfig::new(device.clone(), 4, PlannerKind::Vmcu(IbScheme::RowBuffer)),
        catalog.clone(),
    )
    .run_batch(&[hires(1)]);
    assert!(
        matches!(
            single.outcomes[0].1,
            Outcome::Rejected(vmcu_serve::RejectReason::TooLargeForDevice { .. })
        ),
        "single-device planning must reject, got {:?}",
        single.outcomes[0].1
    );

    // Split planning on the same fleet: the pipeline commits one stage
    // arena per device and the requests complete.
    let fleet = Fleet::new(FleetConfig::new(device, 4, split_kind(4)), catalog);
    let report = fleet.run_batch(&[hires(1), hires(2), hires(3)]);
    assert_eq!(report.stats.completed, 3);
    assert_eq!(report.stats.failed, 0);
    assert_eq!(report.stats.rejected, 0);
    // Serving replans nothing: split prices were harvested at deploy.
    assert_eq!(report.stats.serve_plan_calls, 0);
}

#[test]
fn online_serving_under_split_conserves_requests_and_reproduces() {
    let fleet = Fleet::new(
        FleetConfig::new(Device::stm32_f411re(), 3, split_kind(4)),
        ModelCatalog::standard(),
    );
    let cfg = OnlineConfig::new(ArrivalProfile::Poisson { rate_per_sec: 80.0 }, 2_000, 99);
    let report = fleet.run_online(&cfg);
    let s = &report.stats;
    // Conservation: every offered request is accounted for exactly once.
    assert_eq!(s.offered, cfg.requests);
    assert_eq!(s.offered, s.completed + s.shed + s.rejected + s.failed);
    assert_eq!(s.routed, s.offered - s.rejected);
    assert!(s.completed > 0, "the split fleet must serve load");
    assert_eq!(s.failed, 0);
    assert_eq!(s.serve_plan_calls, 0);
    // Bit-reproducibility: the simulated projection of a second run is
    // identical, field for field.
    let again = fleet.run_online(&cfg);
    assert_eq!(again.stats.simulated(), s.simulated());
    assert_eq!(again.workers, report.workers);
}
