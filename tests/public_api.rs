//! Public-API snapshot: the `vmcu::prelude` surface is parsed out of
//! `crates/vmcu/src/lib.rs` and compared against the committed snapshot
//! below. A public item appearing in (or disappearing from) the prelude
//! without this snapshot being updated is a test failure — API changes
//! must be deliberate, reviewed alongside the snapshot diff.

use std::path::PathBuf;

/// The committed prelude surface. Update this list (and the docs —
/// README quickstarts, `docs/MIGRATION.md`) when the prelude changes on
/// purpose.
const PRELUDE_SNAPSHOT: &[&str] = &[
    "crate::deploy::Deployment",
    "crate::deploy::Session",
    "crate::engine::Engine",
    "crate::engine::InferenceReport",
    "crate::engine::LayerReport",
    "crate::engine::PlannerKind",
    "crate::error::EngineError",
    "crate::exec::Executor",
    "vmcu_graph::Graph",
    "vmcu_graph::LayerDesc",
    "vmcu_graph::LayerWeights",
    "vmcu_kernels::IbParams",
    "vmcu_kernels::IbScheme",
    "vmcu_kernels::PointwiseParams",
    "vmcu_plan::FusedPlanner",
    "vmcu_plan::HmcosPlanner",
    "vmcu_plan::MemoryPlanner",
    "vmcu_plan::PatchedPlanner",
    "vmcu_plan::ReorderPlanner",
    "vmcu_plan::SplitPlanner",
    "vmcu_plan::TinyEnginePlanner",
    "vmcu_plan::VmcuPlanner",
    "vmcu_sim::Device",
    "vmcu_tensor::Requant",
    "vmcu_tensor::Tensor",
];

fn facade_lib_rs() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/vmcu/src/lib.rs");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Extracts the body of `pub mod prelude { ... }` by brace counting.
fn prelude_body(source: &str) -> String {
    let start = source
        .find("pub mod prelude")
        .expect("lib.rs declares `pub mod prelude`");
    let open = source[start..].find('{').expect("prelude has a body") + start;
    let mut depth = 0usize;
    for (i, c) in source[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return source[open + 1..open + i].to_owned();
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced braces in prelude");
}

/// Flattens `pub use` statements into fully-qualified item paths,
/// expanding one level of `path::{a, b}` braces.
fn prelude_items(body: &str) -> Vec<String> {
    let no_comments: String = body
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join(" ");
    let mut items = Vec::new();
    for stmt in no_comments.split(';') {
        let stmt = stmt.trim();
        let Some(rest) = stmt.strip_prefix("pub use ") else {
            assert!(
                stmt.is_empty(),
                "prelude may only contain `pub use` statements, found `{stmt}`"
            );
            continue;
        };
        if let Some((prefix, list)) = rest.split_once('{') {
            let prefix = prefix.trim().trim_end_matches("::");
            let list = list.trim_end_matches('}');
            for item in list.split(',') {
                let item = item.trim();
                if !item.is_empty() {
                    items.push(format!("{prefix}::{item}"));
                }
            }
        } else {
            items.push(rest.trim().to_owned());
        }
    }
    items.sort();
    items
}

#[test]
fn prelude_surface_matches_the_committed_snapshot() {
    let items = prelude_items(&prelude_body(&facade_lib_rs()));
    let mut expected: Vec<String> = PRELUDE_SNAPSHOT.iter().map(|s| (*s).to_owned()).collect();
    expected.sort();
    let added: Vec<_> = items.iter().filter(|i| !expected.contains(i)).collect();
    let removed: Vec<_> = expected.iter().filter(|i| !items.contains(i)).collect();
    assert!(
        added.is_empty() && removed.is_empty(),
        "prelude surface drifted from the snapshot in tests/public_api.rs\n  \
         added (update the snapshot if intentional): {added:?}\n  \
         removed (a breaking change — update snapshot + docs/MIGRATION.md): {removed:?}"
    );
}

#[test]
fn inference_scratch_is_no_longer_in_the_prelude() {
    // Satellite contract: `InferenceScratch` left the prelude (it remains
    // a deprecated crate-root re-export for one release).
    let body = prelude_body(&facade_lib_rs());
    assert!(
        !body.contains("InferenceScratch"),
        "InferenceScratch must stay out of the prelude"
    );
    let source = facade_lib_rs();
    assert!(
        source.contains("pub use engine::InferenceScratch"),
        "the deprecated crate-root re-export must survive one release"
    );
}

#[test]
fn snapshot_parser_expands_braces_and_plain_paths() {
    let items = prelude_items(
        "pub use a::b::{C, D};\n// comment {ignored}\npub use x::Y;\npub use z::{E};",
    );
    assert_eq!(items, vec!["a::b::C", "a::b::D", "x::Y", "z::E"]);
}
