//! Property tests over the whole stack: for random layer geometries, the
//! planner's offset is (a) safe — the kernel completes with zero pool
//! violations — and (b) tight — one byte less deterministically trips the
//! clobber detector. This is the empirical proof that memory management
//! and kernels are truly *coordinated*.

use proptest::prelude::*;
use vmcu::vmcu_kernels::fc::{fc_exec_distance, run_fc};
use vmcu::vmcu_kernels::fused_ib::{ib_exec_distance, run_fused_ib, IbFlash};
use vmcu::vmcu_kernels::params::{FcParams, IbParams};
use vmcu::vmcu_kernels::IbScheme;
use vmcu::vmcu_pool::{PoolError, SegmentPool};
use vmcu::vmcu_sim::{Device, Machine};
use vmcu::vmcu_tensor::{random, Requant};

fn run_fc_at(p: &FcParams, d: i64) -> Result<(), PoolError> {
    let mut m = Machine::new(Device::stm32_f411re());
    let input = random::tensor_i8(&[p.m, p.k], 1);
    let weight = random::tensor_i8(&[p.k, p.n], 2);
    let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
    let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
    let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
    pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
    run_fc(&mut m, &mut pool, p, 0, -d, w_base, None)?;
    Ok(())
}

fn run_ib_at(p: &IbParams, scheme: IbScheme, d: i64) -> Result<(), PoolError> {
    let mut m = Machine::new(Device::stm32_f767zi());
    let input = random::tensor_i8(&[p.hw, p.hw, p.c_in], 3);
    let w1 = random::tensor_i8(&[p.c_in, p.c_mid], 4);
    let wdw = random::tensor_i8(&[p.rs, p.rs, p.c_mid], 5);
    let w2 = random::tensor_i8(&[p.c_mid, p.c_out], 6);
    let flash = IbFlash {
        w1: m.host_program_flash(&w1.as_bytes()).unwrap(),
        wdw: m.host_program_flash(&wdw.as_bytes()).unwrap(),
        w2: m.host_program_flash(&w2.as_bytes()).unwrap(),
    };
    let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
    let mut pool = SegmentPool::new(&m, 0, window, p.seg()).unwrap();
    pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
    run_fused_ib(&mut m, &mut pool, p, scheme, 0, -d, &flash, window)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FC: safe at D, clobbers at D-1, for arbitrary shapes.
    #[test]
    fn fc_offset_is_safe_and_tight(
        m in 1usize..6, k in 1usize..12, n in 1usize..12
    ) {
        let p = FcParams::new(m, k, n, Requant::from_scale(1.0 / 32.0, 0));
        let d = fc_exec_distance(&p);
        prop_assert!(run_fc_at(&p, d).is_ok(), "kernel must run clean at D");
        prop_assert!(
            matches!(run_fc_at(&p, d - 1), Err(PoolError::Clobber { .. })),
            "kernel must clobber at D-1"
        );
    }

    /// Fused inverted bottleneck: safe at D, clobbers at D-1, across
    /// workspace schemes, strides, and residual/non-residual shapes.
    #[test]
    fn ib_offset_is_safe_and_tight(
        hw in 4usize..9,
        c_in in 2usize..5,
        expand in 2usize..4,
        s1 in 1usize..3,
        s2 in 1usize..3,
        scheme_pick in 0usize..3,
    ) {
        let scheme = [IbScheme::RowBuffer, IbScheme::PixelWindow, IbScheme::SlidingWindow][scheme_pick];
        let p = IbParams::new(hw, c_in, c_in * expand, c_in, 3, (s1, s2, 1));
        let d = ib_exec_distance(&p, scheme);
        prop_assert!(run_ib_at(&p, scheme, d).is_ok(), "module must run clean at D");
        prop_assert!(
            matches!(run_ib_at(&p, scheme, d - 1), Err(PoolError::Clobber { .. })),
            "module must clobber at D-1"
        );
    }

    /// Planner monotonicity: growing any dimension never shrinks the vMCU
    /// plan (no pathological non-monotonicity a NAS search could exploit
    /// incorrectly).
    #[test]
    fn vmcu_plan_is_monotone_in_image_size(hw in 6usize..12) {
        use vmcu::prelude::*;
        let planner = VmcuPlanner::default();
        let small = LayerDesc::Ib(IbParams::new(hw, 4, 8, 4, 3, (1, 1, 1)));
        let big = LayerDesc::Ib(IbParams::new(hw + 1, 4, 8, 4, 3, (1, 1, 1)));
        let bytes = |l: &LayerDesc| {
            let (a, w) = planner.plan_layer(l);
            a + w
        };
        prop_assert!(bytes(&big) >= bytes(&small));
    }
}
