//! Online-serving integration suite: the sustained simulator must be
//! seeded-deterministic per arrival profile, conserve every offered
//! request, shed under pressure exactly when the SLO says so, and price
//! each model hot-swap with the deployment's simulated Flash-staging
//! time. See `docs/SERVING.md` for the operational semantics under test.

use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_tensor::random;
use vmcu_serve::{ArrivalProfile, Fleet, FleetConfig, ModelCatalog, OnlineConfig};

fn fleet_128kb(workers: usize) -> Fleet {
    Fleet::new(
        FleetConfig::new(
            Device::stm32_f411re(),
            workers,
            PlannerKind::Vmcu(IbScheme::RowBuffer),
        ),
        ModelCatalog::standard(),
    )
}

fn profiles() -> [ArrivalProfile; 3] {
    [
        ArrivalProfile::Poisson {
            rate_per_sec: 120.0,
        },
        ArrivalProfile::Bursty {
            base_rate_per_sec: 60.0,
            burst_rate_per_sec: 480.0,
            burst_ms: 200.0,
            gap_ms: 800.0,
        },
        ArrivalProfile::Diurnal {
            trough_rate_per_sec: 30.0,
            peak_rate_per_sec: 240.0,
            period_ms: 5_000.0,
        },
    ]
}

#[test]
fn online_runs_are_bit_reproducible_for_every_arrival_profile() {
    // The contract the CI bench gate stands on: same seed, same config
    // => bit-identical simulated stats (host wall-clock excluded via
    // `simulated()`), per worker and in aggregate, for every profile.
    let fleet = fleet_128kb(3);
    for profile in profiles() {
        let cfg = OnlineConfig::new(profile, 3_000, 2024);
        let a = fleet.run_online(&cfg);
        let b = fleet.run_online(&cfg);
        assert_eq!(
            a.stats.simulated(),
            b.stats.simulated(),
            "{} aggregate must be bit-identical across runs",
            profile.name()
        );
        assert_eq!(
            a.workers,
            b.workers,
            "{} per-worker stats must be bit-identical across runs",
            profile.name()
        );
    }
}

#[test]
fn distinct_seeds_produce_distinct_streams() {
    let fleet = fleet_128kb(2);
    let profile = ArrivalProfile::Poisson {
        rate_per_sec: 120.0,
    };
    let a = fleet.run_online(&OnlineConfig::new(profile, 2_000, 1));
    let b = fleet.run_online(&OnlineConfig::new(profile, 2_000, 2));
    assert_ne!(
        a.stats.simulated(),
        b.stats.simulated(),
        "different seeds must not replay the same stream"
    );
}

#[test]
fn sustained_run_conserves_every_offered_request() {
    // Accounting identities the handbook documents: every arrival is
    // rejected at routing or routed; every routed request is completed,
    // shed, or failed. Percentiles must be ordered and shed_rate a rate.
    let fleet = fleet_128kb(4);
    for profile in profiles() {
        let name = profile.name();
        let cfg = OnlineConfig::new(profile, 10_000, 7);
        let report = fleet.run_online(&cfg);
        let s = &report.stats;
        assert_eq!(s.offered, cfg.requests, "{name}: offered == stream length");
        assert_eq!(
            s.offered,
            s.routed + s.rejected,
            "{name}: routing splits offered"
        );
        assert_eq!(
            s.routed,
            s.completed + s.shed + s.failed,
            "{name}: every routed request ends exactly one way"
        );
        assert_eq!(s.failed, 0, "{name}: no typed engine errors");
        assert!(s.completed > 0, "{name}: sustained run must serve work");
        assert!(
            s.p50_sojourn_ms <= s.p99_sojourn_ms,
            "{name}: percentiles ordered"
        );
        assert!(
            (0.0..=1.0).contains(&s.shed_rate),
            "{name}: shed_rate is a rate"
        );
        assert_eq!(
            s.serve_plan_calls, 0,
            "{name}: online serving never replans"
        );
        let worker_routed: usize = report.workers.iter().map(|w| w.routed).sum();
        assert_eq!(s.routed, worker_routed);
    }
}

#[test]
fn tight_slo_sheds_what_a_generous_slo_serves() {
    // Deadline shedding is driven by the SLO alone: the same stream
    // under a 20 ms deadline must shed strictly more (and complete
    // strictly less) than under a 2-second deadline.
    let fleet = fleet_128kb(2);
    let profile = ArrivalProfile::Poisson {
        rate_per_sec: 200.0,
    };
    let tight = fleet.run_online(&OnlineConfig::new(profile, 5_000, 11).with_slo_ms(20.0));
    let generous = fleet.run_online(&OnlineConfig::new(profile, 5_000, 11).with_slo_ms(2_000.0));
    assert!(
        tight.stats.shed > generous.stats.shed,
        "20 ms SLO shed {} must exceed 2 s SLO shed {}",
        tight.stats.shed,
        generous.stats.shed
    );
    assert!(tight.stats.completed < generous.stats.completed);
    assert_eq!(tight.stats.offered, generous.stats.offered);
}

#[test]
fn hot_swaps_are_priced_with_flash_staging_time() {
    // One worker, the whole catalog: the models cannot all stay
    // resident, so serving a long mixed stream forces evict-and-restage
    // cycles. Every staging must be charged simulated Flash-programming
    // time, bounded by the catalog's own per-deployment prices.
    let fleet = fleet_128kb(1);
    let cfg = OnlineConfig::new(
        ArrivalProfile::Poisson {
            rate_per_sec: 100.0,
        },
        20_000,
        2024,
    );
    let report = fleet.run_online(&cfg);
    let s = &report.stats;
    assert!(
        s.swaps >= 1,
        "a single 128 KB device serving the whole catalog must swap (got {})",
        s.swaps
    );
    assert!(s.stagings > s.swaps, "first-time stagings are not swaps");
    assert!(
        s.evictions >= s.swaps,
        "each swap evicted at least one model"
    );
    assert!(s.swap_ms > 0.0, "staging time must be priced");
    // The aggregate price is exactly the per-worker staging clock...
    let staging_us: u64 = report.workers.iter().map(|w| w.staging_us).sum();
    assert_eq!(s.swap_ms, staging_us as f64 / 1e3);
    // ...and consistent with the deployments' own posted prices: every
    // staging charged between the cheapest and priciest catalog image.
    let prices: Vec<u64> = fleet
        .catalog()
        .models()
        .iter()
        .filter_map(|m| fleet.deployment(m.name))
        .map(|d| (d.staging_ms() * 1e3).round() as u64)
        .collect();
    let (min, max) = (*prices.iter().min().unwrap(), *prices.iter().max().unwrap());
    assert!(min > 0, "Flash programming is never free");
    assert!(staging_us >= s.stagings * min && staging_us <= s.stagings * max);
}

#[test]
fn simulated_inference_latency_is_input_independent() {
    // The load-bearing fact behind the worker's one-probe-per-model
    // service calibration: the simulated cost model prices a layer from
    // shapes and plans, never from activation values, so two inferences
    // with different inputs report identical latency and energy.
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(0xDEB);
    let engine =
        Engine::new(Device::stm32_f411re()).planner(PlannerKind::Vmcu(IbScheme::RowBuffer));
    let mut session = engine.deploy(&g, &weights).expect("fits").session();
    let a = session
        .infer(&random::tensor_i8(&g.in_shape(), 1))
        .expect("infer");
    let b = session
        .infer(&random::tensor_i8(&g.in_shape(), 0xFFFF_FFFF))
        .expect("infer");
    assert_ne!(
        random::tensor_i8(&g.in_shape(), 1),
        random::tensor_i8(&g.in_shape(), 0xFFFF_FFFF),
        "the two inputs really differ"
    );
    assert_eq!(a.latency_ms(), b.latency_ms());
    assert_eq!(a.energy_mj(), b.energy_mj());
}
