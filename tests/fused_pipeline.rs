//! Integration suite for the multi-layer segment fusion pipeline: the
//! fusion pass, the fused chain executor, and their edge cases, end to
//! end through the engine.

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo, Graph};
use vmcu::vmcu_kernels::params::{DepthwiseParams, IbParams, PointwiseParams};
use vmcu::vmcu_plan::fusion::{fuse_graph, FusionNode};
use vmcu::vmcu_plan::peak_demand_bytes;
use vmcu::vmcu_tensor::random;

fn fused_kind() -> PlannerKind {
    PlannerKind::VmcuFused(IbScheme::RowBuffer)
}

/// Deploy-once/infer-once through the new Session API.
fn run(
    engine: &Engine,
    g: &Graph,
    weights: &[LayerWeights],
    input: &Tensor<i8>,
) -> Result<InferenceReport, EngineError> {
    engine.deploy(g, weights)?.session().infer(input)
}

fn rq() -> Requant {
    Requant::from_scale(1.0 / 64.0, 0)
}

#[test]
fn single_layer_chain_is_a_noop_fusion_end_to_end() {
    // One layer: the fusion pass emits a singleton, plans and runs
    // exactly like single-layer vMCU.
    let g = Graph::linear(
        "one",
        vec![LayerDesc::Pointwise(PointwiseParams::new(8, 8, 4, 8, rq()))],
    )
    .unwrap();
    let plan = fuse_graph(&g, IbScheme::RowBuffer);
    assert_eq!(plan.fused_groups(), 0);
    assert_eq!(
        peak_demand_bytes(&FusedPlanner::default(), &g),
        peak_demand_bytes(&VmcuPlanner::default(), &g)
    );
    let weights = g.random_weights(1);
    let input = random::tensor_i8(&g.in_shape(), 2);
    let dev = Device::stm32_f411re();
    let fused = run(
        &Engine::new(dev.clone()).planner(fused_kind()),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    let vmcu = run(&Engine::new(dev), &g, &weights, &input).unwrap();
    assert_eq!(fused.output, vmcu.output);
    assert_eq!(fused.peak_ram_bytes(), vmcu.peak_ram_bytes());
}

#[test]
fn unfusable_op_breaks_the_chain_but_execution_still_matches() {
    // pw → IB → pw: the inverted bottleneck is its own fused unit and
    // splits the run; the graph still executes bit-exactly.
    let mut ib = IbParams::new(10, 8, 24, 8, 3, (1, 1, 1));
    ib.clamp1 = (0, 127);
    ib.clamp2 = (0, 127);
    let g = Graph::linear(
        "broken-chain",
        vec![
            LayerDesc::Pointwise(PointwiseParams::new(10, 10, 4, 8, rq())),
            LayerDesc::Ib(ib),
            LayerDesc::Pointwise(PointwiseParams::new(10, 10, 8, 12, rq())),
        ],
    )
    .unwrap();
    let plan = fuse_graph(&g, IbScheme::RowBuffer);
    assert_eq!(plan.fused_groups(), 0, "singletons on both sides of the IB");
    assert_eq!(plan.nodes.len(), 3);
    assert!(plan
        .nodes
        .iter()
        .all(|n| matches!(n, FusionNode::Single { .. })));
    let weights = g.random_weights(3);
    let input = random::tensor_i8(&g.in_shape(), 4);
    let report = run(
        &Engine::new(Device::stm32_f767zi()).planner(fused_kind()),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    let expected = exec::run_reference(&g, &weights, &input);
    assert_eq!(&report.output, expected.last().unwrap());
}

#[test]
fn chain_that_only_fits_fused_deploys_and_matches_reference() {
    // The wide expand chain's 153.6 KB intermediate exceeds the 128 KB
    // device outright; only the fused pipeline deploys it.
    let g = zoo::wide_expand_chain();
    let dev = Device::stm32_f411re();
    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
    ] {
        assert!(
            matches!(
                Engine::new(dev.clone()).planner(kind).check_fit(&g),
                Err(EngineError::DoesNotFit { .. })
            ),
            "{kind:?} must not fit the wide chain"
        );
    }
    let engine = Engine::new(dev).planner(fused_kind());
    let weights = g.random_weights(5);
    let input = random::tensor_i8(&g.in_shape(), 6);
    let report = run(&engine, &g, &weights, &input).unwrap();
    let expected = exec::run_reference(&g, &weights, &input);
    assert_eq!(&report.output, expected.last().unwrap());
    assert!(report.peak_ram_bytes() <= 128 * 1024);
}

#[test]
fn fused_peak_ram_strictly_below_vmcu_on_a_zoo_model() {
    // Acceptance criterion: planning surface and measured execution both
    // show the fused plan strictly below single-layer vMCU planning.
    let g = zoo::mbv2_block_unfused();
    let fused_demand = peak_demand_bytes(&FusedPlanner::default(), &g);
    let vmcu_demand = peak_demand_bytes(&VmcuPlanner::default(), &g);
    assert!(fused_demand < vmcu_demand);
    let weights = g.random_weights(7);
    let input = random::tensor_i8(&g.in_shape(), 8);
    let dev = Device::stm32_f411re();
    let fused = run(
        &Engine::new(dev.clone()).planner(fused_kind()),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    let vmcu = run(&Engine::new(dev), &g, &weights, &input).unwrap();
    assert_eq!(fused.output, vmcu.output);
    assert!(fused.peak_ram_bytes() < vmcu.peak_ram_bytes());
}

#[test]
fn fused_execution_is_bit_identical_across_seeded_random_nets() {
    // Differential acceptance: seeded random mixed nets (pointwise /
    // depthwise / inverted bottlenecks, strides included) must agree
    // bit-for-bit with the unfused reference executor.
    for seed in 100..112 {
        let g = zoo::random_linear_net(seed, 5);
        let weights = g.random_weights(seed ^ 0x5EED);
        let input = random::tensor_i8(&g.in_shape(), seed ^ 0xF00D);
        let expected = exec::run_reference(&g, &weights, &input);
        let report = run(
            &Engine::new(Device::stm32_f767zi()).planner(fused_kind()),
            &g,
            &weights,
            &input,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: fused execution failed: {e}"));
        assert_eq!(
            &report.output,
            expected.last().unwrap(),
            "seed {seed}: fused output diverges from reference"
        );
    }
}

#[test]
fn deep_pointwise_tower_fuses_into_one_group() {
    // A four-layer expansion tower: one fused group, priced below the
    // per-layer bottleneck.
    let mut mid1 = PointwiseParams::new(12, 12, 8, 32, rq());
    mid1.clamp = (0, 127);
    let mut mid2 = PointwiseParams::new(12, 12, 32, 48, rq());
    mid2.clamp = (0, 127);
    let mut mid3 = PointwiseParams::new(12, 12, 48, 32, rq());
    mid3.clamp = (0, 127);
    let g = Graph::linear(
        "tower",
        vec![
            LayerDesc::Pointwise(mid1),
            LayerDesc::Pointwise(mid2),
            LayerDesc::Pointwise(mid3),
            LayerDesc::Pointwise(PointwiseParams::new(12, 12, 32, 8, rq())),
        ],
    )
    .unwrap();
    let plan = fuse_graph(&g, IbScheme::RowBuffer);
    assert_eq!(plan.fused_groups(), 1);
    assert_eq!(plan.nodes.len(), 1);
    assert!(
        peak_demand_bytes(&FusedPlanner::default(), &g)
            < peak_demand_bytes(&VmcuPlanner::default(), &g)
    );
    let weights = g.random_weights(9);
    let input = random::tensor_i8(&g.in_shape(), 10);
    let report = run(
        &Engine::new(Device::stm32_f411re()).planner(fused_kind()),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    let expected = exec::run_reference(&g, &weights, &input);
    assert_eq!(&report.output, expected.last().unwrap());
}

#[test]
fn strided_depthwise_chain_fuses_and_matches() {
    // Stride-2 depthwise inside a fused chain: the line-buffer rings
    // advance by two rows per output row.
    let mut expand = PointwiseParams::new(16, 16, 8, 32, rq());
    expand.clamp = (0, 127);
    let mut dw = DepthwiseParams::new(16, 16, 32, 3, 3, 2, 1, rq());
    dw.clamp = (0, 127);
    let g = Graph::linear(
        "strided",
        vec![
            LayerDesc::Pointwise(expand),
            LayerDesc::Depthwise(dw),
            LayerDesc::Pointwise(PointwiseParams::new(8, 8, 32, 8, rq())),
        ],
    )
    .unwrap();
    let plan = fuse_graph(&g, IbScheme::RowBuffer);
    assert_eq!(plan.fused_groups(), 1);
    let weights = g.random_weights(11);
    let input = random::tensor_i8(&g.in_shape(), 12);
    let report = run(
        &Engine::new(Device::stm32_f767zi()).planner(fused_kind()),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    let expected = exec::run_reference(&g, &weights, &input);
    assert_eq!(&report.output, expected.last().unwrap());
}
