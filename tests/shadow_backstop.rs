//! Shadow-memory backstop (`--features shadow`): every RAM store is
//! checked against a per-byte liveness map mirrored from the segment
//! pool, so an executor that drifted from its certified plan would fail
//! at the memory layer instead of silently corrupting activations.
//!
//! These tests prove two things end to end: (1) every planner's executor
//! keeps pool discipline — whole inferences run clean under the shadow
//! map and still match the reference bits; (2) the map is not vacuous —
//! a raw double store with pool checking disabled is caught.

#![cfg(feature = "shadow")]

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo};
use vmcu::vmcu_tensor::random;

/// Whole inferences stay clean under the shadow map for every planner
/// kind, and the outputs still match the reference executor exactly.
#[test]
fn all_executors_run_clean_under_shadow() {
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(100);
    let input = random::tensor_i8(&g.in_shape(), 101);
    let expected = exec::run_reference(&g, &weights, &input);
    let expected = expected.last().unwrap();

    let device = Device::stm32_f767zi();
    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::PixelWindow),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
        PlannerKind::VmcuReorder(IbScheme::RowBuffer),
    ] {
        let report = Engine::new(device.clone())
            .planner(kind)
            .deploy(&g, &weights)
            .unwrap_or_else(|e| panic!("{kind:?} deploy failed: {e}"))
            .session()
            .infer(&input)
            .unwrap_or_else(|e| panic!("{kind:?} infer failed under shadow: {e}"));
        assert_eq!(&report.output, expected, "{kind:?} output mismatch");
    }
}

/// The multi-branch DAG nets exercise merge kernels (add/concat frees);
/// they must also hold discipline under the shadow map.
#[test]
fn dag_nets_run_clean_under_shadow() {
    let device = Device::stm32_f767zi();
    for (name, g) in [
        ("mbv2-residual-dag", zoo::mbv2_residual_dag()),
        ("two-head-net", zoo::two_head_net()),
    ] {
        let weights = g.random_weights(31);
        let input = random::tensor_i8(&g.in_shape(), 32);
        let expected = exec::run_reference(&g, &weights, &input);
        let expected = expected.last().unwrap();
        let report = Engine::new(device.clone())
            .planner(PlannerKind::Vmcu(IbScheme::RowBuffer))
            .deploy(&g, &weights)
            .unwrap_or_else(|e| panic!("{name} deploy failed: {e}"))
            .session()
            .infer(&input)
            .unwrap_or_else(|e| panic!("{name} infer failed under shadow: {e}"));
        assert_eq!(&report.output, expected, "{name} output mismatch");
    }
}
