//! Fleet-serving integration suite: the paper's RAM savings must show up
//! as admission capacity on a 128 KB fleet, and the scheduler must be
//! deterministic end to end.

use vmcu::prelude::*;
use vmcu_serve::{random_stream, Fleet, FleetConfig, ModelCatalog, Outcome, RejectReason};

fn fleet_128kb(planner: PlannerKind, workers: usize) -> Fleet {
    Fleet::new(
        FleetConfig::new(Device::stm32_f411re(), workers, planner),
        ModelCatalog::standard(),
    )
}

#[test]
fn vmcu_admits_strictly_more_concurrent_requests_than_disjoint_at_128kb() {
    // The acceptance criterion: same offered load, same 128 KB devices —
    // segment-level planning admits strictly more than both
    // tensor-level (TinyEngine) and scheduling-only (HMCOS) baselines.
    let requests = random_stream(ModelCatalog::standard().models(), 64, 2024);
    let vmcu = fleet_128kb(PlannerKind::Vmcu(IbScheme::RowBuffer), 4).run_batch(&requests);
    for disjoint_kind in [PlannerKind::TinyEngine, PlannerKind::Hmcos] {
        let disjoint = fleet_128kb(disjoint_kind, 4).run_batch(&requests);
        assert!(
            vmcu.stats.admitted > disjoint.stats.admitted,
            "vMCU admitted {} must strictly exceed {} admitted {}",
            vmcu.stats.admitted,
            disjoint_kind.name(),
            disjoint.stats.admitted
        );
        assert!(vmcu.stats.admission_rate > disjoint.stats.admission_rate);
    }
    assert_eq!(vmcu.stats.failed, 0);
}

#[test]
fn fused_policy_admits_at_least_vmcu_and_stays_bit_faithful() {
    // The fusion pass may only lower a model's priced demand (it falls
    // back to single-layer planning when fusion does not pay), so the
    // fused fleet admits at least what vMCU admits — and serves the
    // chain-shaped models with strictly less committed SRAM.
    let requests = random_stream(ModelCatalog::standard().models(), 64, 2024);
    let vmcu = fleet_128kb(PlannerKind::Vmcu(IbScheme::RowBuffer), 4).run_batch(&requests);
    let fused = fleet_128kb(PlannerKind::VmcuFused(IbScheme::RowBuffer), 4).run_batch(&requests);
    assert!(
        fused.stats.admitted >= vmcu.stats.admitted,
        "fused admitted {} must be at least vMCU's {}",
        fused.stats.admitted,
        vmcu.stats.admitted
    );
    assert_eq!(fused.stats.failed, 0);
    // Chain-shaped requests complete with a strictly lower peak RAM.
    for (req, outcome) in &fused.outcomes {
        if req.model == "mbv2-block-unfused" {
            let c = outcome.completion().expect("fused must serve the chain");
            let v = vmcu
                .outcomes
                .iter()
                .find(|(r, _)| r.id == req.id)
                .and_then(|(_, o)| o.completion())
                .expect("vMCU serves the chain too");
            assert!(
                c.peak_ram_bytes < v.peak_ram_bytes,
                "fused peak {} must undercut vMCU peak {}",
                c.peak_ram_bytes,
                v.peak_ram_bytes
            );
        }
    }
}

#[test]
fn patched_admits_at_least_vmcu_and_serves_the_spatial_catalog_entries() {
    // Patch-based planning may only lower a model's priced demand (it
    // falls back to the fused plan when patching does not pay), so the
    // patched fleet admits at least what vMCU admits — and it is the
    // only policy that serves the spatial-bottleneck catalog entry at
    // all: hires-front-stage's 147 KB input OOMs every whole-tensor
    // planner.
    let requests = random_stream(ModelCatalog::standard().models(), 64, 2024);
    let vmcu = fleet_128kb(PlannerKind::Vmcu(IbScheme::RowBuffer), 4).run_batch(&requests);
    let patched =
        fleet_128kb(PlannerKind::VmcuPatched(IbScheme::RowBuffer), 4).run_batch(&requests);
    assert!(
        patched.stats.admitted >= vmcu.stats.admitted,
        "patched admitted {} must be at least vMCU's {}",
        patched.stats.admitted,
        vmcu.stats.admitted
    );
    assert_eq!(patched.stats.failed, 0);
    let mut hires_seen = 0usize;
    for (req, outcome) in &patched.outcomes {
        if req.model == "hires-front-stage" {
            hires_seen += 1;
            let c = outcome
                .completion()
                .expect("patched must serve the spatial model");
            assert!(c.peak_ram_bytes <= 128 * 1024);
            // The same request is the paper's OOM outcome under vMCU.
            let v = vmcu
                .outcomes
                .iter()
                .find(|(r, _)| r.id == req.id)
                .map(|(_, o)| o)
                .expect("same stream");
            assert!(
                matches!(v, Outcome::Rejected(RejectReason::TooLargeForDevice { .. })),
                "vMCU should reject hires-front-stage, got {v:?}"
            );
        }
    }
    assert!(
        hires_seen > 0,
        "the stream must exercise the spatial catalog entry"
    );
    assert!(
        patched.stats.admitted > vmcu.stats.admitted,
        "serving the spatial entries must show up as strictly more admissions"
    );
}

#[test]
fn rejections_are_the_papers_oom_cases() {
    // Fig. 7 case 1 requests must be the ones TinyEngine rejects: the
    // paper's "fails to run" outcome, per-request.
    let mut requests = random_stream(ModelCatalog::standard().models(), 48, 7);
    requests.iter_mut().for_each(|r| {
        if r.id % 3 == 0 {
            r.model = "fig7-hw80-c16-k16".to_owned();
        }
    });
    let report = fleet_128kb(PlannerKind::TinyEngine, 2).run_batch(&requests);
    for (req, outcome) in &report.outcomes {
        if req.model == "fig7-hw80-c16-k16" {
            assert!(
                matches!(
                    outcome,
                    Outcome::Rejected(RejectReason::TooLargeForDevice { .. })
                ),
                "request {} should be rejected as too large, got {outcome:?}",
                req.id
            );
        }
    }
    // The same stream under vMCU serves every case-1 request.
    let report = fleet_128kb(PlannerKind::Vmcu(IbScheme::RowBuffer), 2).run_batch(&requests);
    assert!(report
        .outcomes
        .iter()
        .filter(|(r, _)| r.model == "fig7-hw80-c16-k16")
        .all(|(_, o)| o.completion().is_some()));
}

#[test]
fn fleet_reports_are_deterministic_and_within_device_limits() {
    let f = fleet_128kb(PlannerKind::Vmcu(IbScheme::RowBuffer), 3);
    let requests = random_stream(f.catalog().models(), 36, 99);
    let a = f.run_batch(&requests);
    let b = f.run_batch(&requests);
    assert_eq!(a.outcomes, b.outcomes, "scheduling must be deterministic");
    for (_, outcome) in &a.outcomes {
        if let Some(c) = outcome.completion() {
            assert!(c.peak_ram_bytes <= 128 * 1024);
            assert!(c.latency_ms > 0.0);
            assert!(c.energy_mj > 0.0);
            assert!(c.worker < 3);
        }
    }
    assert!(a.stats.p50_latency_ms <= a.stats.p99_latency_ms);
    assert!(a.stats.requests_per_sec > 0.0);
}

#[test]
fn capacity_api_and_fleet_agree_on_single_worker_residency() {
    // plan::concurrent_capacity predicts how many distinct clones of one
    // model a single device admits.
    let catalog = ModelCatalog::standard();
    let model = catalog.get("vww-s6").unwrap();
    let device = Device::stm32_f411re();
    let kind = PlannerKind::Vmcu(IbScheme::RowBuffer);
    let predicted = vmcu::vmcu_plan::concurrent_capacity(&*kind.planner(), &model.graph, &device);
    let mut controller = vmcu_serve::AdmissionController::new(device, kind, 1);
    let mut admitted = 0usize;
    for i in 0..predicted + 8 {
        if controller
            .admit(&format!("s6-clone-{i}"), &model.graph)
            .is_ok()
        {
            admitted += 1;
        }
    }
    assert_eq!(admitted, predicted);
    assert!(predicted >= 2, "S6 should fit several times under vMCU");
}
