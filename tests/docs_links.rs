//! Documentation link checker: every relative markdown link in
//! `README.md` and **every** page under `docs/` (discovered, not
//! hard-coded) must point at a file that exists, and every `#anchor`
//! must match a heading in the target — so anchors referenced across
//! the README, the architecture tour, and the planner handbook cannot
//! rot as pages are added.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `[text](target)` link targets, skipping fenced code blocks.
fn markdown_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(end) = line[i + 2..].find(')') {
                    links.push(line[i + 2..i + 2 + end].to_owned());
                    i += 2 + end;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub-style heading slugs: lowercase, spaces to dashes, punctuation
/// dropped.
fn heading_anchors(text: &str) -> HashSet<String> {
    let mut anchors = HashSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let title = line.trim_start_matches('#').trim();
        let slug: String = title
            .chars()
            .filter_map(|c| {
                if c.is_ascii_alphanumeric() {
                    Some(c.to_ascii_lowercase())
                } else if c == ' ' || c == '-' {
                    Some('-')
                } else {
                    None
                }
            })
            .collect();
        anchors.insert(slug);
    }
    anchors
}

fn check_file_links(doc: &Path) {
    let text =
        std::fs::read_to_string(doc).unwrap_or_else(|e| panic!("reading {}: {e}", doc.display()));
    let base = doc.parent().expect("doc has a parent directory");
    for link in markdown_links(&text) {
        if link.contains("://") || link.starts_with("mailto:") {
            continue; // external links are out of scope for an offline check
        }
        let (path_part, anchor) = match link.split_once('#') {
            Some((p, a)) => (p, Some(a)),
            None => (link.as_str(), None),
        };
        let target = if path_part.is_empty() {
            doc.to_path_buf()
        } else {
            base.join(path_part)
        };
        assert!(
            target.exists(),
            "{}: broken link `{link}` (no such file {})",
            doc.display(),
            target.display()
        );
        if let Some(anchor) = anchor {
            let target_text = std::fs::read_to_string(&target)
                .unwrap_or_else(|e| panic!("reading {}: {e}", target.display()));
            let anchors = heading_anchors(&target_text);
            assert!(
                anchors.contains(anchor),
                "{}: link `{link}` names anchor `#{anchor}` missing from {} (have: {:?})",
                doc.display(),
                target.display(),
                anchors
            );
        }
    }
}

#[test]
fn readme_links_resolve() {
    check_file_links(&repo_root().join("README.md"));
}

#[test]
fn every_docs_page_links_resolve() {
    // Discover, don't enumerate: a new docs page is covered the moment
    // it lands, including its relative links to other docs pages and
    // back up to the README.
    let docs = repo_root().join("docs");
    let mut pages: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("docs/ directory exists")
        .map(|e| e.expect("readable docs entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    pages.sort();
    assert!(
        pages.len() >= 2,
        "docs/ must hold at least ARCHITECTURE.md and PLANNERS.md, found {pages:?}"
    );
    for page in &pages {
        check_file_links(page);
    }
}

#[test]
fn readme_references_the_architecture_recipes() {
    // The crate map must point into the architecture tour; if the tour's
    // recipe headings are renamed, this test and the anchor check above
    // fail together.
    let readme = std::fs::read_to_string(repo_root().join("README.md")).unwrap();
    for anchor in [
        "docs/ARCHITECTURE.md#adding-a-new-planner",
        "docs/ARCHITECTURE.md#adding-a-new-kernel",
        "docs/ARCHITECTURE.md#adding-a-new-model",
    ] {
        assert!(
            readme.contains(anchor),
            "README must link {anchor} so contributors find the recipes"
        );
    }
}

#[test]
fn serving_handbook_cross_links_are_bidirectional() {
    // README ↔ ARCHITECTURE ↔ PLANNERS ↔ SERVING: the serving
    // operations handbook must be reachable from all three entry
    // points, and must link back to all three.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).unwrap();
    let planners = std::fs::read_to_string(root.join("docs/PLANNERS.md")).unwrap();
    let serving = std::fs::read_to_string(root.join("docs/SERVING.md")).unwrap();
    assert!(
        readme.contains("docs/SERVING.md"),
        "README must link the serving handbook"
    );
    assert!(
        arch.contains("SERVING.md"),
        "ARCHITECTURE must link the serving handbook"
    );
    assert!(
        planners.contains("SERVING.md"),
        "PLANNERS must link the serving handbook"
    );
    assert!(
        serving.contains("ARCHITECTURE.md")
            && serving.contains("PLANNERS.md")
            && serving.contains("../README.md"),
        "the serving handbook must link back to ARCHITECTURE, PLANNERS, and the README"
    );
    // The operational spec the online tests lean on: one section per
    // mechanism. Whole-line matches so renames cannot hide.
    for heading in [
        "## Arrival profiles",
        "## Routing",
        "## Queues, SLOs, and shedding",
        "## Model hot-swap",
        "## Metric definitions",
        "## Worked walkthrough: `fleet_throughput --online`",
    ] {
        assert!(
            serving.lines().any(|l| l == heading),
            "SERVING.md must keep the `{heading}` section"
        );
    }
}

#[test]
fn split_handbook_cross_links_are_bidirectional() {
    // README ↔ ARCHITECTURE ↔ PLANNERS ↔ SPLIT: the split pipeline
    // handbook must be reachable from all three entry points, and must
    // link back to all three.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).unwrap();
    let planners = std::fs::read_to_string(root.join("docs/PLANNERS.md")).unwrap();
    let split = std::fs::read_to_string(root.join("docs/SPLIT.md")).unwrap();
    assert!(
        readme.contains("docs/SPLIT.md"),
        "README must link the split handbook"
    );
    assert!(
        arch.contains("SPLIT.md"),
        "ARCHITECTURE must link the split handbook"
    );
    assert!(
        planners.contains("SPLIT.md"),
        "PLANNERS must link the split handbook"
    );
    assert!(
        split.contains("ARCHITECTURE.md")
            && split.contains("PLANNERS.md")
            && split.contains("../README.md"),
        "the split handbook must link back to ARCHITECTURE, PLANNERS, and the README"
    );
    // The spec the split tests lean on: one section per mechanism.
    // Whole-line matches so renames cannot hide.
    for heading in [
        "## The partitioner",
        "## Link-model semantics",
        "## Execution and reporting",
        "## Serving against aggregate RAM",
        "## Worked example: `hires-split-only`",
        "## Verifying the claims",
    ] {
        assert!(
            split.lines().any(|l| l == heading),
            "SPLIT.md must keep the `{heading}` section"
        );
    }
    // And the planner handbook must keep its per-policy section for the
    // split policy alongside the original five.
    assert!(
        planners.lines().any(|l| l == "## vMCU-split"),
        "PLANNERS.md must keep the `## vMCU-split` section"
    );
}

#[test]
fn handbook_cross_links_are_bidirectional() {
    // README ↔ ARCHITECTURE ↔ PLANNERS: the planner handbook must be
    // reachable from both entry points, and must link back to both.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).unwrap();
    let planners = std::fs::read_to_string(root.join("docs/PLANNERS.md")).unwrap();
    assert!(
        readme.contains("docs/PLANNERS.md"),
        "README must link the planner handbook"
    );
    assert!(
        arch.contains("PLANNERS.md"),
        "ARCHITECTURE must link the planner handbook"
    );
    assert!(
        planners.contains("ARCHITECTURE.md") && planners.contains("../README.md"),
        "the handbook must link back to ARCHITECTURE and the README"
    );
    // One section per engine policy. Whole-line matches, so deleting
    // the `## vMCU` section cannot hide behind `## vMCU-fused`.
    for heading in [
        "## HMCOS",
        "## TinyEngine",
        "## vMCU",
        "## vMCU-fused",
        "## vMCU-patched",
        "## Which planner should I use",
    ] {
        assert!(
            planners.lines().any(|l| l == heading),
            "PLANNERS.md must keep the `{heading}` section"
        );
    }
}
