//! Documentation link checker: every relative markdown link in
//! `README.md` and `docs/ARCHITECTURE.md` must point at a file that
//! exists, and every `#anchor` must match a heading in the target — so
//! the architecture tour's anchors referenced from the README cannot
//! rot.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `[text](target)` link targets, skipping fenced code blocks.
fn markdown_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(end) = line[i + 2..].find(')') {
                    links.push(line[i + 2..i + 2 + end].to_owned());
                    i += 2 + end;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub-style heading slugs: lowercase, spaces to dashes, punctuation
/// dropped.
fn heading_anchors(text: &str) -> HashSet<String> {
    let mut anchors = HashSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let title = line.trim_start_matches('#').trim();
        let slug: String = title
            .chars()
            .filter_map(|c| {
                if c.is_ascii_alphanumeric() {
                    Some(c.to_ascii_lowercase())
                } else if c == ' ' || c == '-' {
                    Some('-')
                } else {
                    None
                }
            })
            .collect();
        anchors.insert(slug);
    }
    anchors
}

fn check_file_links(doc: &Path) {
    let text =
        std::fs::read_to_string(doc).unwrap_or_else(|e| panic!("reading {}: {e}", doc.display()));
    let base = doc.parent().expect("doc has a parent directory");
    for link in markdown_links(&text) {
        if link.contains("://") || link.starts_with("mailto:") {
            continue; // external links are out of scope for an offline check
        }
        let (path_part, anchor) = match link.split_once('#') {
            Some((p, a)) => (p, Some(a)),
            None => (link.as_str(), None),
        };
        let target = if path_part.is_empty() {
            doc.to_path_buf()
        } else {
            base.join(path_part)
        };
        assert!(
            target.exists(),
            "{}: broken link `{link}` (no such file {})",
            doc.display(),
            target.display()
        );
        if let Some(anchor) = anchor {
            let target_text = std::fs::read_to_string(&target)
                .unwrap_or_else(|e| panic!("reading {}: {e}", target.display()));
            let anchors = heading_anchors(&target_text);
            assert!(
                anchors.contains(anchor),
                "{}: link `{link}` names anchor `#{anchor}` missing from {} (have: {:?})",
                doc.display(),
                target.display(),
                anchors
            );
        }
    }
}

#[test]
fn readme_links_resolve() {
    check_file_links(&repo_root().join("README.md"));
}

#[test]
fn architecture_links_resolve() {
    let doc = repo_root().join("docs/ARCHITECTURE.md");
    assert!(doc.exists(), "docs/ARCHITECTURE.md must exist");
    check_file_links(&doc);
}

#[test]
fn readme_references_the_architecture_recipes() {
    // The crate map must point into the architecture tour; if the tour's
    // recipe headings are renamed, this test and the anchor check above
    // fail together.
    let readme = std::fs::read_to_string(repo_root().join("README.md")).unwrap();
    for anchor in [
        "docs/ARCHITECTURE.md#adding-a-new-planner",
        "docs/ARCHITECTURE.md#adding-a-new-kernel",
        "docs/ARCHITECTURE.md#adding-a-new-model",
    ] {
        assert!(
            readme.contains(anchor),
            "README must link {anchor} so contributors find the recipes"
        );
    }
}
