//! Workspace smoke test: the one-layer headline result of the paper.
//!
//! Figure 7's first case (`H/W80,C16,K16` on the 128 KB STM32-F411RE) is
//! the paper in miniature: the disjoint TinyEngine-policy plan needs more
//! RAM than the device has, while the vMCU segment-pool plan fits and the
//! kernel actually executes under it. If this test passes, the whole
//! build graph — tensor, sim, pool, solver, kernels, graph, plan, engine
//! facade — is wired and functional.

use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_plan::planner::named_pointwise_layers;
use vmcu::vmcu_tensor::random;

const DEVICE_RAM: usize = 128 * 1024;

#[test]
fn fig7_case_one_runs_under_vmcu_and_ooms_under_the_disjoint_baseline() {
    let case = zoo::fig7_cases()[0].clone();
    assert_eq!(case.name, "H/W80,C16,K16", "zoo case order changed");

    // The vMCU engine executes the layer end-to-end on the simulated
    // STM32-F411RE and the measured footprint fits the device.
    let layer = LayerDesc::Pointwise(case.params);
    let weights = LayerWeights::random(&layer, 1);
    let input = random::tensor_i8(&layer.in_shape(), 2);
    let engine = Engine::new(Device::stm32_f411re());
    let (output, report) = engine
        .run_layer(&case.name, &layer, &weights, &input)
        .expect("vMCU must deploy Figure 7 case 1");
    assert_eq!(output.shape(), &[80, 80, 16]);
    assert!(report.plan.fits, "vMCU plan must fit the 128 KB device");
    assert!(
        report.plan.measured_bytes <= DEVICE_RAM,
        "vMCU measured {} bytes exceeds 128 KB",
        report.plan.measured_bytes
    );

    // The disjoint (tensor-level, TinyEngine-policy) plan for the same
    // layer does not fit — the paper's out-of-memory case in Figure 7.
    let device = Device::stm32_f411re();
    let layers = named_pointwise_layers(&zoo::fig7_cases());
    let te = TinyEnginePlanner.plan(&layers, &device);
    assert!(
        !te.layers[0].fits,
        "disjoint baseline unexpectedly fits: {} bytes",
        te.layers[0].measured_bytes
    );
    assert!(
        te.layers[0].measured_bytes > DEVICE_RAM,
        "disjoint baseline should exceed 128 KB, measured {}",
        te.layers[0].measured_bytes
    );
    assert!(
        report.plan.measured_bytes < te.layers[0].measured_bytes,
        "vMCU must use strictly less RAM than the disjoint plan"
    );
}
