//! Property tests for the circular pool: arbitrary wrap-around access
//! patterns must preserve data, enforce liveness, and account the peak
//! correctly.

use proptest::prelude::*;
use vmcu::vmcu_pool::{PoolError, SegmentPool};
use vmcu::vmcu_sim::{Device, Machine};

fn setup(window: usize) -> (Machine, SegmentPool) {
    let m = Machine::new(Device::stm32_f411re());
    let pool = SegmentPool::new(&m, 0, window, 4).unwrap();
    (m, pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Data round-trips through any logical address, including negative
    /// addresses and wrap-around spans.
    #[test]
    fn round_trip_at_any_logical_address(
        window in 8usize..64,
        addr in -200i64..200,
        len in 1usize..8,
    ) {
        prop_assume!(len <= window);
        let (mut m, mut pool) = setup(window);
        let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37).wrapping_add(1)).collect();
        pool.store(&mut m, &data, addr).unwrap();
        let mut back = vec![0u8; len];
        pool.load(&mut m, addr, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    /// A producer/consumer stream through a window sized exactly at the
    /// high-water mark never clobbers: write k, read k, free k, forever.
    #[test]
    fn streaming_through_a_tight_window(
        window in 4usize..32,
        items in 1usize..100,
    ) {
        let (mut m, mut pool) = setup(window);
        for i in 0..items as i64 {
            pool.store(&mut m, &[i as u8], i).unwrap();
            let mut b = [0u8; 1];
            pool.load(&mut m, i, &mut b).unwrap();
            prop_assert_eq!(b[0], i as u8);
            pool.free(i, 1).unwrap();
        }
        prop_assert_eq!(pool.live_bytes(), 0);
        prop_assert_eq!(pool.peak_live_bytes(), 1);
    }

    /// Filling the window and writing one more byte always clobbers —
    /// never silent corruption.
    #[test]
    fn overfill_always_clobbers(window in 2usize..32) {
        let (mut m, mut pool) = setup(window);
        for i in 0..window as i64 {
            pool.store(&mut m, &[0xAB], i).unwrap();
        }
        prop_assert_eq!(pool.live_bytes(), window);
        let err = pool.store(&mut m, &[0xCD], window as i64).unwrap_err();
        let is_clobber = matches!(err, PoolError::Clobber { .. });
        prop_assert!(is_clobber, "expected clobber, got {:?}", err);
    }

    /// Peak accounting equals the maximum concurrent liveness of an
    /// arbitrary alloc/free interleaving.
    #[test]
    fn peak_matches_replayed_maximum(ops in prop::collection::vec(0u8..2, 1..40)) {
        let window = 64;
        let (mut m, mut pool) = setup(window);
        let mut next = 0i64;
        let mut frontier = 0i64;
        let mut live = 0usize;
        let mut peak = 0usize;
        for op in ops {
            if op == 0 && live < window {
                pool.store(&mut m, &[1], next).unwrap();
                next += 1;
                live += 1;
                peak = peak.max(live);
            } else if frontier < next {
                pool.free(frontier, 1).unwrap();
                frontier += 1;
                live -= 1;
            }
        }
        prop_assert_eq!(pool.live_bytes(), live);
        prop_assert_eq!(pool.peak_live_bytes(), peak);
    }
}
