//! Patch-based front-stage execution, end to end: the MCUNetV2-style
//! spatial bottleneck (`zoo::hires_front_stage`) must OOM under every
//! whole-tensor policy and deploy — bit-exact against the reference —
//! only under `PlannerKind::VmcuPatched`, with the halo recompute
//! charged honestly and the planning surfaces agreeing with execution.

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo};
use vmcu::vmcu_kernels::patched::{PatchGrid, PatchedFront};
use vmcu::vmcu_plan::patch;
use vmcu::vmcu_plan::peak_demand_bytes;
use vmcu::vmcu_tensor::random;

/// Deploy-once/infer-once through the new Session API.
fn run(
    engine: &Engine,
    g: &Graph,
    weights: &[LayerWeights],
    input: &Tensor<i8>,
) -> Result<InferenceReport, EngineError> {
    engine.deploy(g, weights)?.session().infer(input)
}

#[test]
fn hires_front_stage_ooms_under_every_whole_tensor_planner() {
    // The acceptance criterion: the first-stage activation (96·96·16 =
    // 147,456 bytes) exceeds the 128 KB device outright.
    let g = zoo::hires_front_stage();
    assert!(g.layers()[0].in_bytes() > 128 * 1024);
    let dev = Device::stm32_f411re();
    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::SlidingWindow),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
    ] {
        let err = Engine::new(dev.clone())
            .planner(kind)
            .check_fit(&g)
            .unwrap_err();
        assert!(
            matches!(err, EngineError::DoesNotFit { .. }),
            "{kind:?} must report the paper's fails-to-run outcome"
        );
    }
    assert!(
        Engine::new(dev)
            .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer))
            .check_fit(&g)
            .is_ok(),
        "patch-based execution must admit the spatial model"
    );
}

#[test]
fn patched_output_is_bit_identical_to_the_unpatched_reference() {
    let g = zoo::hires_front_stage();
    let weights = g.random_weights(101);
    let input = random::tensor_i8(&g.in_shape(), 102);
    let reference = exec::run_reference(&g, &weights, &input);
    let report = run(
        &Engine::new(Device::stm32_f411re()).planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer)),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    assert_eq!(&report.output, reference.last().unwrap());
    assert!(report.peak_ram_bytes() <= 128 * 1024);
}

#[test]
fn patched_plan_prices_execution_exactly() {
    // The admission-control surface and the engine's execution report
    // come from the same accounting; they can never disagree.
    let g = zoo::hires_front_stage();
    let dev = Device::stm32_f411re();
    let planner = PatchedPlanner::default();
    let demand = peak_demand_bytes(&planner, &g);
    let weights = g.random_weights(111);
    let input = random::tensor_i8(&g.in_shape(), 112);
    let report = run(
        &Engine::new(dev.clone()).planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer)),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    assert_eq!(report.peak_ram_bytes(), demand + dev.runtime_overhead_bytes);
}

#[test]
fn halo_recompute_is_charged_and_capped() {
    let g = zoo::hires_front_stage();
    let pplan = patch::plan(&g, IbScheme::RowBuffer, 0.5);
    assert!(pplan.is_patched());
    let front = pplan.front.as_ref().unwrap();
    assert!(
        front.patched_macs() > front.unpatched_macs(),
        "patching a padded front must recompute halo rows"
    );
    assert!(pplan.halo_overhead > 0.0);
    assert!(pplan.halo_overhead <= 0.5, "the overhead cap must hold");
}

#[test]
fn finer_grids_trade_cycles_for_peak_ram() {
    // The patch trade-off, measured: a finer grid must not raise the
    // front's peak slab footprint, and must cost at least as many MACs.
    let g = zoo::hires_front_stage();
    let ops: Vec<_> = g.layers()[..4]
        .iter()
        .map(|l| patch::patch_op(l).unwrap())
        .collect();
    let coarse = PatchedFront::new(ops.clone(), PatchGrid { gy: 2, gx: 2 }).unwrap();
    let fine = PatchedFront::new(ops, PatchGrid { gy: 4, gx: 4 }).unwrap();
    assert!(fine.patched_macs() > coarse.patched_macs());
    let slab_rows = |f: &PatchedFront| {
        let mut worst = 0usize;
        for ty in 0..f.grid().gy {
            for tx in 0..f.grid().gx {
                for s in f.patch_stages(ty, tx) {
                    worst = worst.max(s.slab.rows() * s.slab.cols());
                }
            }
        }
        worst
    };
    assert!(slab_rows(&fine) < slab_rows(&coarse));
}

#[test]
fn patched_falls_back_to_fused_pricing_when_patching_does_not_pay() {
    // demo_linear_net's front prefix is one small pointwise; no grid can
    // undercut the fused plan, so the patched planner must price (and
    // execute) identically to the fused planner.
    let g = zoo::demo_linear_net();
    let pplan = patch::plan(&g, IbScheme::RowBuffer, 0.5);
    assert!(!pplan.is_patched(), "tiny fronts must not patch");
    assert_eq!(
        peak_demand_bytes(&PatchedPlanner::default(), &g),
        peak_demand_bytes(&FusedPlanner::default(), &g),
    );
    let weights = g.random_weights(121);
    let input = random::tensor_i8(&g.in_shape(), 122);
    let dev = Device::stm32_f411re();
    let patched = run(
        &Engine::new(dev.clone()).planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer)),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    let fused = run(
        &Engine::new(dev).planner(PlannerKind::VmcuFused(IbScheme::RowBuffer)),
        &g,
        &weights,
        &input,
    )
    .unwrap();
    assert_eq!(patched.output, fused.output);
    assert_eq!(patched.peak_ram_bytes(), fused.peak_ram_bytes());
}

#[test]
fn seeded_random_fronts_stay_bit_exact_under_forced_grids() {
    // Force patching on small random nets (bypassing the benefit check)
    // to exercise border patches, strides, and odd extents beyond what
    // the planner would choose on its own.
    use vmcu::vmcu_kernels::patched::run_patched_front;
    use vmcu::vmcu_sim::Machine;
    for seed in 0..8 {
        let g = zoo::random_linear_net(seed, 4);
        let front_len = patch::patchable_prefix(&g);
        if front_len == 0 {
            continue;
        }
        let ops: Vec<_> = g.layers()[..front_len]
            .iter()
            .map(|l| patch::patch_op(l).unwrap())
            .collect();
        let weights = g.random_weights(seed ^ 0x5A);
        let input = random::tensor_i8(&g.in_shape(), seed ^ 0xA5);
        let reference = exec::run_reference(&g, &weights, &input);
        let expected_front = &reference[front_len - 1];
        for grid in [PatchGrid { gy: 2, gx: 2 }, PatchGrid { gy: 1, gx: 3 }] {
            let Ok(front) = PatchedFront::new(ops.clone(), grid) else {
                continue; // grid finer than this net's output
            };
            let mut m = Machine::new(Device::stm32_f767zi());
            let flash: Vec<usize> = g.layers()[..front_len]
                .iter()
                .zip(&weights)
                .map(|(_, w)| {
                    let bytes = match w {
                        LayerWeights::Pointwise(t)
                        | LayerWeights::Depthwise(t)
                        | LayerWeights::Conv2d(t) => t.as_bytes(),
                        _ => unreachable!("patchable prefix"),
                    };
                    m.host_program_flash(&bytes).unwrap()
                })
                .collect();
            let got = run_patched_front(&mut m, &front, &input, &flash).unwrap();
            assert_eq!(
                &got, expected_front,
                "seed {seed} grid {grid} front diverges"
            );
        }
    }
}
