//! Cross-crate integration: whole graphs planned, deployed, and executed
//! on the simulated MCU under every policy, checked against the reference
//! executor.

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo};
use vmcu::vmcu_tensor::random;

/// Deploy-once/infer-once through the new Session API.
fn run(
    engine: &Engine,
    g: &Graph,
    weights: &[LayerWeights],
    input: &Tensor<i8>,
) -> Result<InferenceReport, EngineError> {
    engine.deploy(g, weights)?.session().infer(input)
}

#[test]
fn demo_net_runs_identically_under_all_executors() {
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(100);
    let input = random::tensor_i8(&g.in_shape(), 101);
    let expected = exec::run_reference(&g, &weights, &input);
    let expected = expected.last().unwrap();

    let device = Device::stm32_f767zi();
    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::PixelWindow),
        PlannerKind::Vmcu(IbScheme::SlidingWindow),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
    ] {
        let report = run(
            &Engine::new(device.clone()).planner(kind),
            &g,
            &weights,
            &input,
        )
        .unwrap_or_else(|e| panic!("{kind:?} failed: {e}"));
        assert_eq!(&report.output, expected, "{kind:?} output mismatch");
    }
}

#[test]
fn vmcu_peak_ram_is_lowest_across_policies() {
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(5);
    let input = random::tensor_i8(&g.in_shape(), 6);
    let device = Device::stm32_f767zi();
    let peak = |kind| {
        run(
            &Engine::new(device.clone()).planner(kind),
            &g,
            &weights,
            &input,
        )
        .unwrap()
        .peak_ram_bytes()
    };
    let vm = peak(PlannerKind::Vmcu(IbScheme::RowBuffer));
    let te = peak(PlannerKind::TinyEngine);
    let hm = peak(PlannerKind::Hmcos);
    assert!(vm < te, "vMCU {vm} must beat TinyEngine {te}");
    assert!(te <= hm, "TinyEngine {te} must not exceed HMCOS {hm}");
}

#[test]
fn reports_expose_consistent_totals() {
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(7);
    let input = random::tensor_i8(&g.in_shape(), 8);
    let report = run(&Engine::new(Device::stm32_f767zi()), &g, &weights, &input).unwrap();
    let per_layer_ms: f64 = report.layers.iter().map(|l| l.exec.latency_ms).sum();
    assert!((report.latency_ms() - per_layer_ms).abs() < 1e-9);
    assert!(report.energy_mj() > 0.0);
    assert_eq!(
        report.peak_ram_bytes(),
        report
            .layers
            .iter()
            .map(|l| l.plan.measured_bytes)
            .max()
            .unwrap()
    );
    // Every layer fits by construction (run_layer rejects misfits).
    assert!(report.layers.iter().all(|l| l.plan.fits));
}

#[test]
fn oversized_layer_is_rejected_not_corrupted() {
    // A layer that cannot fit 128 KB under any policy.
    let layer = LayerDesc::Pointwise(PointwiseParams::new(128, 128, 16, 16, Requant::identity()));
    let weights = LayerWeights::random(&layer, 1);
    let input = random::tensor_i8(&layer.in_shape(), 2);
    let err = Engine::new(Device::stm32_f411re())
        .run_layer("too-big", &layer, &weights, &input)
        .unwrap_err();
    match err {
        EngineError::DoesNotFit {
            needed, available, ..
        } => {
            assert!(needed > available);
        }
        other => panic!("expected DoesNotFit, got {other}"),
    }
}

#[test]
fn every_vww_module_is_bit_exact_across_schemes() {
    let device = Device::stm32_f411re();
    for m in zoo::mcunet_5fps_vww().into_iter().take(4) {
        let layer = LayerDesc::Ib(m.params);
        let weights = LayerWeights::random(&layer, 9);
        let input = random::tensor_i8(&layer.in_shape(), 10);
        let mut outputs = Vec::new();
        for kind in [
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            PlannerKind::Vmcu(IbScheme::SlidingWindow),
            PlannerKind::TinyEngine,
        ] {
            let (out, _) = Engine::new(device.clone())
                .planner(kind)
                .run_layer(m.name, &layer, &weights, &input)
                .unwrap();
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1], "{}: scheme divergence", m.name);
        assert_eq!(outputs[0], outputs[2], "{}: baseline divergence", m.name);
    }
}

#[test]
fn chained_graph_runs_in_one_window_and_matches_reference() {
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(200);
    let input = random::tensor_i8(&g.in_shape(), 201);
    let expected = exec::run_reference(&g, &weights, &input);

    let engine = Engine::new(Device::stm32_f411re());
    let deployment = engine.deploy(&g, &weights).expect("demo net deploys");
    let (report, plan) = deployment
        .session()
        .infer_chained(&input)
        .expect("demo net chains on 128 KB");
    assert_eq!(
        deployment.chain_plan(),
        Some(&plan),
        "the executed chain plan is the memoized one"
    );
    assert_eq!(&report.output, expected.last().unwrap());

    // The single window must be far below the sum of all activations and
    // below the per-layer (re-staged) peak as well.
    let sum: usize = g
        .layers()
        .iter()
        .map(|l| l.in_bytes() + l.out_bytes())
        .sum();
    assert!(plan.window < sum);
    let per_layer = run(&engine, &g, &weights, &input).unwrap();
    assert!(plan.total_bytes() <= per_layer.peak_ram_bytes());
    // Every tensor's base is the previous output pointer: strictly
    // monotone decreasing by the per-layer distances.
    for (i, d) in plan.distances.iter().enumerate() {
        assert_eq!(plan.bases[i + 1], plan.bases[i] - d);
    }
}

#[test]
fn chained_graph_is_rejected_for_baseline_policies() {
    let g = zoo::demo_linear_net();
    let weights = g.random_weights(1);
    let input = random::tensor_i8(&g.in_shape(), 2);
    let err = Engine::new(Device::stm32_f767zi())
        .planner(PlannerKind::TinyEngine)
        .deploy(&g, &weights)
        .unwrap()
        .session()
        .infer_chained(&input)
        .unwrap_err();
    assert!(matches!(err, EngineError::Unsupported { .. }));
}
