//! Property tests for the static plan auditor (`vmcu-verify`).
//!
//! Two directions keep the auditor honest:
//!
//! * **Soundness on real plans** — every deployment the engine resolves
//!   for seeded random nets, under every planner kind, must certify
//!   clean. The auditor re-derives each execution distance two
//!   independent ways, so a pass here is a machine-checked proof, not a
//!   smoke test.
//! * **Non-vacuity under mutation** — corrupting a certified plan in any
//!   of the classic ways (shifted base, shrunk distance, dropped /
//!   duplicated / early free) must produce at least one violation. A
//!   checker that cannot fail proves nothing.

use proptest::prelude::*;
use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_kernels::params::FcParams;
use vmcu::vmcu_kernels::trace::exec_distance;
use vmcu::vmcu_plan::chain::plan_chain;
use vmcu_verify::{
    audit, audit_chain_plan, audit_schedule, canonical_frees, check_distance, layer_events,
    replay_layer, LayerSpec, Violation,
};

fn all_planner_kinds() -> Vec<PlannerKind> {
    vec![
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::PixelWindow),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
        PlannerKind::VmcuSplit {
            devices: 3,
            scheme: IbScheme::RowBuffer,
        },
        PlannerKind::VmcuReorder(IbScheme::RowBuffer),
    ]
}

/// A device with effectively unlimited RAM: isolates plan-arithmetic
/// checks from budget checks in the mutation tests.
fn roomy_device() -> Device {
    Device {
        ram_bytes: usize::MAX / 2,
        ..Device::stm32_f767zi()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every deployable (random linear net × planner kind) certifies
    /// clean, with distances actually cross-checked.
    #[test]
    fn auditor_certifies_random_linear_nets(seed in 0u64..1000, layers in 2usize..7) {
        let graph = zoo::random_linear_net(seed, layers);
        let weights = graph.random_weights(seed ^ 0x5EED);
        let mut audited = 0usize;
        for kind in all_planner_kinds() {
            let engine = Engine::new(Device::stm32_f767zi()).planner(kind);
            let Ok(dep) = engine.deploy(&graph, &weights) else { continue };
            let report = audit(&dep);
            prop_assert!(report.is_clean(), "seed {seed} × {}: {report}", kind.name());
            audited += 1;
        }
        prop_assert!(audited > 0, "seed {seed}: no planner deployed the net");
    }

    /// Same certification over branchy DAG nets (merge layers, multiple
    /// consumers — the schedule auditor's hard cases).
    #[test]
    fn auditor_certifies_random_dag_nets(seed in 0u64..1000, body in 3usize..6) {
        let graph = zoo::random_dag_net(seed, body);
        let weights = graph.random_weights(seed ^ 0xDA6);
        let mut audited = 0usize;
        for kind in all_planner_kinds() {
            let engine = Engine::new(Device::stm32_f767zi()).planner(kind);
            let Ok(dep) = engine.deploy(&graph, &weights) else { continue };
            let report = audit(&dep);
            prop_assert!(report.is_clean(), "seed {seed} × {}: {report}", kind.name());
            audited += 1;
        }
        prop_assert!(audited > 0, "seed {seed}: no planner deployed the net");
    }

    /// Mutation class: shrunk execution distance. At the kernel's true
    /// distance the layer replays clean and the distance check agrees;
    /// at distance − 1 both the distance cross-check and the byte replay
    /// must object.
    #[test]
    fn shrunk_distance_is_detected(m in 1usize..6, k in 1usize..12, n in 1usize..12) {
        let layer = LayerDesc::Dense(FcParams::new(m, k, n, Requant::identity()));
        let events = layer_events(&layer, IbScheme::RowBuffer);
        let in_len = layer.in_bytes();
        let out_len = layer.out_bytes();
        let d = exec_distance(in_len, events.iter().copied());

        prop_assert!(check_distance("fc", d, in_len, &events).is_empty());
        let shrunk = check_distance("fc", d - 1, in_len, &events);
        prop_assert!(
            shrunk.iter().any(|v| matches!(v, Violation::DistanceTooSmall { .. })),
            "distance {d}-1 must be flagged, got {shrunk:?}"
        );

        let window = (in_len + usize::try_from(d.max(0)).unwrap()).max(out_len).max(1);
        let clean = replay_layer(&LayerSpec {
            site: "fc", in_len, out_len, distance: d, window, events: &events,
        });
        prop_assert!(clean.is_empty(), "true distance must replay clean: {clean:?}");
        let clobbered = replay_layer(&LayerSpec {
            site: "fc", in_len, out_len, distance: d - 1, window, events: &events,
        });
        prop_assert!(
            clobbered.iter().any(|v| matches!(v, Violation::Clobber { .. })),
            "replay at distance - 1 must clobber, got {clobbered:?}"
        );
    }

    /// Mutation class: shifted tensor base in a chained plan. The base
    /// composition identity (and, for the compensated variant, the
    /// per-layer distance check) must fire.
    #[test]
    fn chain_base_shift_is_detected(seed in 0u64..1000, layers in 2usize..6, shift in 1i64..9) {
        let graph = zoo::random_linear_net(seed, layers);
        prop_assume!(graph.is_chain());
        let plan = plan_chain(&graph, IbScheme::RowBuffer);
        let device = roomy_device();
        let (clean, distances) = audit_chain_plan(&graph, &plan, IbScheme::RowBuffer, &device);
        prop_assert!(clean.is_empty(), "seed {seed}: unmutated plan must audit clean: {clean:?}");
        prop_assert!(distances > 0);

        // (a) Shift one interior base: breaks the composition identity.
        let mut shifted = plan.clone();
        let i = 1 + (seed as usize % (shifted.bases.len() - 1));
        shifted.bases[i] += shift;
        let (v, _) = audit_chain_plan(&graph, &shifted, IbScheme::RowBuffer, &device);
        prop_assert!(!v.is_empty(), "seed {seed}: shifted base {i} must be flagged");

        // (b) Shrink one distance and recompute bases so the identity
        // still holds: the per-layer distance cross-check must fire.
        let mut shrunk = plan.clone();
        let j = seed as usize % shrunk.distances.len();
        shrunk.distances[j] -= 1;
        for idx in 0..shrunk.distances.len() {
            shrunk.bases[idx + 1] = shrunk.bases[idx] - shrunk.distances[idx];
        }
        let (v, _) = audit_chain_plan(&graph, &shrunk, IbScheme::RowBuffer, &device);
        prop_assert!(
            v.iter().any(|x| matches!(x, Violation::DistanceTooSmall { .. } | Violation::Clobber { .. })),
            "seed {seed}: shrunk distance {j} must be flagged, got {v:?}"
        );
    }

    /// Mutation class: corrupted free lists. The canonical schedule
    /// audits clean; dropping, duplicating, or hoisting any free must
    /// each produce a violation.
    #[test]
    fn corrupted_free_lists_are_detected(seed in 0u64..1000, body in 3usize..6) {
        let graph = zoo::random_dag_net(seed, body);
        let n = graph.len();
        let order: Vec<usize> = (0..n).collect();
        let frees = canonical_frees(&graph, &order);
        let planner = VmcuPlanner::default();
        let costs: Vec<(usize, usize)> =
            graph.layers().iter().map(|l| planner.plan_layer(l)).collect();
        let device = roomy_device();

        let base = audit_schedule(&graph, &order, &frees, &costs, &device);
        prop_assert!(base.violations.is_empty(), "seed {seed}: canonical frees must audit clean: {:?}", base.violations);

        let (step, slot) = frees
            .iter()
            .enumerate()
            .find_map(|(k, f)| (!f.is_empty()).then_some((k, 0usize)))
            .expect("every net frees something");

        // Dropped free: the tensor outlives the schedule.
        let mut dropped = frees.clone();
        dropped[step].remove(slot);
        let v = audit_schedule(&graph, &order, &dropped, &costs, &device).violations;
        prop_assert!(
            v.iter().any(|x| matches!(x, Violation::Leak { .. })),
            "seed {seed}: dropped free must leak, got {v:?}"
        );

        // Duplicated free.
        let mut duped = frees.clone();
        let t = duped[step][slot];
        duped[step].push(t);
        let v = audit_schedule(&graph, &order, &duped, &costs, &device).violations;
        prop_assert!(
            v.iter().any(|x| matches!(x, Violation::DoubleFree { .. })),
            "seed {seed}: duplicated free must be flagged, got {v:?}"
        );

        // Early free: hoist one step (or before production) — the last
        // consumer then reads a freed tensor.
        if step > 0 {
            let mut early = frees.clone();
            let t = early[step].remove(slot);
            early[step - 1].push(t);
            let v = audit_schedule(&graph, &order, &early, &costs, &device).violations;
            prop_assert!(
                v.iter().any(|x| matches!(
                    x,
                    Violation::UseAfterFree { .. } | Violation::DoubleFree { .. }
                )),
                "seed {seed}: early free must be flagged, got {v:?}"
            );
        }
    }
}
