//! End-to-end DAG pipeline: the branchy zoo deploys and runs bit-exact
//! against the reference executor under the default walk and the
//! searched reorder, the reorder-only model OOMs under **every** other
//! policy yet fits under `PlannerKind::VmcuReorder`, repeated inference
//! on one session replays the memoized plan with zero replanning, and
//! the chain-only fast paths reject DAG deployments with typed errors
//! instead of silently mis-executing.

use vmcu::prelude::*;
use vmcu::vmcu_graph::{exec, zoo};
use vmcu::vmcu_plan::telemetry;
use vmcu::vmcu_tensor::random;

fn infer_under(
    kind: PlannerKind,
    g: &vmcu::vmcu_graph::Graph,
    weights: &[LayerWeights],
    input: &vmcu::vmcu_tensor::Tensor<i8>,
) -> InferenceReport {
    Engine::new(Device::stm32_f767zi())
        .planner(kind)
        .deploy(g, weights)
        .and_then(|d| d.session().infer(input))
        .unwrap_or_else(|e| panic!("{} under {kind:?}: {e}", g.name))
}

#[test]
fn branchy_zoo_is_bit_exact_under_default_and_reordered_walks() {
    for g in zoo::branchy_zoo() {
        let weights = g.random_weights(7);
        let input = random::tensor_i8(&g.in_shape(), 8);
        let reference = exec::run_reference(&g, &weights, &input);
        let expected = reference.last().unwrap();
        let default = infer_under(PlannerKind::Vmcu(IbScheme::RowBuffer), &g, &weights, &input);
        let reordered = infer_under(
            PlannerKind::VmcuReorder(IbScheme::RowBuffer),
            &g,
            &weights,
            &input,
        );
        assert_eq!(
            &default.output, expected,
            "{}: default walk diverges from reference",
            g.name
        );
        assert_eq!(
            &reordered.output, expected,
            "{}: reordered walk diverges from reference",
            g.name
        );
        // The reorder policy's bottleneck never exceeds the default's.
        assert!(
            reordered.peak_ram_bytes() <= default.peak_ram_bytes(),
            "{}: reordered peak {} > default peak {}",
            g.name,
            reordered.peak_ram_bytes(),
            default.peak_ram_bytes()
        );
    }
}

#[test]
fn branchy_oom_net_deploys_only_under_the_reorder_policy() {
    let g = zoo::branchy_oom_net();
    let weights = g.random_weights(81);
    let input = random::tensor_i8(&g.in_shape(), 82);
    let dev = Device::stm32_f411re();
    for kind in [
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::SlidingWindow),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
        PlannerKind::VmcuSplit {
            devices: 8,
            scheme: IbScheme::RowBuffer,
        },
    ] {
        let err = Engine::new(dev.clone())
            .planner(kind)
            .deploy(&g, &weights)
            .unwrap_err();
        assert!(
            matches!(err, EngineError::DoesNotFit { .. }),
            "{kind:?} must OOM: the default order holds both fat branches co-resident"
        );
    }
    let deployment = Engine::new(dev)
        .planner(PlannerKind::VmcuReorder(IbScheme::RowBuffer))
        .deploy(&g, &weights)
        .unwrap();
    // The memoized order retires one branch before starting the other.
    let order = deployment.order_plan().expect("reorder memoizes its order");
    assert!(order.improved(), "the search must beat the default order");
    assert_ne!(order.order, vec![0, 1, 2, 3, 4]);
    let report = deployment.session().infer(&input).unwrap();
    let reference = exec::run_reference(&g, &weights, &input);
    assert_eq!(&report.output, reference.last().unwrap());
    assert!(report.peak_ram_bytes() <= 128 * 1024);
}

#[test]
fn session_reuse_replays_the_memoized_order_with_zero_replanning() {
    let g = zoo::branchy_oom_net();
    let weights = g.random_weights(91);
    let input = random::tensor_i8(&g.in_shape(), 92);
    let deployment = Engine::new(Device::stm32_f411re())
        .planner(PlannerKind::VmcuReorder(IbScheme::RowBuffer))
        .deploy(&g, &weights)
        .unwrap();
    let mut session = deployment.session();
    let first = session.infer(&input).unwrap();
    let before = telemetry::plan_calls();
    for _ in 0..3 {
        let again = session.infer(&input).unwrap();
        // Bit-identical replay: output and every simulated counter.
        assert_eq!(again.output, first.output);
        assert_eq!(again.layers.len(), first.layers.len());
        for (a, b) in again.layers.iter().zip(&first.layers) {
            assert_eq!(a.exec.counters, b.exec.counters);
            assert_eq!(a.plan, b.plan);
        }
    }
    assert_eq!(
        telemetry::plan_calls(),
        before,
        "inference after deploy must never replan"
    );
    assert_eq!(session.inferences(), 4);
}

#[test]
fn chained_execution_rejects_dags_with_a_typed_error() {
    let g = zoo::mbv2_residual_dag();
    let weights = g.random_weights(11);
    let input = random::tensor_i8(&g.in_shape(), 12);
    let deployment = Engine::new(Device::stm32_f767zi())
        .deploy(&g, &weights)
        .unwrap();
    // The single-window chain plan is absent on a DAG deployment …
    assert!(deployment.chain_plan().is_none());
    // … and the chained entry point refuses rather than mis-executing.
    let err = deployment
        .session()
        .infer_chained(&input)
        .map(|_| ())
        .expect_err("chained execution must reject a branchy DAG");
    assert!(matches!(
        err,
        EngineError::Unsupported {
            kind: "chained DAG",
            ..
        }
    ));
}

#[test]
fn chain_only_policies_drop_their_plans_and_fall_back_on_dags() {
    let g = zoo::two_head_net();
    let weights = g.random_weights(21);
    let input = random::tensor_i8(&g.in_shape(), 22);
    let expected = exec::run_reference(&g, &weights, &input);
    let expected = expected.last().unwrap();
    let dev = Device::stm32_f767zi();

    // Fused: no fusion grouping on a branchy DAG.
    let fused = Engine::new(dev.clone())
        .planner(PlannerKind::VmcuFused(IbScheme::RowBuffer))
        .deploy(&g, &weights)
        .unwrap();
    assert!(fused.fusion_plan().is_none());
    assert_eq!(&fused.session().infer(&input).unwrap().output, expected);

    // Patched: no patchable spatial prefix on a branchy DAG.
    let patched = Engine::new(dev.clone())
        .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer))
        .deploy(&g, &weights)
        .unwrap();
    assert!(patched.patch_plan().is_none());
    assert_eq!(&patched.session().infer(&input).unwrap().output, expected);

    // Split: the layer-wise partitioner degrades to one stage, so the
    // deployment carries no split plan and runs on a single device.
    let split = Engine::new(dev)
        .planner(PlannerKind::VmcuSplit {
            devices: 4,
            scheme: IbScheme::RowBuffer,
        })
        .deploy(&g, &weights)
        .unwrap();
    assert!(split.split_plan().is_none());
    assert_eq!(&split.session().infer(&input).unwrap().output, expected);
}
