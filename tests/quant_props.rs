//! Property tests for the quantization substrate: the requantization
//! arithmetic every executor shares must be monotone, saturating, and
//! scale-faithful for arbitrary parameters — a wrong epilogue would
//! silently skew every accuracy-preservation claim.

use proptest::prelude::*;
use vmcu::vmcu_tensor::{quant::sat8, random, reference, Requant, Tensor, NO_CLAMP};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Requantization is monotone non-decreasing in the accumulator.
    #[test]
    fn requant_is_monotone(
        scale_num in 1u32..4096,
        zp in -32i32..32,
        a in -100_000i32..100_000,
        b in -100_000i32..100_000,
    ) {
        let rq = Requant::from_scale(f64::from(scale_num) / 4096.0, zp);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(rq.apply(lo) <= rq.apply(hi));
    }

    /// The fixed-point approximation tracks the real scale to within one
    /// output step.
    #[test]
    fn requant_tracks_real_scale(
        scale_num in 1u32..4096,
        acc in -50_000i32..50_000,
    ) {
        let scale = f64::from(scale_num) / 4096.0;
        let rq = Requant::from_scale(scale, 0);
        let ideal = sat8((f64::from(acc) * scale).round() as i64);
        let got = rq.apply(acc);
        prop_assert!(
            (i32::from(got) - i32::from(ideal)).abs() <= 1,
            "acc {acc} scale {scale}: got {got}, ideal {ideal}"
        );
    }

    /// Saturation clamps exactly at the int8 boundary.
    #[test]
    fn sat8_is_a_clamp(v in -1_000_000i64..1_000_000) {
        let s = sat8(v);
        prop_assert_eq!(i64::from(s), v.clamp(-128, 127));
    }

    /// Zero weights reduce every operator to its (clamped) zero point —
    /// the reference operators share one epilogue.
    #[test]
    fn zero_weights_yield_zero_point(
        h in 2usize..6,
        c in 1usize..5,
        k in 1usize..5,
        zp in -20i32..20,
    ) {
        let rq = Requant::from_scale(0.5, zp);
        let input = random::tensor_i8(&[h, h, c], 1);
        let w = Tensor::from_vec(&[c, k], vec![0i8; c * k]);
        let out = reference::pointwise(&input, &w, None, 1, rq, NO_CLAMP);
        let expect = rq.apply(0);
        prop_assert!(out.data().iter().all(|&v| v == expect));
    }

    /// The residual add commutes and saturates symmetrically.
    #[test]
    fn add_commutes(len in 1usize..64, s1 in 0u64..50, s2 in 50u64..100) {
        let a = random::tensor_i8(&[len], s1);
        let b = random::tensor_i8(&[len], s2);
        prop_assert_eq!(reference::add(&a, &b), reference::add(&b, &a));
    }
}
