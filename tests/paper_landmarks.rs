//! The paper's quantitative landmarks, asserted as fast planning-only
//! integration tests (the full tables live in the `vmcu-bench` binaries).

use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_plan::planner::{named_ib_layers, named_pointwise_layers};
use vmcu::vmcu_solver::{enumerate, FootprintProblem};

/// Figure 1(c): 7 segments instead of 10 for the FC example.
#[test]
fn figure1_motivation() {
    let sol = enumerate::solve(&FootprintProblem::gemm(2, 2, 3));
    assert_eq!(sol.footprint, 7);
    assert_eq!(sol.min_distance, 1);
}

/// §7.2 / Figure 7: reduction band 12%-49.5%, OOM cases 1, 2, 4.
#[test]
fn figure7_bands_and_oom() {
    let device = Device::stm32_f411re();
    let layers = named_pointwise_layers(&zoo::fig7_cases());
    let te = TinyEnginePlanner.plan(&layers, &device);
    let vm = VmcuPlanner::default().plan(&layers, &device);
    for (i, (t, v)) in te.layers.iter().zip(&vm.layers).enumerate() {
        let r = 1.0 - v.measured_bytes as f64 / t.measured_bytes as f64;
        assert!(
            (0.10..=0.52).contains(&r),
            "case {}: reduction {r:.3} outside the paper band",
            i + 1
        );
        assert!(v.fits, "vMCU must deploy case {}", i + 1);
    }
    assert!(!te.layers[0].fits && !te.layers[1].fits && !te.layers[3].fits);
    assert!(te.layers[2].fits);
}

/// §7.3 / Figure 9: bottlenecks 36.0 / 48.8 / 13.9 KB, reduction 61.5%.
#[test]
fn figure9_bottlenecks() {
    let device = Device::stm32_f411re();
    let layers = named_ib_layers(&zoo::mcunet_5fps_vww());
    let te = TinyEnginePlanner.plan(&layers, &device).bottleneck_bytes() as f64 / 1000.0;
    let hm = HmcosPlanner.plan(&layers, &device).bottleneck_bytes() as f64 / 1000.0;
    let vm = VmcuPlanner::default()
        .plan(&layers, &device)
        .bottleneck_bytes() as f64
        / 1000.0;
    assert!((32.4..=39.6).contains(&te), "TinyEngine {te:.1} KB");
    assert!((43.9..=53.7).contains(&hm), "HMCOS {hm:.1} KB");
    assert!((11.8..=16.0).contains(&vm), "vMCU {vm:.1} KB");
    let cut = 1.0 - vm / te;
    assert!((0.515..=0.715).contains(&cut), "reduction {cut:.3}");
}

/// §7.3 / Figure 10: TinyEngine bottleneck at B2 with A+B = 247,808 bytes;
/// vMCU ~102.7 KB at B1; only vMCU deploys on the 128 KB device.
#[test]
fn figure10_bottlenecks_and_deployability() {
    let layers = named_ib_layers(&zoo::mcunet_320kb_imagenet());
    let b2 = &zoo::mcunet_320kb_imagenet()[1].params;
    assert_eq!(b2.in_bytes() + b2.mid_bytes(), 247_808);

    let f767 = Device::stm32_f767zi();
    let te = TinyEnginePlanner.plan(&layers, &f767);
    assert_eq!(te.layers[te.bottleneck()].name, "B2");
    let vm = VmcuPlanner::default().plan(&layers, &f767);
    assert_eq!(vm.layers[vm.bottleneck()].name, "B1");
    let cut = 1.0 - vm.bottleneck_bytes() as f64 / te.bottleneck_bytes() as f64;
    assert!((0.486..=0.686).contains(&cut), "reduction {cut:.3}");

    let f411 = Device::stm32_f411re();
    assert!(VmcuPlanner::default().plan(&layers, &f411).deployable());
    assert!(!TinyEnginePlanner.plan(&layers, &f411).deployable());
    assert!(!HmcosPlanner.plan(&layers, &f411).deployable());
}

/// §7.4 / Figures 11-12: headroom above 1.05x for every module.
#[test]
fn figure11_12_headroom_positive() {
    use vmcu::vmcu_plan::headroom::{max_channel_scale, max_image_scale, tinyengine_budget};
    let planner = VmcuPlanner::default();
    for m in zoo::mcunet_5fps_vww() {
        let budget = tinyengine_budget(&m.params);
        assert!(
            max_image_scale(&m.params, &planner, budget) > 1.05,
            "{}",
            m.name
        );
        assert!(
            max_channel_scale(&m.params, &planner, budget) > 1.05,
            "{}",
            m.name
        );
    }
}

/// The single-layer benefit is bounded by 50% (§5.2) — the fused modules
/// are the only way past it.
#[test]
fn single_layer_reduction_bounded_by_half() {
    let device = Device::stm32_f767zi();
    let layers = named_pointwise_layers(&zoo::fig7_cases());
    let te = TinyEnginePlanner.plan(&layers, &device);
    let vm = VmcuPlanner::default().plan(&layers, &device);
    for (t, v) in te.layers.iter().zip(&vm.layers) {
        let r = 1.0 - v.planned_bytes() as f64 / t.planned_bytes() as f64;
        assert!(
            r < 0.52,
            "{}: single-layer reduction {r:.3} breaks the bound",
            t.name
        );
    }
    // Fused modules go beyond 50% (Figure 9's 61.5%): checked in
    // figure9_bottlenecks above via the bottleneck cut.
}
