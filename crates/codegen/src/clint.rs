//! A mini static lint over the emitted C.
//!
//! [`cgen`](crate::cgen) emits kernels whose buffer accesses are all
//! either direct indexing (`acc[(k) + _i]`) or pointer-offset calls into
//! the runtime helpers (`vmcu_dot(acc + 4, ...)`). Both carry enough
//! text-level structure to audit without a C parser: buffer declarations
//! give capacities, `const int64_t k = 3;` bindings from full unrolling
//! give an environment of known constants, and every helper has a fixed
//! access footprint (a `vmcu_dot` with `ki`/`ni` reads `ki` bytes of `a`,
//! `ki*ni` of `b` and writes `ni` words of `acc`).
//!
//! [`lint_c`] replays those accesses and flags any whose resolved offset
//! plus footprint escapes the declared capacity. The analysis is
//! deliberately conservative: an offset containing a symbol with no
//! constant binding in scope is skipped, never guessed — the lint has no
//! false positives by construction, so the compile test can require a
//! clean report before invoking the C compiler.

use std::fmt;

/// One out-of-bounds (or malformed) access found in emitted C.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CLintFinding {
    /// 1-based line number in the linted source.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for CLintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// A declared buffer in some scope: element count and element width.
#[derive(Debug, Clone, Copy)]
struct Buf {
    elems: i64,
    elem_bytes: i64,
}

impl Buf {
    fn bytes(self) -> i64 {
        self.elems * self.elem_bytes
    }
}

// ---- tiny constant-expression evaluator -----------------------------------

/// Evaluates an emitted-C integer expression (`+`, `-`, `*`, parens,
/// `VMCU_MIN`/`VMCU_MAX`, integer literals, identifiers) against an
/// environment of known constants. Returns `None` for anything it cannot
/// prove constant — unknown identifiers, division, function calls.
fn eval_expr(src: &str, env: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        env,
    };
    let v = p.expr()?;
    if p.pos == tokens.len() {
        Some(v)
    } else {
        None
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Num(i64),
    Ident(String),
    Plus,
    Minus,
    Star,
    LParen,
    RParen,
    Comma,
}

fn tokenize(src: &str) -> Option<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                out.push(Tok::Num(src[start..i].parse().ok()?));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_owned()));
            }
            // Division, shifts, casts, anything else: not handled — bail.
            _ => return None,
        }
    }
    Some(out)
}

struct Parser<'a> {
    tokens: &'a [Tok],
    pos: usize,
    env: &'a dyn Fn(&str) -> Option<i64>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn expr(&mut self) -> Option<i64> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    acc += self.term()?;
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    acc -= self.term()?;
                }
                _ => return Some(acc),
            }
        }
    }

    fn term(&mut self) -> Option<i64> {
        let mut acc = self.atom()?;
        while matches!(self.peek(), Some(Tok::Star)) {
            self.pos += 1;
            acc *= self.atom()?;
        }
        Some(acc)
    }

    fn atom(&mut self) -> Option<i64> {
        match self.tokens.get(self.pos)?.clone() {
            Tok::Num(v) => {
                self.pos += 1;
                Some(v)
            }
            Tok::Minus => {
                self.pos += 1;
                Some(-self.atom()?)
            }
            Tok::LParen => {
                self.pos += 1;
                let v = self.expr()?;
                matches!(self.peek(), Some(Tok::RParen)).then(|| self.pos += 1)?;
                Some(v)
            }
            Tok::Ident(name) => {
                self.pos += 1;
                if matches!(self.peek(), Some(Tok::LParen)) {
                    // VMCU_MIN / VMCU_MAX calls; anything else is opaque.
                    self.pos += 1;
                    let a = self.expr()?;
                    matches!(self.peek(), Some(Tok::Comma)).then(|| self.pos += 1)?;
                    let b = self.expr()?;
                    matches!(self.peek(), Some(Tok::RParen)).then(|| self.pos += 1)?;
                    match name.as_str() {
                        "VMCU_MIN" => Some(a.min(b)),
                        "VMCU_MAX" => Some(a.max(b)),
                        _ => None,
                    }
                } else {
                    (self.env)(&name)
                }
            }
            _ => None,
        }
    }
}

// ---- line-level parsing helpers -------------------------------------------

/// Splits `args` at top-level commas (not inside parens or brackets).
fn split_args(args: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in args.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(args[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(args[start..].trim());
    out
}

/// Parses a pointer argument of the form `[(cast)] name + offset` (the
/// shape every helper call uses), returning the buffer name and offset
/// expression. A bare `name` means offset `0`.
fn parse_ptr_arg(arg: &str) -> Option<(&str, &str)> {
    let mut rest = arg.trim();
    // Strip leading casts like `(int8_t *)` / `(const int8_t *)`.
    while rest.starts_with('(') {
        let close = rest.find(')')?;
        if !rest[1..close].contains('*') {
            break; // parenthesized expression, not a cast
        }
        rest = rest[close + 1..].trim_start();
    }
    let name_end = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    let name = &rest[..name_end];
    if name.is_empty() {
        return None;
    }
    let after = rest[name_end..].trim_start();
    if after.is_empty() {
        Some((name, "0"))
    } else {
        after.strip_prefix('+').map(|off| (name, off.trim()))
    }
}

/// Extracts the argument list of the first call to `func` on `line`.
fn call_args<'a>(line: &'a str, func: &str) -> Option<&'a str> {
    let start = line.find(&format!("{func}("))? + func.len() + 1;
    let mut depth = 1i32;
    for (i, c) in line[start..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

// ---- the lint itself ------------------------------------------------------

struct Scope {
    bufs: Vec<(String, Buf)>,
    consts: Vec<(String, i64)>,
}

struct Linter {
    scopes: Vec<Scope>,
    findings: Vec<CLintFinding>,
}

impl Linter {
    fn lookup_buf(&self, name: &str) -> Option<Buf> {
        self.scopes.iter().rev().find_map(|s| {
            s.bufs
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|&(_, b)| b)
        })
    }

    fn lookup_const(&self, name: &str) -> Option<i64> {
        self.scopes.iter().rev().find_map(|s| {
            s.consts
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        })
    }

    fn flag(&mut self, line: usize, message: String) {
        self.findings.push(CLintFinding { line, message });
    }

    /// Checks one access spanning `span = (offset, length)` units into
    /// `name` (`cap` = capacity in the same units).
    fn check_span(
        &mut self,
        line_no: usize,
        what: &str,
        name: &str,
        span: (Option<i64>, Option<i64>),
        cap: i64,
        unit: &str,
    ) {
        let (Some(off), Some(len)) = span else {
            return; // symbolic — conservative skip
        };
        if off < 0 || off + len > cap {
            self.flag(
                line_no,
                format!(
                    "{what}: access of {len} {unit}(s) at offset {off} into `{name}` \
                     exceeds its {cap} {unit}(s)"
                ),
            );
        }
    }
}

/// Lints emitted C (a single kernel or a whole library) for buffer
/// accesses provably out of bounds of their declarations. Returns one
/// finding per bad access; an empty result means every *resolvable*
/// access is in bounds (symbolic offsets are skipped, not validated).
pub fn lint_c(src: &str) -> Vec<CLintFinding> {
    let mut l = Linter {
        scopes: vec![Scope {
            bufs: Vec::new(),
            consts: Vec::new(),
        }],
        findings: Vec::new(),
    };

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();

        // Scope exit first: a bare `}` (possibly with trailing text) pops.
        if line.starts_with('}') && l.scopes.len() > 1 {
            l.scopes.pop();
        }

        lint_line(&mut l, line_no, line);

        // Scope entry: net unmatched `{` on the line opens a scope. The
        // emitter never puts `{` and its matching `}` on different nesting
        // paths within one line, so counting is exact.
        let opens = raw.matches('{').count();
        let closes = raw.matches('}').count() - usize::from(line.starts_with('}'));
        for _ in closes..opens {
            l.scopes.push(Scope {
                bufs: Vec::new(),
                consts: Vec::new(),
            });
        }
        for _ in opens..closes {
            if l.scopes.len() > 1 {
                l.scopes.pop();
            }
        }
    }
    l.findings
}

fn const_env(l: &Linter) -> impl Fn(&str) -> Option<i64> + '_ {
    move |n| l.lookup_const(n)
}

/// Environment for index expressions inside a `for _i` one-liner: `_i`
/// is bound to its maximal value (last iteration).
fn index_env(l: &Linter, i_bound: Option<i64>) -> impl Fn(&str) -> Option<i64> + '_ {
    move |n| {
        if n == "_i" {
            i_bound.map(|b| b - 1)
        } else {
            l.lookup_const(n)
        }
    }
}

#[allow(clippy::too_many_lines)]
fn lint_line(l: &mut Linter, line_no: usize, line: &str) {
    // Buffer declarations: `int8_t name[N];` / `int32_t name[N];`. A
    // declaration line carries no access, so it is consumed whole — the
    // index scanner below must not mistake `name[N]` for an access.
    for (ty, elem_bytes) in [("int8_t ", 1i64), ("int32_t ", 4i64)] {
        if let Some(rest) = line.strip_prefix(ty) {
            if let Some((name, tail)) = rest.split_once('[') {
                if let Some((len, after)) = tail.split_once(']') {
                    if after.trim() == ";" {
                        if let Ok(elems) = len.trim().parse::<i64>() {
                            let name = name.trim().to_owned();
                            l.scopes
                                .last_mut()
                                .expect("scope stack never empty")
                                .bufs
                                .push((name, Buf { elems, elem_bytes }));
                            return;
                        }
                    }
                }
            }
        }
    }

    // Constant bindings: `const int64_t k = 3;` and `int64_t t = <expr>;`.
    for prefix in ["const int64_t ", "int64_t "] {
        if let Some(rest) = line.strip_prefix(prefix) {
            if let Some((name, val)) = rest.split_once('=') {
                let name = name.trim();
                if let Some(expr) = val.trim().strip_suffix(';') {
                    if let Some(v) = eval_expr(expr, &|n| l.lookup_const(n)) {
                        l.scopes
                            .last_mut()
                            .expect("scope stack never empty")
                            .consts
                            .push((name.to_owned(), v));
                    }
                }
                break; // `const int64_t` must not also match `int64_t`
            }
        }
    }

    // A `for (int32_t _i = 0; _i < N; ++_i) ...` one-liner bounds `_i`:
    // the worst-case index uses `_i = N - 1` (offsets are affine with
    // non-negative `_i` coefficient, so the last iteration is maximal).
    let mut i_bound: Option<i64> = None;
    if let Some(rest) = line.strip_prefix("for (int32_t _i = 0; _i < ") {
        if let Some((n, _)) = rest.split_once(';') {
            i_bound = eval_expr(n, &const_env(l));
        }
    }

    // Direct indexing: every `name[expr]` where `name` is a known buffer.
    let mut rest = line;
    while let Some(br) = rest.find('[') {
        let head = &rest[..br];
        let name_start = head
            .rfind(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .map_or(0, |p| p + 1);
        let name = &head[name_start..];
        let mut depth = 1i32;
        let mut end = None;
        for (i, c) in rest[br + 1..].char_indices() {
            match c {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(br + 1 + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        if let Some(buf) = l.lookup_buf(name) {
            let idx = eval_expr(&rest[br + 1..end], &index_env(l, i_bound));
            l.check_span(line_no, "index", name, (idx, Some(1)), buf.elems, "element");
        }
        rest = &rest[end + 1..];
    }

    // Helper calls with known access footprints. Offsets on byte-typed
    // pointers are in bytes; `vmcu_dot`'s `acc` and `vmcu_broadcast`'s
    // `dst` are `int32_t *`, so those offsets are in words.
    for func in ["vmcu_ram_load", "vmcu_ram_store", "vmcu_flash_load"] {
        if let Some(args) = call_args(line, func) {
            let args = split_args(args);
            if args.len() == 3 {
                if let Some((name, off)) = parse_ptr_arg(args[0]) {
                    if let Some(buf) = l.lookup_buf(name) {
                        let off = eval_expr(off, &const_env(l));
                        let len = eval_expr(args[2], &const_env(l));
                        l.check_span(line_no, func, name, (off, len), buf.bytes(), "byte");
                    }
                }
            }
        }
    }
    if let Some(args) = call_args(line, "vmcu_dot") {
        let args = split_args(args);
        if args.len() == 5 {
            let ki = eval_expr(args[3], &const_env(l));
            let ni = eval_expr(args[4], &const_env(l));
            for (arg, len, unit_words) in [
                (args[0], ni, true),                              // acc: ni words written
                (args[1], ki, false),                             // a: ki bytes read
                (args[2], ki.zip(ni).map(|(k, n)| k * n), false), // b: ki*ni bytes
            ] {
                if let Some((name, off)) = parse_ptr_arg(arg) {
                    if let Some(buf) = l.lookup_buf(name) {
                        let off = eval_expr(off, &const_env(l));
                        let (cap, unit) = if unit_words {
                            (buf.elems, "word")
                        } else {
                            (buf.bytes(), "byte")
                        };
                        l.check_span(line_no, "vmcu_dot", name, (off, len), cap, unit);
                    }
                }
            }
        }
    }
    if let Some(args) = call_args(line, "vmcu_broadcast") {
        let args = split_args(args);
        if args.len() == 3 {
            if let Some((name, off)) = parse_ptr_arg(args[0]) {
                if let Some(buf) = l.lookup_buf(name) {
                    let off = eval_expr(off, &const_env(l));
                    let len = eval_expr(args[2], &const_env(l));
                    l.check_span(
                        line_no,
                        "vmcu_broadcast",
                        name,
                        (off, len),
                        buf.elems,
                        "word",
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_evaluator_handles_emitted_shapes() {
        let env = |n: &str| (n == "k").then_some(3i64);
        assert_eq!(eval_expr("(k * 4)", &env), Some(12));
        assert_eq!(eval_expr("((k + 1) * 2) - 3", &env), Some(5));
        assert_eq!(eval_expr("VMCU_MIN(k, 2)", &env), Some(2));
        assert_eq!(eval_expr("-4 + k", &env), Some(-1));
        assert_eq!(eval_expr("unknown + 1", &env), None);
        assert_eq!(eval_expr("k / 2", &env), None); // division is opaque
    }

    #[test]
    fn clean_kernel_lints_clean() {
        let src = "\
void f(int64_t in_base) {
  int32_t acc[4];
  int8_t a[8];
  vmcu_ram_load((int8_t *)a + 0, in_base, 8);
  {
    const int64_t k = 1;
    vmcu_dot(acc + 0, (const int8_t *)a + (k * 4), (const int8_t *)a + 0, 4, 1);
  }
  for (int32_t _i = 0; _i < 4; ++_i) acc[_i] = 0;
  vmcu_broadcast(acc + 0, 7, 4);
}
";
        assert_eq!(lint_c(src), Vec::new());
    }

    #[test]
    fn out_of_bounds_helper_call_is_flagged() {
        let src = "\
int8_t a[4];
vmcu_ram_load((int8_t *)a + 2, 0, 4);
";
        let f = lint_c(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("vmcu_ram_load"), "{}", f[0]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn out_of_bounds_index_is_flagged() {
        let src = "int8_t a[4];\na[5] = 0;\n";
        let f = lint_c(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`a`"));
    }

    #[test]
    fn unrolled_constant_binding_resolves_offsets() {
        // k = 6 pushes the dot's a-offset past the 8-byte buffer.
        let src = "\
int32_t acc[4];
int8_t a[8];
{
  const int64_t k = 6;
  vmcu_dot(acc + 0, (const int8_t *)a + k, (const int8_t *)a + 0, 4, 1);
}
";
        let f = lint_c(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("vmcu_dot"), "{}", f[0]);
    }

    #[test]
    fn scoped_binding_does_not_leak() {
        // The same k-binding is out of scope at the second call: skipped.
        let src = "\
int8_t a[8];
{
  const int64_t k = 6;
}
vmcu_ram_load((int8_t *)a + k, 0, 8);
";
        assert_eq!(lint_c(src), Vec::new());
    }

    #[test]
    fn symbolic_offsets_are_skipped() {
        let src = "\
int8_t a[4];
vmcu_ram_load((int8_t *)a + in_base, 0, 4);
a[n] = 0;
";
        assert_eq!(lint_c(src), Vec::new());
    }

    #[test]
    fn i_loop_bound_checks_last_iteration() {
        let src = "\
int32_t acc[4];
for (int32_t _i = 0; _i < 5; ++_i) acc[_i] = 0;
";
        let f = lint_c(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("offset 4"), "{}", f[0]);
    }

    #[test]
    fn real_emitted_libraries_lint_clean() {
        use crate::cgen::emit_library_with_lanes;
        use crate::kernels_ir::{build_fc_kernel, FcIrSpec};
        use vmcu_tensor::Requant;

        let spec = FcIrSpec {
            m: 6,
            k: 8,
            n: 8,
            seg: 8,
            rq: Requant::from_scale(1.0 / 64.0, 3),
        };
        for lanes in [1, 2, 4] {
            let lib = emit_library_with_lanes(&[build_fc_kernel(&spec)], lanes);
            let findings = lint_c(&lib);
            assert!(
                findings.is_empty(),
                "lanes={lanes}: emitted library has lint findings:\n{}",
                findings
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn indexing_in_word_units_vs_bytes() {
        // 4-word acc = 16 bytes: offset 3 words is fine, 4 is not.
        let ok = "int32_t acc[4];\nvmcu_broadcast(acc + 3, 0, 1);\n";
        let bad = "int32_t acc[4];\nvmcu_broadcast(acc + 4, 0, 1);\n";
        assert_eq!(lint_c(ok), Vec::new());
        assert_eq!(lint_c(bad).len(), 1);
    }
}
