//! Kernel IR interpreter.
//!
//! Executes a [`Kernel`] against the simulated machine and circular pool —
//! the same substrate the hand-written kernels use — so a kernel authored
//! through the builder DSL can be validated bit-exact against the
//! reference operators *before* emitting C for it. This closes the §6
//! loop: DSL → IR → {C text, simulated execution}.

use std::collections::HashMap;
use std::fmt;
use vmcu_ir::expr::Expr;
use vmcu_ir::stmt::{DType, Kernel, Stmt};
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::{Machine, MemError};
use vmcu_tensor::Requant;

/// Interpreter failure.
#[derive(Debug)]
pub enum InterpError {
    /// Unbound scalar variable.
    Unbound(String),
    /// Register array used before allocation.
    UnknownReg(String),
    /// Register access out of bounds.
    RegOutOfRange {
        /// Register name.
        reg: String,
        /// Offending index.
        index: i64,
        /// Register length.
        len: usize,
    },
    /// Negative or oversized length operand.
    BadLength(i64),
    /// `RamStore` from a register wider than one byte per element.
    StoreFromWide(String),
    /// Pool violation.
    Pool(PoolError),
    /// Raw memory violation.
    Mem(MemError),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Unbound(v) => write!(f, "unbound variable `{v}`"),
            InterpError::UnknownReg(r) => write!(f, "unknown register array `{r}`"),
            InterpError::RegOutOfRange { reg, index, len } => {
                write!(f, "register `{reg}` index {index} out of range (len {len})")
            }
            InterpError::BadLength(l) => write!(f, "bad length operand {l}"),
            InterpError::StoreFromWide(r) => {
                write!(f, "ram store from non-int8 register `{r}` would truncate")
            }
            InterpError::Pool(e) => write!(f, "pool error: {e}"),
            InterpError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<PoolError> for InterpError {
    fn from(e: PoolError) -> Self {
        InterpError::Pool(e)
    }
}

impl From<MemError> for InterpError {
    fn from(e: MemError) -> Self {
        InterpError::Mem(e)
    }
}

#[derive(Debug, Clone)]
struct RegArray {
    dtype: DType,
    data: Vec<i32>,
}

/// Interpreter state over one kernel invocation.
struct Interp<'a> {
    machine: &'a mut Machine,
    pool: &'a mut SegmentPool,
    vars: HashMap<String, i64>,
    regs: HashMap<String, RegArray>,
}

impl Interp<'_> {
    fn eval(&self, e: &Expr) -> Result<i64, InterpError> {
        e.eval_with(&|name| self.vars.get(name).copied())
            .map_err(|err| InterpError::Unbound(err.name))
    }

    fn eval_len(&self, e: &Expr) -> Result<usize, InterpError> {
        let v = self.eval(e)?;
        if !(0..=1 << 24).contains(&v) {
            return Err(InterpError::BadLength(v));
        }
        Ok(v as usize)
    }

    fn reg(&self, name: &str) -> Result<&RegArray, InterpError> {
        self.regs
            .get(name)
            .ok_or_else(|| InterpError::UnknownReg(name.to_owned()))
    }

    fn reg_slice(&self, name: &str, off: i64, len: usize) -> Result<Vec<i32>, InterpError> {
        let r = self.reg(name)?;
        let end = off + len as i64;
        if off < 0 || end > r.data.len() as i64 {
            return Err(InterpError::RegOutOfRange {
                reg: name.to_owned(),
                index: off.max(end - 1),
                len: r.data.len(),
            });
        }
        Ok(r.data[off as usize..end as usize].to_vec())
    }

    fn reg_write(&mut self, name: &str, off: i64, values: &[i32]) -> Result<(), InterpError> {
        let r = self
            .regs
            .get_mut(name)
            .ok_or_else(|| InterpError::UnknownReg(name.to_owned()))?;
        let end = off + values.len() as i64;
        if off < 0 || end > r.data.len() as i64 {
            return Err(InterpError::RegOutOfRange {
                reg: name.to_owned(),
                index: off.max(end - 1),
                len: r.data.len(),
            });
        }
        r.data[off as usize..end as usize].copy_from_slice(values);
        Ok(())
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<(), InterpError> {
        match stmt {
            Stmt::Seq(v) => v.iter().try_for_each(|s| self.exec(s)),
            Stmt::Let { name, value } => {
                let v = self.eval(value)?;
                self.vars.insert(name.clone(), v);
                Ok(())
            }
            Stmt::For {
                var,
                extent,
                step,
                body,
                ..
            } => {
                let bound = self.eval(extent)?;
                let mut i = 0i64;
                let shadow = self.vars.get(var).copied();
                while i < bound {
                    self.vars.insert(var.clone(), i);
                    self.exec(body)?;
                    self.machine.charge_branches(1);
                    i += step;
                }
                match shadow {
                    Some(v) => self.vars.insert(var.clone(), v),
                    None => self.vars.remove(var),
                };
                Ok(())
            }
            Stmt::RegAlloc {
                name,
                len,
                dtype,
                init,
            } => {
                self.regs.insert(
                    name.clone(),
                    RegArray {
                        dtype: *dtype,
                        data: vec![*init; *len],
                    },
                );
                Ok(())
            }
            Stmt::RamLoad {
                dst,
                dst_off,
                addr,
                len,
            } => {
                let off = self.eval(dst_off)?;
                let a = self.eval(addr)?;
                let n = self.eval_len(len)?;
                let mut buf = vec![0u8; n];
                self.pool.load(self.machine, a, &mut buf)?;
                let vals: Vec<i32> = buf.iter().map(|&b| i32::from(b as i8)).collect();
                self.reg_write(dst, off, &vals)
            }
            Stmt::FlashLoad {
                dst,
                dst_off,
                addr,
                len,
            } => {
                let off = self.eval(dst_off)?;
                let a = self.eval(addr)?;
                let n = self.eval_len(len)?;
                let mut buf = vec![0u8; n];
                self.machine.flash_load(a as usize, &mut buf)?;
                let vals: Vec<i32> = buf.iter().map(|&b| i32::from(b as i8)).collect();
                self.reg_write(dst, off, &vals)
            }
            Stmt::Dot {
                acc,
                acc_off,
                a,
                a_off,
                b,
                b_off,
                ki,
                ni,
            } => {
                let ao = self.eval(a_off)?;
                let bo = self.eval(b_off)?;
                let co = self.eval(acc_off)?;
                let av = self.reg_slice(a, ao, *ki)?;
                let bv = self.reg_slice(b, bo, ki * ni)?;
                let mut accv = self.reg_slice(acc, co, *ni)?;
                for (k, &x) in av.iter().enumerate() {
                    for n in 0..*ni {
                        accv[n] += x * bv[k * ni + n];
                    }
                }
                self.machine.charge_macs((*ki * *ni) as u64, true);
                self.reg_write(acc, co, &accv)
            }
            Stmt::RamStore {
                src,
                src_off,
                addr,
                len,
            } => {
                let off = self.eval(src_off)?;
                let a = self.eval(addr)?;
                let n = self.eval_len(len)?;
                // RAM stores narrow to one byte per element; a kernel must
                // requantize an Int32 accumulator into an Int8 register
                // first, exactly as the C backend does.
                if self.reg(src)?.dtype != DType::Int8 {
                    return Err(InterpError::StoreFromWide(src.to_owned()));
                }
                let vals = self.reg_slice(src, off, n)?;
                let bytes: Vec<u8> = vals.iter().map(|&v| (v as i8) as u8).collect();
                self.pool.store(self.machine, &bytes, a)?;
                Ok(())
            }
            Stmt::RamFree { addr, len } => {
                let a = self.eval(addr)?;
                let n = self.eval_len(len)?;
                self.pool.free(a, n)?;
                Ok(())
            }
            Stmt::Broadcast {
                dst,
                dst_off,
                value,
                len,
            } => {
                let off = self.eval(dst_off)?;
                let v = self.eval(value)? as i32;
                self.machine.charge_cycles((*len as u64).div_ceil(4));
                self.reg_write(dst, off, &vec![v; *len])
            }
            Stmt::Requant {
                dst,
                dst_off,
                src,
                src_off,
                len,
                mult,
                shift,
                zp,
            } => {
                let so = self.eval(src_off)?;
                let doff = self.eval(dst_off)?;
                let vals = self.reg_slice(src, so, *len)?;
                let rq = Requant {
                    mult: *mult,
                    shift: *shift,
                    zp: *zp,
                };
                let out: Vec<i32> = vals.iter().map(|&v| i32::from(rq.apply(v))).collect();
                self.machine.charge_requant(*len as u64);
                self.reg_write(dst, doff, &out)
            }
        }
    }
}

/// Runs a kernel with the given scalar arguments against a machine and
/// pool.
///
/// # Errors
///
/// Returns [`InterpError`] on unbound variables, register misuse, pool
/// violations, or memory errors.
pub fn interpret(
    kernel: &Kernel,
    args: &[(&str, i64)],
    machine: &mut Machine,
    pool: &mut SegmentPool,
) -> Result<(), InterpError> {
    let mut interp = Interp {
        machine,
        pool,
        vars: args.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        regs: HashMap::new(),
    };
    for p in &kernel.params {
        if !interp.vars.contains_key(p) {
            return Err(InterpError::Unbound(p.clone()));
        }
    }
    interp.exec(&kernel.body)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_ir::KernelBuilder;
    use vmcu_sim::Device;

    fn setup(pool_len: usize) -> (Machine, SegmentPool) {
        let m = Machine::new(Device::stm32_f411re());
        let pool = SegmentPool::new(&m, 0, pool_len, 4).unwrap();
        (m, pool)
    }

    #[test]
    fn copies_through_registers() {
        let (mut m, mut pool) = setup(16);
        pool.host_fill_live(&mut m, 0, &[1, 2, 3, 4]).unwrap();
        let mut kb = KernelBuilder::new("copy");
        kb.param("src").param("dst");
        kb.reg_alloc_i8("r", 4, 0);
        kb.ram_load("r", 0, Expr::var("src"), 4);
        kb.ram_store("r", 0, Expr::var("dst"), 4);
        let k = kb.finish();
        interpret(&k, &[("src", 0), ("dst", 8)], &mut m, &mut pool).unwrap();
        assert_eq!(pool.host_read(&m, 8, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(m.counters.ram_read_bytes >= 4);
    }

    #[test]
    fn loops_bind_and_restore_variables() {
        let (mut m, mut pool) = setup(16);
        pool.host_fill_live(&mut m, 0, &[9; 8]).unwrap();
        let mut kb = KernelBuilder::new("loop");
        kb.reg_alloc_i8("r", 1, 0);
        kb.for_("i", 8, |kb| {
            kb.ram_load("r", 0, Expr::var("i"), 1);
        });
        interpret(&kb.finish(), &[], &mut m, &mut pool).unwrap();
        assert_eq!(m.counters.branches, 8);
    }

    #[test]
    fn dot_accumulates_like_reference() {
        let (mut m, mut pool) = setup(16);
        let mut kb = KernelBuilder::new("dot");
        kb.reg_alloc_i32("acc", 2, 0);
        kb.reg_alloc_i8("a", 2, 0);
        kb.reg_alloc_i8("b", 4, 0);
        kb.broadcast("a", 0, 3, 2); // a = [3, 3]
        kb.broadcast("b", 0, 2, 4); // b = [[2,2],[2,2]]
        kb.dot("acc", 0, "a", 0, "b", 0, 2, 2);
        interpret(&kb.finish(), &[], &mut m, &mut pool).unwrap();
        assert_eq!(m.counters.macs, 4);
    }

    #[test]
    fn requant_matches_shared_arithmetic() {
        let (mut m, mut pool) = setup(16);
        let rq = Requant::from_scale(0.25, 1);
        let mut kb = KernelBuilder::new("rq");
        kb.reg_alloc_i32("acc", 1, 100);
        kb.reg_alloc_i8("out", 1, 0);
        kb.requant("out", 0, "acc", 0, 1, rq.mult, rq.shift, rq.zp);
        kb.ram_store("out", 0, 0, 1);
        interpret(&kb.finish(), &[], &mut m, &mut pool).unwrap();
        let got = pool.host_read(&m, 0, 1).unwrap()[0] as i8;
        assert_eq!(got, rq.apply(100));
    }

    #[test]
    fn store_from_wide_register_is_rejected() {
        let (mut m, mut pool) = setup(16);
        let mut kb = KernelBuilder::new("wide");
        kb.reg_alloc_i32("acc", 4, 7);
        kb.ram_store("acc", 0, 0, 4);
        let err = interpret(&kb.finish(), &[], &mut m, &mut pool).unwrap_err();
        assert!(
            matches!(&err, InterpError::StoreFromWide(r) if r == "acc"),
            "expected StoreFromWide, got {err:?}"
        );
    }

    #[test]
    fn missing_argument_is_reported() {
        let (mut m, mut pool) = setup(16);
        let mut kb = KernelBuilder::new("k");
        kb.param("base");
        let err = interpret(&kb.finish(), &[], &mut m, &mut pool).unwrap_err();
        assert!(matches!(err, InterpError::Unbound(p) if p == "base"));
    }

    #[test]
    fn register_bounds_are_enforced() {
        let (mut m, mut pool) = setup(16);
        let mut kb = KernelBuilder::new("k");
        kb.reg_alloc_i8("r", 2, 0);
        kb.broadcast("r", 1, 0, 4); // writes past the end
        let err = interpret(&kb.finish(), &[], &mut m, &mut pool).unwrap_err();
        assert!(matches!(err, InterpError::RegOutOfRange { .. }));
    }

    #[test]
    fn pool_violations_surface() {
        let (mut m, mut pool) = setup(8);
        pool.host_fill_live(&mut m, 0, &[1; 8]).unwrap();
        let mut kb = KernelBuilder::new("k");
        kb.reg_alloc_i8("r", 4, 0);
        kb.ram_store("r", 0, 0, 4); // clobbers live input
        let err = interpret(&kb.finish(), &[], &mut m, &mut pool).unwrap_err();
        assert!(matches!(err, InterpError::Pool(PoolError::Clobber { .. })));
    }
}
