//! # vmcu-codegen — compiler support (§6)
//!
//! The paper lowers a Python-authored kernel description to C for ARM
//! MCUs. Here the same pipeline is: builder DSL (`vmcu-ir`) → IR →
//! either [C emission](cgen) (ACLE `__SMLAD`/`__SXTB16`/`__PKHBT`
//! intrinsics with scalar fallbacks, circular-buffer modulo addressing,
//! full unrolling of constant reduction loops) or [interpretation](interp)
//! on the simulated machine, which validates generated kernels bit-exact
//! against the reference operators.
//!
//! [`kernels_ir`] contains pre-built IR mirroring the paper's Figure 4
//! pseudo code.
//!
//! # Examples
//!
//! ```
//! use vmcu_codegen::kernels_ir::{build_fc_kernel, FcIrSpec};
//! use vmcu_codegen::cgen::emit_library;
//! use vmcu_tensor::Requant;
//!
//! let spec = FcIrSpec { m: 4, k: 8, n: 8, seg: 8, rq: Requant::identity() };
//! let lib = emit_library(&[build_fc_kernel(&spec)]);
//! assert!(lib.contains("void vmcu_fc"));
//! assert!(lib.contains("__smlad"));
//! ```

pub mod cgen;
pub mod clint;
pub mod interp;
pub mod kernels_ir;

pub use cgen::{emit_kernel, emit_library, emit_library_with_lanes, prelude, prelude_with_lanes};
pub use clint::{lint_c, CLintFinding};
pub use interp::{interpret, InterpError};

/// Cycles per element the requantization epilogue historically charged on
/// the M4/M7 evaluation boards. The interpreter now charges
/// `CostModel::requant_cost` (identical on those devices); this constant
/// remains for tests pinning the historic value.
pub const REQUANT_CYCLES_PER_ELEM: u64 = 3;
