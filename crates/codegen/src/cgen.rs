//! C code emission for ARM Cortex-M.
//!
//! Lowers kernel IR to the C the paper's compiler would produce: intrinsic
//! calls become inline helpers built on ACLE DSP intrinsics (`__SMLAD`,
//! `__SXTB16`, `__PKHBT`) with portable scalar fallbacks, circular-buffer
//! addressing becomes explicit modulo arithmetic, and loops marked for
//! unrolling with constant trip counts are fully unrolled in the emitted
//! source (vMCU fully unrolls innermost reduction loops, §7.2).
//!
//! The output is text; it is compiled by `arm-none-eabi-gcc` in a real
//! deployment. In this reproduction its semantics are validated by the
//! [interpreter](crate::interp) executing the same IR.

use vmcu_ir::expr::Expr;
use vmcu_ir::stmt::{Kernel, Stmt};

/// Maximum constant trip count that `unroll` loops expand fully.
const MAX_FULL_UNROLL: i64 = 64;

/// The memory helpers every generated kernel needs, independent of the
/// target's SIMD width.
const PRELUDE_BASE: &str = r#"#include <stdint.h>
#include <string.h>

#define VMCU_MIN(a, b) ((a) < (b) ? (a) : (b))
#define VMCU_MAX(a, b) ((a) > (b) ? (a) : (b))

/* Circular pool window; set by the runtime before kernel launch. */
extern int8_t *vmcu_pool_base;
extern int32_t vmcu_pool_len;
extern const int8_t *vmcu_flash_base;

static inline int32_t vmcu_wrap(int64_t addr) {
  int32_t m = (int32_t)(addr % vmcu_pool_len);
  return m < 0 ? m + vmcu_pool_len : m;
}

/* RAMLoad/RAMStore: memcpy with the modulo boundary check. */
static inline void vmcu_ram_load(int8_t *dst, int64_t addr, int32_t len) {
  int32_t p = vmcu_wrap(addr);
  int32_t first = VMCU_MIN(len, vmcu_pool_len - p);
  memcpy(dst, vmcu_pool_base + p, (size_t)first);
  if (first < len) memcpy(dst + first, vmcu_pool_base, (size_t)(len - first));
}

static inline void vmcu_ram_store(const int8_t *src, int64_t addr, int32_t len) {
  int32_t p = vmcu_wrap(addr);
  int32_t first = VMCU_MIN(len, vmcu_pool_len - p);
  memcpy(vmcu_pool_base + p, src, (size_t)first);
  if (first < len) memcpy(vmcu_pool_base, src + first, (size_t)(len - first));
}

static inline void vmcu_flash_load(int8_t *dst, int64_t addr, int32_t len) {
  memcpy(dst, vmcu_flash_base + addr, (size_t)len);
}
"#;

/// Portable scalar `vmcu_dot` body (also the `#else` fallback of the
/// vectorized variants).
const DOT_SCALAR: &str = r#"static inline void vmcu_dot(int32_t *acc, const int8_t *a, const int8_t *b,
                            int32_t ki, int32_t ni) {
  for (int32_t k = 0; k < ki; ++k)
    for (int32_t n = 0; n < ni; ++n)
      acc[n] += (int32_t)a[k] * (int32_t)b[k * ni + n];
}
"#;

/// Dual-lane `vmcu_dot`: SXTB16+SMLAD pairs on DSP-capable cores
/// (Cortex-M4/M7), 2 int8 MACs per instruction.
const DOT_DSP: &str = r#"#if defined(__ARM_FEATURE_DSP)
#include <arm_acle.h>
static inline void vmcu_dot(int32_t *acc, const int8_t *a, const int8_t *b,
                            int32_t ki, int32_t ni) {
  for (int32_t n = 0; n < ni; ++n) {
    int32_t sum = acc[n];
    int32_t k = 0;
    for (; k + 1 < ki; k += 2) {
      int32_t av = __sxtb16((uint32_t)(uint8_t)a[k] |
                            ((uint32_t)(uint8_t)a[k + 1] << 16));
      int32_t bv = __sxtb16((uint32_t)(uint8_t)b[k * ni + n] |
                            ((uint32_t)(uint8_t)b[(k + 1) * ni + n] << 16));
      sum = __smlad(av, bv, sum);
    }
    for (; k < ki; ++k) sum += (int32_t)a[k] * (int32_t)b[k * ni + n];
    acc[n] = sum;
  }
}
#else
"#;

/// Quad-lane `vmcu_dot`: MVE/Helium vector MAC-accumulate on Cortex-M55
/// class cores (`VMLADAVA` retires 4 int8 MACs per cycle on a quad-lane
/// datapath).
const DOT_MVE: &str = r#"#if defined(__ARM_FEATURE_MVE)
#include <arm_mve.h>
static inline void vmcu_dot(int32_t *acc, const int8_t *a, const int8_t *b,
                            int32_t ki, int32_t ni) {
  for (int32_t n = 0; n < ni; ++n) {
    int32_t sum = acc[n];
    int32_t k = 0;
    int8_t brow[16];
    for (; k + 15 < ki; k += 16) {
      for (int32_t j = 0; j < 16; ++j) brow[j] = b[(k + j) * ni + n];
      int8x16_t av = vldrbq_s8(a + k);
      int8x16_t bv = vldrbq_s8(brow);
      sum = vmladavaq_s8(sum, av, bv);
    }
    for (; k < ki; ++k) sum += (int32_t)a[k] * (int32_t)b[k * ni + n];
    acc[n] = sum;
  }
}
#else
"#;

/// Epilogue helpers shared by every lane width.
const PRELUDE_TAIL: &str = r#"
/* Broadcast: PKHBT-style splat. */
static inline void vmcu_broadcast(int32_t *dst, int32_t value, int32_t len) {
  for (int32_t i = 0; i < len; ++i) dst[i] = value;
}

static inline int8_t vmcu_requant(int32_t acc, int32_t mult, int32_t shift,
                                  int32_t zp) {
  int64_t prod = (int64_t)acc * (int64_t)mult;
  int32_t total = 31 + shift;
  int64_t half = (int64_t)1 << (total - 1);
  int64_t r = prod >= 0 ? (prod + half) >> total : -((-prod + half) >> total);
  r += zp;
  if (r > 127) r = 127;
  if (r < -128) r = -128;
  return (int8_t)r;
}
"#;

/// The C prelude for a target with the given SIMD lane count: memory
/// helpers, a `vmcu_dot` inner loop vectorized to that width (with the
/// portable scalar body as the `#else` fallback on lanes > 1), and the
/// epilogue helpers. `lanes = 1` targets scalar cores (Cortex-M0 class)
/// and emits no architecture-conditional code at all; `2` the
/// SXTB16+SMLAD pairs of the DSP extension (M4/M7); `4` and above the
/// MVE/Helium quad-lane path (M55).
pub fn prelude_with_lanes(lanes: u64) -> String {
    let mut out = String::from(PRELUDE_BASE);
    out.push('\n');
    match lanes {
        0 | 1 => {
            out.push_str("/* Dot: int8 x int8 -> int32, scalar (no SIMD extension). */\n");
            out.push_str(DOT_SCALAR);
        }
        2 | 3 => {
            out.push_str(
                "/* Dot: int8 x int8 -> int32, SXTB16+SMLAD pairs on DSP-capable cores. */\n",
            );
            out.push_str(DOT_DSP);
            out.push_str(DOT_SCALAR);
            out.push_str("#endif\n");
        }
        _ => {
            out.push_str("/* Dot: int8 x int8 -> int32, MVE/Helium quad-lane MAC-accumulate. */\n");
            out.push_str(DOT_MVE);
            out.push_str(DOT_SCALAR);
            out.push_str("#endif\n");
        }
    }
    out.push_str(PRELUDE_TAIL);
    out
}

/// The C prelude shared by all generated kernels: intrinsic helpers and
/// the circular-buffer access macros, at the historic dual-lane (DSP)
/// width the evaluation boards use.
pub fn prelude() -> String {
    prelude_with_lanes(2)
}

fn expr_c(e: &Expr) -> String {
    e.to_string()
}

struct Emitter {
    out: String,
    indent: usize,
    unroll_counter: usize,
}

impl Emitter {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Seq(v) => v.iter().for_each(|s| self.stmt(s)),
            Stmt::Let { name, value } => {
                self.line(&format!("int64_t {name} = {};", expr_c(value)));
            }
            Stmt::For {
                var,
                extent,
                step,
                unroll,
                body,
            } => {
                let const_extent = extent.as_const();
                if *unroll && const_extent.is_some_and(|e| e <= MAX_FULL_UNROLL * step) {
                    // Full unrolling: emit the body once per iteration with
                    // the loop variable bound as a constant.
                    let bound = const_extent.expect("checked above");
                    self.line(&format!(
                        "/* fully unrolled loop {var} (0..{bound} step {step}) */"
                    ));
                    let mut i = 0;
                    while i < bound {
                        self.line("{");
                        self.indent += 1;
                        self.line(&format!("const int64_t {var} = {i};"));
                        self.stmt(body);
                        self.indent -= 1;
                        self.line("}");
                        i += step;
                    }
                } else {
                    if *unroll {
                        self.unroll_counter += 1;
                        self.line("#pragma GCC unroll 16");
                    }
                    self.line(&format!(
                        "for (int64_t {var} = 0; {var} < {}; {var} += {step}) {{",
                        expr_c(extent)
                    ));
                    self.indent += 1;
                    self.stmt(body);
                    self.indent -= 1;
                    self.line("}");
                }
            }
            Stmt::RegAlloc {
                name,
                len,
                dtype,
                init,
            } => {
                self.line(&format!("{dtype} {name}[{len}];"));
                self.line(&format!(
                    "for (int32_t _i = 0; _i < {len}; ++_i) {name}[_i] = {init};"
                ));
            }
            Stmt::RamLoad {
                dst,
                dst_off,
                addr,
                len,
            } => self.line(&format!(
                "vmcu_ram_load((int8_t *){dst} + {}, {}, {});",
                expr_c(dst_off),
                expr_c(addr),
                expr_c(len)
            )),
            Stmt::FlashLoad {
                dst,
                dst_off,
                addr,
                len,
            } => self.line(&format!(
                "vmcu_flash_load((int8_t *){dst} + {}, {}, {});",
                expr_c(dst_off),
                expr_c(addr),
                expr_c(len)
            )),
            Stmt::Dot {
                acc,
                acc_off,
                a,
                a_off,
                b,
                b_off,
                ki,
                ni,
            } => self.line(&format!(
                "vmcu_dot({acc} + {}, (const int8_t *){a} + {}, (const int8_t *){b} + {}, {ki}, {ni});",
                expr_c(acc_off),
                expr_c(a_off),
                expr_c(b_off)
            )),
            Stmt::RamStore {
                src,
                src_off,
                addr,
                len,
            } => self.line(&format!(
                "vmcu_ram_store((const int8_t *){src} + {}, {}, {});",
                expr_c(src_off),
                expr_c(addr),
                expr_c(len)
            )),
            Stmt::RamFree { addr, len } => self.line(&format!(
                "/* RAMFree({}, {}) — pointer bump, no code */",
                expr_c(addr),
                expr_c(len)
            )),
            Stmt::Broadcast {
                dst,
                dst_off,
                value,
                len,
            } => self.line(&format!(
                "vmcu_broadcast({dst} + {}, (int32_t){}, {len});",
                expr_c(dst_off),
                expr_c(value)
            )),
            Stmt::Requant {
                dst,
                dst_off,
                src,
                src_off,
                len,
                mult,
                shift,
                zp,
            } => {
                self.line(&format!(
                    "for (int32_t _i = 0; _i < {len}; ++_i) {dst}[{} + _i] = vmcu_requant({src}[{} + _i], {mult}, {shift}, {zp});",
                    expr_c(dst_off),
                    expr_c(src_off)
                ));
            }
        }
    }
}

/// Emits one kernel as a C function (without the prelude).
pub fn emit_kernel(kernel: &Kernel) -> String {
    let mut e = Emitter {
        out: String::new(),
        indent: 0,
        unroll_counter: 0,
    };
    let params = kernel
        .params
        .iter()
        .map(|p| format!("int64_t {p}"))
        .collect::<Vec<_>>()
        .join(", ");
    e.line(&format!("void {}({params}) {{", kernel.name));
    e.indent += 1;
    e.stmt(&kernel.body);
    e.indent -= 1;
    e.line("}");
    e.out
}

/// Emits a complete compilable library: prelude plus every kernel
/// (the paper packs the generated kernels into one light library, §6.2).
pub fn emit_library(kernels: &[Kernel]) -> String {
    emit_library_with_lanes(kernels, 2)
}

/// [`emit_library`] with the prelude vectorized to the target's SIMD
/// width (see [`prelude_with_lanes`]).
pub fn emit_library_with_lanes(kernels: &[Kernel], lanes: u64) -> String {
    let mut out = prelude_with_lanes(lanes);
    out.push('\n');
    for k in kernels {
        out.push_str(&emit_kernel(k));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_ir::validate::validate;
    use vmcu_ir::KernelBuilder;

    fn sample_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("sample");
        kb.param("in_base").param("out_base");
        kb.reg_alloc_i32("acc", 4, 0);
        kb.reg_alloc_i8("a", 8, 0);
        kb.reg_alloc_i8("w", 32, 0);
        kb.for_("m", 16, |kb| {
            kb.ram_load("a", 0, Expr::var("in_base") + Expr::var("m") * 8, 8);
            kb.flash_load("w", 0, Expr::var("m") * 32, 32);
            kb.for_unrolled("k", 8, |kb| {
                kb.dot("acc", 0, "a", Expr::var("k"), "w", Expr::var("k") * 4, 1, 4);
            });
            kb.requant("a", 0, "acc", 0, 4, 1 << 30, 0, 0);
            kb.ram_store("a", 0, Expr::var("out_base") + Expr::var("m") * 4, 4);
            kb.ram_free(Expr::var("in_base") + Expr::var("m") * 8, 8);
        });
        let k = kb.finish();
        validate(&k).expect("sample kernel is well-formed");
        k
    }

    #[test]
    fn prelude_contains_arm_intrinsics_and_fallback() {
        let p = prelude();
        assert!(p.contains("__smlad"));
        assert!(p.contains("__sxtb16"));
        assert!(p.contains("__ARM_FEATURE_DSP"));
        assert!(p.contains("#else")); // scalar fallback exists
        assert!(p.contains("vmcu_wrap")); // modulo boundary check
    }

    #[test]
    fn scalar_prelude_has_no_architecture_conditionals() {
        let p = prelude_with_lanes(1);
        assert!(!p.contains("#if"));
        assert!(!p.contains("__smlad"));
        assert!(p.contains("vmcu_dot"));
        assert!(p.contains("vmcu_wrap"));
    }

    #[test]
    fn quad_lane_prelude_targets_mve_with_scalar_fallback() {
        let p = prelude_with_lanes(4);
        assert!(p.contains("__ARM_FEATURE_MVE"));
        assert!(p.contains("vmladavaq_s8"));
        assert!(p.contains("#else")); // scalar fallback exists
        assert!(!p.contains("__smlad"));
    }

    #[test]
    fn default_prelude_is_the_dual_lane_dsp_one() {
        assert_eq!(prelude(), prelude_with_lanes(2));
    }

    #[test]
    fn every_lane_width_emits_a_balanced_compilable_library() {
        for lanes in [1, 2, 4, 8] {
            let lib = emit_library_with_lanes(&[sample_kernel()], lanes);
            assert_eq!(
                lib.matches('{').count(),
                lib.matches('}').count(),
                "lanes={lanes}: emitted C must be balanced"
            );
            assert_eq!(
                lib.matches("#if").count(),
                lib.matches("#endif").count(),
                "lanes={lanes}: preprocessor conditionals must be balanced"
            );
        }
    }

    #[test]
    fn kernel_emits_signature_and_intrinsic_calls() {
        let c = emit_kernel(&sample_kernel());
        assert!(c.contains("void sample(int64_t in_base, int64_t out_base)"));
        assert!(c.contains("vmcu_ram_load"));
        assert!(c.contains("vmcu_flash_load"));
        assert!(c.contains("vmcu_dot"));
        assert!(c.contains("vmcu_ram_store"));
        assert!(c.contains("RAMFree"));
    }

    #[test]
    fn constant_unrolled_loops_are_fully_expanded() {
        let c = emit_kernel(&sample_kernel());
        assert!(c.contains("fully unrolled loop k"));
        // Eight unrolled bodies -> eight constant bindings of k.
        assert_eq!(c.matches("const int64_t k =").count(), 8);
    }

    #[test]
    fn non_constant_loops_stay_rolled() {
        let mut kb = KernelBuilder::new("dyn");
        kb.param("n");
        kb.reg_alloc_i8("r", 4, 0);
        kb.for_unrolled("i", Expr::var("n"), |kb| {
            kb.ram_load("r", 0, Expr::var("i"), 4);
        });
        let c = emit_kernel(&kb.finish());
        assert!(c.contains("#pragma GCC unroll 16"));
        assert!(c.contains("for (int64_t i = 0; i < n; i += 1)"));
    }

    #[test]
    fn library_bundles_prelude_and_kernels() {
        let lib = emit_library(&[sample_kernel()]);
        assert!(lib.contains("#include <stdint.h>"));
        assert!(lib.contains("void sample"));
        let braces_open = lib.matches('{').count();
        let braces_close = lib.matches('}').count();
        assert_eq!(braces_open, braces_close, "emitted C must be balanced");
    }
}
