//! Pre-built IR kernels mirroring the paper's pseudo code.
//!
//! [`build_fc_kernel`] is Figure 4 written in the builder DSL: two-level
//! tiling, segment loads/stores through the circular pool, full unrolling
//! of the inner reduction, per-row `RAMFree`. The interpreter executes it
//! bit-exact against the reference operator and the C backend emits it as
//! a library function.

use vmcu_ir::expr::Expr;
use vmcu_ir::stmt::Kernel;
use vmcu_ir::KernelBuilder;
use vmcu_tensor::Requant;

/// Geometry and quantization of an IR fully-connected kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FcIrSpec {
    /// Rows.
    pub m: usize,
    /// Reduction size.
    pub k: usize,
    /// Output features.
    pub n: usize,
    /// Segment size in elements; must divide both `k` and `n`.
    pub seg: usize,
    /// Requantization of the accumulator.
    pub rq: Requant,
}

impl FcIrSpec {
    /// Minimal executable pointer distance `bIn − bOut` in bytes for the
    /// generated kernel (stores of row `m` precede the free of input row
    /// `m`, so the bound is `max_m (m·(N−K) + N)`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero — a spec without rows has no distance.
    pub fn exec_distance(&self) -> i64 {
        (0..self.m as i64)
            .map(|m| m * (self.n as i64 - self.k as i64) + self.n as i64)
            .max()
            .expect("m >= 1")
    }

    /// Pool window for the kernel at the minimal distance.
    pub fn window_bytes(&self) -> usize {
        let d = self.exec_distance().max(0) as usize;
        (self.m * self.k + d).max(self.m * self.n)
    }
}

/// Builds the Figure 4 fully-connected kernel as IR.
///
/// Parameters of the generated kernel: `in_base`, `out_base` (pool
/// logical addresses) and `w_base` (flash address of `W[K,N]`).
///
/// # Panics
///
/// Panics unless `seg` divides both `k` and `n` (the §5.3 default
/// `seg = min(K, N)` satisfies this whenever the smaller divides the
/// larger; ragged tiling is handled by the native kernel, not the IR
/// demo).
pub fn build_fc_kernel(spec: &FcIrSpec) -> Kernel {
    assert!(
        spec.k % spec.seg == 0 && spec.n % spec.seg == 0,
        "IR kernel requires seg | K and seg | N"
    );
    let (m, k, n, seg) = (spec.m as i64, spec.k as i64, spec.n as i64, spec.seg as i64);
    let mut kb = KernelBuilder::new("vmcu_fc");
    kb.param("in_base").param("out_base").param("w_base");
    kb.for_("m", m, |kb| {
        let mi = Expr::var("m");
        kb.for_step("n0", n, spec.seg as i64, false, |kb| {
            let n0 = Expr::var("n0");
            kb.reg_alloc_i32("acc", spec.seg, 0);
            kb.reg_alloc_i8("a_reg", spec.seg, 0);
            kb.reg_alloc_i8("w_tile", spec.seg * spec.seg, 0);
            kb.for_step("k0", k, spec.seg as i64, false, |kb| {
                let k0 = Expr::var("k0");
                kb.ram_load(
                    "a_reg",
                    0,
                    Expr::var("in_base") + mi.clone() * k + k0.clone(),
                    seg,
                );
                kb.for_unrolled("kk", seg, |kb| {
                    let kk = Expr::var("kk");
                    kb.flash_load(
                        "w_tile",
                        kk.clone() * seg,
                        Expr::var("w_base") + (k0.clone() + kk) * n + n0.clone(),
                        seg,
                    );
                });
                kb.dot("acc", 0, "a_reg", 0, "w_tile", 0, spec.seg, spec.seg);
            });
            kb.reg_alloc_i8("out_reg", spec.seg, 0);
            kb.requant(
                "out_reg",
                0,
                "acc",
                0,
                spec.seg,
                spec.rq.mult,
                spec.rq.shift,
                spec.rq.zp,
            );
            kb.ram_store(
                "out_reg",
                0,
                Expr::var("out_base") + mi.clone() * n + n0,
                seg,
            );
        });
        kb.ram_free(Expr::var("in_base") + mi * k, k);
    });
    let kernel = kb.finish();
    vmcu_ir::validate::validate(&kernel).expect("generated FC kernel is well-formed");
    kernel
}

/// Geometry of an IR pointwise-convolution kernel (Figure 5 with a 1×1
/// window — the single-layer workload of the paper's evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PwIrSpec {
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Input channels.
    pub c: usize,
    /// Output channels.
    pub k: usize,
    /// Segment size in elements; must divide both `c` and `k`.
    pub seg: usize,
    /// Requantization of the accumulator.
    pub rq: Requant,
}

impl PwIrSpec {
    /// The equivalent FC view (`M = H·W`).
    pub fn as_fc(&self) -> FcIrSpec {
        FcIrSpec {
            m: self.h * self.w,
            k: self.c,
            n: self.k,
            seg: self.seg,
            rq: self.rq,
        }
    }
}

/// Builds the pointwise-convolution kernel as IR by lowering to the
/// Figure 4 loop nest over `H·W` pixels — the same reduction the paper's
/// Figure 5 performs with `R = S = 1`.
pub fn build_pointwise_kernel(spec: &PwIrSpec) -> Kernel {
    let mut kernel = build_fc_kernel(&spec.as_fc());
    kernel.name = "vmcu_pointwise".to_owned();
    kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgen::emit_kernel;
    use crate::interp::interpret;
    use vmcu_pool::SegmentPool;
    use vmcu_sim::{Device, Machine};
    use vmcu_tensor::{random, reference, Tensor, NO_CLAMP};

    fn run_ir_fc(spec: &FcIrSpec) -> Tensor<i8> {
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[spec.m, spec.k], 81);
        let weight = random::tensor_i8(&[spec.k, spec.n], 82);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap() as i64;
        let d = spec.exec_distance();
        let mut pool = SegmentPool::new(&m, 0, spec.window_bytes(), spec.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        let kernel = build_fc_kernel(spec);
        interpret(
            &kernel,
            &[("in_base", 0), ("out_base", -d), ("w_base", w_base)],
            &mut m,
            &mut pool,
        )
        .unwrap();
        let out = pool.host_read(&m, -d, spec.m * spec.n).unwrap();
        Tensor::from_bytes(&[spec.m, spec.n], &out)
    }

    #[test]
    fn ir_fc_matches_reference() {
        let spec = FcIrSpec {
            m: 5,
            k: 8,
            n: 4,
            seg: 4,
            rq: Requant::from_scale(1.0 / 32.0, 0),
        };
        let got = run_ir_fc(&spec);
        let input = random::tensor_i8(&[spec.m, spec.k], 81);
        let weight = random::tensor_i8(&[spec.k, spec.n], 82);
        let want = reference::dense(&input, &weight, None, spec.rq, NO_CLAMP);
        assert_eq!(got, want);
    }

    #[test]
    fn ir_fc_matches_reference_wide() {
        let spec = FcIrSpec {
            m: 3,
            k: 4,
            n: 12,
            seg: 4,
            rq: Requant::from_scale(1.0 / 16.0, 2),
        };
        assert_eq!(
            run_ir_fc(&spec),
            reference::dense(
                &random::tensor_i8(&[spec.m, spec.k], 81),
                &random::tensor_i8(&[spec.k, spec.n], 82),
                None,
                spec.rq,
                NO_CLAMP
            )
        );
    }

    #[test]
    fn ir_pointwise_matches_reference() {
        let spec = PwIrSpec {
            h: 4,
            w: 4,
            c: 8,
            k: 8,
            seg: 8,
            rq: Requant::from_scale(1.0 / 32.0, 1),
        };
        let fc = spec.as_fc();
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[spec.h, spec.w, spec.c], 91);
        let weight = random::tensor_i8(&[spec.c, spec.k], 92);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap() as i64;
        let d = fc.exec_distance();
        let mut pool = SegmentPool::new(&m, 0, fc.window_bytes(), spec.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        let kernel = build_pointwise_kernel(&spec);
        assert_eq!(kernel.name, "vmcu_pointwise");
        interpret(
            &kernel,
            &[("in_base", 0), ("out_base", -d), ("w_base", w_base)],
            &mut m,
            &mut pool,
        )
        .unwrap();
        let out = pool.host_read(&m, -d, spec.h * spec.w * spec.k).unwrap();
        let out = Tensor::from_bytes(&[spec.h, spec.w, spec.k], &out);
        let expected = reference::pointwise(&input, &weight, None, 1, spec.rq, NO_CLAMP);
        assert_eq!(out, expected);
    }

    #[test]
    fn generated_c_has_figure4_structure() {
        let spec = FcIrSpec {
            m: 4,
            k: 8,
            n: 8,
            seg: 8,
            rq: Requant::identity(),
        };
        let c = emit_kernel(&build_fc_kernel(&spec));
        assert!(c.contains("void vmcu_fc(int64_t in_base, int64_t out_base, int64_t w_base)"));
        // Outer tiling loops stay rolled; inner flash row loop unrolls.
        assert!(c.contains("for (int64_t m = 0; m < 4; m += 1)"));
        assert!(c.contains("fully unrolled loop kk"));
        assert!(c.contains("vmcu_dot(acc + 0"));
    }
}
