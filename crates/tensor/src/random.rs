//! Seeded synthetic tensor generation.
//!
//! The paper's metrics (RAM, latency, energy) depend on shapes, not
//! values; weights/activations here are deterministic pseudo-random int8
//! data so that correctness comparisons between kernel implementations are
//! still meaningful.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic int8 tensor with values in `[-64, 63]` (headroom against
/// int32 accumulator overflow for realistic reduction sizes).
pub fn tensor_i8(shape: &[usize], seed: u64) -> Tensor<i8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = shape.iter().product();
    let data = (0..len).map(|_| rng.gen_range(-64i8..=63)).collect();
    Tensor::from_vec(shape, data)
}

/// Deterministic int32 bias vector with small magnitudes.
pub fn bias_i32(len: usize, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..len).map(|_| rng.gen_range(-512i32..=512)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_tensor() {
        let a = tensor_i8(&[4, 5], 7);
        let b = tensor_i8(&[4, 5], 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tensor_i8(&[32], 1);
        let b = tensor_i8(&[32], 2);
        assert_ne!(a, b);
    }

    #[test]
    fn values_respect_headroom() {
        let t = tensor_i8(&[1000], 3);
        assert!(t.data().iter().all(|&v| (-64..=63).contains(&v)));
    }

    #[test]
    fn bias_is_deterministic_and_bounded() {
        let a = bias_i32(16, 9);
        assert_eq!(a, bias_i32(16, 9));
        assert!(a.iter().all(|&v| (-512..=512).contains(&v)));
    }
}
