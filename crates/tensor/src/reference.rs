//! Reference (oracle) operators.
//!
//! Straightforward nested-loop implementations of every layer the paper's
//! workloads use: dense/fully-connected, 2D convolution, pointwise
//! convolution, depthwise convolution, elementwise add, and global average
//! pooling — int8 with int32 accumulation and shared [`Requant`]
//! arithmetic. Segment-aware kernels and baselines are tested bit-exact
//! against these.

use crate::quant::{sat8, Requant};
use crate::tensor::Tensor;

/// Fully-connected layer: `In[M,K] × W[K,N] → Out[M,N]`.
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn dense(
    input: &Tensor<i8>,
    weight: &Tensor<i8>,
    bias: Option<&[i32]>,
    rq: Requant,
    clamp: (i8, i8),
) -> Tensor<i8> {
    let (m, k) = (input.shape()[0], input.shape()[1]);
    let (wk, n) = (weight.shape()[0], weight.shape()[1]);
    assert_eq!(k, wk, "dense K mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "dense bias length mismatch");
    }
    let mut out = Tensor::<i8>::zeros(&[m, n]);
    for mi in 0..m {
        for ni in 0..n {
            let mut acc: i32 = bias.map_or(0, |b| b[ni]);
            for ki in 0..k {
                acc += i32::from(input.at(&[mi, ki])) * i32::from(weight.at(&[ki, ni]));
            }
            *out.at_mut(&[mi, ni]) = rq.apply_clamped(acc, clamp);
        }
    }
    out
}

/// 2D convolution: `In[H,W,C] ⊛ W[R,S,C,K] → Out[P,Q,K]` with symmetric
/// zero padding (`pad`) and equal strides.
///
/// # Panics
///
/// Panics on shape mismatches or empty output geometry.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    input: &Tensor<i8>,
    weight: &Tensor<i8>,
    bias: Option<&[i32]>,
    stride: usize,
    pad: usize,
    rq: Requant,
    clamp: (i8, i8),
) -> Tensor<i8> {
    let (h, w, c) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (r, s, wc, k) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c, wc, "conv2d channel mismatch");
    assert!(stride >= 1, "stride must be >= 1");
    let p = (h + 2 * pad)
        .checked_sub(r)
        .expect("window larger than padded input")
        / stride
        + 1;
    let q = (w + 2 * pad)
        .checked_sub(s)
        .expect("window larger than padded input")
        / stride
        + 1;
    if let Some(b) = bias {
        assert_eq!(b.len(), k, "conv2d bias length mismatch");
    }
    let mut out = Tensor::<i8>::zeros(&[p, q, k]);
    for pi in 0..p {
        for qi in 0..q {
            for ki in 0..k {
                let mut acc: i32 = bias.map_or(0, |b| b[ki]);
                for ri in 0..r {
                    for si in 0..s {
                        let hy = (pi * stride + ri) as isize - pad as isize;
                        let wx = (qi * stride + si) as isize - pad as isize;
                        if hy < 0 || wx < 0 || hy >= h as isize || wx >= w as isize {
                            continue; // zero padding
                        }
                        for ci in 0..c {
                            acc += i32::from(input.at(&[hy as usize, wx as usize, ci]))
                                * i32::from(weight.at(&[ri, si, ci, ki]));
                        }
                    }
                }
                *out.at_mut(&[pi, qi, ki]) = rq.apply_clamped(acc, clamp);
            }
        }
    }
    out
}

/// Pointwise (1×1) convolution: `In[H,W,C] × W[C,K] → Out[H,W,K]` with
/// equal strides (stride subsamples the input).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn pointwise(
    input: &Tensor<i8>,
    weight: &Tensor<i8>,
    bias: Option<&[i32]>,
    stride: usize,
    rq: Requant,
    clamp: (i8, i8),
) -> Tensor<i8> {
    let (h, w, c) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (wc, k) = (weight.shape()[0], weight.shape()[1]);
    assert_eq!(c, wc, "pointwise channel mismatch");
    let p = (h - 1) / stride + 1;
    let q = (w - 1) / stride + 1;
    if let Some(b) = bias {
        assert_eq!(b.len(), k, "pointwise bias length mismatch");
    }
    let mut out = Tensor::<i8>::zeros(&[p, q, k]);
    for pi in 0..p {
        for qi in 0..q {
            for ki in 0..k {
                let mut acc: i32 = bias.map_or(0, |b| b[ki]);
                for ci in 0..c {
                    acc += i32::from(input.at(&[pi * stride, qi * stride, ci]))
                        * i32::from(weight.at(&[ci, ki]));
                }
                *out.at_mut(&[pi, qi, ki]) = rq.apply_clamped(acc, clamp);
            }
        }
    }
    out
}

/// Depthwise convolution: `In[H,W,C] ⊛ W[R,S,C] → Out[P,Q,C]`.
///
/// # Panics
///
/// Panics on shape mismatches or empty output geometry.
#[allow(clippy::too_many_arguments)]
pub fn depthwise(
    input: &Tensor<i8>,
    weight: &Tensor<i8>,
    bias: Option<&[i32]>,
    stride: usize,
    pad: usize,
    rq: Requant,
    clamp: (i8, i8),
) -> Tensor<i8> {
    let (h, w, c) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (r, s, wc) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
    assert_eq!(c, wc, "depthwise channel mismatch");
    let p = (h + 2 * pad)
        .checked_sub(r)
        .expect("window larger than padded input")
        / stride
        + 1;
    let q = (w + 2 * pad)
        .checked_sub(s)
        .expect("window larger than padded input")
        / stride
        + 1;
    if let Some(b) = bias {
        assert_eq!(b.len(), c, "depthwise bias length mismatch");
    }
    let mut out = Tensor::<i8>::zeros(&[p, q, c]);
    for pi in 0..p {
        for qi in 0..q {
            for ci in 0..c {
                let mut acc: i32 = bias.map_or(0, |b| b[ci]);
                for ri in 0..r {
                    for si in 0..s {
                        let hy = (pi * stride + ri) as isize - pad as isize;
                        let wx = (qi * stride + si) as isize - pad as isize;
                        if hy < 0 || wx < 0 || hy >= h as isize || wx >= w as isize {
                            continue;
                        }
                        acc += i32::from(input.at(&[hy as usize, wx as usize, ci]))
                            * i32::from(weight.at(&[ri, si, ci]));
                    }
                }
                *out.at_mut(&[pi, qi, ci]) = rq.apply_clamped(acc, clamp);
            }
        }
    }
    out
}

/// Elementwise residual add with int8 saturation.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add(a: &Tensor<i8>, b: &Tensor<i8>) -> Tensor<i8> {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| sat8(i64::from(x) + i64::from(y)))
        .collect();
    Tensor::from_vec(a.shape(), data)
}

/// Channel concatenation: `A[H,W,Ca] ⧺ B[H,W,Cb] → Out[H,W,Ca+Cb]`.
///
/// # Panics
///
/// Panics if the spatial shapes differ or either tensor is not rank 3.
pub fn concat(a: &Tensor<i8>, b: &Tensor<i8>) -> Tensor<i8> {
    assert_eq!(a.shape().len(), 3, "concat expects [H,W,C] operands");
    assert_eq!(b.shape().len(), 3, "concat expects [H,W,C] operands");
    assert_eq!(a.shape()[..2], b.shape()[..2], "concat spatial mismatch");
    let (h, w) = (a.shape()[0], a.shape()[1]);
    let (ca, cb) = (a.shape()[2], b.shape()[2]);
    let mut data = Vec::with_capacity(h * w * (ca + cb));
    for px in 0..h * w {
        data.extend_from_slice(&a.data()[px * ca..(px + 1) * ca]);
        data.extend_from_slice(&b.data()[px * cb..(px + 1) * cb]);
    }
    Tensor::from_vec(&[h, w, ca + cb], data)
}

/// Global average pooling: `In[H,W,C] → Out[1,1,C]` with round-to-nearest.
pub fn global_avg_pool(input: &Tensor<i8>) -> Tensor<i8> {
    let (h, w, c) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let n = (h * w) as i64;
    let mut out = Tensor::<i8>::zeros(&[1, 1, c]);
    for ci in 0..c {
        let mut acc = 0i64;
        for hi in 0..h {
            for wi in 0..w {
                acc += i64::from(input.at(&[hi, wi, ci]));
            }
        }
        let rounded = if acc >= 0 {
            (acc + n / 2) / n
        } else {
            -((-acc + n / 2) / n)
        };
        *out.at_mut(&[0, 0, ci]) = sat8(rounded);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::NO_CLAMP;

    fn t(shape: &[usize], v: Vec<i8>) -> Tensor<i8> {
        Tensor::from_vec(shape, v)
    }

    #[test]
    fn dense_identity_weight() {
        let input = t(&[2, 3], vec![1, 2, 3, 4, 5, 6]);
        let eye = t(&[3, 3], vec![1, 0, 0, 0, 1, 0, 0, 0, 1]);
        let out = dense(&input, &eye, None, Requant::identity(), NO_CLAMP);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn dense_bias_and_clamp() {
        let input = t(&[1, 2], vec![10, -10]);
        let weight = t(&[2, 1], vec![1, 1]);
        let out = dense(&input, &weight, Some(&[5]), Requant::identity(), (0, 127));
        assert_eq!(out.data(), &[5]); // 10 - 10 + 5 = 5, ReLU keeps it
        let out = dense(&input, &weight, Some(&[-9]), Requant::identity(), (0, 127));
        assert_eq!(out.data(), &[0]); // clamped
    }

    #[test]
    fn pointwise_equals_conv2d_1x1() {
        let input = t(&[3, 3, 2], (0..18).map(|v| v as i8 - 9).collect());
        let w_pw = t(&[2, 4], (0..8).map(|v| v as i8 - 4).collect());
        let w_conv = t(&[1, 1, 2, 4], w_pw.data().to_vec());
        let rq = Requant::from_scale(0.5, 1);
        let a = pointwise(&input, &w_pw, None, 1, rq, NO_CLAMP);
        let b = conv2d(&input, &w_conv, None, 1, 0, rq, NO_CLAMP);
        assert_eq!(a, b);
    }

    #[test]
    fn conv2d_same_padding_geometry() {
        let input = Tensor::<i8>::zeros(&[8, 8, 3]);
        let weight = Tensor::<i8>::zeros(&[3, 3, 3, 5]);
        let out = conv2d(&input, &weight, None, 1, 1, Requant::identity(), NO_CLAMP);
        assert_eq!(out.shape(), &[8, 8, 5]);
        let out = conv2d(&input, &weight, None, 2, 1, Requant::identity(), NO_CLAMP);
        assert_eq!(out.shape(), &[4, 4, 5]);
    }

    #[test]
    fn conv2d_counts_padding_as_zero() {
        // All-ones 3x3 kernel over all-ones input: corner output touches
        // only 4 real pixels, center touches 9.
        let input = t(&[3, 3, 1], vec![1; 9]);
        let weight = t(&[3, 3, 1, 1], vec![1; 9]);
        let out = conv2d(&input, &weight, None, 1, 1, Requant::identity(), NO_CLAMP);
        assert_eq!(out.at(&[0, 0, 0]), 4);
        assert_eq!(out.at(&[1, 1, 0]), 9);
        assert_eq!(out.at(&[0, 1, 0]), 6);
    }

    #[test]
    fn depthwise_keeps_channels_independent() {
        // Channel 0 kernel = identity (center tap), channel 1 kernel = 2x.
        let input = t(&[2, 2, 2], vec![1, 10, 2, 20, 3, 30, 4, 40]);
        let mut wdata = vec![0i8; 9 * 2];
        wdata[4 * 2] = 1; // center tap, channel 0
        wdata[4 * 2 + 1] = 2; // center tap, channel 1
        let weight = t(&[3, 3, 2], wdata);
        let out = depthwise(&input, &weight, None, 1, 1, Requant::identity(), NO_CLAMP);
        assert_eq!(out.shape(), &[2, 2, 2]);
        assert_eq!(out.at(&[0, 0, 0]), 1);
        assert_eq!(out.at(&[0, 0, 1]), 20);
        assert_eq!(out.at(&[1, 1, 0]), 4);
        assert_eq!(out.at(&[1, 1, 1]), 80);
    }

    #[test]
    fn add_saturates() {
        let a = t(&[3], vec![100, -100, 1]);
        let b = t(&[3], vec![100, -100, 2]);
        assert_eq!(add(&a, &b).data(), &[127, -128, 3]);
    }

    #[test]
    fn global_avg_pool_rounds() {
        let input = t(&[2, 2, 1], vec![1, 2, 2, 2]);
        assert_eq!(global_avg_pool(&input).data(), &[2]); // 7/4 -> 2
    }

    #[test]
    fn strided_pointwise_subsamples() {
        let input = t(&[4, 4, 1], (0..16).map(|v| v as i8).collect());
        let weight = t(&[1, 1], vec![1]);
        let out = pointwise(&input, &weight, None, 2, Requant::identity(), NO_CLAMP);
        assert_eq!(out.shape(), &[2, 2, 1]);
        assert_eq!(out.data(), &[0, 2, 8, 10]);
    }
}
