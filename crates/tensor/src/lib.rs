//! # vmcu-tensor — quantized tensors and reference operators
//!
//! The data substrate of the vMCU reproduction: dense row-major
//! [`Tensor`]s (int8 activations/weights, int32 accumulators),
//! TFLite-style fixed-point [requantization](quant::Requant), seeded
//! [synthetic data](random), and nested-loop [reference
//! operators](mod@reference) that act as the correctness oracle for every
//! optimized kernel in the workspace.
//!
//! # Examples
//!
//! ```
//! use vmcu_tensor::{quant::{Requant, NO_CLAMP}, random, reference};
//!
//! let input = random::tensor_i8(&[8, 8, 4], 1);
//! let weight = random::tensor_i8(&[4, 8], 2);
//! let rq = Requant::from_scale(1.0 / 64.0, 0);
//! let out = reference::pointwise(&input, &weight, None, 1, rq, NO_CLAMP);
//! assert_eq!(out.shape(), &[8, 8, 8]);
//! ```

pub mod quant;
pub mod random;
pub mod reference;
pub mod tensor;

pub use quant::{Requant, NO_CLAMP};
pub use tensor::Tensor;
