//! Dense row-major tensors.
//!
//! MCUs run dense, quantized workloads (§2.1/§4): data is int8 activations
//! and weights with int32 accumulators, in NHWC layout with batch 1 (so
//! activations are `[H, W, C]` and dense inputs `[M, K]`). [`Tensor`] is a
//! minimal bounds-checked row-major container shared by the reference
//! operators, the kernels, and the planners.

use std::fmt;

/// A dense row-major tensor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a zero-initialized tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dims must be positive, got {shape:?}"
        );
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![T::default(); len],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<T>) -> Self {
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dims must be positive, got {shape:?}"
        );
        let len: usize = shape.iter().product();
        assert_eq!(data.len(), len, "data length must match shape volume");
        Self {
            shape: shape.to_vec(),
            data,
        }
    }
}

impl<T: Copy> Tensor<T> {
    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data slice (row-major).
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat data slice.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1; self.shape.len()];
        for d in (0..self.shape.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.shape[d + 1];
        }
        s
    }

    /// Flat index of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or any coordinate is out of range.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (d, (&i, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < dim, "index {i} out of range for dim {d} (size {dim})");
            flat = flat * dim + i;
        }
        flat
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at(&self, index: &[usize]) -> T {
        self.data[self.flat_index(index)]
    }

    /// Mutable element reference at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut T {
        let flat = self.flat_index(index);
        &mut self.data[flat]
    }
}

impl Tensor<i8> {
    /// Raw bytes of an int8 tensor (two's complement), for loading into
    /// simulated memories.
    pub fn as_bytes(&self) -> Vec<u8> {
        self.data.iter().map(|&v| v as u8).collect()
    }

    /// Reconstructs an int8 tensor from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if the byte count does not match the shape volume.
    pub fn from_bytes(shape: &[usize], bytes: &[u8]) -> Self {
        let data: Vec<i8> = bytes.iter().map(|&b| b as i8).collect();
        Self::from_vec(shape, data)
    }
}

impl<T: Copy + fmt::Display> fmt::Display for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}[", self.shape)?;
        let preview = self.data.len().min(8);
        for (i, v) in self.data[..preview].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > preview {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut t = Tensor::<i32>::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.strides(), vec![12, 4, 1]);
        *t.at_mut(&[1, 2, 3]) = 42;
        assert_eq!(t.at(&[1, 2, 3]), 42);
        assert_eq!(t.data()[23], 42);
    }

    #[test]
    fn from_vec_validates_volume() {
        let t = Tensor::from_vec(&[2, 2], vec![1i8, 2, 3, 4]);
        assert_eq!(t.at(&[1, 0]), 3);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_volume() {
        let _ = Tensor::from_vec(&[2, 2], vec![1i8, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_is_bounds_checked() {
        let t = Tensor::<i8>::zeros(&[2, 2]);
        let _ = t.at(&[0, 2]);
    }

    #[test]
    fn byte_round_trip_preserves_sign() {
        let t = Tensor::from_vec(&[4], vec![-128i8, -1, 0, 127]);
        let back = Tensor::from_bytes(&[4], &t.as_bytes());
        assert_eq!(t, back);
    }

    #[test]
    fn display_previews() {
        let t = Tensor::from_vec(&[10], (0..10i8).collect());
        let s = t.to_string();
        assert!(s.contains('…'));
    }
}
