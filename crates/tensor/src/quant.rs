//! Fixed-point requantization.
//!
//! Quantized inference accumulates int8×int8 products in int32 and rescales
//! back to int8 with a fixed-point multiplier, in the style of TFLite /
//! CMSIS-NN: `out = sat8(round(acc · mult / 2^(31+shift)) + zero_point)`.
//! Rounding is half-away-from-zero. The **same** [`Requant::apply`] is used
//! by the reference operators, the segment-aware kernels, the baseline
//! kernels, and the IR interpreter, so functional equivalence between them
//! is bit-exact by construction.

/// Saturates an integer to int8.
pub fn sat8(v: i64) -> i8 {
    v.clamp(i64::from(i8::MIN), i64::from(i8::MAX)) as i8
}

/// A requantization: fixed-point multiplier, right shift, output zero
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Requant {
    /// Multiplier in `[2^30, 2^31)` (Q31 fixed point).
    pub mult: i32,
    /// Extra right shift; the total shift is `31 + shift` and must stay
    /// positive.
    pub shift: i32,
    /// Output zero point.
    pub zp: i32,
}

impl Requant {
    /// Builds the requantization closest to a real `scale` factor
    /// (`out ≈ acc · scale + zp`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale < 1e9` (all DNN rescales are tiny).
    pub fn from_scale(scale: f64, zp: i32) -> Self {
        assert!(scale > 0.0 && scale < 1e9, "unreasonable scale {scale}");
        let mut shift = 0i32;
        let mut s = scale;
        while s < 0.5 {
            s *= 2.0;
            shift += 1;
        }
        while s >= 1.0 {
            s /= 2.0;
            shift -= 1;
        }
        // s in [0.5, 1): mult = s · 2^31 in [2^30, 2^31)
        let mult = (s * (1u64 << 31) as f64).round() as i64;
        let (mult, shift) = if mult == 1 << 31 {
            (1i64 << 30, shift + 1)
        } else {
            (mult, shift)
        };
        assert!(31 + shift >= 1, "scale too large for Q31 requantization");
        Self {
            mult: mult as i32,
            shift,
            zp,
        }
    }

    /// The real scale this requantization approximates.
    pub fn scale(&self) -> f64 {
        f64::from(self.mult) / 2f64.powi(31 + self.shift)
    }

    /// An identity-ish rescale (scale 1.0, zero point 0) for tests.
    pub fn identity() -> Self {
        Self::from_scale(1.0, 0)
    }

    /// Applies the requantization to an int32 accumulator.
    pub fn apply(&self, acc: i32) -> i8 {
        let prod = i64::from(acc) * i64::from(self.mult);
        let total_shift = 31 + self.shift;
        debug_assert!(total_shift >= 1);
        let half = 1i64 << (total_shift - 1);
        let rounded = if prod >= 0 {
            (prod + half) >> total_shift
        } else {
            -((-prod + half) >> total_shift)
        };
        sat8(rounded + i64::from(self.zp))
    }

    /// Applies the requantization followed by an activation clamp
    /// (fused ReLU/ReLU6 in quantized form).
    pub fn apply_clamped(&self, acc: i32, clamp: (i8, i8)) -> i8 {
        self.apply(acc).clamp(clamp.0, clamp.1)
    }
}

/// No activation: the full int8 range.
pub const NO_CLAMP: (i8, i8) = (i8::MIN, i8::MAX);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat8_clamps() {
        assert_eq!(sat8(1000), 127);
        assert_eq!(sat8(-1000), -128);
        assert_eq!(sat8(5), 5);
    }

    #[test]
    fn identity_scale_is_one() {
        let rq = Requant::identity();
        assert!((rq.scale() - 1.0).abs() < 1e-6);
        for v in [-100, -1, 0, 1, 100] {
            assert_eq!(rq.apply(v), v as i8);
        }
    }

    #[test]
    fn from_scale_round_trips() {
        for scale in [0.5, 0.003, 0.999, 1.5, 2.0, 1e-4] {
            let rq = Requant::from_scale(scale, 0);
            assert!(
                (rq.scale() - scale).abs() / scale < 1e-6,
                "scale {scale} -> {}",
                rq.scale()
            );
            assert!(rq.mult >= 1 << 30);
        }
    }

    #[test]
    fn rounding_is_half_away_from_zero() {
        let rq = Requant::from_scale(0.5, 0);
        assert_eq!(rq.apply(3), 2); // 1.5 -> 2
        assert_eq!(rq.apply(-3), -2); // -1.5 -> -2
        assert_eq!(rq.apply(2), 1);
        assert_eq!(rq.apply(-2), -1);
    }

    #[test]
    fn zero_point_offsets_output() {
        let rq = Requant::from_scale(1.0, 10);
        assert_eq!(rq.apply(5), 15);
        assert_eq!(rq.apply(120), 127); // saturates after offset
    }

    #[test]
    fn clamped_apply_applies_activation() {
        let rq = Requant::identity();
        assert_eq!(rq.apply_clamped(-5, (0, 127)), 0); // ReLU
        assert_eq!(rq.apply_clamped(100, (0, 6)), 6); // quantized ReLU6
    }

    #[test]
    fn tiny_scales_preserve_monotonicity() {
        let rq = Requant::from_scale(1.0 / 4096.0, 0);
        let mut last = i8::MIN;
        for acc in (-600_000..600_000).step_by(9973) {
            let v = rq.apply(acc);
            assert!(v >= last, "requantization must be monotone");
            last = v;
        }
    }
}
