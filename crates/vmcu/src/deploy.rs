//! Plan once, run many: [`Deployment`] and [`Session`].
//!
//! vMCU's whole point is that planning — segment-level memory layout,
//! fusion grouping, patch-grid search — happens ahead of time, so the
//! device only executes a fixed schedule. This module makes that split a
//! first-class API:
//!
//! * [`Deployment`] (built via [`Engine::deploy`]) validates device fit
//!   **once**, memoizes every plan artifact the policy needs (the
//!   [`MemoryPlan`] plus the policy's fusion/patch/chain plans in a
//!   [`PlanSet`]), caches the resolved planner+executor pair, and owns
//!   the weights that will be staged into Flash. Deployments are cheap
//!   to clone (`Arc`-backed) and `Send + Sync`, so a fleet shares one
//!   per model across workers.
//! * [`Session`] ([`Deployment::session`]) boots a machine, stages the
//!   firmware image (weights into Flash) once, and then serves
//!   [`Session::infer`] calls with **zero planning work** — checkable
//!   via [`vmcu_plan::telemetry`]. Between inferences only the volatile
//!   state (RAM, counters) resets; the flash image stays resident, and
//!   a leaked-state bug (an executor programming Flash mid-inference)
//!   surfaces as a typed [`EngineError::StateLeak`], never as silent
//!   corruption.
//!
//! [`Engine::deploy`]: crate::engine::Engine::deploy
//! [`MemoryPlan`]: vmcu_plan::MemoryPlan

use crate::engine::{InferenceReport, PlannerKind};
use crate::error::EngineError;
use crate::exec::{stage_graph, ExecCtx, Executor, StagedLayer};
use std::sync::Arc;
use std::time::Instant;
use vmcu_graph::{Graph, LayerWeights};
use vmcu_plan::planner::MemoryPlanner;
use vmcu_plan::{ChainPlan, FusionPlan, MemoryPlan, OrderPlan, PatchPlan, SplitPlan};
use vmcu_sim::{Device, Machine};
use vmcu_tensor::Tensor;

/// Every plan artifact a policy needs at inference time, memoized at
/// deploy time. The [`MemoryPlan`] is always present (fit validation and
/// per-node report accounting); the policy-specific plans are `Some`
/// only for the executor that consumes them.
#[derive(Debug, Clone)]
pub struct PlanSet {
    /// One plan entry per execution node — the accounting source for
    /// every [`LayerReport`](crate::engine::LayerReport).
    pub memory: MemoryPlan,
    /// The fusion plan (fused policy).
    pub fusion: Option<FusionPlan>,
    /// The patch plan (patched policy).
    pub patch: Option<PatchPlan>,
    /// The §4 whole-network chain plan (vMCU policy, chain graphs only).
    pub chain: Option<ChainPlan>,
    /// The multi-device partition (split policy, chain graphs only).
    pub split: Option<SplitPlan>,
    /// The searched execution order (reorder policy).
    pub order: Option<OrderPlan>,
}

struct DeployInner {
    device: Device,
    kind: PlannerKind,
    planner: Box<dyn MemoryPlanner>,
    executor: Box<dyn Executor>,
    graph: Graph,
    weights: Vec<LayerWeights>,
    plans: PlanSet,
    planning_ms: f64,
    image_bytes: usize,
}

impl std::fmt::Debug for DeployInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("device", &self.device.name)
            .field("kind", &self.kind)
            .field("graph", &self.graph.name)
            .field("nodes", &self.plans.memory.layers.len())
            .field("planning_ms", &self.planning_ms)
            .finish_non_exhaustive()
    }
}

/// A model deployed to a device under one policy: fit validated once,
/// plans memoized, planner+executor resolved, weights owned. Cheap to
/// clone and share across threads; create per-device execution state
/// with [`Deployment::session`].
#[derive(Debug, Clone)]
pub struct Deployment {
    inner: Arc<DeployInner>,
}

impl Deployment {
    /// The checked construction path: plans the graph, rejects
    /// non-deployable models with a typed error naming the bottleneck.
    pub(crate) fn new(
        device: Device,
        kind: PlannerKind,
        graph: &Graph,
        weights: &[LayerWeights],
    ) -> Result<Self, EngineError> {
        let dep = Self::new_unchecked(device, kind, graph, weights)?;
        let plan = &dep.inner.plans.memory;
        if !plan.deployable() {
            let worst = &plan.layers[plan.bottleneck()];
            return Err(EngineError::DoesNotFit {
                layer: worst.name.clone(),
                needed: worst.measured_bytes,
                available: dep.inner.device.ram_bytes,
            });
        }
        Ok(dep)
    }

    /// Plans and stages without the whole-graph fit check — the legacy
    /// chained path validates only its (smaller) chain window, so it must
    /// not be gated on per-layer deployability.
    pub(crate) fn new_unchecked(
        device: Device,
        kind: PlannerKind,
        graph: &Graph,
        weights: &[LayerWeights],
    ) -> Result<Self, EngineError> {
        assert_eq!(weights.len(), graph.len(), "weights/layers mismatch");
        let started = Instant::now();
        let planner = kind.planner();
        let executor = kind.executor();
        let plans = executor.prepare(&*planner, graph, &device);
        // Validate the firmware image up front so `session()` cannot
        // fail: a dry-run staging into a probe machine exercises the
        // exact code path sessions use (layer/weights kinds, Flash
        // capacity), so the validation can never drift from it.
        let mut probe = Machine::new(device.clone());
        stage_graph(&mut probe, graph.layers(), weights)?;
        let image_bytes = probe.flash.used();
        drop(probe);
        let planning_ms = started.elapsed().as_secs_f64() * 1e3;
        Ok(Self {
            inner: Arc::new(DeployInner {
                device,
                kind,
                planner,
                executor,
                graph: graph.clone(),
                weights: weights.to_vec(),
                plans,
                planning_ms,
                image_bytes,
            }),
        })
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The deployed policy.
    pub fn planner_kind(&self) -> PlannerKind {
        self.inner.kind
    }

    /// The deployed graph.
    pub fn graph(&self) -> &Graph {
        &self.inner.graph
    }

    /// The cached planning policy object — resolved once at deploy, never
    /// re-boxed per call.
    pub fn planner(&self) -> &dyn MemoryPlanner {
        &*self.inner.planner
    }

    /// The cached executor — the other half of the policy pair.
    pub fn executor(&self) -> &dyn Executor {
        &*self.inner.executor
    }

    /// The memoized whole-graph memory plan (one entry per execution
    /// node).
    pub fn plan(&self) -> &MemoryPlan {
        &self.inner.plans.memory
    }

    /// All memoized plan artifacts.
    pub fn plans(&self) -> &PlanSet {
        &self.inner.plans
    }

    /// The memoized fusion plan (fused policy only).
    pub fn fusion_plan(&self) -> Option<&FusionPlan> {
        self.inner.plans.fusion.as_ref()
    }

    /// The memoized patch plan (patched policy only).
    pub fn patch_plan(&self) -> Option<&PatchPlan> {
        self.inner.plans.patch.as_ref()
    }

    /// The memoized §4 chain plan (vMCU policy only).
    pub fn chain_plan(&self) -> Option<&ChainPlan> {
        self.inner.plans.chain.as_ref()
    }

    /// The memoized multi-device partition (split policy only).
    pub fn split_plan(&self) -> Option<&SplitPlan> {
        self.inner.plans.split.as_ref()
    }

    /// The memoized execution-order search result (reorder policy only).
    pub fn order_plan(&self) -> Option<&OrderPlan> {
        self.inner.plans.order.as_ref()
    }

    /// Peak SRAM this model commits on its device (activations +
    /// workspace at the bottleneck node, excluding the per-device runtime
    /// overhead) — priced from the **cached** plan, so admission control
    /// never replans.
    pub fn peak_demand_bytes(&self) -> usize {
        if self.inner.plans.memory.layers.is_empty() {
            return 0;
        }
        self.inner
            .plans
            .memory
            .bottleneck_bytes()
            .saturating_sub(self.inner.device.runtime_overhead_bytes)
    }

    /// Host milliseconds spent planning this deployment (fit validation
    /// plus every memoized plan artifact) — the cost `session().infer()`
    /// amortizes away.
    pub fn planning_ms(&self) -> f64 {
        self.inner.planning_ms
    }

    /// Size of the staged firmware image (all weights programmed into
    /// Flash), measured once at deploy time from the dry-run probe —
    /// the bytes a hot-swap must re-program.
    ///
    /// # Examples
    ///
    /// ```
    /// use vmcu::prelude::*;
    ///
    /// let g = vmcu_graph::zoo::demo_linear_net();
    /// let weights = g.random_weights(7);
    /// let dep = Engine::new(Device::stm32_f767zi()).deploy(&g, &weights)?;
    /// assert!(dep.image_bytes() > 0);
    /// assert!(dep.image_bytes() <= dep.device().flash_bytes);
    /// # Ok::<(), vmcu::EngineError>(())
    /// ```
    pub fn image_bytes(&self) -> usize {
        self.inner.image_bytes
    }

    /// Simulated device milliseconds to (re-)stage this deployment's
    /// firmware image into Flash — [`image_bytes`](Self::image_bytes)
    /// priced through the device cost model's flash-programming cost.
    ///
    /// This is what a model hot-swap charges: evict a resident model,
    /// stage this one, and the device is busy for `staging_ms()` of
    /// simulated time before it can serve the first request. Staging is
    /// deterministic (pure integer cycle counts scaled by the device
    /// clock), so fleet simulations that charge it stay bit-reproducible.
    ///
    /// # Examples
    ///
    /// ```
    /// use vmcu::prelude::*;
    ///
    /// let g = vmcu_graph::zoo::demo_linear_net();
    /// let weights = g.random_weights(7);
    /// let dep = Engine::new(Device::stm32_f411re()).deploy(&g, &weights)?;
    /// // Programming flash is slow: staging costs real simulated time.
    /// assert!(dep.staging_ms() > 0.0);
    /// # Ok::<(), vmcu::EngineError>(())
    /// ```
    pub fn staging_ms(&self) -> f64 {
        let cycles = self
            .inner
            .device
            .cost
            .flash_write_cost(self.inner.image_bytes as u64);
        self.inner.device.cycles_to_ms(cycles)
    }

    /// Creates a session: boots a machine for the device and stages the
    /// firmware image (all weights into Flash) once. Everything that can
    /// fail was validated at deploy time.
    ///
    /// # Panics
    ///
    /// Panics if staging the firmware image fails — deploy-time
    /// validation of layer kinds and flash capacity rules that out.
    pub fn session(&self) -> Session {
        let mut machine = Machine::new(self.inner.device.clone());
        let staged = stage_graph(&mut machine, self.inner.graph.layers(), &self.inner.weights)
            .expect("deploy validated layer kinds and flash capacity");
        let staged_flash_bytes = machine.flash.used();
        Session {
            deployment: self.clone(),
            machine,
            staged,
            staged_flash_bytes,
            inferences: 0,
        }
    }
}

/// Reusable per-device execution state for one deployment: the simulated
/// machine (its RAM buffer alone is the full device SRAM) with the
/// deployment's weights resident in Flash. [`Session::infer`] runs with
/// zero replanning; a long-lived worker keeps one session per resident
/// model and calls it for every request.
#[derive(Debug)]
pub struct Session {
    deployment: Deployment,
    machine: Machine,
    staged: Vec<StagedLayer>,
    staged_flash_bytes: usize,
    inferences: u64,
}

impl Session {
    /// The deployment this session executes.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Inferences served so far.
    pub fn inferences(&self) -> u64 {
        self.inferences
    }

    /// Bytes of Flash this session staged when it booted.
    pub fn staged_flash_bytes(&self) -> usize {
        self.staged_flash_bytes
    }

    /// Simulated device milliseconds it cost to stage this session's
    /// flash image — the price a fleet charges when it hot-swaps this
    /// model onto the device. Delegates to
    /// [`Deployment::staging_ms`].
    pub fn staging_ms(&self) -> f64 {
        self.deployment.staging_ms()
    }

    /// Resets volatile machine state between inferences and verifies the
    /// deployed invariants first: the staged flash image must be exactly
    /// as deploy left it — an executor that programmed Flash mid-run is
    /// a leaked-state bug, reported as a typed error, never silently
    /// absorbed.
    fn reset_between_inferences(&mut self) -> Result<(), EngineError> {
        let found = self.machine.flash.used();
        if found != self.staged_flash_bytes {
            return Err(EngineError::StateLeak {
                what: "staged flash image",
                expected: self.staged_flash_bytes,
                found,
            });
        }
        self.machine.reset_volatile();
        Ok(())
    }

    /// Runs one inference through the deployed schedule — no planning,
    /// no flash programming, no allocation beyond the report itself.
    /// Results are bit-identical to the legacy `run_graph*` paths, call
    /// after call.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::StateLeak`] when a previous inference
    /// corrupted deployed state, [`EngineError::Unsupported`] for layer
    /// kinds the executor cannot run, and pool/memory errors on internal
    /// bugs.
    pub fn infer(&mut self, input: &Tensor<i8>) -> Result<InferenceReport, EngineError> {
        self.reset_between_inferences()?;
        let report = {
            let ctx = ExecCtx {
                device: &self.deployment.inner.device,
                graph: &self.deployment.inner.graph,
                plans: &self.deployment.inner.plans,
                staged: &self.staged,
            };
            self.deployment
                .inner
                .executor
                .infer(&ctx, &mut self.machine, input)?
        };
        self.inferences += 1;
        Ok(report)
    }

    /// Runs one inference chained through a single circular pool (§4's
    /// whole-network deployment model). Only the vMCU policy supports
    /// it.
    ///
    /// # Errors
    ///
    /// [`EngineError::Unsupported`] for non-vMCU policies,
    /// [`EngineError::DoesNotFit`] when the chain window exceeds RAM,
    /// plus the [`Session::infer`] contract.
    pub fn infer_chained(
        &mut self,
        input: &Tensor<i8>,
    ) -> Result<(InferenceReport, ChainPlan), EngineError> {
        self.reset_between_inferences()?;
        let out = {
            let ctx = ExecCtx {
                device: &self.deployment.inner.device,
                graph: &self.deployment.inner.graph,
                plans: &self.deployment.inner.plans,
                staged: &self.staged,
            };
            self.deployment
                .inner
                .executor
                .infer_chained(&ctx, &mut self.machine, input)?
        };
        self.inferences += 1;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use vmcu_graph::zoo;
    use vmcu_kernels::IbScheme;
    use vmcu_tensor::random;

    fn deployed() -> (Deployment, Tensor<i8>) {
        let g = zoo::demo_linear_net();
        let weights = g.random_weights(7);
        let input = random::tensor_i8(&g.in_shape(), 8);
        let dep = Engine::new(Device::stm32_f767zi())
            .deploy(&g, &weights)
            .unwrap();
        (dep, input)
    }

    #[test]
    fn deployment_memoizes_the_policy_plans() {
        let g = zoo::mbv2_block_unfused();
        let weights = g.random_weights(1);
        let dev = Device::stm32_f411re();
        let vmcu = Engine::new(dev.clone()).deploy(&g, &weights).unwrap();
        assert!(vmcu.chain_plan().is_some(), "vMCU memoizes the chain plan");
        assert!(vmcu.fusion_plan().is_none());
        let fused = Engine::new(dev.clone())
            .planner(PlannerKind::VmcuFused(IbScheme::RowBuffer))
            .deploy(&g, &weights)
            .unwrap();
        assert!(fused.fusion_plan().is_some());
        let patched = Engine::new(dev.clone())
            .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer))
            .deploy(&g, &weights)
            .unwrap();
        assert!(patched.patch_plan().is_some());
        let te = Engine::new(dev)
            .planner(PlannerKind::TinyEngine)
            .deploy(&g, &weights)
            .unwrap();
        assert!(te.fusion_plan().is_none() && te.patch_plan().is_none());
        assert!(te.planning_ms() >= 0.0);
    }

    #[test]
    fn peak_demand_prices_from_the_cached_plan() {
        let (dep, _) = deployed();
        let expected = vmcu_plan::peak_demand_bytes(dep.planner(), dep.graph());
        assert_eq!(dep.peak_demand_bytes(), expected);
    }

    #[test]
    fn session_counts_inferences_and_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Deployment>();
        assert_send::<Session>();
        let (dep, input) = deployed();
        let mut s = dep.session();
        assert_eq!(s.inferences(), 0);
        s.infer(&input).unwrap();
        s.infer(&input).unwrap();
        assert_eq!(s.inferences(), 2);
        assert_eq!(s.deployment().graph().name, "demo-linear-net");
    }

    #[test]
    fn flash_leak_between_inferences_is_a_typed_error() {
        let (dep, input) = deployed();
        let mut s = dep.session();
        s.infer(&input).unwrap();
        // Simulate an executor bug: extra flash programmed mid-session.
        s.machine.host_program_flash(&[0xAB; 16]).unwrap();
        let err = s.infer(&input).unwrap_err();
        match err {
            EngineError::StateLeak {
                what,
                expected,
                found,
            } => {
                assert_eq!(what, "staged flash image");
                assert_eq!(found, expected + 16);
            }
            other => panic!("expected StateLeak, got {other}"),
        }
    }

    #[test]
    fn staging_is_priced_from_the_probe_image() {
        let (dep, _) = deployed();
        // The probe image at deploy equals what a live session stages.
        let s = dep.session();
        assert_eq!(dep.image_bytes(), s.staged_flash_bytes());
        // And the simulated staging price is the flash-write cost of
        // exactly those bytes, scaled by the device clock.
        let dev = dep.device();
        let expected = dev.cycles_to_ms(dev.cost.flash_write_cost(dep.image_bytes() as u64));
        assert_eq!(dep.staging_ms(), expected);
        assert_eq!(s.staging_ms(), expected);
        assert!(expected > 0.0);
    }

    #[test]
    fn oversized_firmware_image_is_rejected_at_deploy() {
        let g = zoo::demo_linear_net();
        let weights = g.random_weights(3);
        let mut dev = Device::stm32_f411re();
        dev.flash_bytes = 64; // far below any real weight image
        let err = Engine::new(dev).deploy(&g, &weights).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Mem(vmcu_sim::MemError::FlashOutOfRange { .. })
        ));
    }
}
