//! Facade error type.

use std::fmt;
use vmcu_pool::PoolError;
use vmcu_sim::MemError;

/// An engine failure.
#[derive(Debug)]
pub enum EngineError {
    /// The layer does not fit the device RAM under the selected planner —
    /// the paper's "fails to run" outcome (e.g. TinyEngine on Figure 7
    /// cases 1, 2, 4 at 128 KB).
    DoesNotFit {
        /// Layer name.
        layer: String,
        /// Bytes the plan needs (including runtime overhead).
        needed: usize,
        /// Device RAM bytes.
        available: usize,
    },
    /// The selected planner/executor combination does not support this
    /// layer kind.
    Unsupported {
        /// Layer kind.
        kind: &'static str,
        /// Executor name.
        executor: &'static str,
    },
    /// Deployed session state leaked between inferences — an invariant
    /// staged at deploy time (e.g. the flash firmware image) changed
    /// during `infer`. Indicates an executor bug; surfaced as a typed
    /// error on the next inference, never silently absorbed.
    StateLeak {
        /// The deployed invariant that changed.
        what: &'static str,
        /// Bytes the invariant held at deploy time.
        expected: usize,
        /// Bytes found before the next inference.
        found: usize,
    },
    /// Pool violation during execution (indicates a planner/kernel bug —
    /// surfaced, never silent).
    Pool(PoolError),
    /// Raw memory violation.
    Mem(MemError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DoesNotFit {
                layer,
                needed,
                available,
            } => write!(
                f,
                "layer `{layer}` needs {needed} bytes but the device has {available}"
            ),
            EngineError::Unsupported { kind, executor } => {
                write!(f, "{executor} executor does not support {kind} layers")
            }
            EngineError::StateLeak {
                what,
                expected,
                found,
            } => write!(
                f,
                "session state leak: {what} was {expected} bytes at deploy but {found} before \
                 the next inference"
            ),
            EngineError::Pool(e) => write!(f, "pool violation: {e}"),
            EngineError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Pool(e) => Some(e),
            EngineError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PoolError> for EngineError {
    fn from(e: PoolError) -> Self {
        EngineError::Pool(e)
    }
}

impl From<MemError> for EngineError {
    fn from(e: MemError) -> Self {
        EngineError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_numbers() {
        let e = EngineError::DoesNotFit {
            layer: "B2".into(),
            needed: 253_000,
            available: 131_072,
        };
        let s = e.to_string();
        assert!(s.contains("B2") && s.contains("253000") && s.contains("131072"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let e: EngineError = MemError::RamOutOfRange {
            addr: 0,
            len: 1,
            capacity: 0,
        }
        .into();
        assert!(matches!(e, EngineError::Mem(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
