//! # vmcu — coordinated memory management and kernel optimization for DNN
//! inference on MCUs
//!
//! A production-quality Rust reproduction of *vMCU* (MLSys 2024). The
//! paper's idea: virtualize the MCU's tiny SRAM as a circular pool of
//! segments and coordinate the memory manager with the kernels so that a
//! layer's output partially overlaps its input while the kernel is still
//! consuming it — cutting RAM for exactly the layers (fully-connected,
//! 2D/pointwise convolution, fused inverted bottlenecks) where tensor-level
//! managers can do nothing.
//!
//! ## Crate map
//!
//! | Crate | Paper section | Role |
//! |---|---|---|
//! | [`vmcu_ir`] | §4, §6 | affine formulation + kernel IR/DSL |
//! | [`vmcu_solver`] | §4, §5.2 | `min bIn − bOut` solvers (enumerative, analytic, closed-form, fused) |
//! | [`vmcu_sim`] | §7.1 | simulated Cortex-M4/M7 devices, cost & energy models |
//! | [`vmcu_tensor`] | — | int8 tensors, requantization, reference operators |
//! | [`vmcu_pool`] | §3–4 | the circular segment pool with clobber detection |
//! | [`vmcu_kernels`] | §5, §6.1 | segment-aware kernels + TinyEngine baselines |
//! | [`vmcu_graph`] | §7 | model graphs + the Table 2 / Figure 7 zoo |
//! | [`vmcu_plan`] | §2.3, §4, §5.2 | vMCU / TinyEngine / HMCOS / arena planners + the multi-layer fusion pass |
//! | [`vmcu_codegen`] | §6 | IR → C emission and the IR interpreter |
//!
//! ## Quickstart — plan once, run many
//!
//! Planning (memory layout, fusion grouping, patch-grid search) happens
//! once at [`Engine::deploy`]; the [`Session`] then executes a fixed
//! schedule with zero replanning — exactly the paper's offline/on-device
//! split.
//!
//! ```
//! use vmcu::prelude::*;
//!
//! // Figure 7, case H/W80,C16,K16 on the 128 KB STM32-F411RE.
//! let case = vmcu::vmcu_graph::zoo::fig7_cases()[0].clone();
//! let graph = Graph::linear(case.name.clone(), vec![LayerDesc::Pointwise(case.params)])?;
//! let weights = graph.random_weights(1);
//! let input = vmcu::vmcu_tensor::random::tensor_i8(&graph.in_shape(), 2);
//!
//! let engine = Engine::new(Device::stm32_f411re());
//! let deployment = engine.deploy(&graph, &weights)?; // fit checked, plans memoized
//! let mut session = deployment.session();            // weights staged into Flash
//! let report = session.infer(&input)?;               // zero planning from here on
//! assert_eq!(report.output.shape(), &[80, 80, 16]);
//! // vMCU fits this layer in 128 KB; TinyEngine cannot (the paper's
//! // out-of-memory cases in Figure 7).
//! assert!(report.peak_ram_bytes() <= 128 * 1024);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod deploy;
pub mod engine;
pub mod error;
pub mod exec;

pub use deploy::{Deployment, PlanSet, Session};
pub use engine::{Engine, InferenceReport, LayerReport, PlannerKind};
pub use error::EngineError;
pub use exec::{ExecCtx, Executor, StagedLayer};

#[allow(deprecated)]
pub use engine::InferenceScratch;

// Re-export the workspace crates under their natural names.
pub use vmcu_codegen;
pub use vmcu_graph;
pub use vmcu_ir;
pub use vmcu_kernels;
pub use vmcu_plan;
pub use vmcu_pool;
pub use vmcu_sim;
pub use vmcu_solver;
pub use vmcu_tensor;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::deploy::{Deployment, Session};
    pub use crate::engine::{Engine, InferenceReport, LayerReport, PlannerKind};
    pub use crate::error::EngineError;
    pub use crate::exec::Executor;
    pub use vmcu_graph::{Graph, LayerDesc, LayerWeights};
    pub use vmcu_kernels::{IbParams, IbScheme, PointwiseParams};
    pub use vmcu_plan::{
        FusedPlanner, HmcosPlanner, MemoryPlanner, PatchedPlanner, ReorderPlanner, SplitPlanner,
        TinyEnginePlanner, VmcuPlanner,
    };
    pub use vmcu_sim::Device;
    pub use vmcu_tensor::{Requant, Tensor};
}
