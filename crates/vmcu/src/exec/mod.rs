//! Pluggable executors — one per planning policy.
//!
//! The engine used to dispatch on [`PlannerKind`] inside its `run_*`
//! bodies; every new policy meant editing the engine core. Executors
//! invert that: a policy is a *pair* of a [`MemoryPlanner`] (how much
//! RAM, decided at deploy time) and an [`Executor`] (how the deployed
//! schedule runs), resolved once by [`PlannerKind::planner`] and
//! [`PlannerKind::executor`] and cached in a
//! [`Deployment`](crate::deploy::Deployment). Adding a policy is now a
//! planner impl in `vmcu-plan`, an `Executor` impl here, and one arm in
//! the `PlannerKind` resolution — the engine core never changes.
//!
//! Executors run against *deployed* state only: the graph, the plan
//! artifacts memoized at deploy time ([`PlanSet`]), and the weights
//! already staged into device Flash ([`StagedLayer`]). They must not
//! plan (the plan-call telemetry in `vmcu_plan::telemetry` makes that
//! checkable) and must not program Flash (the session's reset assertions
//! turn that into a typed [`EngineError::StateLeak`]).
//!
//! [`PlannerKind`]: crate::engine::PlannerKind
//! [`PlannerKind::planner`]: crate::engine::PlannerKind::planner
//! [`PlannerKind::executor`]: crate::engine::PlannerKind::executor
//! [`MemoryPlanner`]: vmcu_plan::MemoryPlanner
//! [`EngineError::StateLeak`]: crate::error::EngineError::StateLeak

pub mod fused;
pub mod hmcos;
pub mod patched;
pub mod reorder;
pub mod split;
pub mod tinyengine;
pub mod vmcu;

use crate::deploy::PlanSet;
use crate::engine::{InferenceReport, LayerReport};
use crate::error::EngineError;
use vmcu_graph::{Graph, LayerDesc, LayerWeights, NodeInput};
use vmcu_kernels::merge::{add_exec_distance, concat_exec_distance, run_add, run_concat};
use vmcu_plan::{ChainPlan, LayerPlan};
use vmcu_pool::SegmentPool;
use vmcu_sim::{Device, Machine};
use vmcu_tensor::Tensor;

pub use fused::FusedExecutor;
pub use hmcos::HmcosExecutor;
pub use patched::PatchedExecutor;
pub use reorder::ReorderExecutor;
pub use split::SplitExecutor;
pub use tinyengine::TinyEngineExecutor;
pub use vmcu::VmcuExecutor;

/// Flash addresses of one layer's weights, staged at deploy time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagedLayer {
    /// One contiguous weight image (pointwise, conv2d, depthwise, dense).
    Single(usize),
    /// The three images of a fused inverted bottleneck.
    Ib {
        /// Expand (1×1) weights.
        w1: usize,
        /// Depthwise weights.
        wdw: usize,
        /// Project (1×1) weights.
        w2: usize,
    },
    /// No weight image — merge layers (add, concat) carry no weights.
    None,
}

impl StagedLayer {
    /// The single image address, or a typed error for layers staged as
    /// multiple images or none (`executor` names the policy in the
    /// error).
    pub fn single(&self, executor: &'static str) -> Result<usize, EngineError> {
        match self {
            StagedLayer::Single(addr) => Ok(*addr),
            StagedLayer::Ib { .. } => Err(EngineError::Unsupported {
                kind: "inverted-bottleneck",
                executor,
            }),
            StagedLayer::None => Err(EngineError::Unsupported {
                kind: "merge",
                executor,
            }),
        }
    }
}

/// Programs one layer's weights into Flash, returning the staged
/// addresses. Image order matches the historical per-layer staging
/// (`w1`, `wdw`, `w2` for inverted bottlenecks), so deployed execution
/// is bit-identical to the legacy program-per-run path.
///
/// # Errors
///
/// Returns [`EngineError::Unsupported`] for a layer/weights kind
/// mismatch and memory errors when the Flash capacity is exceeded.
pub fn stage_layer(
    m: &mut Machine,
    layer: &LayerDesc,
    weights: &LayerWeights,
) -> Result<StagedLayer, EngineError> {
    match (layer, weights) {
        (LayerDesc::Pointwise(_), LayerWeights::Pointwise(t))
        | (LayerDesc::Conv2d(_), LayerWeights::Conv2d(t))
        | (LayerDesc::Depthwise(_), LayerWeights::Depthwise(t))
        | (LayerDesc::Dense(_), LayerWeights::Dense(t)) => {
            Ok(StagedLayer::Single(m.host_program_flash(&t.as_bytes())?))
        }
        (LayerDesc::Ib(_), LayerWeights::Ib { w1, wdw, w2 }) => Ok(StagedLayer::Ib {
            w1: m.host_program_flash(&w1.as_bytes())?,
            wdw: m.host_program_flash(&wdw.as_bytes())?,
            w2: m.host_program_flash(&w2.as_bytes())?,
        }),
        (LayerDesc::Add(_) | LayerDesc::Concat(_), LayerWeights::None) => Ok(StagedLayer::None),
        _ => Err(EngineError::Unsupported {
            kind: layer.kind(),
            executor: "staging",
        }),
    }
}

/// Stages a whole graph's weights into Flash in layer order — the
/// deployment's firmware image.
///
/// # Errors
///
/// Same contract as [`stage_layer`], per layer.
pub fn stage_graph(
    m: &mut Machine,
    layers: &[LayerDesc],
    weights: &[LayerWeights],
) -> Result<Vec<StagedLayer>, EngineError> {
    layers
        .iter()
        .zip(weights)
        .map(|(l, w)| stage_layer(m, l, w))
        .collect()
}

/// Everything an executor sees at inference time: deployed, immutable
/// state prepared once by `Engine::deploy`.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx<'a> {
    /// The target device.
    pub device: &'a Device,
    /// The deployed graph.
    pub graph: &'a Graph,
    /// Plan artifacts memoized at deploy time.
    pub plans: &'a PlanSet,
    /// Per-layer staged Flash addresses, in graph order.
    pub staged: &'a [StagedLayer],
}

impl ExecCtx<'_> {
    /// The memoized plan entry for execution node `node` (layer index
    /// for per-layer policies, node index for fused/patched plans),
    /// re-checking device fit defensively — a deployment constructed
    /// through the checked path can never hit the error.
    pub fn node_plan(&self, node: usize) -> Result<LayerPlan, EngineError> {
        let lp = self.plans.memory.layers[node].clone();
        if !lp.fits {
            return Err(EngineError::DoesNotFit {
                layer: lp.name,
                needed: lp.measured_bytes,
                available: self.device.ram_bytes,
            });
        }
        Ok(lp)
    }
}

/// How a merge kernel lays its output relative to its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// Segment-level overlap: the output lands at `−d` where `d` is the
    /// kernel's executable distance, so it reuses the dying operand
    /// slots (vMCU policies).
    Overlap,
    /// Disjoint output after both operands (tensor-level baselines;
    /// HMCOS, and TinyEngine's concat).
    Disjoint,
}

/// Shared merge-layer body: stages both operands consecutively in one
/// pool (`A` at logical 0, `B` right after), runs the segment-aware
/// merge kernel, and reads the output back. The window matches the
/// planners' pricing for each mode, so executed peaks equal planned
/// peaks byte for byte.
pub fn exec_merge(
    m: &mut Machine,
    layer: &LayerDesc,
    inputs: &[&Tensor<i8>],
    mode: MergeMode,
) -> Result<Tensor<i8>, EngineError> {
    let [a, b] = inputs else {
        return Err(EngineError::Unsupported {
            kind: layer.kind(),
            executor: "merge",
        });
    };
    match layer {
        LayerDesc::Add(p) => {
            let (d, window) = match mode {
                MergeMode::Overlap => {
                    let d = add_exec_distance(p);
                    let w = (p.in_bytes() as i64 + d.max(0)).max(p.out_bytes() as i64);
                    (d, w as usize)
                }
                MergeMode::Disjoint => (-(p.in_bytes() as i64), p.in_bytes() + p.out_bytes()),
            };
            let mut pool = SegmentPool::new(m, 0, window, p.seg)?;
            pool.host_fill_live(m, 0, &a.as_bytes())?;
            pool.host_fill_live(m, p.tensor_bytes() as i64, &b.as_bytes())?;
            run_add(m, &mut pool, p, 0, -d)?;
            let out = pool.host_read(m, -d, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.h, p.w, p.c], &out))
        }
        LayerDesc::Concat(p) => {
            let (d, window) = match mode {
                MergeMode::Overlap => {
                    let d = concat_exec_distance(p);
                    let w = (p.in_bytes() as i64 + d.max(0)).max(p.out_bytes() as i64);
                    (d, w as usize)
                }
                MergeMode::Disjoint => (-(p.in_bytes() as i64), p.in_bytes() + p.out_bytes()),
            };
            let mut pool = SegmentPool::new(m, 0, window, p.seg())?;
            pool.host_fill_live(m, 0, &a.as_bytes())?;
            pool.host_fill_live(m, p.a_bytes() as i64, &b.as_bytes())?;
            run_concat(m, &mut pool, p, 0, -d)?;
            let out = pool.host_read(m, -d, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.h, p.w, p.c_a + p.c_b], &out))
        }
        _ => Err(EngineError::Unsupported {
            kind: layer.kind(),
            executor: "merge",
        }),
    }
}

/// Walks a deployed graph in `order` (default index order when `None`),
/// holding every produced activation host-side until its last consumer —
/// the execution mirror of the planners' last-consumer liveness pricing.
/// The memoized plan rows are consumed **by step** (row `k` prices the
/// `k`-th executed node), which is the identity mapping for default-order
/// plans and the searched order for reorder plans.
///
/// # Panics
///
/// Panics if `order` is not topological (a node executes before one of
/// its producers) — deploy-time validation rules that out.
pub fn infer_in_order<E: Executor + ?Sized>(
    executor: &E,
    ctx: &ExecCtx<'_>,
    m: &mut Machine,
    input: &Tensor<i8>,
) -> Result<InferenceReport, EngineError> {
    let n = ctx.graph.len();
    let default_order: Vec<usize>;
    let order: &[usize] = match &ctx.plans.order {
        Some(plan) => &plan.order,
        None => {
            default_order = (0..n).collect();
            &default_order
        }
    };
    let mut layers = Vec::with_capacity(n);
    let mut acts: Vec<Option<Tensor<i8>>> = vec![None; n];
    for (step, &v) in order.iter().enumerate() {
        let plan = ctx.node_plan(step)?;
        let layer = &ctx.graph.layers()[v];
        let inputs: Vec<&Tensor<i8>> = ctx
            .graph
            .node_inputs(v)
            .iter()
            .map(|edge| match edge {
                NodeInput::GraphInput => input,
                NodeInput::Node(j) => acts[*j]
                    .as_ref()
                    .expect("topological order runs producers first"),
            })
            .collect();
        // Between-node reset: RAM to boot state (bit-identical to the
        // historical reset-per-layer path); counters keep accumulating —
        // reports use deltas.
        m.ram.clear();
        let before = m.snapshot();
        let out = executor.exec_node(m, layer, ctx.staged[v], &inputs)?;
        let exec = m.summarize_since(&before);
        layers.push(LayerReport {
            name: plan.name.clone(),
            plan,
            exec,
        });
        acts[v] = Some(out);
    }
    let output = acts[n - 1]
        .take()
        .expect("the last node is the graph output");
    Ok(InferenceReport { output, layers })
}

/// A policy's execution half: runs deployed graphs and single layers
/// against pre-staged weights, with **zero planning work** — every plan
/// artifact it needs was memoized at deploy time and arrives via
/// [`ExecCtx`].
pub trait Executor: std::fmt::Debug + Send + Sync {
    /// Executor display name (matches the policy's planner name).
    fn name(&self) -> &'static str;

    /// Builds every plan artifact this executor will consume at
    /// inference time — called **once**, at deploy. The default memoizes
    /// only the whole-graph [`MemoryPlan`](vmcu_plan::MemoryPlan);
    /// policies with extra artifacts (fusion plan, patch plan, chain
    /// plan) override it and add theirs.
    fn prepare(
        &self,
        planner: &dyn vmcu_plan::MemoryPlanner,
        graph: &Graph,
        device: &Device,
    ) -> PlanSet {
        PlanSet {
            memory: vmcu_plan::plan_graph(planner, graph, device),
            fusion: None,
            patch: None,
            chain: None,
            split: None,
            order: None,
        }
    }

    /// Executes one layer whose weights are staged at `staged`, reading
    /// the input from the host and returning the output tensor. The
    /// machine's RAM is caller-cleared; Flash must not be touched.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Unsupported`] for layer kinds this policy
    /// cannot run, and pool/memory errors on internal bugs.
    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError>;

    /// Executes one graph node given **all** of its input tensors in
    /// slot order — the arity-aware generalization of
    /// [`exec_layer`](Executor::exec_layer). The default delegates
    /// single-input layers to `exec_layer` and runs merges through the
    /// shared [`exec_merge`] body with disjoint operands (the
    /// tensor-level baseline layout); segment-level policies override
    /// merges to the overlapped layout.
    ///
    /// # Errors
    ///
    /// Same contract as [`exec_layer`](Executor::exec_layer).
    fn exec_node(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        inputs: &[&Tensor<i8>],
    ) -> Result<Tensor<i8>, EngineError> {
        match inputs {
            [single] => self.exec_layer(m, layer, staged, single),
            _ => exec_merge(m, layer, inputs, MergeMode::Disjoint),
        }
    }

    /// Executes the whole deployed graph for one input. The default walks
    /// the nodes in the deployed execution order (the searched order for
    /// reorder plans, index order otherwise) — one pool per node,
    /// activations held host-side until their last consumer — consuming
    /// the memoized per-step plan entries; graph-aware policies (fusion,
    /// patching) override it.
    ///
    /// # Errors
    ///
    /// Propagates the first per-node failure.
    fn infer(
        &self,
        ctx: &ExecCtx<'_>,
        m: &mut Machine,
        input: &Tensor<i8>,
    ) -> Result<InferenceReport, EngineError> {
        infer_in_order(self, ctx, m, input)
    }

    /// Executes the deployed graph chained through one circular pool
    /// (§4's multi-layer deployment model). Only the vMCU policy
    /// supports it; the default is a typed error.
    ///
    /// # Errors
    ///
    /// [`EngineError::Unsupported`] unless the policy overrides it.
    fn infer_chained(
        &self,
        ctx: &ExecCtx<'_>,
        m: &mut Machine,
        input: &Tensor<i8>,
    ) -> Result<(InferenceReport, ChainPlan), EngineError> {
        let _ = (ctx, m, input);
        Err(EngineError::Unsupported {
            kind: "chained graph",
            executor: self.name(),
        })
    }
}
