//! Pluggable executors — one per planning policy.
//!
//! The engine used to dispatch on [`PlannerKind`] inside its `run_*`
//! bodies; every new policy meant editing the engine core. Executors
//! invert that: a policy is a *pair* of a [`MemoryPlanner`] (how much
//! RAM, decided at deploy time) and an [`Executor`] (how the deployed
//! schedule runs), resolved once by [`PlannerKind::planner`] and
//! [`PlannerKind::executor`] and cached in a
//! [`Deployment`](crate::deploy::Deployment). Adding a policy is now a
//! planner impl in `vmcu-plan`, an `Executor` impl here, and one arm in
//! the `PlannerKind` resolution — the engine core never changes.
//!
//! Executors run against *deployed* state only: the graph, the plan
//! artifacts memoized at deploy time ([`PlanSet`]), and the weights
//! already staged into device Flash ([`StagedLayer`]). They must not
//! plan (the plan-call telemetry in `vmcu_plan::telemetry` makes that
//! checkable) and must not program Flash (the session's reset assertions
//! turn that into a typed [`EngineError::StateLeak`]).
//!
//! [`PlannerKind`]: crate::engine::PlannerKind
//! [`PlannerKind::planner`]: crate::engine::PlannerKind::planner
//! [`PlannerKind::executor`]: crate::engine::PlannerKind::executor
//! [`MemoryPlanner`]: vmcu_plan::MemoryPlanner
//! [`EngineError::StateLeak`]: crate::error::EngineError::StateLeak

pub mod fused;
pub mod hmcos;
pub mod patched;
pub mod split;
pub mod tinyengine;
pub mod vmcu;

use crate::deploy::PlanSet;
use crate::engine::{InferenceReport, LayerReport};
use crate::error::EngineError;
use vmcu_graph::{Graph, LayerDesc, LayerWeights};
use vmcu_plan::{ChainPlan, LayerPlan};
use vmcu_sim::{Device, Machine};
use vmcu_tensor::Tensor;

pub use fused::FusedExecutor;
pub use hmcos::HmcosExecutor;
pub use patched::PatchedExecutor;
pub use split::SplitExecutor;
pub use tinyengine::TinyEngineExecutor;
pub use vmcu::VmcuExecutor;

/// Flash addresses of one layer's weights, staged at deploy time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagedLayer {
    /// One contiguous weight image (pointwise, conv2d, depthwise, dense).
    Single(usize),
    /// The three images of a fused inverted bottleneck.
    Ib {
        /// Expand (1×1) weights.
        w1: usize,
        /// Depthwise weights.
        wdw: usize,
        /// Project (1×1) weights.
        w2: usize,
    },
}

impl StagedLayer {
    /// The single image address, or a typed error for layers staged as
    /// multiple images (`executor` names the policy in the error).
    pub fn single(&self, executor: &'static str) -> Result<usize, EngineError> {
        match self {
            StagedLayer::Single(addr) => Ok(*addr),
            StagedLayer::Ib { .. } => Err(EngineError::Unsupported {
                kind: "inverted-bottleneck",
                executor,
            }),
        }
    }
}

/// Programs one layer's weights into Flash, returning the staged
/// addresses. Image order matches the historical per-layer staging
/// (`w1`, `wdw`, `w2` for inverted bottlenecks), so deployed execution
/// is bit-identical to the legacy program-per-run path.
///
/// # Errors
///
/// Returns [`EngineError::Unsupported`] for a layer/weights kind
/// mismatch and memory errors when the Flash capacity is exceeded.
pub fn stage_layer(
    m: &mut Machine,
    layer: &LayerDesc,
    weights: &LayerWeights,
) -> Result<StagedLayer, EngineError> {
    match (layer, weights) {
        (LayerDesc::Pointwise(_), LayerWeights::Pointwise(t))
        | (LayerDesc::Conv2d(_), LayerWeights::Conv2d(t))
        | (LayerDesc::Depthwise(_), LayerWeights::Depthwise(t))
        | (LayerDesc::Dense(_), LayerWeights::Dense(t)) => {
            Ok(StagedLayer::Single(m.host_program_flash(&t.as_bytes())?))
        }
        (LayerDesc::Ib(_), LayerWeights::Ib { w1, wdw, w2 }) => Ok(StagedLayer::Ib {
            w1: m.host_program_flash(&w1.as_bytes())?,
            wdw: m.host_program_flash(&wdw.as_bytes())?,
            w2: m.host_program_flash(&w2.as_bytes())?,
        }),
        _ => Err(EngineError::Unsupported {
            kind: layer.kind(),
            executor: "staging",
        }),
    }
}

/// Stages a whole graph's weights into Flash in layer order — the
/// deployment's firmware image.
///
/// # Errors
///
/// Same contract as [`stage_layer`], per layer.
pub fn stage_graph(
    m: &mut Machine,
    layers: &[LayerDesc],
    weights: &[LayerWeights],
) -> Result<Vec<StagedLayer>, EngineError> {
    layers
        .iter()
        .zip(weights)
        .map(|(l, w)| stage_layer(m, l, w))
        .collect()
}

/// Everything an executor sees at inference time: deployed, immutable
/// state prepared once by `Engine::deploy`.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx<'a> {
    /// The target device.
    pub device: &'a Device,
    /// The deployed graph.
    pub graph: &'a Graph,
    /// Plan artifacts memoized at deploy time.
    pub plans: &'a PlanSet,
    /// Per-layer staged Flash addresses, in graph order.
    pub staged: &'a [StagedLayer],
}

impl ExecCtx<'_> {
    /// The memoized plan entry for execution node `node` (layer index
    /// for per-layer policies, node index for fused/patched plans),
    /// re-checking device fit defensively — a deployment constructed
    /// through the checked path can never hit the error.
    pub fn node_plan(&self, node: usize) -> Result<LayerPlan, EngineError> {
        let lp = self.plans.memory.layers[node].clone();
        if !lp.fits {
            return Err(EngineError::DoesNotFit {
                layer: lp.name,
                needed: lp.measured_bytes,
                available: self.device.ram_bytes,
            });
        }
        Ok(lp)
    }
}

/// A policy's execution half: runs deployed graphs and single layers
/// against pre-staged weights, with **zero planning work** — every plan
/// artifact it needs was memoized at deploy time and arrives via
/// [`ExecCtx`].
pub trait Executor: std::fmt::Debug + Send + Sync {
    /// Executor display name (matches the policy's planner name).
    fn name(&self) -> &'static str;

    /// Builds every plan artifact this executor will consume at
    /// inference time — called **once**, at deploy. The default memoizes
    /// only the whole-graph [`MemoryPlan`](vmcu_plan::MemoryPlan);
    /// policies with extra artifacts (fusion plan, patch plan, chain
    /// plan) override it and add theirs.
    fn prepare(
        &self,
        planner: &dyn vmcu_plan::MemoryPlanner,
        graph: &Graph,
        device: &Device,
    ) -> PlanSet {
        PlanSet {
            memory: vmcu_plan::plan_graph(planner, graph, device),
            fusion: None,
            patch: None,
            chain: None,
            split: None,
        }
    }

    /// Executes one layer whose weights are staged at `staged`, reading
    /// the input from the host and returning the output tensor. The
    /// machine's RAM is caller-cleared; Flash must not be touched.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Unsupported`] for layer kinds this policy
    /// cannot run, and pool/memory errors on internal bugs.
    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError>;

    /// Executes the whole deployed graph for one input. The default walks
    /// the graph layer by layer — one pool per layer, activations
    /// re-staged by the host between layers — consuming the memoized
    /// per-layer plan entries; graph-aware policies (fusion, patching)
    /// override it.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    fn infer(
        &self,
        ctx: &ExecCtx<'_>,
        m: &mut Machine,
        input: &Tensor<i8>,
    ) -> Result<InferenceReport, EngineError> {
        let mut layers = Vec::with_capacity(ctx.graph.len());
        let mut cur = input.clone();
        for (i, layer) in ctx.graph.layers().iter().enumerate() {
            let plan = ctx.node_plan(i)?;
            // Between-layer reset: RAM to boot state (bit-identical to
            // the historical reset-per-layer path); counters keep
            // accumulating — reports use deltas.
            m.ram.clear();
            let before = m.snapshot();
            let out = self.exec_layer(m, layer, ctx.staged[i], &cur)?;
            let exec = m.summarize_since(&before);
            layers.push(LayerReport {
                name: plan.name.clone(),
                plan,
                exec,
            });
            cur = out;
        }
        Ok(InferenceReport {
            output: cur,
            layers,
        })
    }

    /// Executes the deployed graph chained through one circular pool
    /// (§4's multi-layer deployment model). Only the vMCU policy
    /// supports it; the default is a typed error.
    ///
    /// # Errors
    ///
    /// [`EngineError::Unsupported`] unless the policy overrides it.
    fn infer_chained(
        &self,
        ctx: &ExecCtx<'_>,
        m: &mut Machine,
        input: &Tensor<i8>,
    ) -> Result<(InferenceReport, ChainPlan), EngineError> {
        let _ = (ctx, m, input);
        Err(EngineError::Unsupported {
            kind: "chained graph",
            executor: self.name(),
        })
    }
}
