//! The patched executor: the high-resolution spatial front stage runs
//! tile by tile (only a tile's receptive-field slab is resident, halo
//! recompute charged honestly), the tail reuses the fusion-node runner.

use super::fused::run_fusion_nodes;
use super::vmcu::exec_layer_vmcu;
use super::{exec_merge, infer_in_order, ExecCtx, Executor, MergeMode, StagedLayer};
use crate::engine::{InferenceReport, LayerReport};
use crate::error::EngineError;
use vmcu_graph::LayerDesc;
use vmcu_kernels::patched::run_patched_front;
use vmcu_kernels::IbScheme;
use vmcu_sim::Machine;
use vmcu_tensor::Tensor;

/// Patch-based front-stage execution (fused tail).
#[derive(Debug, Clone, Copy)]
pub struct PatchedExecutor {
    /// Workspace scheme for fused inverted-bottleneck singletons in the
    /// tail.
    pub scheme: IbScheme,
}

impl Executor for PatchedExecutor {
    fn name(&self) -> &'static str {
        "vMCU-patched"
    }

    fn prepare(
        &self,
        planner: &dyn vmcu_plan::MemoryPlanner,
        graph: &vmcu_graph::Graph,
        device: &vmcu_sim::Device,
    ) -> crate::deploy::PlanSet {
        // Patch grids tile a straight spatial front; on a branchy DAG
        // there is no patchable prefix, so the executor drops the patch
        // plan and walks the graph node by node instead.
        if !graph.is_chain() {
            return crate::deploy::PlanSet {
                memory: vmcu_plan::plan_graph(planner, graph, device),
                fusion: None,
                patch: None,
                chain: None,
                split: None,
                order: None,
            };
        }
        // One grid search serves both the memoized execution plan and
        // the memory plan it is priced by.
        let patch_planner = vmcu_plan::PatchedPlanner {
            scheme: self.scheme,
            ..vmcu_plan::PatchedPlanner::default()
        };
        let pplan = patch_planner.patch_plan(graph);
        let memory = patch_planner.plan_model_from(&pplan, graph, device);
        crate::deploy::PlanSet {
            memory,
            fusion: None,
            patch: Some(pplan),
            chain: None,
            split: None,
            order: None,
        }
    }

    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError> {
        exec_layer_vmcu(m, layer, staged, input, self.scheme)
    }

    fn exec_node(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        inputs: &[&Tensor<i8>],
    ) -> Result<Tensor<i8>, EngineError> {
        match inputs {
            [single] => self.exec_layer(m, layer, staged, single),
            _ => exec_merge(m, layer, inputs, MergeMode::Overlap),
        }
    }

    fn infer(
        &self,
        ctx: &ExecCtx<'_>,
        m: &mut Machine,
        input: &Tensor<i8>,
    ) -> Result<InferenceReport, EngineError> {
        // DAG deployments carry no patch plan: walk node by node.
        let Some(pplan) = ctx.plans.patch.as_ref() else {
            return infer_in_order(self, ctx, m, input);
        };
        let mut layers = Vec::with_capacity(pplan.tail.nodes.len() + 1);
        let mut cur = input.clone();
        let mut plan_offset = 0;
        if let Some(front) = &pplan.front {
            // The memoized plan's first entry is the patched front.
            let plan = ctx.node_plan(0)?;
            plan_offset = 1;
            m.ram.clear();
            let before = m.snapshot();
            let flash = ctx.staged[..pplan.front_len]
                .iter()
                .map(|s| s.single("vMCU-patched"))
                .collect::<Result<Vec<_>, _>>()?;
            cur = run_patched_front(m, front, &cur, &flash)?;
            let exec = m.summarize_since(&before);
            layers.push(LayerReport {
                name: plan.name.clone(),
                plan,
                exec,
            });
        }
        let output = run_fusion_nodes(
            self.scheme,
            ctx,
            m,
            &pplan.tail.nodes,
            plan_offset,
            &cur,
            &mut layers,
        )?;
        Ok(InferenceReport { output, layers })
    }
}
