//! The fused executor: runs of fusable layers execute as one fused chain
//! in a single pool window (intermediates live only as line-buffer
//! rings); singleton nodes run through the shared vMCU layer body.

use super::vmcu::exec_layer_vmcu;
use super::{exec_merge, infer_in_order, ExecCtx, Executor, MergeMode, StagedLayer};
use crate::engine::{InferenceReport, LayerReport};
use crate::error::EngineError;
use vmcu_graph::LayerDesc;
use vmcu_kernels::fused_chain::run_fused_chain;
use vmcu_kernels::IbScheme;
use vmcu_plan::FusionNode;
use vmcu_pool::SegmentPool;
use vmcu_sim::Machine;
use vmcu_tensor::Tensor;

/// Multi-layer segment fusion execution.
#[derive(Debug, Clone, Copy)]
pub struct FusedExecutor {
    /// Workspace scheme for fused inverted-bottleneck singletons.
    pub scheme: IbScheme,
}

/// Executes a sequence of fusion-plan nodes (the whole graph under the
/// fused policy, the tail under the patched policy), appending one
/// [`LayerReport`] per node. Node indices are graph-absolute;
/// `plan_offset` locates the first node's entry in the memoized
/// [`MemoryPlan`](vmcu_plan::MemoryPlan).
pub(crate) fn run_fusion_nodes(
    scheme: IbScheme,
    ctx: &ExecCtx<'_>,
    m: &mut Machine,
    nodes: &[FusionNode],
    plan_offset: usize,
    input: &Tensor<i8>,
    layers: &mut Vec<LayerReport>,
) -> Result<Tensor<i8>, EngineError> {
    let mut cur = input.clone();
    for (k, node) in nodes.iter().enumerate() {
        let plan = ctx.node_plan(plan_offset + k)?;
        // Between-node reset: RAM to boot state, identical to the
        // historical reset-per-node path; the deployed Flash image and
        // the accumulating counters are untouched.
        m.ram.clear();
        let before = m.snapshot();
        match node {
            FusionNode::Single { index, .. } => {
                let layer = &ctx.graph.layers()[*index];
                cur = exec_layer_vmcu(m, layer, ctx.staged[*index], &cur, scheme)?;
            }
            FusionNode::Fused(group) => {
                let flash = ctx.staged[group.start..group.end]
                    .iter()
                    .map(|s| s.single("vMCU-fused"))
                    .collect::<Result<Vec<_>, _>>()?;
                let d = group.exec_distance;
                let mut pool = SegmentPool::new(m, 0, group.window, group.chain.seg())?;
                pool.host_fill_live(m, 0, &cur.as_bytes())?;
                run_fused_chain(m, &mut pool, &group.chain, 0, -d, &flash, group.window)?;
                let out_layer = &ctx.graph.layers()[group.end - 1];
                let out = pool.host_read(m, -d, out_layer.out_bytes())?;
                cur = Tensor::from_bytes(&out_layer.out_shape(), &out);
            }
        }
        let exec = m.summarize_since(&before);
        layers.push(LayerReport {
            name: plan.name.clone(),
            plan,
            exec,
        });
    }
    Ok(cur)
}

impl Executor for FusedExecutor {
    fn name(&self) -> &'static str {
        "vMCU-fused"
    }

    fn prepare(
        &self,
        planner: &dyn vmcu_plan::MemoryPlanner,
        graph: &vmcu_graph::Graph,
        device: &vmcu_sim::Device,
    ) -> crate::deploy::PlanSet {
        // Fused chains thread exactly one activation stream; on a branchy
        // DAG the pass degrades to all-singles, so the executor drops the
        // fusion plan and walks the graph node by node instead.
        if !graph.is_chain() {
            return crate::deploy::PlanSet {
                memory: vmcu_plan::plan_graph(planner, graph, device),
                fusion: None,
                patch: None,
                chain: None,
                split: None,
                order: None,
            };
        }
        // One fusion pass serves both the memoized execution plan and
        // the memory plan it is priced by.
        let fusion = vmcu_plan::fuse_graph(graph, self.scheme);
        let memory = vmcu_plan::FusedPlanner {
            scheme: self.scheme,
        }
        .plan_model_from(&fusion, graph, device);
        crate::deploy::PlanSet {
            memory,
            fusion: Some(fusion),
            patch: None,
            chain: None,
            split: None,
            order: None,
        }
    }

    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError> {
        exec_layer_vmcu(m, layer, staged, input, self.scheme)
    }

    fn exec_node(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        inputs: &[&Tensor<i8>],
    ) -> Result<Tensor<i8>, EngineError> {
        match inputs {
            [single] => self.exec_layer(m, layer, staged, single),
            _ => exec_merge(m, layer, inputs, MergeMode::Overlap),
        }
    }

    fn infer(
        &self,
        ctx: &ExecCtx<'_>,
        m: &mut Machine,
        input: &Tensor<i8>,
    ) -> Result<InferenceReport, EngineError> {
        // DAG deployments carry no fusion plan: walk node by node.
        let Some(fusion) = ctx.plans.fusion.as_ref() else {
            return infer_in_order(self, ctx, m, input);
        };
        let mut layers = Vec::with_capacity(fusion.nodes.len());
        let output = run_fusion_nodes(self.scheme, ctx, m, &fusion.nodes, 0, input, &mut layers)?;
        Ok(InferenceReport { output, layers })
    }
}
