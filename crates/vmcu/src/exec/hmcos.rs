//! The HMCOS executor: HMCOS is a *scheduling* policy (§7) and
//! contributes no kernels of its own — it plans with [`HmcosPlanner`]
//! and executes through the shared baseline layer body.
//!
//! [`HmcosPlanner`]: vmcu_plan::HmcosPlanner

use super::tinyengine::exec_layer_baseline;
use super::{Executor, StagedLayer};
use crate::error::EngineError;
use vmcu_graph::LayerDesc;
use vmcu_sim::Machine;
use vmcu_tensor::Tensor;

/// Scheduling-only baseline execution (baseline kernels, HMCOS plans).
#[derive(Debug, Clone, Copy)]
pub struct HmcosExecutor;

impl Executor for HmcosExecutor {
    fn name(&self) -> &'static str {
        "HMCOS"
    }

    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError> {
        exec_layer_baseline(m, layer, staged, input, self.name())
    }
}
