//! The reorder executor: vMCU segment-level kernels executed in the
//! searched minimum-peak topological order.
//!
//! Branchy DAGs give the *scheduler* a lever the paper's linear chains
//! never expose (§8.4): the default node order can hold two fat branch
//! tensors co-resident, while another valid order retires one branch
//! before starting the next. `prepare` memoizes the
//! [`OrderPlan`](vmcu_plan::OrderPlan) searched by
//! [`vmcu_plan::plan_order`] — structurally never worse than the default
//! order — and a memory plan whose rows follow the searched order, so
//! the default order-aware graph walk
//! ([`infer_in_order`](super::infer_in_order)) consumes plan rows by
//! execution step with no remapping. On chain graphs the search returns
//! the identity order and this policy degenerates to plain vMCU.

use super::vmcu::exec_layer_vmcu;
use super::{exec_merge, Executor, MergeMode, StagedLayer};
use crate::error::EngineError;
use vmcu_graph::LayerDesc;
use vmcu_kernels::IbScheme;
use vmcu_sim::Machine;
use vmcu_tensor::Tensor;

/// Segment-level execution in the searched minimum-peak node order.
#[derive(Debug, Clone, Copy)]
pub struct ReorderExecutor {
    /// Workspace scheme for fused inverted bottlenecks.
    pub scheme: IbScheme,
}

impl Executor for ReorderExecutor {
    fn name(&self) -> &'static str {
        "vMCU-reorder"
    }

    fn prepare(
        &self,
        planner: &dyn vmcu_plan::MemoryPlanner,
        graph: &vmcu_graph::Graph,
        device: &vmcu_sim::Device,
    ) -> crate::deploy::PlanSet {
        // One order search serves both the memoized execution schedule
        // and the memory plan it is priced by (rows in execution order,
        // so the plan's bottleneck *is* the searched peak).
        let order = vmcu_plan::plan_order(planner, graph);
        let memory = vmcu_plan::order::plan_model_for_order(planner, graph, device, &order.order);
        crate::deploy::PlanSet {
            memory,
            fusion: None,
            patch: None,
            chain: None,
            split: None,
            order: Some(order),
        }
    }

    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError> {
        exec_layer_vmcu(m, layer, staged, input, self.scheme)
    }

    fn exec_node(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        inputs: &[&Tensor<i8>],
    ) -> Result<Tensor<i8>, EngineError> {
        match inputs {
            [single] => self.exec_layer(m, layer, staged, single),
            _ => exec_merge(m, layer, inputs, MergeMode::Overlap),
        }
    }
}
