//! The vMCU executor: segment-level kernels, one circular pool per
//! layer — plus the §4 whole-network chained mode.

use super::{exec_merge, ExecCtx, Executor, MergeMode, StagedLayer};
use crate::engine::{InferenceReport, LayerReport};
use crate::error::EngineError;
use vmcu_graph::LayerDesc;
use vmcu_kernels::conv2d::{conv2d_exec_distance, run_conv2d};
use vmcu_kernels::depthwise::{depthwise_exec_distance, run_depthwise};
use vmcu_kernels::fc::{fc_exec_distance, run_fc};
use vmcu_kernels::fused_ib::{ib_exec_distance, run_fused_ib, IbFlash};
use vmcu_kernels::pointwise::{pointwise_exec_distance, run_pointwise};
use vmcu_kernels::IbScheme;
use vmcu_plan::{ChainPlan, LayerPlan};
use vmcu_pool::SegmentPool;
use vmcu_sim::Machine;
use vmcu_tensor::Tensor;

/// Segment-level execution (the paper's policy): every layer runs in a
/// circular pool sized to its executable `bIn − bOut` distance.
#[derive(Debug, Clone, Copy)]
pub struct VmcuExecutor {
    /// Workspace scheme for fused inverted bottlenecks.
    pub scheme: IbScheme,
}

/// Shared single-layer vMCU body — also the singleton path of the fused
/// and patched executors, so all three policies run identical kernels on
/// identical pools.
pub(crate) fn exec_layer_vmcu(
    m: &mut Machine,
    layer: &LayerDesc,
    staged: StagedLayer,
    input: &Tensor<i8>,
    scheme: IbScheme,
) -> Result<Tensor<i8>, EngineError> {
    match layer {
        LayerDesc::Pointwise(p) => {
            let w_base = staged.single("vMCU")?;
            let d = pointwise_exec_distance(p);
            let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
            let mut pool = SegmentPool::new(m, 0, window, p.seg)?;
            pool.host_fill_live(m, 0, &input.as_bytes())?;
            run_pointwise(m, &mut pool, p, 0, -d, w_base, None)?;
            let out = pool.host_read(m, -d, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.h, p.w, p.k], &out))
        }
        LayerDesc::Conv2d(p) => {
            let w_base = staged.single("vMCU")?;
            let d = conv2d_exec_distance(p);
            let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
            let mut pool = SegmentPool::new(m, 0, window, p.seg)?;
            pool.host_fill_live(m, 0, &input.as_bytes())?;
            run_conv2d(m, &mut pool, p, 0, -d, w_base, None)?;
            let out = pool.host_read(m, -d, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.out_h(), p.out_w(), p.k], &out))
        }
        LayerDesc::Depthwise(p) => {
            let w_base = staged.single("vMCU")?;
            let d = depthwise_exec_distance(p);
            let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
            let mut pool = SegmentPool::new(m, 0, window, p.c)?;
            pool.host_fill_live(m, 0, &input.as_bytes())?;
            run_depthwise(m, &mut pool, p, 0, -d, w_base, None)?;
            let out = pool.host_read(m, -d, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.out_h(), p.out_w(), p.c], &out))
        }
        LayerDesc::Dense(p) => {
            let w_base = staged.single("vMCU")?;
            let d = fc_exec_distance(p);
            let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
            let mut pool = SegmentPool::new(m, 0, window, p.seg)?;
            pool.host_fill_live(m, 0, &input.as_bytes())?;
            run_fc(m, &mut pool, p, 0, -d, w_base, None)?;
            let out = pool.host_read(m, -d, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.m, p.n], &out))
        }
        LayerDesc::Ib(p) => {
            let StagedLayer::Ib { w1, wdw, w2 } = staged else {
                return Err(EngineError::Unsupported {
                    kind: layer.kind(),
                    executor: "vMCU",
                });
            };
            let flash = IbFlash { w1, wdw, w2 };
            let d = ib_exec_distance(p, scheme);
            let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
            let mut pool = SegmentPool::new(m, 0, window, p.seg())?;
            pool.host_fill_live(m, 0, &input.as_bytes())?;
            run_fused_ib(m, &mut pool, p, scheme, 0, -d, &flash, window)?;
            let out = pool.host_read(m, -d, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.hw2(), p.hw2(), p.c_out], &out))
        }
        // Merges take two inputs; they run through `Executor::exec_node`,
        // never the single-input layer body.
        LayerDesc::Add(_) | LayerDesc::Concat(_) => Err(EngineError::Unsupported {
            kind: layer.kind(),
            executor: "vMCU",
        }),
    }
}

impl Executor for VmcuExecutor {
    fn name(&self) -> &'static str {
        "vMCU"
    }

    fn prepare(
        &self,
        planner: &dyn vmcu_plan::MemoryPlanner,
        graph: &vmcu_graph::Graph,
        device: &vmcu_sim::Device,
    ) -> crate::deploy::PlanSet {
        crate::deploy::PlanSet {
            memory: vmcu_plan::plan_graph(planner, graph, device),
            fusion: None,
            patch: None,
            // The §4 chain deployment model threads one circular window
            // through consecutive layers — only defined on chains.
            chain: graph
                .is_chain()
                .then(|| vmcu_plan::plan_chain(graph, self.scheme)),
            split: None,
            order: None,
        }
    }

    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError> {
        exec_layer_vmcu(m, layer, staged, input, self.scheme)
    }

    fn exec_node(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        inputs: &[&Tensor<i8>],
    ) -> Result<Tensor<i8>, EngineError> {
        match inputs {
            [single] => self.exec_layer(m, layer, staged, single),
            _ => exec_merge(m, layer, inputs, MergeMode::Overlap),
        }
    }

    /// Chained whole-network execution: each layer's input pointer is the
    /// previous layer's output pointer, the whole network flows through
    /// one circular pool window of `max(per-layer span)` bytes (§4's
    /// multi-layer deployment model). Chain graphs only — branchy DAGs
    /// report a typed [`EngineError::Unsupported`].
    fn infer_chained(
        &self,
        ctx: &ExecCtx<'_>,
        m: &mut Machine,
        input: &Tensor<i8>,
    ) -> Result<(InferenceReport, ChainPlan), EngineError> {
        let Some(plan) = ctx.plans.chain.clone() else {
            return Err(EngineError::Unsupported {
                kind: "chained DAG",
                executor: self.name(),
            });
        };
        let graph = ctx.graph;
        let needed = plan.total_bytes() + ctx.device.runtime_overhead_bytes;
        if needed > ctx.device.ram_bytes {
            return Err(EngineError::DoesNotFit {
                layer: format!("chained {}", graph.name),
                needed,
                available: ctx.device.ram_bytes,
            });
        }
        let seg = match graph.layers().first() {
            Some(LayerDesc::Ib(p)) => p.seg(),
            Some(LayerDesc::Pointwise(p)) => p.seg,
            Some(LayerDesc::Dense(p)) => p.seg,
            _ => 1,
        };
        let mut pool = SegmentPool::new(m, 0, plan.window, seg.max(1))?;
        let ws_base = plan.window;
        pool.host_fill_live(m, plan.bases[0], &input.as_bytes())?;
        let mut layers = Vec::with_capacity(graph.len());
        for (i, layer) in graph.layers().iter().enumerate() {
            let name = format!("{}#{i}", layer.kind());
            let before = m.snapshot();
            let (b_in, b_out) = (plan.bases[i], plan.bases[i + 1]);
            match layer {
                LayerDesc::Pointwise(p) => {
                    let w_base = ctx.staged[i].single("vMCU")?;
                    run_pointwise(m, &mut pool, p, b_in, b_out, w_base, None)?;
                }
                LayerDesc::Conv2d(p) => {
                    let w_base = ctx.staged[i].single("vMCU")?;
                    run_conv2d(m, &mut pool, p, b_in, b_out, w_base, None)?;
                }
                LayerDesc::Depthwise(p) => {
                    let w_base = ctx.staged[i].single("vMCU")?;
                    run_depthwise(m, &mut pool, p, b_in, b_out, w_base, None)?;
                }
                LayerDesc::Dense(p) => {
                    let w_base = ctx.staged[i].single("vMCU")?;
                    run_fc(m, &mut pool, p, b_in, b_out, w_base, None)?;
                }
                LayerDesc::Ib(p) => {
                    let StagedLayer::Ib { w1, wdw, w2 } = ctx.staged[i] else {
                        return Err(EngineError::Unsupported {
                            kind: layer.kind(),
                            executor: "vMCU",
                        });
                    };
                    let flash = IbFlash { w1, wdw, w2 };
                    run_fused_ib(m, &mut pool, p, self.scheme, b_in, b_out, &flash, ws_base)?;
                }
                // Unreachable behind the chain gate (merges take two
                // inputs), kept total for the type system.
                LayerDesc::Add(_) | LayerDesc::Concat(_) => {
                    return Err(EngineError::Unsupported {
                        kind: layer.kind(),
                        executor: self.name(),
                    })
                }
            }
            let exec = m.summarize_since(&before);
            layers.push(LayerReport {
                name,
                plan: LayerPlan {
                    name: format!("{}#{i}", layer.kind()),
                    kind: layer.kind(),
                    activation_bytes: plan.window,
                    workspace_bytes: plan.workspace,
                    measured_bytes: needed,
                    fits: true,
                },
                exec,
            });
        }
        let out_bytes = graph.layers().last().expect("non-empty graph").out_bytes();
        let out_base = *plan.bases.last().expect("bases non-empty");
        let out = pool.host_read(m, out_base, out_bytes)?;
        let output = Tensor::from_bytes(&graph.out_shape(), &out);
        Ok((InferenceReport { output, layers }, plan))
    }
}
