//! The split executor: a pipelined multi-device schedule. Each stage of
//! the memoized `SplitPlan` runs its fused sub-plan on its own device
//! (the shared fusion-node runner, so stage execution is bit-identical
//! to the single-device fused path), then the boundary activation
//! streams to the next stage over a board-to-board link priced by the
//! deterministic [`LinkModel`] — one `link` report per cut edge, charged
//! exactly once, matching the deploy-time plan entry byte for byte.
//!
//! The simulation runs the pipeline on one [`Machine`]: the between-node
//! RAM reset inside the fusion-node runner bounds instantaneous
//! residency to a single stage's window (each physical device holds only
//! its own stage), and the host-side tensor hand-off between stages *is*
//! the modeled network hop. Aggregate counters therefore read as
//! whole-pipeline work; per-stage peaks are validated per device by the
//! deploy fit check.

use super::fused::run_fusion_nodes;
use super::vmcu::exec_layer_vmcu;
use super::{exec_merge, infer_in_order, ExecCtx, Executor, MergeMode, StagedLayer};
use crate::engine::{InferenceReport, LayerReport};
use crate::error::EngineError;
use vmcu_graph::LayerDesc;
use vmcu_kernels::IbScheme;
use vmcu_sim::{Counters, ExecSummary, LinkModel, Machine};
use vmcu_tensor::Tensor;

/// Pipelined split execution across networked devices.
#[derive(Debug, Clone, Copy)]
pub struct SplitExecutor {
    /// Maximum number of networked devices to cut across (2–8; clamped
    /// by the partitioner).
    pub devices: u8,
    /// Workspace scheme for fused inverted-bottleneck singletons inside
    /// each stage.
    pub scheme: IbScheme,
    /// The link every cut-tensor transfer is priced by.
    pub link: LinkModel,
}

impl Executor for SplitExecutor {
    fn name(&self) -> &'static str {
        "vMCU-split"
    }

    fn prepare(
        &self,
        planner: &dyn vmcu_plan::MemoryPlanner,
        graph: &vmcu_graph::Graph,
        device: &vmcu_sim::Device,
    ) -> crate::deploy::PlanSet {
        // Layer-wise cuts partition a chain; on a branchy DAG the
        // partitioner degrades to one whole-graph stage, so the executor
        // drops the split plan and walks the graph on a single device.
        if !graph.is_chain() {
            return crate::deploy::PlanSet {
                memory: vmcu_plan::plan_graph(planner, graph, device),
                fusion: None,
                patch: None,
                chain: None,
                split: None,
                order: None,
            };
        }
        // One partitioning pass serves both the memoized execution plan
        // (stage sub-graphs + per-stage fusion plans) and the memory
        // plan it is priced by — stage nodes and link entries in
        // execution order.
        let planner = vmcu_plan::SplitPlanner {
            devices: self.devices,
            scheme: self.scheme,
        };
        let split = vmcu_plan::plan_split(graph, self.devices, self.scheme);
        let memory = planner.plan_model_from(&split, device);
        crate::deploy::PlanSet {
            memory,
            fusion: None,
            patch: None,
            chain: None,
            split: Some(split),
            order: None,
        }
    }

    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError> {
        exec_layer_vmcu(m, layer, staged, input, self.scheme)
    }

    fn exec_node(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        inputs: &[&Tensor<i8>],
    ) -> Result<Tensor<i8>, EngineError> {
        match inputs {
            [single] => self.exec_layer(m, layer, staged, single),
            _ => exec_merge(m, layer, inputs, MergeMode::Overlap),
        }
    }

    fn infer(
        &self,
        ctx: &ExecCtx<'_>,
        m: &mut Machine,
        input: &Tensor<i8>,
    ) -> Result<InferenceReport, EngineError> {
        // DAG deployments carry no partition (it degrades to one stage):
        // walk the whole graph on a single device.
        let Some(split) = ctx.plans.split.as_ref() else {
            return infer_in_order(self, ctx, m, input);
        };
        let mut layers = Vec::with_capacity(ctx.plans.memory.layers.len());
        let mut cur = input.clone();
        let mut node = 0;
        for stage in split.stages() {
            // The stage executes against its memoized sub-graph with
            // stage-local node indices; the memory-plan offset walks the
            // interleaved (stage nodes, link, stage nodes, …) entries.
            let stage_ctx = ExecCtx {
                device: ctx.device,
                graph: &stage.graph,
                plans: ctx.plans,
                staged: &ctx.staged[stage.start..stage.end],
            };
            cur = run_fusion_nodes(
                self.scheme,
                &stage_ctx,
                m,
                &stage.fusion.nodes,
                node,
                &cur,
                &mut layers,
            )?;
            node += stage.fusion.nodes.len();
            if stage.cut_bytes > 0 {
                // The cut-edge transfer: priced exactly once, from the
                // same LinkModel the plan documents, with no machine
                // counters touched — simulated link time and energy are
                // integer-derived, so bit-reproducible across hosts.
                let plan = ctx.node_plan(node)?;
                node += 1;
                let bytes = stage.cut_bytes as u64;
                let exec = ExecSummary {
                    counters: Counters::default(),
                    latency_ms: self.link.transfer_ms(bytes),
                    energy_mj: self.link.transfer_energy_mj(bytes),
                };
                layers.push(LayerReport {
                    name: plan.name.clone(),
                    plan,
                    exec,
                });
            }
        }
        Ok(InferenceReport {
            output: cur,
            layers,
        })
    }
}
