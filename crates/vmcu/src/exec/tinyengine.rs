//! The TinyEngine executor: tensor-level baseline kernels (in-place
//! depthwise, im2col staging) — the paper's strongest baseline.

use super::{exec_merge, Executor, MergeMode, StagedLayer};
use crate::error::EngineError;
use vmcu_graph::LayerDesc;
use vmcu_kernels::tinyengine::{
    run_depthwise_te_inplace, run_ib_te, run_pointwise_te, TeIbLayout, TePointwiseLayout,
};
use vmcu_kernels::PointwiseParams;
use vmcu_sim::Machine;
use vmcu_tensor::Tensor;

/// Tensor-level baseline execution.
#[derive(Debug, Clone, Copy)]
pub struct TinyEngineExecutor;

/// Shared baseline layer body — also the HMCOS executor's body (HMCOS is
/// a scheduling policy and contributes no kernels of its own, §7).
/// `executor` names the policy in typed errors.
pub(crate) fn exec_layer_baseline(
    m: &mut Machine,
    layer: &LayerDesc,
    staged: StagedLayer,
    input: &Tensor<i8>,
    executor: &'static str,
) -> Result<Tensor<i8>, EngineError> {
    match layer {
        LayerDesc::Pointwise(p) => {
            let w_base = staged.single(executor)?;
            let layout = TePointwiseLayout {
                input: 0,
                output: p.in_bytes(),
                im2col: p.in_bytes() + p.out_bytes(),
            };
            m.host_write_ram(layout.input, &input.as_bytes())?;
            run_pointwise_te(m, p, 1, layout, w_base, None)?;
            let out = m.host_read_ram(layout.output, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.h, p.w, p.k], &out))
        }
        LayerDesc::Dense(p) => {
            // Dense == pointwise over M "pixels" of one column.
            let pw = PointwiseParams {
                h: p.m,
                w: 1,
                c: p.k,
                k: p.n,
                seg: p.seg,
                rq: p.rq,
                clamp: p.clamp,
            };
            let w_base = staged.single(executor)?;
            let layout = TePointwiseLayout {
                input: 0,
                output: pw.in_bytes(),
                im2col: pw.in_bytes() + pw.out_bytes(),
            };
            m.host_write_ram(layout.input, &input.as_bytes())?;
            run_pointwise_te(m, &pw, 1, layout, w_base, None)?;
            let out = m.host_read_ram(layout.output, pw.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.m, p.n], &out))
        }
        LayerDesc::Depthwise(p) => {
            let w_base = staged.single(executor)?;
            m.host_write_ram(0, &input.as_bytes())?;
            run_depthwise_te_inplace(m, p, 0, p.in_bytes(), w_base)?;
            let out = m.host_read_ram(0, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.out_h(), p.out_w(), p.c], &out))
        }
        LayerDesc::Ib(p) => {
            let StagedLayer::Ib { w1, wdw, w2 } = staged else {
                return Err(EngineError::Unsupported {
                    kind: layer.kind(),
                    executor,
                });
            };
            let (layout, _end) = TeIbLayout::packed(p, 0);
            m.host_write_ram(layout.a, &input.as_bytes())?;
            run_ib_te(m, p, layout, w1, wdw, w2)?;
            let out = m.host_read_ram(layout.d, p.out_bytes())?;
            Ok(Tensor::from_bytes(&[p.hw2(), p.hw2(), p.c_out], &out))
        }
        // Merges take two inputs; they run through `Executor::exec_node`,
        // never the single-input layer body.
        LayerDesc::Conv2d(_) | LayerDesc::Add(_) | LayerDesc::Concat(_) => {
            Err(EngineError::Unsupported {
                kind: layer.kind(),
                executor,
            })
        }
    }
}

impl Executor for TinyEngineExecutor {
    fn name(&self) -> &'static str {
        "TinyEngine"
    }

    fn exec_layer(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError> {
        exec_layer_baseline(m, layer, staged, input, self.name())
    }

    /// TinyEngine adds in place (one operand slot doubles as the output —
    /// the overlapped layout at distance 0) but materializes concat
    /// outputs disjoint from both operands.
    fn exec_node(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        staged: StagedLayer,
        inputs: &[&Tensor<i8>],
    ) -> Result<Tensor<i8>, EngineError> {
        match (layer, inputs) {
            (_, [single]) => self.exec_layer(m, layer, staged, single),
            (LayerDesc::Add(_), _) => exec_merge(m, layer, inputs, MergeMode::Overlap),
            _ => exec_merge(m, layer, inputs, MergeMode::Disjoint),
        }
    }
}
