//! The inference engine: plan, deploy, execute, report.
//!
//! [`Engine`] ties the whole reproduction together: pick a device and a
//! planner policy, [`deploy`](Engine::deploy) a model once — fit is
//! validated, every plan artifact is memoized, weights are staged into
//! Flash — and run as many inferences as you like through the resulting
//! [`Session`](crate::deploy::Session) with zero replanning. Policies are
//! *pairs*: a [`MemoryPlanner`] decides RAM at deploy time, an
//! [`Executor`] runs the deployed schedule; the
//! engine core dispatches on neither. vMCU plans are additionally
//! validated at run time by the checked pool — a planning bug turns into
//! a typed error, never a wrong answer.

use crate::deploy::Deployment;
use crate::error::EngineError;
use crate::exec::{
    stage_layer, Executor, FusedExecutor, HmcosExecutor, PatchedExecutor, ReorderExecutor,
    SplitExecutor, TinyEngineExecutor, VmcuExecutor,
};
use vmcu_graph::{Graph, LayerDesc, LayerWeights};
use vmcu_kernels::IbScheme;
use vmcu_plan::chain::ChainPlan;
use vmcu_plan::planner::MemoryPlanner;
use vmcu_plan::{
    FusedPlanner, HmcosPlanner, LayerPlan, MemoryPlan, PatchedPlanner, ReorderPlanner,
    SplitPlanner, TinyEnginePlanner, VmcuPlanner,
};
use vmcu_sim::{Device, ExecSummary, Machine};
use vmcu_tensor::Tensor;

/// Planner/executor policy selection.
///
/// A `PlannerKind` resolves to a *pair*: the planning policy object
/// ([`planner`](PlannerKind::planner)) that decides RAM at deploy time,
/// and the executor ([`executor`](PlannerKind::executor)) that runs the
/// deployed schedule. [`Engine::deploy`] resolves the pair once and
/// caches it in the [`Deployment`]; adding a policy means adding a
/// planner, an executor, and one arm here — the engine core never
/// changes.
///
/// # Examples
///
/// Patch-based execution ([`PlannerKind::VmcuPatched`]) admits spatial
/// workloads no whole-tensor policy can: `zoo::hires_front_stage`'s
/// 147 KB input activation exceeds the 128 KB device outright, yet the
/// patched engine deploys it.
///
/// ```
/// use vmcu::prelude::*;
///
/// let g = vmcu::vmcu_graph::zoo::hires_front_stage();
/// let weights = g.random_weights(1);
/// let dev = Device::stm32_f411re();
/// let whole_tensor = Engine::new(dev.clone()).deploy(&g, &weights);
/// assert!(matches!(whole_tensor, Err(EngineError::DoesNotFit { .. })));
/// let patched = Engine::new(dev)
///     .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer))
///     .deploy(&g, &weights);
/// assert!(patched.is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerKind {
    /// vMCU segment-level management (fused modules use the given
    /// workspace scheme).
    Vmcu(IbScheme),
    /// vMCU segment-level management **plus** the multi-layer segment
    /// fusion pass: runs of fusable layers execute as one fused chain in
    /// a single pool window, so fat intermediates never materialize.
    VmcuFused(IbScheme),
    /// vMCU segment-level management **plus** patch-based front-stage
    /// execution: the high-resolution spatial front runs tile by tile
    /// (only a tile's receptive-field slab is resident, halo recompute
    /// charged honestly), the tail reuses the fusion pass — the policy
    /// for models whose front activations exceed SRAM outright.
    VmcuPatched(IbScheme),
    /// TinyEngine tensor-level management.
    TinyEngine,
    /// HMCOS scheduling (planned with HMCOS policy; executed with the
    /// baseline kernels — HMCOS contributes no kernels of its own).
    Hmcos,
    /// Split inference across up to `devices` networked MCUs: the graph
    /// is cut layer-wise into contiguous per-device stages minimizing
    /// the max per-device peak (each stage planned by the fusion pass),
    /// and the pipelined executor streams the boundary activations
    /// stage-to-stage with every transfer priced by the deterministic
    /// `vmcu_sim::LinkModel` — the policy for models no *single* device
    /// can hold.
    VmcuSplit {
        /// Maximum number of networked devices to cut across (2–8;
        /// clamped by the partitioner).
        devices: u8,
        /// Workspace scheme for fused inverted-bottleneck singletons
        /// inside each stage.
        scheme: IbScheme,
    },
    /// vMCU segment-level management **plus** execution-order search on
    /// branchy DAGs: nodes run in the searched minimum-peak topological
    /// order (exhaustive up to 14 nodes, greedy memory-aware beyond),
    /// with every tensor held only until its last consumer. The searched
    /// order is structurally never worse than the default one — the
    /// policy for branchy models whose default interleaving holds two
    /// fat branches co-resident.
    VmcuReorder(IbScheme),
}

impl PlannerKind {
    /// Planner display name.
    pub fn name(&self) -> &'static str {
        match self {
            PlannerKind::Vmcu(_) => "vMCU",
            PlannerKind::VmcuFused(_) => "vMCU-fused",
            PlannerKind::VmcuPatched(_) => "vMCU-patched",
            PlannerKind::TinyEngine => "TinyEngine",
            PlannerKind::Hmcos => "HMCOS",
            PlannerKind::VmcuSplit { .. } => "vMCU-split",
            PlannerKind::VmcuReorder(_) => "vMCU-reorder",
        }
    }

    /// The planning policy object for this kind — the same one the
    /// engine plans with, so external capacity math (admission control)
    /// can never disagree with execution. Resolve once and cache (a
    /// [`Deployment`] does); don't re-box per pricing call.
    pub fn planner(&self) -> Box<dyn MemoryPlanner> {
        match self {
            PlannerKind::Vmcu(scheme) => Box::new(VmcuPlanner { scheme: *scheme }),
            PlannerKind::VmcuFused(scheme) => Box::new(FusedPlanner { scheme: *scheme }),
            PlannerKind::VmcuPatched(scheme) => Box::new(PatchedPlanner {
                scheme: *scheme,
                ..PatchedPlanner::default()
            }),
            PlannerKind::TinyEngine => Box::new(TinyEnginePlanner),
            PlannerKind::Hmcos => Box::new(HmcosPlanner),
            PlannerKind::VmcuSplit { devices, scheme } => Box::new(SplitPlanner {
                devices: *devices,
                scheme: *scheme,
            }),
            PlannerKind::VmcuReorder(scheme) => Box::new(ReorderPlanner::new(*scheme)),
        }
    }

    /// The execution policy object for this kind — the other half of the
    /// planner/executor pair a [`Deployment`] caches.
    pub fn executor(&self) -> Box<dyn Executor> {
        match self {
            PlannerKind::Vmcu(scheme) => Box::new(VmcuExecutor { scheme: *scheme }),
            PlannerKind::VmcuFused(scheme) => Box::new(FusedExecutor { scheme: *scheme }),
            PlannerKind::VmcuPatched(scheme) => Box::new(PatchedExecutor { scheme: *scheme }),
            PlannerKind::TinyEngine => Box::new(TinyEngineExecutor),
            PlannerKind::Hmcos => Box::new(HmcosExecutor),
            PlannerKind::VmcuSplit { devices, scheme } => Box::new(SplitExecutor {
                devices: *devices,
                scheme: *scheme,
                link: vmcu_sim::LinkModel::default(),
            }),
            PlannerKind::VmcuReorder(scheme) => Box::new(ReorderExecutor { scheme: *scheme }),
        }
    }
}

/// Per-layer execution record.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// The memory plan for this layer.
    pub plan: LayerPlan,
    /// Counted work, latency, and energy of the layer.
    pub exec: ExecSummary,
}

/// Whole-run record.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Final output tensor.
    pub output: Tensor<i8>,
    /// Per-layer records in execution order.
    pub layers: Vec<LayerReport>,
}

impl InferenceReport {
    /// Peak measured RAM across layers (bytes, including runtime
    /// overhead).
    pub fn peak_ram_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.plan.measured_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.exec.latency_ms).sum()
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.layers.iter().map(|l| l.exec.energy_mj).sum()
    }
}

/// Legacy reusable execution state, superseded by
/// [`Session`](crate::deploy::Session) (which owns the machine, the
/// staged flash image, and the memoized plans). The deprecated
/// `run_*_scratch` wrappers accept it for source compatibility but no
/// longer read it.
#[deprecated(note = "use `Engine::deploy(..)` and keep the `Session` instead")]
#[derive(Debug, Default)]
pub struct InferenceScratch {}

#[allow(deprecated)]
impl InferenceScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The inference engine.
#[derive(Debug, Clone)]
pub struct Engine {
    device: Device,
    kind: PlannerKind,
}

impl Engine {
    /// Creates an engine for a device with the default policy
    /// (vMCU, row-buffer fusion).
    pub fn new(device: Device) -> Self {
        Self {
            device,
            kind: PlannerKind::Vmcu(IbScheme::RowBuffer),
        }
    }

    /// Deprecated checked constructor.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DoesNotFit`] naming the bottleneck layer
    /// when any layer's planned RAM exceeds the device.
    #[deprecated(
        note = "use `Engine::new(device).planner(kind).deploy(graph, weights)` — \
                         a `Deployment` validates fit once and memoizes every plan"
    )]
    pub fn with_model(
        device: Device,
        kind: PlannerKind,
        graph: &Graph,
    ) -> Result<Self, EngineError> {
        let engine = Self { device, kind };
        engine.check_fit(graph)?;
        Ok(engine)
    }

    /// Plans the whole graph and verifies every layer fits the device.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DoesNotFit`] for the bottleneck layer of a
    /// non-deployable plan.
    pub fn check_fit(&self, graph: &Graph) -> Result<MemoryPlan, EngineError> {
        let plan = vmcu_plan::plan_graph(&*self.kind.planner(), graph, &self.device);
        if !plan.deployable() {
            let worst = &plan.layers[plan.bottleneck()];
            return Err(EngineError::DoesNotFit {
                layer: worst.name.clone(),
                needed: worst.measured_bytes,
                available: self.device.ram_bytes,
            });
        }
        Ok(plan)
    }

    /// Selects the planner/executor policy.
    pub fn planner(mut self, kind: PlannerKind) -> Self {
        self.kind = kind;
        self
    }

    /// The device this engine targets.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The selected policy.
    pub fn planner_kind(&self) -> PlannerKind {
        self.kind
    }

    /// Deploys a model: validates device fit once, memoizes the
    /// [`MemoryPlan`] plus every policy plan artifact
    /// (fusion/patch/chain), resolves the planner+executor pair, and
    /// takes ownership of the weights that sessions will stage into
    /// Flash. This is the entry point of the plan-once/run-many flow:
    ///
    /// ```
    /// use vmcu::prelude::*;
    ///
    /// let g = vmcu::vmcu_graph::zoo::demo_linear_net();
    /// let weights = g.random_weights(1);
    /// let input = vmcu::vmcu_tensor::random::tensor_i8(&g.in_shape(), 2);
    /// let deployment = Engine::new(Device::stm32_f411re()).deploy(&g, &weights)?;
    /// let mut session = deployment.session();
    /// let report = session.infer(&input)?; // zero replanning, call after call
    /// assert_eq!(report.layers.len(), g.len());
    /// # Ok::<(), vmcu::EngineError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DoesNotFit`] naming the bottleneck layer
    /// for non-deployable models, [`EngineError::Unsupported`] for
    /// layer/weights kinds that cannot stage, and a memory error when
    /// the firmware image exceeds the device Flash.
    pub fn deploy(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
    ) -> Result<Deployment, EngineError> {
        Deployment::new(self.device.clone(), self.kind, graph, weights)
    }

    /// [`deploy`](Engine::deploy) without the whole-graph per-layer fit
    /// gate. Chain-mode execution
    /// ([`Session::infer_chained`](crate::deploy::Session::infer_chained))
    /// flows the entire network through **one** circular window of
    /// `max(per-layer span)` bytes, which can fit devices the per-layer
    /// plan does not — this is the deploy path for such chain-only
    /// models (the chain validates its own window at inference).
    /// Staging (layer/weights kinds, Flash capacity) is still validated.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Unsupported`] for layer/weights kinds that
    /// cannot stage and a memory error when the firmware image exceeds
    /// the device Flash.
    pub fn deploy_unchecked(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
    ) -> Result<Deployment, EngineError> {
        Deployment::new_unchecked(self.device.clone(), self.kind, graph, weights)
    }

    /// Plans one layer and checks device fit.
    fn plan_layer(&self, name: &str, layer: &LayerDesc) -> Result<LayerPlan, EngineError> {
        let plan = self
            .kind
            .planner()
            .plan(&[(name.to_owned(), layer.clone())], &self.device);
        let lp = plan.layers.into_iter().next().expect("one layer planned");
        if !lp.fits {
            return Err(EngineError::DoesNotFit {
                layer: name.to_owned(),
                needed: lp.measured_bytes,
                available: self.device.ram_bytes,
            });
        }
        Ok(lp)
    }

    /// Runs a single layer on a fresh machine, returning the output and
    /// the report. For repeated inference, prefer
    /// [`deploy`](Engine::deploy) — this path replans and restages on
    /// every call.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DoesNotFit`] when the plan exceeds device
    /// RAM, [`EngineError::Unsupported`] for layer kinds the selected
    /// executor cannot run, and pool/memory errors on internal bugs.
    pub fn run_layer(
        &self,
        name: &str,
        layer: &LayerDesc,
        weights: &LayerWeights,
        input: &Tensor<i8>,
    ) -> Result<(Tensor<i8>, LayerReport), EngineError> {
        let plan = self.plan_layer(name, layer)?;
        let mut m = Machine::new(self.device.clone());
        let staged = stage_layer(&mut m, layer, weights)?;
        let before = m.snapshot();
        let output = self
            .kind
            .executor()
            .exec_layer(&mut m, layer, staged, input)?;
        let exec = m.summarize_since(&before);
        Ok((
            output,
            LayerReport {
                name: name.to_owned(),
                plan,
                exec,
            },
        ))
    }

    /// Deprecated [`run_layer`](Self::run_layer) variant; the scratch is
    /// ignored (machine reuse now lives in
    /// [`Session`](crate::deploy::Session)). Results are identical to
    /// `run_layer`.
    ///
    /// # Errors
    ///
    /// Same contract as [`run_layer`](Self::run_layer).
    #[deprecated(note = "use `run_layer`, or `Engine::deploy(..).session()` for reuse")]
    #[allow(deprecated)]
    pub fn run_layer_scratch(
        &self,
        name: &str,
        layer: &LayerDesc,
        weights: &LayerWeights,
        input: &Tensor<i8>,
        _scratch: &mut InferenceScratch,
    ) -> Result<(Tensor<i8>, LayerReport), EngineError> {
        self.run_layer(name, layer, weights, input)
    }

    /// Deprecated one-shot graph run: deploys, opens a session, infers
    /// once. Bit-identical to the historical per-call path, but pays
    /// planning+staging on every call — hot paths should hold the
    /// [`Deployment`] and its [`Session`](crate::deploy::Session).
    ///
    /// # Errors
    ///
    /// The [`deploy`](Engine::deploy) and
    /// [`Session::infer`](crate::deploy::Session::infer) contracts.
    #[deprecated(
        note = "use `Engine::deploy(graph, weights)?.session().infer(input)` — \
                         plan once, run many"
    )]
    pub fn run_graph(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
    ) -> Result<InferenceReport, EngineError> {
        self.deploy(graph, weights)?.session().infer(input)
    }

    /// Deprecated [`run_graph`](Self::run_graph) variant; the scratch is
    /// ignored (reuse now lives in [`Session`](crate::deploy::Session)).
    ///
    /// # Errors
    ///
    /// Same contract as [`run_graph`](Self::run_graph).
    #[deprecated(note = "deploy once (`Engine::deploy`) and reuse the `Session` instead")]
    #[allow(deprecated)]
    pub fn run_graph_scratch(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
        _scratch: &mut InferenceScratch,
    ) -> Result<InferenceReport, EngineError> {
        self.deploy(graph, weights)?.session().infer(input)
    }

    /// Deprecated chained run: deploys (without the per-layer fit gate —
    /// the chain validates its own, smaller window) and infers through
    /// one circular pool. Only available under the vMCU policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Unsupported`] for non-vMCU policies,
    /// [`EngineError::DoesNotFit`] when the window exceeds RAM, and pool
    /// errors on planning bugs (never silent corruption).
    #[deprecated(note = "use `Engine::deploy(..)` then `Session::infer_chained` — the \
                         deployment memoizes the `ChainPlan`")]
    pub fn run_graph_chained(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
    ) -> Result<(InferenceReport, ChainPlan), EngineError> {
        self.deploy_unchecked(graph, weights)?
            .session()
            .infer_chained(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_graph::zoo;
    use vmcu_tensor::random;

    fn input_for(layer: &LayerDesc, seed: u64) -> Tensor<i8> {
        random::tensor_i8(&layer.in_shape(), seed)
    }

    fn infer(
        engine: &Engine,
        g: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
    ) -> InferenceReport {
        engine
            .deploy(g, weights)
            .unwrap()
            .session()
            .infer(input)
            .unwrap()
    }

    #[test]
    fn vmcu_and_tinyengine_agree_functionally() {
        let layer = LayerDesc::Ib(zoo::mcunet_5fps_vww()[4].params); // S5: 5x5, small
        let w = LayerWeights::random(&layer, 3);
        let input = input_for(&layer, 4);
        let dev = Device::stm32_f767zi();
        let (out_v, rep_v) = Engine::new(dev.clone())
            .run_layer("S5", &layer, &w, &input)
            .unwrap();
        let (out_t, rep_t) = Engine::new(dev)
            .planner(PlannerKind::TinyEngine)
            .run_layer("S5", &layer, &w, &input)
            .unwrap();
        assert_eq!(out_v, out_t, "both executors must agree bit-exact");
        assert!(rep_v.plan.measured_bytes < rep_t.plan.measured_bytes);
    }

    #[test]
    fn does_not_fit_is_reported_like_the_paper() {
        // Figure 7 case 1 on F411RE: TinyEngine exceeds 128 KB; vMCU runs.
        let case = &zoo::fig7_cases()[0];
        let layer = LayerDesc::Pointwise(case.params);
        let w = LayerWeights::random(&layer, 1);
        let input = input_for(&layer, 2);
        let dev = Device::stm32_f411re();
        let err = Engine::new(dev.clone())
            .planner(PlannerKind::TinyEngine)
            .run_layer(&case.name, &layer, &w, &input)
            .unwrap_err();
        assert!(matches!(err, EngineError::DoesNotFit { .. }));
        let ok = Engine::new(dev).run_layer(&case.name, &layer, &w, &input);
        assert!(ok.is_ok(), "vMCU must deploy case 1 on the 128 KB device");
    }

    #[test]
    fn graph_run_matches_reference_executor() {
        let g = zoo::demo_linear_net();
        let weights = g.random_weights(11);
        let input = random::tensor_i8(&g.in_shape(), 12);
        let report = infer(&Engine::new(Device::stm32_f767zi()), &g, &weights, &input);
        let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
        assert_eq!(&report.output, reference.last().unwrap());
        assert_eq!(report.layers.len(), g.len());
        assert!(report.latency_ms() > 0.0);
        assert!(report.energy_mj() > 0.0);
        assert!(report.peak_ram_bytes() > 0);
    }

    #[test]
    fn engine_and_work_items_are_send() {
        // The fleet scheduler moves engines, deployments, and sessions
        // into worker threads; regressions here break `vmcu-serve` at
        // compile time.
        fn assert_send<T: Send>() {}
        assert_send::<Engine>();
        assert_send::<Deployment>();
        assert_send::<crate::deploy::Session>();
        assert_send::<InferenceReport>();
    }

    #[test]
    fn session_reuse_is_bit_identical_to_fresh_sessions() {
        let g = zoo::demo_linear_net();
        let weights = g.random_weights(21);
        let input = random::tensor_i8(&g.in_shape(), 22);
        let engine = Engine::new(Device::stm32_f767zi());
        let fresh = infer(&engine, &g, &weights, &input);
        let deployment = engine.deploy(&g, &weights).unwrap();
        let mut session = deployment.session();
        // Second pass through a warm session must agree in outputs AND
        // in measured counters (the reset must not leak state).
        session.infer(&input).unwrap();
        let warm = session.infer(&input).unwrap();
        assert_eq!(warm.output, fresh.output);
        assert_eq!(warm.latency_ms(), fresh.latency_ms());
        assert_eq!(warm.energy_mj(), fresh.energy_mj());
        assert_eq!(warm.peak_ram_bytes(), fresh.peak_ram_bytes());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_wrappers_match_the_deploy_path_bit_for_bit() {
        let g = zoo::demo_linear_net();
        let weights = g.random_weights(21);
        let input = random::tensor_i8(&g.in_shape(), 22);
        let engine = Engine::new(Device::stm32_f767zi());
        let legacy = engine.run_graph(&g, &weights, &input).unwrap();
        let mut scratch = InferenceScratch::new();
        let legacy_scratch = engine
            .run_graph_scratch(&g, &weights, &input, &mut scratch)
            .unwrap();
        let new = infer(&engine, &g, &weights, &input);
        for old in [&legacy, &legacy_scratch] {
            assert_eq!(old.output, new.output);
            assert_eq!(old.latency_ms(), new.latency_ms());
            assert_eq!(old.energy_mj(), new.energy_mj());
            assert_eq!(old.peak_ram_bytes(), new.peak_ram_bytes());
        }
        assert!(Engine::with_model(
            Device::stm32_f767zi(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            &g
        )
        .is_ok());
    }

    #[test]
    fn oversized_model_is_a_typed_error_under_both_planners() {
        // 200x200x16 -> 16 pointwise: ~640 KB of input alone, far beyond
        // the 128 KB device under every policy.
        let huge = LayerDesc::Pointwise(vmcu_kernels::PointwiseParams::new(
            200,
            200,
            16,
            16,
            vmcu_tensor::Requant::identity(),
        ));
        let g = Graph::linear("huge", vec![huge.clone()]).unwrap();
        let dev = Device::stm32_f411re();
        let weights = g.random_weights(1);
        for kind in [
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            PlannerKind::TinyEngine,
        ] {
            let err = Engine::new(dev.clone())
                .planner(kind)
                .deploy(&g, &weights)
                .unwrap_err();
            match err {
                EngineError::DoesNotFit {
                    needed, available, ..
                } => {
                    assert!(needed > available, "{kind:?}: {needed} vs {available}");
                    assert_eq!(available, dev.ram_bytes);
                }
                other => panic!("{kind:?}: expected DoesNotFit, got {other}"),
            }
            // The layer-level run path reports the same typed error
            // instead of panicking.
            let w = LayerWeights::random(&huge, 1);
            let input = input_for(&huge, 2);
            let err = Engine::new(dev.clone())
                .planner(kind)
                .run_layer("huge", &huge, &w, &input)
                .unwrap_err();
            assert!(matches!(err, EngineError::DoesNotFit { .. }), "{kind:?}");
        }
    }

    #[test]
    fn check_fit_returns_the_full_plan_when_deployable() {
        let g = zoo::demo_linear_net();
        let plan = Engine::new(Device::stm32_f411re()).check_fit(&g).unwrap();
        assert_eq!(plan.layers.len(), g.len());
        assert!(plan.deployable());
        // The checked deploy path succeeds for the same model and
        // memoizes the identical plan.
        let deployment = Engine::new(Device::stm32_f411re())
            .deploy(&g, &g.random_weights(1))
            .unwrap();
        assert_eq!(deployment.plan(), &plan);
    }

    #[test]
    fn fused_graph_run_matches_reference_executor() {
        for g in [zoo::demo_linear_net(), zoo::mbv2_block_unfused()] {
            let weights = g.random_weights(31);
            let input = random::tensor_i8(&g.in_shape(), 32);
            let engine = Engine::new(Device::stm32_f767zi())
                .planner(PlannerKind::VmcuFused(IbScheme::RowBuffer));
            let report = infer(&engine, &g, &weights, &input);
            let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
            assert_eq!(&report.output, reference.last().unwrap(), "{}", g.name);
            assert!(report.latency_ms() > 0.0);
        }
    }

    #[test]
    fn fused_peak_ram_is_strictly_below_vmcu_on_the_zoo_chain() {
        let g = zoo::mbv2_block_unfused();
        let weights = g.random_weights(41);
        let input = random::tensor_i8(&g.in_shape(), 42);
        let dev = Device::stm32_f411re();
        let fused_engine =
            Engine::new(dev.clone()).planner(PlannerKind::VmcuFused(IbScheme::RowBuffer));
        let fused = infer(&fused_engine, &g, &weights, &input);
        let vmcu = infer(&Engine::new(dev), &g, &weights, &input);
        assert_eq!(fused.output, vmcu.output, "policies must agree bit-exact");
        assert!(
            fused.peak_ram_bytes() < vmcu.peak_ram_bytes(),
            "fused {} must be strictly below vMCU {}",
            fused.peak_ram_bytes(),
            vmcu.peak_ram_bytes()
        );
        // One report node for the whole fused chain.
        assert_eq!(fused.layers.len(), 1);
        assert_eq!(fused.layers[0].plan.kind, "fused-chain");
    }

    #[test]
    fn wide_chain_deploys_only_under_the_fused_policy() {
        let g = zoo::wide_expand_chain();
        let weights = g.random_weights(51);
        let input = random::tensor_i8(&g.in_shape(), 52);
        let dev = Device::stm32_f411re();
        let err = Engine::new(dev.clone()).deploy(&g, &weights).unwrap_err();
        assert!(matches!(err, EngineError::DoesNotFit { .. }));
        let deployment = Engine::new(dev)
            .planner(PlannerKind::VmcuFused(IbScheme::RowBuffer))
            .deploy(&g, &weights)
            .unwrap();
        let report = deployment.session().infer(&input).unwrap();
        let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
        assert_eq!(&report.output, reference.last().unwrap());
        assert!(report.peak_ram_bytes() <= 128 * 1024);
    }

    #[test]
    fn patched_graph_run_matches_reference_executor() {
        for g in [
            zoo::demo_linear_net(),
            zoo::mbv2_block_unfused(),
            zoo::hires_front_stage(),
        ] {
            let weights = g.random_weights(71);
            let input = random::tensor_i8(&g.in_shape(), 72);
            let engine = Engine::new(Device::stm32_f767zi())
                .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer));
            let report = infer(&engine, &g, &weights, &input);
            let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
            assert_eq!(&report.output, reference.last().unwrap(), "{}", g.name);
            assert!(report.latency_ms() > 0.0);
        }
    }

    #[test]
    fn hires_front_stage_deploys_only_under_the_patched_policy() {
        let g = zoo::hires_front_stage();
        let weights = g.random_weights(81);
        let input = random::tensor_i8(&g.in_shape(), 82);
        let dev = Device::stm32_f411re();
        for kind in [
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            PlannerKind::VmcuFused(IbScheme::RowBuffer),
            PlannerKind::TinyEngine,
            PlannerKind::Hmcos,
        ] {
            let err = Engine::new(dev.clone())
                .planner(kind)
                .deploy(&g, &weights)
                .unwrap_err();
            assert!(
                matches!(err, EngineError::DoesNotFit { .. }),
                "{kind:?} must OOM on the 147 KB front activation"
            );
        }
        let deployment = Engine::new(dev)
            .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer))
            .deploy(&g, &weights)
            .unwrap();
        let report = deployment.session().infer(&input).unwrap();
        let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
        assert_eq!(&report.output, reference.last().unwrap());
        assert!(report.peak_ram_bytes() <= 128 * 1024);
        // One report node for the patched front, named like the plan.
        assert_eq!(report.layers[0].plan.kind, "patched-front");
        assert!(report.layers[0].name.starts_with("patched[0..4]@"));
    }

    #[test]
    fn patched_session_reuse_is_bit_identical_to_fresh_sessions() {
        let g = zoo::hires_front_stage();
        let weights = g.random_weights(91);
        let input = random::tensor_i8(&g.in_shape(), 92);
        let engine = Engine::new(Device::stm32_f411re())
            .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer));
        let fresh = infer(&engine, &g, &weights, &input);
        let mut session = engine.deploy(&g, &weights).unwrap().session();
        session.infer(&input).unwrap();
        let warm = session.infer(&input).unwrap();
        assert_eq!(warm.output, fresh.output);
        assert_eq!(warm.latency_ms(), fresh.latency_ms());
        assert_eq!(warm.peak_ram_bytes(), fresh.peak_ram_bytes());
    }

    #[test]
    fn vmcu_latency_is_comparable_to_tinyengine_on_modules() {
        // Table 3's headline: vMCU ~1.03x TinyEngine on fused modules.
        let layer = LayerDesc::Ib(zoo::mcunet_5fps_vww()[5].params); // S6
        let w = LayerWeights::random(&layer, 5);
        let input = input_for(&layer, 6);
        let dev = Device::stm32_f411re();
        let (_, rv) = Engine::new(dev.clone())
            .run_layer("S6", &layer, &w, &input)
            .unwrap();
        let (_, rt) = Engine::new(dev)
            .planner(PlannerKind::TinyEngine)
            .run_layer("S6", &layer, &w, &input)
            .unwrap();
        let ratio = rv.exec.latency_ms / rt.exec.latency_ms;
        assert!(
            (0.6..=1.4).contains(&ratio),
            "latency ratio {ratio:.2} outside comparable band"
        );
    }
}
