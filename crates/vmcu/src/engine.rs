//! The inference engine: plan, deploy, execute, report.
//!
//! [`Engine`] ties the whole reproduction together: pick a device and a
//! planner policy, hand it layers (or whole linear graphs) with weights,
//! and it stages memory exactly as that policy dictates, runs the
//! corresponding kernels on the simulated MCU, and reports RAM, latency,
//! and energy. vMCU plans are additionally validated at run time by the
//! checked pool — a planning bug turns into a typed error, never a wrong
//! answer.

use crate::error::EngineError;
use vmcu_graph::{Graph, LayerDesc, LayerWeights};
use vmcu_kernels::conv2d::{conv2d_exec_distance, run_conv2d};
use vmcu_kernels::depthwise::{depthwise_exec_distance, run_depthwise};
use vmcu_kernels::fc::{fc_exec_distance, run_fc};
use vmcu_kernels::fused_chain::run_fused_chain;
use vmcu_kernels::fused_ib::{ib_exec_distance, run_fused_ib, IbFlash};
use vmcu_kernels::patched::run_patched_front;
use vmcu_kernels::pointwise::{pointwise_exec_distance, run_pointwise};
use vmcu_kernels::tinyengine::{
    run_depthwise_te_inplace, run_ib_te, run_pointwise_te, TeIbLayout, TePointwiseLayout,
};
use vmcu_kernels::{IbScheme, PointwiseParams};
use vmcu_plan::chain::{plan_chain, ChainPlan};
use vmcu_plan::fusion::{fuse_graph, FusionNode, FusionPlan};
use vmcu_plan::planner::MemoryPlanner;
use vmcu_plan::{
    FusedPlanner, HmcosPlanner, LayerPlan, MemoryPlan, PatchPlan, PatchedPlanner,
    TinyEnginePlanner, VmcuPlanner,
};
use vmcu_pool::SegmentPool;
use vmcu_sim::{Device, ExecSummary, Machine};
use vmcu_tensor::Tensor;

/// Planner/executor policy selection.
///
/// # Examples
///
/// Patch-based execution ([`PlannerKind::VmcuPatched`]) admits spatial
/// workloads no whole-tensor policy can: `zoo::hires_front_stage`'s
/// 147 KB input activation exceeds the 128 KB device outright, yet the
/// patched engine deploys it.
///
/// ```
/// use vmcu::prelude::*;
///
/// let g = vmcu::vmcu_graph::zoo::hires_front_stage();
/// let dev = Device::stm32_f411re();
/// let whole_tensor = Engine::with_model(dev.clone(), PlannerKind::Vmcu(IbScheme::RowBuffer), &g);
/// assert!(matches!(whole_tensor, Err(EngineError::DoesNotFit { .. })));
/// let patched = Engine::with_model(dev, PlannerKind::VmcuPatched(IbScheme::RowBuffer), &g);
/// assert!(patched.is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerKind {
    /// vMCU segment-level management (fused modules use the given
    /// workspace scheme).
    Vmcu(IbScheme),
    /// vMCU segment-level management **plus** the multi-layer segment
    /// fusion pass: runs of fusable layers execute as one fused chain in
    /// a single pool window, so fat intermediates never materialize.
    VmcuFused(IbScheme),
    /// vMCU segment-level management **plus** patch-based front-stage
    /// execution: the high-resolution spatial front runs tile by tile
    /// (only a tile's receptive-field slab is resident, halo recompute
    /// charged honestly), the tail reuses the fusion pass — the policy
    /// for models whose front activations exceed SRAM outright.
    VmcuPatched(IbScheme),
    /// TinyEngine tensor-level management.
    TinyEngine,
    /// HMCOS scheduling (planned with HMCOS policy; executed with the
    /// baseline kernels — HMCOS contributes no kernels of its own).
    Hmcos,
}

impl PlannerKind {
    /// Planner display name.
    pub fn name(&self) -> &'static str {
        match self {
            PlannerKind::Vmcu(_) => "vMCU",
            PlannerKind::VmcuFused(_) => "vMCU-fused",
            PlannerKind::VmcuPatched(_) => "vMCU-patched",
            PlannerKind::TinyEngine => "TinyEngine",
            PlannerKind::Hmcos => "HMCOS",
        }
    }

    /// The planning policy object for this kind — the same one the
    /// engine plans with, so external capacity math (admission control)
    /// can never disagree with execution.
    pub fn planner(&self) -> Box<dyn MemoryPlanner> {
        match self {
            PlannerKind::Vmcu(scheme) => Box::new(VmcuPlanner { scheme: *scheme }),
            PlannerKind::VmcuFused(scheme) => Box::new(FusedPlanner { scheme: *scheme }),
            PlannerKind::VmcuPatched(scheme) => Box::new(PatchedPlanner {
                scheme: *scheme,
                ..PatchedPlanner::default()
            }),
            PlannerKind::TinyEngine => Box::new(TinyEnginePlanner),
            PlannerKind::Hmcos => Box::new(HmcosPlanner),
        }
    }
}

/// Per-layer execution record.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// The memory plan for this layer.
    pub plan: LayerPlan,
    /// Counted work, latency, and energy of the layer.
    pub exec: ExecSummary,
}

/// Whole-run record.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Final output tensor.
    pub output: Tensor<i8>,
    /// Per-layer records in execution order.
    pub layers: Vec<LayerReport>,
}

impl InferenceReport {
    /// Peak measured RAM across layers (bytes, including runtime
    /// overhead).
    pub fn peak_ram_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.plan.measured_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.exec.latency_ms).sum()
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.layers.iter().map(|l| l.exec.energy_mj).sum()
    }
}

/// Reusable per-worker execution state.
///
/// Engines are stateless between runs; what *is* worth keeping is the
/// simulated machine itself — its RAM buffer alone is the full device
/// SRAM (128–512 KB). A long-lived worker thread passes one scratch to
/// every inference it executes, and the machine is reset (zeroed, not
/// reallocated) between layers. A fresh default scratch reproduces the
/// old allocate-per-layer behavior bit-for-bit.
///
/// Under the fused policy the scratch also memoizes the [`FusionPlan`]
/// (and under the patched policy the [`PatchPlan`]): the plan depends
/// only on `(graph, scheme)`, so a worker serving the same model
/// repeatedly replans nothing on the hot path.
#[derive(Debug, Default)]
pub struct InferenceScratch {
    machine: Option<Machine>,
    fusion: Option<(Graph, IbScheme, FusionPlan)>,
    patch: Option<(Graph, IbScheme, PatchPlan)>,
}

impl InferenceScratch {
    /// Creates an empty scratch; the first run lazily boots its machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// A freshly booted machine for `device`, reusing the previous
    /// allocation when the device model matches.
    fn machine_for(&mut self, device: &Device) -> &mut Machine {
        match &mut self.machine {
            Some(m) if m.device == *device => m.reset(),
            slot => *slot = Some(Machine::new(device.clone())),
        }
        self.machine.as_mut().expect("machine just ensured")
    }

    /// The fusion plan for `(graph, scheme)`, recomputed only when they
    /// change (structural graph equality, so a same-named but different
    /// model can never reuse a stale plan).
    fn fusion_plan_for(&mut self, graph: &Graph, scheme: IbScheme) -> &FusionPlan {
        let hit = matches!(&self.fusion, Some((g, s, _)) if *s == scheme && g == graph);
        if !hit {
            self.fusion = Some((graph.clone(), scheme, fuse_graph(graph, scheme)));
        }
        &self.fusion.as_ref().expect("fusion plan just ensured").2
    }

    /// The patch plan for `(graph, scheme)`, recomputed only when they
    /// change — the patched analogue of
    /// [`fusion_plan_for`](Self::fusion_plan_for).
    fn patch_plan_for(&mut self, graph: &Graph, scheme: IbScheme) -> &PatchPlan {
        let hit = matches!(&self.patch, Some((g, s, _)) if *s == scheme && g == graph);
        if !hit {
            let planner = PatchedPlanner {
                scheme,
                ..PatchedPlanner::default()
            };
            self.patch = Some((graph.clone(), scheme, planner.patch_plan(graph)));
        }
        &self.patch.as_ref().expect("patch plan just ensured").2
    }
}

/// The inference engine.
#[derive(Debug, Clone)]
pub struct Engine {
    device: Device,
    kind: PlannerKind,
}

impl Engine {
    /// Creates an engine for a device with the default policy
    /// (vMCU, row-buffer fusion).
    pub fn new(device: Device) -> Self {
        Self {
            device,
            kind: PlannerKind::Vmcu(IbScheme::RowBuffer),
        }
    }

    /// Creates an engine for a device and policy, verifying up front that
    /// `graph` deploys within the device's SRAM. This is the checked
    /// construction path used by admission control: a model too large for
    /// the device is a typed [`EngineError::DoesNotFit`], never a panic
    /// at run time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DoesNotFit`] naming the bottleneck layer
    /// when any layer's planned RAM exceeds the device.
    pub fn with_model(
        device: Device,
        kind: PlannerKind,
        graph: &Graph,
    ) -> Result<Self, EngineError> {
        let engine = Self { device, kind };
        engine.check_fit(graph)?;
        Ok(engine)
    }

    /// Plans the whole graph and verifies every layer fits the device.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DoesNotFit`] for the bottleneck layer of a
    /// non-deployable plan.
    pub fn check_fit(&self, graph: &Graph) -> Result<MemoryPlan, EngineError> {
        let plan = vmcu_plan::plan_graph(&*self.kind.planner(), graph, &self.device);
        if !plan.deployable() {
            let worst = &plan.layers[plan.bottleneck()];
            return Err(EngineError::DoesNotFit {
                layer: worst.name.clone(),
                needed: worst.measured_bytes,
                available: self.device.ram_bytes,
            });
        }
        Ok(plan)
    }

    /// Selects the planner/executor policy.
    pub fn planner(mut self, kind: PlannerKind) -> Self {
        self.kind = kind;
        self
    }

    /// The device this engine targets.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The selected policy.
    pub fn planner_kind(&self) -> PlannerKind {
        self.kind
    }

    /// Plans one layer and checks device fit.
    fn plan_layer(&self, name: &str, layer: &LayerDesc) -> Result<LayerPlan, EngineError> {
        let plan = self
            .kind
            .planner()
            .plan(&[(name.to_owned(), layer.clone())], &self.device);
        let lp = plan.layers.into_iter().next().expect("one layer planned");
        if !lp.fits {
            return Err(EngineError::DoesNotFit {
                layer: name.to_owned(),
                needed: lp.measured_bytes,
                available: self.device.ram_bytes,
            });
        }
        Ok(lp)
    }

    /// Runs a single layer on a fresh machine, returning the output and
    /// the report.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DoesNotFit`] when the plan exceeds device
    /// RAM, [`EngineError::Unsupported`] for layer kinds the selected
    /// executor cannot run, and pool/memory errors on internal bugs.
    pub fn run_layer(
        &self,
        name: &str,
        layer: &LayerDesc,
        weights: &LayerWeights,
        input: &Tensor<i8>,
    ) -> Result<(Tensor<i8>, LayerReport), EngineError> {
        self.run_layer_scratch(name, layer, weights, input, &mut InferenceScratch::new())
    }

    /// [`run_layer`](Self::run_layer) with a caller-owned
    /// [`InferenceScratch`], reusing the simulated machine allocation
    /// between calls. Results are identical to `run_layer`.
    ///
    /// # Errors
    ///
    /// Same contract as [`run_layer`](Self::run_layer).
    pub fn run_layer_scratch(
        &self,
        name: &str,
        layer: &LayerDesc,
        weights: &LayerWeights,
        input: &Tensor<i8>,
        scratch: &mut InferenceScratch,
    ) -> Result<(Tensor<i8>, LayerReport), EngineError> {
        let plan = self.plan_layer(name, layer)?;
        let machine = scratch.machine_for(&self.device);
        let before = machine.snapshot();
        let output = match self.kind {
            PlannerKind::Vmcu(scheme)
            | PlannerKind::VmcuFused(scheme)
            | PlannerKind::VmcuPatched(scheme) => {
                self.exec_vmcu(machine, layer, weights, input, scheme)?
            }
            PlannerKind::TinyEngine | PlannerKind::Hmcos => {
                self.exec_baseline(machine, layer, weights, input)?
            }
        };
        let exec = machine.summarize_since(&before);
        Ok((
            output,
            LayerReport {
                name: name.to_owned(),
                plan,
                exec,
            },
        ))
    }

    /// Runs a linear graph layer by layer (activations are re-staged
    /// between layers by the host; on hardware the pool pointer of layer
    /// `i+1` is simply layer `i`'s output pointer).
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    pub fn run_graph(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
    ) -> Result<InferenceReport, EngineError> {
        self.run_graph_scratch(graph, weights, input, &mut InferenceScratch::new())
    }

    /// [`run_graph`](Self::run_graph) with a caller-owned
    /// [`InferenceScratch`]: every layer reuses one simulated machine,
    /// and so does every subsequent inference through the same scratch.
    /// This is the hot path of the `vmcu-serve` worker loop.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    pub fn run_graph_scratch(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
        scratch: &mut InferenceScratch,
    ) -> Result<InferenceReport, EngineError> {
        assert_eq!(weights.len(), graph.len(), "weights/layers mismatch");
        if let PlannerKind::VmcuFused(scheme) = self.kind {
            return self.run_graph_fused(graph, weights, input, scratch, scheme);
        }
        if let PlannerKind::VmcuPatched(scheme) = self.kind {
            return self.run_graph_patched(graph, weights, input, scratch, scheme);
        }
        let mut layers = Vec::with_capacity(graph.len());
        let mut cur = input.clone();
        for (i, (layer, w)) in graph.layers().iter().zip(weights).enumerate() {
            let name = format!("{}#{i}", layer.kind());
            let (out, report) = self.run_layer_scratch(&name, layer, w, &cur, scratch)?;
            layers.push(report);
            cur = out;
        }
        Ok(InferenceReport {
            output: cur,
            layers,
        })
    }

    /// Executes a graph under the multi-layer fusion pass: fused groups
    /// run as one chain kernel in a single pool window (intermediates
    /// live only as line-buffer rings), singleton nodes run through the
    /// regular per-layer vMCU path. One [`LayerReport`] per execution
    /// node.
    fn run_graph_fused(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
        scratch: &mut InferenceScratch,
        scheme: IbScheme,
    ) -> Result<InferenceReport, EngineError> {
        let fusion = scratch.fusion_plan_for(graph, scheme).clone();
        let mut layers = Vec::with_capacity(fusion.nodes.len());
        let output =
            self.run_fusion_nodes(graph, weights, &fusion.nodes, input, scratch, &mut layers)?;
        Ok(InferenceReport { output, layers })
    }

    /// Executes a sequence of fusion-plan nodes (the whole graph under
    /// the fused policy, the tail under the patched policy), appending
    /// one [`LayerReport`] per node. Node indices are graph-absolute.
    fn run_fusion_nodes(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        nodes: &[FusionNode],
        input: &Tensor<i8>,
        scratch: &mut InferenceScratch,
        layers: &mut Vec<LayerReport>,
    ) -> Result<Tensor<i8>, EngineError> {
        let mut cur = input.clone();
        for node in nodes {
            match node {
                FusionNode::Single { index, .. } => {
                    let layer = &graph.layers()[*index];
                    let name = format!("{}#{index}", layer.kind());
                    let (out, report) =
                        self.run_layer_scratch(&name, layer, &weights[*index], &cur, scratch)?;
                    layers.push(report);
                    cur = out;
                }
                FusionNode::Fused(group) => {
                    // One accounting source: the same LayerPlan the
                    // planning surface reports.
                    let plan = group.layer_plan(&self.device);
                    if !plan.fits {
                        return Err(EngineError::DoesNotFit {
                            layer: plan.name,
                            needed: plan.measured_bytes,
                            available: self.device.ram_bytes,
                        });
                    }
                    let m = scratch.machine_for(&self.device);
                    let before = m.snapshot();
                    let flash = stage_flash(
                        m,
                        &graph.layers()[group.start..group.end],
                        &weights[group.start..group.end],
                        "vMCU-fused",
                    )?;
                    let d = group.exec_distance;
                    let mut pool = SegmentPool::new(m, 0, group.window, group.chain.seg())?;
                    pool.host_fill_live(m, 0, &cur.as_bytes())?;
                    run_fused_chain(m, &mut pool, &group.chain, 0, -d, &flash, group.window)?;
                    let out_layer = &graph.layers()[group.end - 1];
                    let out = pool.host_read(m, -d, out_layer.out_bytes())?;
                    cur = Tensor::from_bytes(&out_layer.out_shape(), &out);
                    let exec = m.summarize_since(&before);
                    layers.push(LayerReport {
                        name: plan.name.clone(),
                        plan,
                        exec,
                    });
                }
            }
        }
        Ok(cur)
    }

    /// Executes a graph under the patch-based policy: the spatial front
    /// stage runs tile by tile through
    /// [`vmcu_kernels::patched::run_patched_front`] (only a tile's
    /// receptive-field slab is ever resident; halo recompute is charged
    /// to the machine), then the tail runs through the fusion-plan nodes
    /// exactly like the fused policy. One [`LayerReport`] for the whole
    /// front, one per tail node. When patching does not pay, the plan
    /// degenerates to the plain fused plan and this is the fused path.
    fn run_graph_patched(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
        scratch: &mut InferenceScratch,
        scheme: IbScheme,
    ) -> Result<InferenceReport, EngineError> {
        let pplan = scratch.patch_plan_for(graph, scheme).clone();
        let mut layers = Vec::with_capacity(pplan.tail.nodes.len() + 1);
        let mut cur = input.clone();
        if let Some(front) = &pplan.front {
            // One accounting source: the same LayerPlan the planning
            // surface reports.
            let plan = pplan
                .front_layer_plan(&self.device)
                .expect("front is present");
            if !plan.fits {
                return Err(EngineError::DoesNotFit {
                    layer: plan.name,
                    needed: plan.measured_bytes,
                    available: self.device.ram_bytes,
                });
            }
            let m = scratch.machine_for(&self.device);
            let before = m.snapshot();
            let flash = stage_flash(
                m,
                &graph.layers()[..pplan.front_len],
                &weights[..pplan.front_len],
                "vMCU-patched",
            )?;
            cur = run_patched_front(m, front, &cur, &flash)?;
            let exec = m.summarize_since(&before);
            layers.push(LayerReport {
                name: plan.name.clone(),
                plan,
                exec,
            });
        }
        let output = self.run_fusion_nodes(
            graph,
            weights,
            &pplan.tail.nodes,
            &cur,
            scratch,
            &mut layers,
        )?;
        Ok(InferenceReport { output, layers })
    }

    /// Runs a linear graph **chained through one circular pool**: each
    /// layer's input pointer is the previous layer's output pointer, so
    /// the whole network deploys in a single window of
    /// `max(per-layer span)` bytes — the paper's multi-layer deployment
    /// model (§4: "the input tensor initial pointer address is determined
    /// by the previous layer").
    ///
    /// Only available under the vMCU policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Unsupported`] for non-vMCU policies,
    /// [`EngineError::DoesNotFit`] when the window exceeds RAM, and pool
    /// errors on planning bugs (never silent corruption).
    pub fn run_graph_chained(
        &self,
        graph: &Graph,
        weights: &[LayerWeights],
        input: &Tensor<i8>,
    ) -> Result<(InferenceReport, ChainPlan), EngineError> {
        assert_eq!(weights.len(), graph.len(), "weights/layers mismatch");
        let scheme = match self.kind {
            PlannerKind::Vmcu(scheme) => scheme,
            _ => {
                return Err(EngineError::Unsupported {
                    kind: "chained graph",
                    executor: self.kind.name(),
                })
            }
        };
        let plan = plan_chain(graph, scheme);
        let needed = plan.total_bytes() + self.device.runtime_overhead_bytes;
        if needed > self.device.ram_bytes {
            return Err(EngineError::DoesNotFit {
                layer: format!("chained {}", graph.name),
                needed,
                available: self.device.ram_bytes,
            });
        }
        let mut m = Machine::new(self.device.clone());
        let seg = match graph.layers().first() {
            Some(LayerDesc::Ib(p)) => p.seg(),
            Some(LayerDesc::Pointwise(p)) => p.seg,
            Some(LayerDesc::Dense(p)) => p.seg,
            _ => 1,
        };
        let mut pool = SegmentPool::new(&m, 0, plan.window, seg.max(1))?;
        let ws_base = plan.window;
        pool.host_fill_live(&mut m, plan.bases[0], &input.as_bytes())?;
        let mut layers = Vec::with_capacity(graph.len());
        for (i, (layer, w)) in graph.layers().iter().zip(weights).enumerate() {
            let name = format!("{}#{i}", layer.kind());
            let before = m.snapshot();
            let (b_in, b_out) = (plan.bases[i], plan.bases[i + 1]);
            match (layer, w) {
                (LayerDesc::Pointwise(p), LayerWeights::Pointwise(wt)) => {
                    let w_base = m.host_program_flash(&wt.as_bytes())?;
                    run_pointwise(&mut m, &mut pool, p, b_in, b_out, w_base, None)?;
                }
                (LayerDesc::Conv2d(p), LayerWeights::Conv2d(wt)) => {
                    let w_base = m.host_program_flash(&wt.as_bytes())?;
                    run_conv2d(&mut m, &mut pool, p, b_in, b_out, w_base, None)?;
                }
                (LayerDesc::Depthwise(p), LayerWeights::Depthwise(wt)) => {
                    let w_base = m.host_program_flash(&wt.as_bytes())?;
                    run_depthwise(&mut m, &mut pool, p, b_in, b_out, w_base, None)?;
                }
                (LayerDesc::Dense(p), LayerWeights::Dense(wt)) => {
                    let w_base = m.host_program_flash(&wt.as_bytes())?;
                    run_fc(&mut m, &mut pool, p, b_in, b_out, w_base, None)?;
                }
                (LayerDesc::Ib(p), LayerWeights::Ib { w1, wdw, w2 }) => {
                    let flash = IbFlash {
                        w1: m.host_program_flash(&w1.as_bytes())?,
                        wdw: m.host_program_flash(&wdw.as_bytes())?,
                        w2: m.host_program_flash(&w2.as_bytes())?,
                    };
                    run_fused_ib(&mut m, &mut pool, p, scheme, b_in, b_out, &flash, ws_base)?;
                }
                _ => {
                    return Err(EngineError::Unsupported {
                        kind: layer.kind(),
                        executor: "vMCU",
                    })
                }
            }
            let exec = m.summarize_since(&before);
            layers.push(LayerReport {
                name,
                plan: LayerPlan {
                    name: format!("{}#{i}", layer.kind()),
                    kind: layer.kind(),
                    activation_bytes: plan.window,
                    workspace_bytes: plan.workspace,
                    measured_bytes: needed,
                    fits: true,
                },
                exec,
            });
        }
        let out_bytes = graph.layers().last().expect("non-empty graph").out_bytes();
        let out_base = *plan.bases.last().expect("bases non-empty");
        let out = pool.host_read(&m, out_base, out_bytes)?;
        let output = Tensor::from_bytes(&graph.out_shape(), &out);
        Ok((InferenceReport { output, layers }, plan))
    }

    // ---- vMCU execution path ----------------------------------------------

    fn exec_vmcu(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        weights: &LayerWeights,
        input: &Tensor<i8>,
        scheme: IbScheme,
    ) -> Result<Tensor<i8>, EngineError> {
        match (layer, weights) {
            (LayerDesc::Pointwise(p), LayerWeights::Pointwise(w)) => {
                let w_base = m.host_program_flash(&w.as_bytes())?;
                let d = pointwise_exec_distance(p);
                let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
                let mut pool = SegmentPool::new(m, 0, window, p.seg)?;
                pool.host_fill_live(m, 0, &input.as_bytes())?;
                run_pointwise(m, &mut pool, p, 0, -d, w_base, None)?;
                let out = pool.host_read(m, -d, p.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.h, p.w, p.k], &out))
            }
            (LayerDesc::Conv2d(p), LayerWeights::Conv2d(w)) => {
                let w_base = m.host_program_flash(&w.as_bytes())?;
                let d = conv2d_exec_distance(p);
                let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
                let mut pool = SegmentPool::new(m, 0, window, p.seg)?;
                pool.host_fill_live(m, 0, &input.as_bytes())?;
                run_conv2d(m, &mut pool, p, 0, -d, w_base, None)?;
                let out = pool.host_read(m, -d, p.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.out_h(), p.out_w(), p.k], &out))
            }
            (LayerDesc::Depthwise(p), LayerWeights::Depthwise(w)) => {
                let w_base = m.host_program_flash(&w.as_bytes())?;
                let d = depthwise_exec_distance(p);
                let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
                let mut pool = SegmentPool::new(m, 0, window, p.c)?;
                pool.host_fill_live(m, 0, &input.as_bytes())?;
                run_depthwise(m, &mut pool, p, 0, -d, w_base, None)?;
                let out = pool.host_read(m, -d, p.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.out_h(), p.out_w(), p.c], &out))
            }
            (LayerDesc::Dense(p), LayerWeights::Dense(w)) => {
                let w_base = m.host_program_flash(&w.as_bytes())?;
                let d = fc_exec_distance(p);
                let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
                let mut pool = SegmentPool::new(m, 0, window, p.seg)?;
                pool.host_fill_live(m, 0, &input.as_bytes())?;
                run_fc(m, &mut pool, p, 0, -d, w_base, None)?;
                let out = pool.host_read(m, -d, p.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.m, p.n], &out))
            }
            (LayerDesc::Ib(p), LayerWeights::Ib { w1, wdw, w2 }) => {
                let flash = IbFlash {
                    w1: m.host_program_flash(&w1.as_bytes())?,
                    wdw: m.host_program_flash(&wdw.as_bytes())?,
                    w2: m.host_program_flash(&w2.as_bytes())?,
                };
                let d = ib_exec_distance(p, scheme);
                let window = (p.in_bytes() + d.max(0) as usize).max(p.out_bytes());
                let mut pool = SegmentPool::new(m, 0, window, p.seg())?;
                pool.host_fill_live(m, 0, &input.as_bytes())?;
                run_fused_ib(m, &mut pool, p, scheme, 0, -d, &flash, window)?;
                let out = pool.host_read(m, -d, p.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.hw2(), p.hw2(), p.c_out], &out))
            }
            _ => Err(EngineError::Unsupported {
                kind: layer.kind(),
                executor: "vMCU",
            }),
        }
    }

    // ---- baseline execution path (TinyEngine kernels) ----------------------

    fn exec_baseline(
        &self,
        m: &mut Machine,
        layer: &LayerDesc,
        weights: &LayerWeights,
        input: &Tensor<i8>,
    ) -> Result<Tensor<i8>, EngineError> {
        match (layer, weights) {
            (LayerDesc::Pointwise(p), LayerWeights::Pointwise(w)) => {
                let w_base = m.host_program_flash(&w.as_bytes())?;
                let layout = TePointwiseLayout {
                    input: 0,
                    output: p.in_bytes(),
                    im2col: p.in_bytes() + p.out_bytes(),
                };
                m.host_write_ram(layout.input, &input.as_bytes())?;
                run_pointwise_te(m, p, 1, layout, w_base, None)?;
                let out = m.host_read_ram(layout.output, p.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.h, p.w, p.k], &out))
            }
            (LayerDesc::Dense(p), LayerWeights::Dense(w)) => {
                // Dense == pointwise over M "pixels" of one column.
                let pw = PointwiseParams {
                    h: p.m,
                    w: 1,
                    c: p.k,
                    k: p.n,
                    seg: p.seg,
                    rq: p.rq,
                    clamp: p.clamp,
                };
                let w_base = m.host_program_flash(&w.as_bytes())?;
                let layout = TePointwiseLayout {
                    input: 0,
                    output: pw.in_bytes(),
                    im2col: pw.in_bytes() + pw.out_bytes(),
                };
                m.host_write_ram(layout.input, &input.as_bytes())?;
                run_pointwise_te(m, &pw, 1, layout, w_base, None)?;
                let out = m.host_read_ram(layout.output, pw.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.m, p.n], &out))
            }
            (LayerDesc::Depthwise(p), LayerWeights::Depthwise(w)) => {
                let w_base = m.host_program_flash(&w.as_bytes())?;
                m.host_write_ram(0, &input.as_bytes())?;
                run_depthwise_te_inplace(m, p, 0, p.in_bytes(), w_base)?;
                let out = m.host_read_ram(0, p.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.out_h(), p.out_w(), p.c], &out))
            }
            (LayerDesc::Ib(p), LayerWeights::Ib { w1, wdw, w2 }) => {
                let w1b = m.host_program_flash(&w1.as_bytes())?;
                let wdwb = m.host_program_flash(&wdw.as_bytes())?;
                let w2b = m.host_program_flash(&w2.as_bytes())?;
                let (layout, _end) = TeIbLayout::packed(p, 0);
                m.host_write_ram(layout.a, &input.as_bytes())?;
                run_ib_te(m, p, layout, w1b, wdwb, w2b)?;
                let out = m.host_read_ram(layout.d, p.out_bytes())?;
                Ok(Tensor::from_bytes(&[p.hw2(), p.hw2(), p.c_out], &out))
            }
            (LayerDesc::Conv2d(_), _) => Err(EngineError::Unsupported {
                kind: layer.kind(),
                executor: self.kind.name(),
            }),
            _ => Err(EngineError::Unsupported {
                kind: layer.kind(),
                executor: self.kind.name(),
            }),
        }
    }
}

/// Programs each layer's weights into Flash, returning one base address
/// per layer — the shared staging step of the fused-chain and
/// patched-front paths (`executor` names the policy in the typed error
/// for a layer kind whose weights cannot stage).
fn stage_flash(
    m: &mut Machine,
    layers: &[LayerDesc],
    weights: &[LayerWeights],
    executor: &'static str,
) -> Result<Vec<usize>, EngineError> {
    let mut flash = Vec::with_capacity(layers.len());
    for (layer, w) in layers.iter().zip(weights) {
        let bytes = match (layer, w) {
            (LayerDesc::Pointwise(_), LayerWeights::Pointwise(t))
            | (LayerDesc::Conv2d(_), LayerWeights::Conv2d(t))
            | (LayerDesc::Depthwise(_), LayerWeights::Depthwise(t))
            | (LayerDesc::Dense(_), LayerWeights::Dense(t)) => t.as_bytes(),
            _ => {
                return Err(EngineError::Unsupported {
                    kind: layer.kind(),
                    executor,
                })
            }
        };
        flash.push(m.host_program_flash(&bytes)?);
    }
    Ok(flash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_graph::zoo;
    use vmcu_tensor::random;

    fn input_for(layer: &LayerDesc, seed: u64) -> Tensor<i8> {
        random::tensor_i8(&layer.in_shape(), seed)
    }

    #[test]
    fn vmcu_and_tinyengine_agree_functionally() {
        let layer = LayerDesc::Ib(zoo::mcunet_5fps_vww()[4].params); // S5: 5x5, small
        let w = LayerWeights::random(&layer, 3);
        let input = input_for(&layer, 4);
        let dev = Device::stm32_f767zi();
        let (out_v, rep_v) = Engine::new(dev.clone())
            .run_layer("S5", &layer, &w, &input)
            .unwrap();
        let (out_t, rep_t) = Engine::new(dev)
            .planner(PlannerKind::TinyEngine)
            .run_layer("S5", &layer, &w, &input)
            .unwrap();
        assert_eq!(out_v, out_t, "both executors must agree bit-exact");
        assert!(rep_v.plan.measured_bytes < rep_t.plan.measured_bytes);
    }

    #[test]
    fn does_not_fit_is_reported_like_the_paper() {
        // Figure 7 case 1 on F411RE: TinyEngine exceeds 128 KB; vMCU runs.
        let case = &zoo::fig7_cases()[0];
        let layer = LayerDesc::Pointwise(case.params);
        let w = LayerWeights::random(&layer, 1);
        let input = input_for(&layer, 2);
        let dev = Device::stm32_f411re();
        let err = Engine::new(dev.clone())
            .planner(PlannerKind::TinyEngine)
            .run_layer(&case.name, &layer, &w, &input)
            .unwrap_err();
        assert!(matches!(err, EngineError::DoesNotFit { .. }));
        let ok = Engine::new(dev).run_layer(&case.name, &layer, &w, &input);
        assert!(ok.is_ok(), "vMCU must deploy case 1 on the 128 KB device");
    }

    #[test]
    fn graph_run_matches_reference_executor() {
        let g = zoo::demo_linear_net();
        let weights = g.random_weights(11);
        let input = random::tensor_i8(&g.in_shape(), 12);
        let report = Engine::new(Device::stm32_f767zi())
            .run_graph(&g, &weights, &input)
            .unwrap();
        let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
        assert_eq!(&report.output, reference.last().unwrap());
        assert_eq!(report.layers.len(), g.len());
        assert!(report.latency_ms() > 0.0);
        assert!(report.energy_mj() > 0.0);
        assert!(report.peak_ram_bytes() > 0);
    }

    #[test]
    fn engine_and_work_items_are_send() {
        // The fleet scheduler moves engines and scratches into worker
        // threads; regressions here break `vmcu-serve` at compile time.
        fn assert_send<T: Send>() {}
        assert_send::<Engine>();
        assert_send::<InferenceScratch>();
        assert_send::<InferenceReport>();
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_machines() {
        let g = zoo::demo_linear_net();
        let weights = g.random_weights(21);
        let input = random::tensor_i8(&g.in_shape(), 22);
        let engine = Engine::new(Device::stm32_f767zi());
        let fresh = engine.run_graph(&g, &weights, &input).unwrap();
        let mut scratch = InferenceScratch::new();
        // Second pass through a warm scratch must agree in outputs AND
        // in measured counters (the reset must not leak state).
        engine
            .run_graph_scratch(&g, &weights, &input, &mut scratch)
            .unwrap();
        let warm = engine
            .run_graph_scratch(&g, &weights, &input, &mut scratch)
            .unwrap();
        assert_eq!(warm.output, fresh.output);
        assert_eq!(warm.latency_ms(), fresh.latency_ms());
        assert_eq!(warm.energy_mj(), fresh.energy_mj());
        assert_eq!(warm.peak_ram_bytes(), fresh.peak_ram_bytes());
    }

    #[test]
    fn scratch_adapts_when_the_device_changes() {
        let layer = LayerDesc::Ib(zoo::mcunet_5fps_vww()[4].params);
        let w = LayerWeights::random(&layer, 3);
        let input = input_for(&layer, 4);
        let mut scratch = InferenceScratch::new();
        let (out_small, _) = Engine::new(Device::stm32_f411re())
            .run_layer_scratch("S5", &layer, &w, &input, &mut scratch)
            .unwrap();
        // Same scratch, bigger device: machine is rebuilt, not reused.
        let (out_big, _) = Engine::new(Device::stm32_f767zi())
            .run_layer_scratch("S5", &layer, &w, &input, &mut scratch)
            .unwrap();
        assert_eq!(out_small, out_big);
    }

    #[test]
    fn oversized_model_is_a_typed_error_under_both_planners() {
        // 200x200x16 -> 16 pointwise: ~640 KB of input alone, far beyond
        // the 128 KB device under every policy.
        let huge = LayerDesc::Pointwise(vmcu_kernels::PointwiseParams::new(
            200,
            200,
            16,
            16,
            vmcu_tensor::Requant::identity(),
        ));
        let g = Graph::linear("huge", vec![huge.clone()]).unwrap();
        let dev = Device::stm32_f411re();
        for kind in [
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            PlannerKind::TinyEngine,
        ] {
            let err = Engine::with_model(dev.clone(), kind, &g).unwrap_err();
            match err {
                EngineError::DoesNotFit {
                    needed, available, ..
                } => {
                    assert!(needed > available, "{kind:?}: {needed} vs {available}");
                    assert_eq!(available, dev.ram_bytes);
                }
                other => panic!("{kind:?}: expected DoesNotFit, got {other}"),
            }
            // The run path reports the same typed error instead of
            // panicking.
            let w = LayerWeights::random(&huge, 1);
            let input = input_for(&huge, 2);
            let err = Engine::new(dev.clone())
                .planner(kind)
                .run_layer("huge", &huge, &w, &input)
                .unwrap_err();
            assert!(matches!(err, EngineError::DoesNotFit { .. }), "{kind:?}");
        }
    }

    #[test]
    fn check_fit_returns_the_full_plan_when_deployable() {
        let g = zoo::demo_linear_net();
        let plan = Engine::new(Device::stm32_f411re()).check_fit(&g).unwrap();
        assert_eq!(plan.layers.len(), g.len());
        assert!(plan.deployable());
        // Checked construction succeeds for the same model.
        assert!(Engine::with_model(
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            &g
        )
        .is_ok());
    }

    #[test]
    fn fused_graph_run_matches_reference_executor() {
        for g in [zoo::demo_linear_net(), zoo::mbv2_block_unfused()] {
            let weights = g.random_weights(31);
            let input = random::tensor_i8(&g.in_shape(), 32);
            let report = Engine::new(Device::stm32_f767zi())
                .planner(PlannerKind::VmcuFused(IbScheme::RowBuffer))
                .run_graph(&g, &weights, &input)
                .unwrap();
            let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
            assert_eq!(&report.output, reference.last().unwrap(), "{}", g.name);
            assert!(report.latency_ms() > 0.0);
        }
    }

    #[test]
    fn fused_peak_ram_is_strictly_below_vmcu_on_the_zoo_chain() {
        let g = zoo::mbv2_block_unfused();
        let weights = g.random_weights(41);
        let input = random::tensor_i8(&g.in_shape(), 42);
        let dev = Device::stm32_f411re();
        let fused = Engine::new(dev.clone())
            .planner(PlannerKind::VmcuFused(IbScheme::RowBuffer))
            .run_graph(&g, &weights, &input)
            .unwrap();
        let vmcu = Engine::new(dev).run_graph(&g, &weights, &input).unwrap();
        assert_eq!(fused.output, vmcu.output, "policies must agree bit-exact");
        assert!(
            fused.peak_ram_bytes() < vmcu.peak_ram_bytes(),
            "fused {} must be strictly below vMCU {}",
            fused.peak_ram_bytes(),
            vmcu.peak_ram_bytes()
        );
        // One report node for the whole fused chain.
        assert_eq!(fused.layers.len(), 1);
        assert_eq!(fused.layers[0].plan.kind, "fused-chain");
    }

    #[test]
    fn wide_chain_deploys_only_under_the_fused_policy() {
        let g = zoo::wide_expand_chain();
        let weights = g.random_weights(51);
        let input = random::tensor_i8(&g.in_shape(), 52);
        let dev = Device::stm32_f411re();
        let err = Engine::with_model(dev.clone(), PlannerKind::Vmcu(IbScheme::RowBuffer), &g)
            .unwrap_err();
        assert!(matches!(err, EngineError::DoesNotFit { .. }));
        let engine =
            Engine::with_model(dev, PlannerKind::VmcuFused(IbScheme::RowBuffer), &g).unwrap();
        let report = engine.run_graph(&g, &weights, &input).unwrap();
        let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
        assert_eq!(&report.output, reference.last().unwrap());
        assert!(report.peak_ram_bytes() <= 128 * 1024);
    }

    #[test]
    fn fused_scratch_reuse_is_bit_identical_to_fresh_machines() {
        let g = zoo::mbv2_block_unfused();
        let weights = g.random_weights(61);
        let input = random::tensor_i8(&g.in_shape(), 62);
        let engine = Engine::new(Device::stm32_f411re())
            .planner(PlannerKind::VmcuFused(IbScheme::RowBuffer));
        let fresh = engine.run_graph(&g, &weights, &input).unwrap();
        let mut scratch = InferenceScratch::new();
        engine
            .run_graph_scratch(&g, &weights, &input, &mut scratch)
            .unwrap();
        let warm = engine
            .run_graph_scratch(&g, &weights, &input, &mut scratch)
            .unwrap();
        assert_eq!(warm.output, fresh.output);
        assert_eq!(warm.latency_ms(), fresh.latency_ms());
        assert_eq!(warm.peak_ram_bytes(), fresh.peak_ram_bytes());
    }

    #[test]
    fn patched_graph_run_matches_reference_executor() {
        for g in [
            zoo::demo_linear_net(),
            zoo::mbv2_block_unfused(),
            zoo::hires_front_stage(),
        ] {
            let weights = g.random_weights(71);
            let input = random::tensor_i8(&g.in_shape(), 72);
            let report = Engine::new(Device::stm32_f767zi())
                .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer))
                .run_graph(&g, &weights, &input)
                .unwrap();
            let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
            assert_eq!(&report.output, reference.last().unwrap(), "{}", g.name);
            assert!(report.latency_ms() > 0.0);
        }
    }

    #[test]
    fn hires_front_stage_deploys_only_under_the_patched_policy() {
        let g = zoo::hires_front_stage();
        let weights = g.random_weights(81);
        let input = random::tensor_i8(&g.in_shape(), 82);
        let dev = Device::stm32_f411re();
        for kind in [
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            PlannerKind::VmcuFused(IbScheme::RowBuffer),
            PlannerKind::TinyEngine,
            PlannerKind::Hmcos,
        ] {
            let err = Engine::with_model(dev.clone(), kind, &g).unwrap_err();
            assert!(
                matches!(err, EngineError::DoesNotFit { .. }),
                "{kind:?} must OOM on the 147 KB front activation"
            );
        }
        let engine =
            Engine::with_model(dev, PlannerKind::VmcuPatched(IbScheme::RowBuffer), &g).unwrap();
        let report = engine.run_graph(&g, &weights, &input).unwrap();
        let reference = vmcu_graph::exec::run_reference(&g, &weights, &input);
        assert_eq!(&report.output, reference.last().unwrap());
        assert!(report.peak_ram_bytes() <= 128 * 1024);
        // One report node for the patched front, named like the plan.
        assert_eq!(report.layers[0].plan.kind, "patched-front");
        assert!(report.layers[0].name.starts_with("patched[0..4]@"));
    }

    #[test]
    fn patched_scratch_reuse_is_bit_identical_to_fresh_machines() {
        let g = zoo::hires_front_stage();
        let weights = g.random_weights(91);
        let input = random::tensor_i8(&g.in_shape(), 92);
        let engine = Engine::new(Device::stm32_f411re())
            .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer));
        let fresh = engine.run_graph(&g, &weights, &input).unwrap();
        let mut scratch = InferenceScratch::new();
        engine
            .run_graph_scratch(&g, &weights, &input, &mut scratch)
            .unwrap();
        let warm = engine
            .run_graph_scratch(&g, &weights, &input, &mut scratch)
            .unwrap();
        assert_eq!(warm.output, fresh.output);
        assert_eq!(warm.latency_ms(), fresh.latency_ms());
        assert_eq!(warm.peak_ram_bytes(), fresh.peak_ram_bytes());
    }

    #[test]
    fn vmcu_latency_is_comparable_to_tinyengine_on_modules() {
        // Table 3's headline: vMCU ~1.03x TinyEngine on fused modules.
        let layer = LayerDesc::Ib(zoo::mcunet_5fps_vww()[5].params); // S6
        let w = LayerWeights::random(&layer, 5);
        let input = input_for(&layer, 6);
        let dev = Device::stm32_f411re();
        let (_, rv) = Engine::new(dev.clone())
            .run_layer("S6", &layer, &w, &input)
            .unwrap();
        let (_, rt) = Engine::new(dev)
            .planner(PlannerKind::TinyEngine)
            .run_layer("S6", &layer, &w, &input)
            .unwrap();
        let ratio = rv.exec.latency_ms / rt.exec.latency_ms;
        assert!(
            (0.6..=1.4).contains(&ratio),
            "latency ratio {ratio:.2} outside comparable band"
        );
    }
}
