//! Execution-order search for branchy DAGs.
//!
//! On a straight chain there is nothing to reorder — §8.4's observation
//! that scheduling-based optimizers find no slack on the paper's
//! workloads. On a *branchy* graph the story flips (Liberis & Lane;
//! MCUNetV2): the default topological order may hold two fat branch
//! tensors co-resident, while another valid order retires one branch
//! before starting the next. This module prices an execution order
//! honestly — a tensor stays live until its **last** consumer, and a
//! step pays its executing node's pool window *plus* every other live
//! tensor held alongside — and searches for the cheapest valid
//! topological order:
//!
//! * exhaustive (bitmask DP over executed-node subsets, exact) up to
//!   [`EXHAUSTIVE_NODE_CUTOFF`] nodes;
//! * greedy memory-aware ready-set selection beyond it.
//!
//! The searched plan is **structurally** never worse than the default
//! order: if the search cannot beat the identity order it falls back to
//! it, the same ≤-fallback contract `PatchedPlanner` and `SplitPlanner`
//! honor.
//!
//! Per-step resident bytes for the step executing node `v`:
//!
//! ```text
//! resident(v) = window(v) + Σ bytes(t)   for live t not dying at v
//! ```
//!
//! where `window(v)` is the node's planned pool footprint (activations +
//! workspace — inputs consumed in-window included) and a tensor dies at
//! `v` when `v` is its last consumer. On a chain this reduces exactly to
//! the per-layer exec footprint, so chain graphs reorder to the identity
//! plan with an unchanged peak.

use crate::planner::{LayerPlan, MemoryPlan, MemoryPlanner};
use crate::vmcu_planner::VmcuPlanner;
use vmcu_graph::{Graph, NodeInput};
use vmcu_kernels::IbScheme;
use vmcu_sim::Device;

/// Largest node count planned with the exact bitmask DP; larger graphs
/// use the greedy memory-aware order.
pub const EXHAUSTIVE_NODE_CUTOFF: usize = 14;

/// A searched execution order with its liveness-priced demand profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderPlan {
    /// Node indices in execution order (a valid topological order).
    pub order: Vec<usize>,
    /// Per-step demand bytes (window + held live tensors, no runtime
    /// overhead), parallel to `order`.
    pub step_demand_bytes: Vec<usize>,
    /// Peak demand of the searched order.
    pub peak_bytes: usize,
    /// Peak demand of the default (index) topological order.
    pub default_peak_bytes: usize,
}

impl OrderPlan {
    /// Whether the search found a strictly cheaper order.
    pub fn improved(&self) -> bool {
        self.peak_bytes < self.default_peak_bytes
    }
}

/// Tensor ids: 0 is the graph input, `1 + j` is node `j`'s output.
fn tensor_bytes(graph: &Graph) -> Vec<usize> {
    let mut tb = Vec::with_capacity(graph.len() + 1);
    tb.push(graph.in_shape().iter().product());
    tb.extend(graph.layers().iter().map(vmcu_graph::LayerDesc::out_bytes));
    tb
}

/// Consumer node lists per tensor id.
fn consumers(graph: &Graph) -> Vec<Vec<usize>> {
    let mut cons = vec![Vec::new(); graph.len() + 1];
    for (i, ins) in graph.inputs().iter().enumerate() {
        for edge in ins {
            let t = match edge {
                NodeInput::GraphInput => 0,
                NodeInput::Node(j) => 1 + *j,
            };
            cons[t].push(i);
        }
    }
    cons
}

fn node_windows<P: MemoryPlanner + ?Sized>(planner: &P, graph: &Graph) -> Vec<(usize, usize)> {
    graph
        .layers()
        .iter()
        .map(|l| planner.plan_layer(l))
        .collect()
}

/// Prices one execution order: per-step `(act + held, ws)` where `act`
/// is the node's planned activation window plus every live tensor held
/// alongside it.
///
/// # Panics
///
/// Panics if `order` is not a permutation in valid topological order.
pub fn price_order<P: MemoryPlanner + ?Sized>(
    planner: &P,
    graph: &Graph,
    order: &[usize],
) -> Vec<(usize, usize)> {
    let n = graph.len();
    assert_eq!(order.len(), n, "order must cover every node");
    let tb = tensor_bytes(graph);
    let cons = consumers(graph);
    let windows = node_windows(planner, graph);
    let mut remaining: Vec<usize> = cons.iter().map(Vec::len).collect();
    let mut produced = vec![false; n];
    let mut live: Vec<bool> = vec![false; n + 1];
    live[0] = remaining[0] > 0;
    let mut live_bytes: usize = if live[0] { tb[0] } else { 0 };
    let mut out = Vec::with_capacity(n);
    for &v in order {
        assert!(!produced[v], "order repeats node {v}");
        // Distinct input tensors of v and how many slots each fills.
        let mut uses: Vec<(usize, usize)> = Vec::new();
        for edge in graph.node_inputs(v) {
            let t = match edge {
                NodeInput::GraphInput => 0,
                NodeInput::Node(j) => {
                    assert!(produced[*j], "order runs node {v} before its input {j}");
                    1 + *j
                }
            };
            match uses.iter_mut().find(|(id, _)| *id == t) {
                Some((_, k)) => *k += 1,
                None => uses.push((t, 1)),
            }
        }
        // Inputs whose last consumer is v are consumed inside the
        // window; everything else live is held at full size beside it.
        let dying: usize = uses
            .iter()
            .filter(|(t, k)| remaining[*t] == *k)
            .map(|(t, _)| tb[*t])
            .sum();
        let (act, ws) = windows[v];
        out.push((act + live_bytes - dying, ws));
        for (t, k) in uses {
            remaining[t] -= k;
            if remaining[t] == 0 && live[t] {
                live[t] = false;
                live_bytes -= tb[t];
            }
        }
        produced[v] = true;
        let t_out = 1 + v;
        if remaining[t_out] > 0 {
            live[t_out] = true;
            live_bytes += tb[t_out];
        }
    }
    out
}

/// Peak demand (max per-step `act + held + ws`) of one order.
pub fn peak_for_order<P: MemoryPlanner + ?Sized>(
    planner: &P,
    graph: &Graph,
    order: &[usize],
) -> usize {
    price_order(planner, graph, order)
        .iter()
        .map(|(act, ws)| act + ws)
        .max()
        .unwrap_or(0)
}

/// Builds a [`MemoryPlan`] whose rows follow `order` (one row per
/// execution step), priced with last-consumer liveness.
pub fn plan_model_for_order<P: MemoryPlanner + ?Sized>(
    planner: &P,
    graph: &Graph,
    device: &Device,
    order: &[usize],
) -> MemoryPlan {
    crate::telemetry::record_plan_call();
    let priced = price_order(planner, graph, order);
    let layers = order
        .iter()
        .zip(&priced)
        .map(|(&v, &(act, ws))| {
            let layer = &graph.layers()[v];
            let measured = act + ws + device.runtime_overhead_bytes;
            LayerPlan {
                name: format!("{}#{v}", layer.kind()),
                kind: layer.kind(),
                activation_bytes: act,
                workspace_bytes: ws,
                measured_bytes: measured,
                fits: measured <= device.ram_bytes,
            }
        })
        .collect();
    MemoryPlan {
        planner: planner.name(),
        device: device.name.clone(),
        layers,
    }
}

fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Dependency bitmask per node (Node edges only).
fn dep_masks(graph: &Graph) -> Vec<u64> {
    graph
        .inputs()
        .iter()
        .map(|ins| {
            ins.iter()
                .filter_map(|e| match e {
                    NodeInput::Node(j) => Some(1u64 << *j),
                    NodeInput::GraphInput => None,
                })
                .fold(0, |m, b| m | b)
        })
        .collect()
}

/// Resident bytes of executing `v` on top of executed-set `s` — the
/// order-independent core both searches share. `cons_masks[t]` is the
/// bitmask of tensor `t`'s consumers.
fn resident(
    graph: &Graph,
    windows: &[(usize, usize)],
    tb: &[usize],
    cons_masks: &[u64],
    s: u64,
    v: usize,
) -> usize {
    let after = s | (1u64 << v);
    // Live tensors: produced, with a consumer outside s.
    let mut held = 0usize;
    if cons_masks[0] & !s != 0 {
        held += tb[0];
    }
    let mut it = s;
    while it != 0 {
        let j = it.trailing_zeros() as usize;
        it &= it - 1;
        if cons_masks[1 + j] & !s != 0 {
            held += tb[1 + j];
        }
    }
    // Inputs of v with no consumer after this step die in-window.
    let mut seen = 0u64;
    for edge in graph.node_inputs(v) {
        let t = match edge {
            NodeInput::GraphInput => 0,
            NodeInput::Node(j) => 1 + *j,
        };
        if seen & (1u64 << t) != 0 {
            continue;
        }
        seen |= 1u64 << t;
        if cons_masks[t] & !after == 0 {
            held -= tb[t];
        }
    }
    let (act, ws) = windows[v];
    act + ws + held
}

/// Exact minimum-peak topological order via DP over executed subsets.
fn search_exhaustive<P: MemoryPlanner + ?Sized>(planner: &P, graph: &Graph) -> Vec<usize> {
    let n = graph.len();
    let tb = tensor_bytes(graph);
    let cons = consumers(graph);
    let cons_masks: Vec<u64> = cons
        .iter()
        .map(|c| c.iter().fold(0u64, |m, &i| m | (1u64 << i)))
        .collect();
    let windows = node_windows(planner, graph);
    let deps = dep_masks(graph);
    let full = (1u64 << n) - 1;
    let mut best = vec![usize::MAX; 1 << n];
    let mut choice = vec![u8::MAX; 1 << n];
    best[0] = 0;
    for s in 0..=full {
        let cur = best[s as usize];
        if cur == usize::MAX {
            continue;
        }
        for (v, &dep) in deps.iter().enumerate() {
            let bit = 1u64 << v;
            if s & bit != 0 || dep & !s != 0 {
                continue;
            }
            let peak = cur.max(resident(graph, &windows, &tb, &cons_masks, s, v));
            let t = (s | bit) as usize;
            if peak < best[t] {
                best[t] = peak;
                choice[t] = v as u8;
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut s = full;
    while s != 0 {
        let v = choice[s as usize] as usize;
        order.push(v);
        s &= !(1u64 << v);
    }
    order.reverse();
    order
}

/// Greedy memory-aware topological order: at every step run the ready
/// node with the smallest resident bytes (ties to the lowest index —
/// deterministic, and reproducing the identity order on chains).
fn search_greedy<P: MemoryPlanner + ?Sized>(planner: &P, graph: &Graph) -> Vec<usize> {
    let n = graph.len();
    let tb = tensor_bytes(graph);
    let cons = consumers(graph);
    let windows = node_windows(planner, graph);
    let mut remaining: Vec<usize> = cons.iter().map(Vec::len).collect();
    let mut produced = vec![false; n];
    let mut live_bytes: usize = if remaining[0] > 0 { tb[0] } else { 0 };
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick: Option<(usize, usize)> = None; // (resident, node)
        for v in 0..n {
            if produced[v]
                || graph
                    .node_inputs(v)
                    .iter()
                    .any(|e| matches!(e, NodeInput::Node(j) if !produced[*j]))
            {
                continue;
            }
            let mut uses: Vec<(usize, usize)> = Vec::new();
            for edge in graph.node_inputs(v) {
                let t = match edge {
                    NodeInput::GraphInput => 0,
                    NodeInput::Node(j) => 1 + *j,
                };
                match uses.iter_mut().find(|(id, _)| *id == t) {
                    Some((_, k)) => *k += 1,
                    None => uses.push((t, 1)),
                }
            }
            let dying: usize = uses
                .iter()
                .filter(|(t, k)| remaining[*t] == *k)
                .map(|(t, _)| tb[*t])
                .sum();
            let (act, ws) = windows[v];
            let res = act + ws + live_bytes - dying;
            if pick.is_none() || (res, v) < pick.unwrap() {
                pick = Some((res, v));
            }
        }
        let (_, v) = pick.expect("a DAG always has a ready node");
        for edge in graph.node_inputs(v) {
            let t = match edge {
                NodeInput::GraphInput => 0,
                NodeInput::Node(j) => 1 + *j,
            };
            remaining[t] -= 1;
            if remaining[t] == 0 && (t == 0 || produced[t - 1]) {
                live_bytes -= tb[t];
            }
        }
        produced[v] = true;
        if remaining[1 + v] > 0 {
            live_bytes += tb[1 + v];
        }
        order.push(v);
    }
    order
}

/// Searches for the cheapest valid execution order of `graph` under
/// `planner`'s per-node windows. Chains return the identity order; the
/// result's peak is **never** above the default order's (falls back to
/// identity otherwise).
pub fn plan_order<P: MemoryPlanner + ?Sized>(planner: &P, graph: &Graph) -> OrderPlan {
    crate::telemetry::record_plan_call();
    let n = graph.len();
    let ident = identity(n);
    let default_peak = peak_for_order(planner, graph, &ident);
    let order = if graph.is_chain() || n < 2 {
        ident.clone()
    } else if n <= EXHAUSTIVE_NODE_CUTOFF {
        search_exhaustive(planner, graph)
    } else {
        search_greedy(planner, graph)
    };
    let peak = peak_for_order(planner, graph, &order);
    // Structural ≤-fallback: never ship an order worse than the default.
    let (order, peak) = if peak > default_peak {
        (ident, default_peak)
    } else {
        (order, peak)
    };
    let step_demand_bytes = price_order(planner, graph, &order)
        .iter()
        .map(|(act, ws)| act + ws)
        .collect();
    OrderPlan {
        order,
        step_demand_bytes,
        peak_bytes: peak,
        default_peak_bytes: default_peak,
    }
}

/// The reorder policy: vMCU per-node windows, executed in the searched
/// minimum-peak topological order. `plan_model` rows follow the
/// execution order, so the plan's bottleneck *is* the searched peak.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReorderPlanner {
    inner: VmcuPlanner,
}

impl ReorderPlanner {
    /// Creates the planner for a workspace scheme.
    pub fn new(scheme: IbScheme) -> Self {
        Self {
            inner: VmcuPlanner { scheme },
        }
    }
}

impl MemoryPlanner for ReorderPlanner {
    fn name(&self) -> &'static str {
        "vmcu-reorder"
    }

    fn plan_layer(&self, layer: &vmcu_graph::LayerDesc) -> (usize, usize) {
        self.inner.plan_layer(layer)
    }

    fn model_demand_bytes(&self, graph: &Graph) -> usize {
        plan_order(self, graph).peak_bytes
    }

    fn plan_model(&self, graph: &Graph, device: &Device) -> MemoryPlan {
        let order = plan_order(self, graph);
        plan_model_for_order(self, graph, device, &order.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_graph::zoo;

    fn vmcu() -> VmcuPlanner {
        VmcuPlanner::default()
    }

    #[test]
    fn chains_price_like_the_per_layer_planner() {
        let g = zoo::demo_linear_net();
        let ident = identity(g.len());
        let priced = price_order(&vmcu(), &g, &ident);
        for (i, l) in g.layers().iter().enumerate() {
            assert_eq!(priced[i], vmcu().plan_layer(l), "layer {i}");
        }
    }

    #[test]
    fn chains_reorder_to_identity() {
        let g = zoo::demo_linear_net();
        let plan = plan_order(&vmcu(), &g);
        assert_eq!(plan.order, identity(g.len()));
        assert_eq!(plan.peak_bytes, plan.default_peak_bytes);
        assert!(!plan.improved());
    }

    #[test]
    fn residual_holds_the_input_until_the_merge() {
        let g = zoo::mbv2_residual_dag();
        let ident = identity(g.len());
        let priced = price_order(&vmcu(), &g, &ident);
        let input_bytes: usize = g.in_shape().iter().product();
        // Every step before the final add holds the graph input beside
        // its own window.
        for (i, l) in g.layers().iter().enumerate().take(g.len() - 1) {
            let (act, ws) = vmcu().plan_layer(l);
            assert_eq!(priced[i], (act + input_bytes, ws), "step {i}");
        }
        // The add consumes both inputs in-window: no held bytes.
        let (act, ws) = vmcu().plan_layer(&g.layers()[g.len() - 1]);
        assert_eq!(priced[g.len() - 1], (act, ws));
    }

    #[test]
    fn reorder_beats_default_on_the_oom_model() {
        let g = zoo::branchy_oom_net();
        let plan = plan_order(&vmcu(), &g);
        assert!(plan.improved(), "search must beat the interleaved order");
        // Depth-first per branch: expand A, reduce A, then branch B.
        assert_eq!(plan.order, vec![0, 2, 1, 3, 4]);
        assert!(plan.peak_bytes < 100_000, "got {}", plan.peak_bytes);
        assert!(plan.default_peak_bytes > 131_072);
    }

    #[test]
    fn greedy_matches_exact_on_small_graphs() {
        for seed in 0..40 {
            let g = zoo::random_dag_net(seed, 5);
            if g.len() > EXHAUSTIVE_NODE_CUTOFF {
                continue;
            }
            let exact = search_exhaustive(&vmcu(), &g);
            let greedy = search_greedy(&vmcu(), &g);
            let pe = peak_for_order(&vmcu(), &g, &exact);
            let pg = peak_for_order(&vmcu(), &g, &greedy);
            assert!(pe <= pg, "seed {seed}: exact {pe} > greedy {pg}");
            assert!(
                pe <= peak_for_order(&vmcu(), &g, &identity(g.len())),
                "seed {seed}: exact worse than identity"
            );
        }
    }

    #[test]
    fn planner_rows_follow_the_searched_order() {
        let g = zoo::branchy_oom_net();
        let device = vmcu_sim::Device::stm32_f411re();
        let rp = ReorderPlanner::default();
        let plan = rp.plan_model(&g, &device);
        let order = plan_order(&rp, &g);
        assert_eq!(plan.layers.len(), g.len());
        assert_eq!(
            plan.bottleneck_bytes(),
            order.peak_bytes + device.runtime_overhead_bytes
        );
        assert_eq!(rp.model_demand_bytes(&g), order.peak_bytes);
    }
}
