//! Layer-wise graph partitioning for split inference across networked
//! MCUs.
//!
//! Some models fit on *no* single device: even the fused and patched
//! planners bottom out at the biggest single execution node. Following
//! the split-CNN line of work, [`plan_split`] cuts a linear graph into
//! 2–8 contiguous per-device sub-graphs, choosing the cut points that
//! **minimize the maximum per-device peak** — each sub-graph is planned
//! by the existing fusion pass ([`fuse_graph`]), so every stage inherits
//! the single-device planners' savings. Cut edges ship the boundary
//! activation tensor over a board-to-board link priced by
//! `vmcu_sim::LinkModel`.
//!
//! The partitioner is exact: a dynamic program over contiguous
//! partitions (O(devices · n²) table over O(n²) fused sub-range
//! demands), deterministic under ties — fewest stages first, then
//! earliest cut — so the same graph always splits the same way on any
//! host.
//!
//! # Examples
//!
//! ```
//! use vmcu_plan::split::plan_split;
//! use vmcu_plan::{peak_demand_bytes, FusedPlanner};
//! use vmcu_graph::zoo;
//! use vmcu_kernels::IbScheme;
//!
//! let g = zoo::hires_split_only();
//! let split = plan_split(&g, 4, IbScheme::RowBuffer);
//! assert!(split.stages().len() >= 2);
//! // Splitting strictly relieves the single-device fused bottleneck.
//! assert!(split.max_stage_demand_bytes() < peak_demand_bytes(&FusedPlanner::default(), &g));
//! ```

use crate::fusion::{fuse_graph, FusionPlan};
use crate::planner::{LayerPlan, MemoryPlan, MemoryPlanner};
use crate::vmcu_planner::VmcuPlanner;
use vmcu_graph::{Graph, LayerDesc};
use vmcu_kernels::IbScheme;
use vmcu_sim::Device;

/// One per-device stage of a split plan: a contiguous layer range, the
/// memoized sub-graph and its fused execution plan, and the cut tensor
/// it ships downstream.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitStage {
    /// Pipeline position — stage `k` runs on device `k`.
    pub device: usize,
    /// Index of the first layer in this stage.
    pub start: usize,
    /// One past the last layer in this stage.
    pub end: usize,
    /// The stage sub-graph (layers `[start, end)`; node indices inside
    /// [`Self::fusion`] are stage-local).
    pub graph: Graph,
    /// The stage's fused execution plan, memoized at partition time so
    /// deployments never re-run the fusion pass per inference.
    pub fusion: FusionPlan,
    /// Peak SRAM this stage demands (the fused plan's peak, no runtime
    /// overhead).
    pub demand_bytes: usize,
    /// Bytes shipped over the link to the next stage (the boundary
    /// activation tensor); `0` for the final stage.
    pub cut_bytes: usize,
}

impl SplitStage {
    /// Number of graph layers assigned to this stage.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the stage is empty (never true for plans built by
    /// [`plan_split`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A whole-model split plan: contiguous stages whose layer ranges tile
/// the graph, one device per stage.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPlan {
    stages: Vec<SplitStage>,
}

impl SplitPlan {
    /// The stages in pipeline order.
    pub fn stages(&self) -> &[SplitStage] {
        &self.stages
    }

    /// Number of devices the plan occupies.
    pub fn device_count(&self) -> usize {
        self.stages.len()
    }

    /// The plan's bottleneck: the maximum per-stage peak demand (no
    /// runtime overhead) — the number admission prices each device at.
    pub fn max_stage_demand_bytes(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.demand_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total bytes crossing device boundaries for one inference — by
    /// construction exactly the sum of the cut-edge tensor sizes.
    pub fn transfer_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.cut_bytes).sum()
    }

    /// Per-stage peak demands in pipeline order (the admission
    /// controller's multi-device price vector).
    pub fn stage_demands(&self) -> Vec<usize> {
        self.stages.iter().map(|s| s.demand_bytes).collect()
    }
}

/// The stage sub-graph for layers `[start, end)` — a contiguous slice of
/// a validated chain, so re-validation cannot fail.
fn subgraph(graph: &Graph, start: usize, end: usize) -> Graph {
    Graph::linear(
        format!("{}[{start}..{end}]", graph.name),
        graph.layers()[start..end].to_vec(),
    )
    .expect("a contiguous slice of a validated chain chains")
}

/// Partitions a linear graph into at most `devices` (clamped to 1..=8)
/// contiguous stages minimizing the maximum per-stage fused peak.
///
/// Exact dynamic program over contiguous partitions; among optima it
/// prefers **fewest stages** (a model that fits one device is not split
/// needlessly), then the earliest cut points. Each candidate range is
/// priced by the fusion pass, so a 1-stage plan's demand equals
/// [`crate::FusedPlanner::model_demand_bytes`] exactly.
pub fn plan_split(graph: &Graph, devices: u8, scheme: IbScheme) -> SplitPlan {
    let n = graph.len();
    if n == 0 {
        return SplitPlan { stages: Vec::new() };
    }
    // Split stages are contiguous *chain* slices; a branchy DAG does not
    // partition that way, so it stays whole on one device priced at its
    // DAG-aware default-order peak — splitting offers no relief here.
    if !graph.is_chain() {
        let fusion = fuse_graph(graph, scheme);
        let order: Vec<usize> = (0..n).collect();
        let demand_bytes = crate::order::peak_for_order(&VmcuPlanner { scheme }, graph, &order);
        return SplitPlan {
            stages: vec![SplitStage {
                device: 0,
                start: 0,
                end: n,
                graph: graph.clone(),
                fusion,
                demand_bytes,
                cut_bytes: 0,
            }],
        };
    }
    let max_stages = (devices.clamp(1, 8) as usize).min(n);

    // Fused peak demand of every contiguous layer range.
    let mut demand = vec![vec![0usize; n + 1]; n];
    for (i, row) in demand.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
            *slot = fuse_graph(&subgraph(graph, i, j), scheme).peak_demand_bytes();
        }
    }

    // best[k][j]: minimal achievable max-stage demand partitioning
    // layers [0, j) into exactly k non-empty stages.
    let mut best = vec![vec![usize::MAX; n + 1]; max_stages + 1];
    let mut cut = vec![vec![0usize; n + 1]; max_stages + 1];
    best[0][0] = 0;
    for k in 1..=max_stages {
        for j in k..=n {
            for i in k - 1..j {
                if best[k - 1][i] == usize::MAX {
                    continue;
                }
                let cand = best[k - 1][i].max(demand[i][j]);
                // Strict improvement only: ascending i means ties keep
                // the earliest previous cut — deterministic.
                if cand < best[k][j] {
                    best[k][j] = cand;
                    cut[k][j] = i;
                }
            }
        }
    }

    // Fewest stages among the optima: ascending k with strict
    // improvement, so a model that already fits stays on one device.
    let mut stage_count = 1;
    for k in 2..=max_stages {
        if best[k][n] < best[stage_count][n] {
            stage_count = k;
        }
    }

    let mut bounds = vec![0usize; stage_count + 1];
    bounds[stage_count] = n;
    let mut j = n;
    for k in (1..=stage_count).rev() {
        j = cut[k][j];
        bounds[k - 1] = j;
    }

    let stages = (0..stage_count)
        .map(|k| {
            let (start, end) = (bounds[k], bounds[k + 1]);
            let sub = subgraph(graph, start, end);
            let fusion = fuse_graph(&sub, scheme);
            let demand_bytes = fusion.peak_demand_bytes();
            let cut_bytes = if k + 1 < stage_count {
                graph.layers()[end - 1].out_bytes()
            } else {
                0
            };
            SplitStage {
                device: k,
                start,
                end,
                graph: sub,
                fusion,
                demand_bytes,
                cut_bytes,
            }
        })
        .collect();
    SplitPlan { stages }
}

/// The split-aware planner: single layers price exactly like
/// [`VmcuPlanner`], whole models price at the partition's **max
/// per-stage peak** — the demand each device in the pipeline must
/// individually satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPlanner {
    /// Maximum number of networked devices to cut across (2–8 in the
    /// split-CNN setting; clamped to 1..=8).
    pub devices: u8,
    /// Workspace scheme for fused inverted-bottleneck singletons inside
    /// each stage.
    pub scheme: IbScheme,
}

impl Default for SplitPlanner {
    fn default() -> Self {
        Self {
            devices: 4,
            scheme: IbScheme::RowBuffer,
        }
    }
}

impl SplitPlanner {
    /// Builds the whole-model [`MemoryPlan`] from an **already computed**
    /// split plan, in execution-report order: each stage's fusion nodes
    /// (names prefixed `dev{k}:`, node names stage-local), then a `link`
    /// entry for the cut tensor it ships downstream. The engine's deploy
    /// step memoizes the [`SplitPlan`] and derives the memory plan here
    /// without re-partitioning.
    ///
    /// A `link` entry's `activation_bytes` is the cut tensor; its
    /// measured size never exceeds the sending stage's peak (a fused
    /// window always covers its own output), so the plan's bottleneck —
    /// and with it `Deployment::peak_demand_bytes` — stays at a stage.
    pub fn plan_model_from(&self, split: &SplitPlan, device: &Device) -> MemoryPlan {
        let mut layers = Vec::new();
        for stage in split.stages() {
            for node in &stage.fusion.nodes {
                let mut plan = node.layer_plan(&stage.graph, device);
                plan.name = format!("dev{}:{}", stage.device, plan.name);
                layers.push(plan);
            }
            if stage.cut_bytes > 0 {
                let measured = stage.cut_bytes + device.runtime_overhead_bytes;
                layers.push(LayerPlan {
                    name: format!("link:dev{}->dev{}", stage.device, stage.device + 1),
                    kind: "link",
                    activation_bytes: stage.cut_bytes,
                    workspace_bytes: 0,
                    measured_bytes: measured,
                    fits: measured <= device.ram_bytes,
                });
            }
        }
        MemoryPlan {
            planner: self.name(),
            device: device.name.clone(),
            layers,
        }
    }
}

impl MemoryPlanner for SplitPlanner {
    fn name(&self) -> &'static str {
        "vMCU-split"
    }

    fn plan_layer(&self, layer: &LayerDesc) -> (usize, usize) {
        VmcuPlanner {
            scheme: self.scheme,
        }
        .plan_layer(layer)
    }

    fn model_demand_bytes(&self, graph: &Graph) -> usize {
        plan_split(graph, self.devices, self.scheme).max_stage_demand_bytes()
    }

    fn plan_model(&self, graph: &Graph, device: &Device) -> MemoryPlan {
        if !graph.is_chain() {
            // One unsplit stage (see `plan_split`): report the DAG-aware
            // default-order rows so the plan's bottleneck matches
            // `model_demand_bytes`.
            let order: Vec<usize> = (0..graph.len()).collect();
            return crate::order::plan_model_for_order(self, graph, device, &order);
        }
        self.plan_model_from(&plan_split(graph, self.devices, self.scheme), device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::peak_demand_bytes;
    use crate::fusion::FusedPlanner;
    use vmcu_graph::zoo;

    #[test]
    fn stages_tile_the_graph_and_respect_the_device_cap() {
        for seed in 0..20 {
            let g = zoo::random_linear_net(seed, 5);
            for devices in [2u8, 4, 8] {
                let split = plan_split(&g, devices, IbScheme::RowBuffer);
                assert!(split.device_count() <= devices as usize, "seed {seed}");
                let mut next = 0;
                for stage in split.stages() {
                    assert_eq!(stage.start, next, "seed {seed}");
                    assert!(!stage.is_empty(), "seed {seed}");
                    assert_eq!(stage.len(), stage.graph.len(), "seed {seed}");
                    next = stage.end;
                }
                assert_eq!(next, g.len(), "seed {seed}");
            }
        }
    }

    #[test]
    fn single_stage_prices_exactly_like_the_fused_planner() {
        // A model that fits one device must not be split needlessly:
        // the fewest-stages tie-break keeps k = 1 whenever one stage is
        // already optimal, and then the demand is the fused peak.
        let g = zoo::mbv2_block_unfused();
        let split = plan_split(&g, 8, IbScheme::RowBuffer);
        assert_eq!(split.device_count(), 1);
        assert_eq!(
            split.max_stage_demand_bytes(),
            peak_demand_bytes(&FusedPlanner::default(), &g)
        );
        assert_eq!(split.transfer_bytes(), 0);
    }

    #[test]
    fn split_peak_never_exceeds_the_single_device_planners() {
        // Structural: k = 1 is always a DP candidate, so the chosen
        // partition's max stage demand is ≤ the fused peak ≤ vMCU's.
        for seed in 0..20 {
            let g = zoo::random_linear_net(seed, 4);
            let split = peak_demand_bytes(&SplitPlanner::default(), &g);
            let fused = peak_demand_bytes(&FusedPlanner::default(), &g);
            let vmcu = peak_demand_bytes(&crate::VmcuPlanner::default(), &g);
            assert!(split <= fused, "seed {seed}: split {split} > fused {fused}");
            assert!(fused <= vmcu, "seed {seed}");
        }
    }

    #[test]
    fn cut_bytes_are_the_boundary_tensors() {
        let g = zoo::hires_split_only();
        let split = plan_split(&g, 4, IbScheme::RowBuffer);
        assert!(split.device_count() >= 2);
        let mut total = 0;
        for w in split.stages().windows(2) {
            let sender = &w[0];
            assert_eq!(
                sender.cut_bytes,
                g.layers()[sender.end - 1].out_bytes(),
                "cut ships exactly the boundary activation"
            );
            total += sender.cut_bytes;
        }
        assert_eq!(split.stages().last().unwrap().cut_bytes, 0);
        assert_eq!(split.transfer_bytes(), total);
    }

    #[test]
    fn plan_model_orders_stage_nodes_then_links() {
        let g = zoo::hires_split_only();
        let device = vmcu_sim::Device::stm32_f411re();
        let planner = SplitPlanner::default();
        let split = plan_split(&g, planner.devices, planner.scheme);
        let plan = planner.plan_model_from(&split, &device);
        let links = plan.layers.iter().filter(|l| l.kind == "link").count();
        assert_eq!(links, split.device_count() - 1);
        // The bottleneck stays at a stage, never at a link, so the
        // deployment's peak-demand accessor reports the stage peak.
        assert_eq!(
            plan.bottleneck_bytes() - device.runtime_overhead_bytes,
            split.max_stage_demand_bytes()
        );
        assert!(plan.deployable(), "every stage must fit the 128 KB device");
    }

    #[test]
    fn deterministic_across_calls() {
        let g = zoo::random_linear_net(7, 6);
        let a = plan_split(&g, 8, IbScheme::RowBuffer);
        let b = plan_split(&g, 8, IbScheme::RowBuffer);
        assert_eq!(a, b);
    }
}
