//! Whole-network pointer chaining (§4's multi-layer deployment story).
//!
//! The paper sets each layer's input pointer to the previous layer's
//! output pointer: the entire network then flows through **one** circular
//! pool window, with every layer's output chasing its input. This module
//! plans that chain — per-layer executable distances from the kernel
//! traces, composed into absolute bases — and sizes the single window as
//! the maximum per-layer span.

use vmcu_graph::{Graph, LayerDesc};
use vmcu_kernels::conv2d::conv2d_exec_distance;
use vmcu_kernels::depthwise::depthwise_exec_distance;
use vmcu_kernels::fc::fc_exec_distance;
use vmcu_kernels::fused_ib::{ib_exec_distance, ib_workspace_bytes};
use vmcu_kernels::merge::{add_exec_distance, concat_exec_distance};
use vmcu_kernels::pointwise::pointwise_exec_distance;
use vmcu_kernels::IbScheme;

/// The planned chain: one pool window, one base pointer per tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPlan {
    /// Pool window in bytes (max per-layer span).
    pub window: usize,
    /// Workspace bytes beside the pool (max across fused layers).
    pub workspace: usize,
    /// Logical base address of every activation tensor: `bases[0]` is the
    /// graph input, `bases[i+1]` the output of layer `i`.
    pub bases: Vec<i64>,
    /// Executable `bIn − bOut` per layer.
    pub distances: Vec<i64>,
    /// Index of the layer that sets the window size.
    pub peak_layer: usize,
}

impl ChainPlan {
    /// Total RAM for the chained deployment (window + workspace).
    pub fn total_bytes(&self) -> usize {
        self.window + self.workspace
    }
}

/// Executable distance and workspace for one layer under vMCU policy.
fn layer_distance(layer: &LayerDesc, scheme: IbScheme) -> (i64, usize) {
    match layer {
        LayerDesc::Pointwise(p) => (pointwise_exec_distance(p), 0),
        LayerDesc::Conv2d(p) => (conv2d_exec_distance(p), 0),
        LayerDesc::Depthwise(p) => (depthwise_exec_distance(p), 0),
        LayerDesc::Dense(p) => (fc_exec_distance(p), 0),
        LayerDesc::Ib(p) => (ib_exec_distance(p, scheme), ib_workspace_bytes(p, scheme)),
        // Merges never appear on a linear chain (arity 2), but the
        // kernels publish executable distances, so the match stays total.
        LayerDesc::Add(p) => (add_exec_distance(p), 0),
        LayerDesc::Concat(p) => (concat_exec_distance(p), 0),
    }
}

/// Plans a linear graph into one circular pool.
///
/// # Panics
///
/// Panics only if internal bookkeeping breaks (the running `bases`
/// vector is seeded non-empty) — never for a well-formed graph.
pub fn plan_chain(graph: &Graph, scheme: IbScheme) -> ChainPlan {
    crate::telemetry::record_plan_call();
    let mut bases = vec![0i64];
    let mut distances = Vec::with_capacity(graph.len());
    let mut window = 0usize;
    let mut workspace = 0usize;
    let mut peak_layer = 0usize;
    for (i, layer) in graph.layers().iter().enumerate() {
        let (d, ws) = layer_distance(layer, scheme);
        let used = d.max(0) as usize;
        let span = (layer.in_bytes() + used).max(layer.out_bytes());
        if span > window {
            window = span;
            peak_layer = i;
        }
        workspace = workspace.max(ws);
        distances.push(d);
        let b_in = *bases.last().expect("bases starts non-empty");
        bases.push(b_in - d);
    }
    ChainPlan {
        window,
        workspace,
        bases,
        distances,
        peak_layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_graph::zoo;
    use vmcu_kernels::params::PointwiseParams;
    use vmcu_tensor::Requant;

    fn pw(h: usize, c: usize, k: usize) -> LayerDesc {
        LayerDesc::Pointwise(PointwiseParams::new(h, h, c, k, Requant::identity()))
    }

    #[test]
    fn chain_bases_compose_distances() {
        let g = Graph::linear("g", vec![pw(8, 4, 8), pw(8, 8, 4)]).unwrap();
        let plan = plan_chain(&g, IbScheme::RowBuffer);
        assert_eq!(plan.bases.len(), 3);
        assert_eq!(plan.bases[0], 0);
        assert_eq!(plan.bases[1], -plan.distances[0]);
        assert_eq!(plan.bases[2], plan.bases[1] - plan.distances[1]);
    }

    #[test]
    fn window_is_max_layer_span_not_sum() {
        let g = zoo::demo_linear_net();
        let plan = plan_chain(&g, IbScheme::RowBuffer);
        let sum: usize = g
            .layers()
            .iter()
            .map(|l| l.in_bytes() + l.out_bytes())
            .sum();
        assert!(plan.window < sum, "chained window must reuse memory");
        let max_tensor = g
            .layers()
            .iter()
            .map(|l| l.in_bytes().max(l.out_bytes()))
            .max()
            .unwrap();
        assert!(plan.window >= max_tensor);
        assert!(plan.peak_layer < g.len());
    }

    #[test]
    fn workspace_tracks_fused_layers_only() {
        let g = Graph::linear("g", vec![pw(8, 4, 8), pw(8, 8, 4)]).unwrap();
        assert_eq!(plan_chain(&g, IbScheme::RowBuffer).workspace, 0);
        let g = zoo::demo_linear_net();
        assert!(plan_chain(&g, IbScheme::RowBuffer).workspace > 0);
    }
}
