//! Per-device kernel lowering selection.
//!
//! Conv2d and fc layers have two executable lowerings: the **direct**
//! segment-aware kernels (boundary branches in the inner loop, no staging
//! traffic) and the **im2col + matmul** path (`vmcu_kernels::im2col`):
//! receptive fields gathered into staging RAM, then a branch-free GEMM
//! the device's SIMD lanes can be kept full on. Which one is faster is a
//! device property — the wider the datapath and the cheaper the RAM
//! traffic, the more the dense GEMM wins back its copy cost — so the
//! choice belongs to the planner, not the kernel.
//!
//! [`select_conv2d_lowering`]/[`select_fc_lowering`] make the call
//! analytically from the
//! [`CostModel`](vmcu_sim::CostModel): it compares the modelled cycles of
//! the direct kernel (MACs at native width plus per-tap boundary
//! branches) against the im2col path (dense-GEMM MACs at native width
//! plus the RAM-to-RAM gather). Both estimates use the same `mac_cost`
//! arithmetic the kernels charge, so the decision agrees with what the
//! simulated machine would measure.

use vmcu_kernels::params::{Conv2dParams, FcParams};
use vmcu_sim::Device;

/// The executable lowering of a conv2d/fc layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoweringKind {
    /// Direct segment-aware kernel (`run_conv2d`/`run_fc`).
    Direct,
    /// im2col gather + lane-blocked matmul
    /// (`run_conv2d_im2col`/`run_fc_im2col`).
    Im2colMatmul,
}

impl LoweringKind {
    /// Human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LoweringKind::Direct => "direct",
            LoweringKind::Im2colMatmul => "im2col+matmul",
        }
    }
}

/// Modelled cycle estimates behind a lowering decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoweringChoice {
    /// The selected lowering.
    pub kind: LoweringKind,
    /// Estimated cycles of the direct kernel.
    pub direct_cycles: u64,
    /// Estimated cycles of the im2col path (including gather traffic).
    pub im2col_cycles: u64,
}

/// Analytic conv2d lowering decision for `device`.
pub fn select_conv2d_lowering(device: &Device, p: &Conv2dParams) -> LoweringChoice {
    let cost = &device.cost;
    let pixels = (p.out_h() * p.out_w()) as u64;
    // Direct: exact MACs (padding taps skipped), but every tap pays the
    // window boundary branches.
    let taps_checked = (p.out_h() * p.out_w() * p.r * p.s) as u64;
    let direct = cost.mac_cost(p.macs(), true)
        + taps_checked * cost.branch_cycles
        + p.macs().div_ceil(p.c.max(1) as u64) * cost.modulo_cycles;
    // im2col: dense GEMM over the zero-filled patch plus the RAM-to-RAM
    // gather (read + write of R·S·C bytes per pixel) and per-tile packing.
    let patch = (p.r * p.s * p.c) as u64;
    let dense_macs = pixels * patch * p.k as u64;
    let gather_bytes = pixels * patch;
    let im2col = cost.mac_cost(dense_macs, true)
        + gather_bytes * (cost.ram_byte_cycles_x100 * 2).div_ceil(100)
        + pixels * cost.simd.packing_cycles;
    LoweringChoice {
        kind: if im2col < direct {
            LoweringKind::Im2colMatmul
        } else {
            LoweringKind::Direct
        },
        direct_cycles: direct,
        im2col_cycles: im2col,
    }
}

/// Analytic fc lowering decision for `device`: the staged GEMM trades one
/// RAM-to-RAM row copy for `n/seg`-fold fewer modulo-checked pool loads.
pub fn select_fc_lowering(device: &Device, p: &FcParams) -> LoweringChoice {
    let cost = &device.cost;
    let n_tiles = p.n.div_ceil(p.seg.max(1)) as u64;
    let k_tiles = p.k.div_ceil(p.seg.max(1)) as u64;
    let rows = p.m as u64;
    let macs = p.macs();
    // Direct: each of the n-tiles re-loads the row's k-tiles from the
    // modulo-checked pool.
    let direct = cost.mac_cost(macs, true) + rows * n_tiles * k_tiles * cost.modulo_cycles;
    // Staged: one pool pass per row plus the RAM-to-RAM copy, then
    // branch-free reloads from flat RAM.
    let im2col = cost.mac_cost(macs, true)
        + rows * k_tiles * cost.modulo_cycles
        + rows * p.k as u64 * (cost.ram_byte_cycles_x100 * 2).div_ceil(100)
        + rows * n_tiles * cost.simd.packing_cycles;
    LoweringChoice {
        kind: if im2col < direct {
            LoweringKind::Im2colMatmul
        } else {
            LoweringKind::Direct
        },
        direct_cycles: direct,
        im2col_cycles: im2col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_tensor::Requant;

    fn conv() -> Conv2dParams {
        Conv2dParams::new(8, 8, 8, 8, 3, 3, 1, 1, Requant::from_scale(1.0 / 64.0, 0))
    }

    #[test]
    fn every_ladder_device_gets_a_decision_with_consistent_estimates() {
        let p = conv();
        for d in Device::simd_ladder() {
            let c = select_conv2d_lowering(&d, &p);
            assert!(c.direct_cycles > 0 && c.im2col_cycles > 0);
            match c.kind {
                LoweringKind::Im2colMatmul => assert!(c.im2col_cycles < c.direct_cycles),
                LoweringKind::Direct => assert!(c.direct_cycles <= c.im2col_cycles),
            }
        }
    }

    #[test]
    fn padding_free_conv_still_prices_the_gather() {
        // Without padding the dense GEMM does the same MACs as the direct
        // kernel, so the im2col estimate differs exactly by gather traffic
        // vs branch overhead.
        let p = Conv2dParams::new(6, 6, 4, 4, 3, 3, 1, 0, Requant::identity());
        let d = Device::stm32_f411re();
        let c = select_conv2d_lowering(&d, &p);
        assert!(c.im2col_cycles != c.direct_cycles);
    }

    #[test]
    fn wide_fc_prefers_the_staged_gemm() {
        // Many output tiles per row: the direct kernel's repeated modulo-
        // checked reloads dominate and staging wins.
        let p = FcParams::new(4, 8, 256, Requant::identity());
        let d = Device::stm32_f411re();
        let c = select_fc_lowering(&d, &p);
        assert_eq!(c.kind, LoweringKind::Im2colMatmul);
    }

    #[test]
    fn single_tile_fc_keeps_the_direct_kernel() {
        // One output tile: nothing to save, the copy is pure overhead.
        let p = FcParams::new(4, 8, 8, Requant::identity());
        let d = Device::stm32_f411re();
        let c = select_fc_lowering(&d, &p);
        assert_eq!(c.kind, LoweringKind::Direct);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LoweringKind::Direct.name(), "direct");
        assert_eq!(LoweringKind::Im2colMatmul.name(), "im2col+matmul");
    }
}
