//! The multi-layer segment fusion pass — the step that turns the paper's
//! two halves (segment-level planning *and* kernel optimization) into one
//! coordinated system for whole graphs.
//!
//! [`fuse_graph`] walks a linear [`Graph`], greedily groups maximal runs
//! of fusable layers (pointwise / depthwise / dense 2D convolution /
//! fully-connected) into [`vmcu_kernels::fused_chain::FusedChain`]s, and
//! keeps a group fused only when its fused footprint (pool window + ring
//! workspace) undercuts the bottleneck of planning the same layers one at
//! a time. Unfusable layers (inverted bottlenecks, which are already
//! their own fused unit) break chains and become singleton nodes.
//!
//! Two distances describe every chain:
//!
//! * the **executable** distance from the kernel's dry-run trace
//!   ([`vmcu_kernels::fused_chain::chain_exec_distance`]) — what the plan
//!   stores and deploys with;
//! * the **solver lower bound** from [`vmcu_solver::multilayer`]'s
//!   read/write event analysis ([`chain_solver_distance`], computed on
//!   demand — it is diagnostic, not needed on the serving hot path) —
//!   the §5.2 optimum a finer-grained schedule could reach. Tests assert
//!   `solver ≤ executable`.
//!
//! [`FusedPlanner`] packages the pass as a [`MemoryPlanner`]: single
//! layers price exactly like [`VmcuPlanner`], whole models price at the
//! fused plan's peak, so [`crate::capacity::peak_demand_bytes`] (and with
//! it fleet admission control) picks the fusion savings up for free.
//!
//! # Examples
//!
//! Fusing an unfused MobileNetV2-style block (expand → depthwise →
//! project as three separate layers) undercuts planning it layer by
//! layer, because the expanded intermediate never materializes:
//!
//! ```
//! use vmcu_plan::fusion::{fuse_graph, FusedPlanner};
//! use vmcu_plan::{peak_demand_bytes, VmcuPlanner};
//! use vmcu_graph::zoo;
//! use vmcu_kernels::IbScheme;
//!
//! let g = zoo::mbv2_block_unfused();
//! let plan = fuse_graph(&g, IbScheme::RowBuffer);
//! assert_eq!(plan.fused_groups(), 1); // all three layers fuse
//!
//! let fused = peak_demand_bytes(&FusedPlanner::default(), &g);
//! let unfused = peak_demand_bytes(&VmcuPlanner::default(), &g);
//! assert!(fused < unfused);
//! ```

use crate::planner::{LayerPlan, MemoryPlan, MemoryPlanner};
use crate::vmcu_planner::VmcuPlanner;
use vmcu_graph::{Graph, LayerDesc};
use vmcu_kernels::fused_chain::{
    chain_exec_distance, chain_schedule, chain_workspace_bytes, ChainStep, FusedChain,
};
use vmcu_kernels::{ChainOp, IbScheme};
use vmcu_sim::Device;
use vmcu_solver::multilayer::{min_distance_events, Event};

/// Maps a fusable layer to its chain operator; `None` breaks the chain.
pub fn chain_op(layer: &LayerDesc) -> Option<ChainOp> {
    match layer {
        LayerDesc::Pointwise(p) => Some(ChainOp::Pointwise(*p)),
        LayerDesc::Depthwise(p) => Some(ChainOp::Depthwise(*p)),
        LayerDesc::Conv2d(p) => Some(ChainOp::Conv2d(*p)),
        LayerDesc::Dense(p) => Some(ChainOp::Dense(*p)),
        LayerDesc::Ib(_) => None,
        // Merges take two inputs; a fused chain threads exactly one.
        LayerDesc::Add(_) | LayerDesc::Concat(_) => None,
    }
}

/// A fused run of consecutive graph layers.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedGroup {
    /// Index of the first fused layer.
    pub start: usize,
    /// One past the last fused layer.
    pub end: usize,
    /// The executable chain.
    pub chain: FusedChain,
    /// Executable `bIn − bOut` from the kernel trace. (The §5.2 solver
    /// lower bound is deliberately *not* stored here — it is diagnostic
    /// only and the event scan is not free on the serving hot path;
    /// compute it on demand with [`chain_solver_distance`].)
    pub exec_distance: i64,
    /// Pool window bytes (input/output overlap).
    pub window: usize,
    /// Ring workspace bytes beside the pool.
    pub workspace: usize,
}

impl FusedGroup {
    /// Peak SRAM this group demands (window + workspace, no runtime
    /// overhead).
    pub fn demand_bytes(&self) -> usize {
        self.window + self.workspace
    }

    /// Display label, shared by plan reports and execution reports.
    pub fn label(&self) -> String {
        format!("fused[{}..{}]", self.start, self.end)
    }

    /// The plan entry for this group on `device` — the single source of
    /// the name/kind/measured/fits accounting, so the planning surface
    /// ([`FusedPlanner::plan_model`]) and the engine's execution report
    /// can never disagree.
    pub fn layer_plan(&self, device: &Device) -> LayerPlan {
        let measured = self.demand_bytes() + device.runtime_overhead_bytes;
        LayerPlan {
            name: self.label(),
            kind: "fused-chain",
            activation_bytes: self.window,
            workspace_bytes: self.workspace,
            measured_bytes: measured,
            fits: measured <= device.ram_bytes,
        }
    }
}

/// One node of a fused execution plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FusionNode {
    /// A layer executed on its own (unfusable, or fusion did not pay).
    Single {
        /// Graph layer index.
        index: usize,
        /// Activation bytes under single-layer vMCU planning.
        activation_bytes: usize,
        /// Workspace bytes under single-layer vMCU planning.
        workspace_bytes: usize,
    },
    /// A run of layers executed as one fused chain.
    Fused(FusedGroup),
}

impl FusionNode {
    /// Peak SRAM demand of the node (activations + workspace).
    pub fn demand_bytes(&self) -> usize {
        match self {
            FusionNode::Single {
                activation_bytes,
                workspace_bytes,
                ..
            } => activation_bytes + workspace_bytes,
            FusionNode::Fused(g) => g.demand_bytes(),
        }
    }

    /// Graph layer range `[start, end)` this node covers.
    pub fn layer_range(&self) -> (usize, usize) {
        match self {
            FusionNode::Single { index, .. } => (*index, index + 1),
            FusionNode::Fused(g) => (g.start, g.end),
        }
    }

    /// The plan entry for this node on `device` — one accounting source
    /// shared by [`FusedPlanner::plan_model`], the patched planner's tail
    /// (`crate::patch`), and the engine's execution reports.
    pub fn layer_plan(&self, graph: &Graph, device: &Device) -> LayerPlan {
        match self {
            FusionNode::Single {
                index,
                activation_bytes,
                workspace_bytes,
            } => {
                let layer = &graph.layers()[*index];
                let measured = activation_bytes + workspace_bytes + device.runtime_overhead_bytes;
                LayerPlan {
                    name: format!("{}#{index}", layer.kind()),
                    kind: layer.kind(),
                    activation_bytes: *activation_bytes,
                    workspace_bytes: *workspace_bytes,
                    measured_bytes: measured,
                    fits: measured <= device.ram_bytes,
                }
            }
            FusionNode::Fused(g) => g.layer_plan(device),
        }
    }
}

/// A whole-graph fused execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionPlan {
    /// Nodes in execution order; their layer ranges tile the graph.
    pub nodes: Vec<FusionNode>,
}

impl FusionPlan {
    /// Peak SRAM demand across nodes (the fused analogue of
    /// [`crate::capacity::peak_demand_bytes`]).
    pub fn peak_demand_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(FusionNode::demand_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Number of fused (multi-layer) groups.
    pub fn fused_groups(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, FusionNode::Fused(_)))
            .count()
    }
}

/// Pool-level read/write events of a chain schedule, for the solver's
/// §5.2 `min (bIn − bOut)` analysis. Only the extreme byte of each
/// contiguous row range is emitted — the bound is linear in addresses, so
/// extremes are exact.
fn chain_rw_events(chain: &FusedChain) -> Vec<Event> {
    let n = chain.len();
    let heights = chain.heights();
    let op0 = chain.ops()[0];
    let irb = op0.in_row_bytes();
    let orb = chain.ops()[n - 1].out_row_bytes();
    let (r0, s0, p0) = op0.row_window();
    let mut events = Vec::new();
    // Reads of the pool input happen when the first intermediate row (or,
    // for single-op chains, the output row) is produced.
    let push_reads = |row: usize, events: &mut Vec<Event>| {
        let lo = (row * s0).saturating_sub(p0);
        let hi = ((row * s0 + r0 - 1) as i64 - p0 as i64).min(heights[0] as i64 - 1);
        if hi >= 0 && lo <= hi as usize {
            events.push(Event::Read((lo * irb) as i64));
            events.push(Event::Read(((hi as usize + 1) * irb) as i64 - 1));
        }
    };
    for step in chain_schedule(chain) {
        match step {
            ChainStep::ProduceRow { stage: 1, row } => push_reads(row, &mut events),
            ChainStep::ProduceRow { .. } => {}
            ChainStep::StoreOutRow(p) => {
                if n == 1 {
                    push_reads(p, &mut events);
                }
                events.push(Event::Write(((p + 1) * orb) as i64 - 1));
            }
            ChainStep::FreeInRows { .. } => {}
        }
    }
    events
}

/// §5.2 lower bound on the chain's `bIn − bOut` from the solver's
/// read/write event analysis. The executable distance can only be looser
/// (frees are row-granular, reads are not).
pub fn chain_solver_distance(chain: &FusedChain) -> Option<i64> {
    min_distance_events(chain_rw_events(chain))
}

/// Builds the fused group for a run of chain operators.
fn fused_group(start: usize, ops: Vec<ChainOp>) -> FusedGroup {
    let end = start + ops.len();
    let chain = FusedChain::new(ops).expect("graph-validated shapes chain");
    let exec_distance = chain_exec_distance(&chain);
    // Derive the window from the distance instead of calling
    // `chain_exec_footprint` — that would rebuild the whole schedule a
    // second time, and the prefix search below calls this per candidate.
    let window = (chain.in_bytes() + exec_distance.max(0) as usize).max(chain.out_bytes());
    let workspace = chain_workspace_bytes(&chain);
    FusedGroup {
        start,
        end,
        chain,
        exec_distance,
        window,
        workspace,
    }
}

/// Fuses a linear graph: within each maximal run of fusable layers, the
/// longest prefix whose fused footprint strictly undercuts planning those
/// same layers one at a time becomes a fused group; the search then
/// continues after it (so a profitable sub-chain is found even when the
/// whole run is not profitable). Everything else stays layer-at-a-time,
/// and the result's layer ranges tile the graph.
///
/// # Panics
///
/// Panics only if internal bookkeeping breaks (a fused group built
/// from a non-empty run) — never for a well-formed graph.
pub fn fuse_graph(graph: &Graph, scheme: IbScheme) -> FusionPlan {
    crate::telemetry::record_plan_call();
    let single = VmcuPlanner { scheme };
    let single_demand = |layer: &LayerDesc| {
        let (a, w) = single.plan_layer(layer);
        a + w
    };
    let single_node = |index: usize, layer: &LayerDesc| {
        let (activation_bytes, workspace_bytes) = single.plan_layer(layer);
        FusionNode::Single {
            index,
            activation_bytes,
            workspace_bytes,
        }
    };
    let mut nodes = Vec::new();
    let layers = graph.layers();
    // Fusion threads one tensor through one window — a chain pass. On a
    // branchy DAG every node stays single; the DAG-aware planner default
    // and the order search own the branch accounting.
    if !graph.is_chain() {
        return FusionPlan {
            nodes: layers
                .iter()
                .enumerate()
                .map(|(i, l)| single_node(i, l))
                .collect(),
        };
    }
    let mut i = 0;
    while i < layers.len() {
        // Collect the maximal fusable run starting at i.
        let mut ops = Vec::new();
        let mut j = i;
        while j < layers.len() {
            match chain_op(&layers[j]) {
                Some(op) => ops.push(op),
                None => break,
            }
            j += 1;
        }
        // Longest beneficial prefix: fuse only when it strictly beats
        // planning the same layers one at a time — so a fused plan's
        // demand never exceeds single-layer vMCU's.
        let mut fused_len = 0;
        for len in (2..=ops.len()).rev() {
            let group = fused_group(i, ops[..len].to_vec());
            let unfused_peak = layers[i..i + len]
                .iter()
                .map(single_demand)
                .max()
                .expect("non-empty prefix");
            if group.demand_bytes() < unfused_peak {
                nodes.push(FusionNode::Fused(group));
                fused_len = len;
                break;
            }
        }
        if fused_len > 0 {
            i += fused_len;
        } else {
            // No beneficial chain starts here (unfusable layer, run of
            // one, or no profitable prefix): emit one singleton and
            // retry from the next layer — a suffix may still fuse.
            nodes.push(single_node(i, &layers[i]));
            i += 1;
        }
    }
    FusionPlan { nodes }
}

/// The fusion-aware vMCU planner: single layers price exactly like
/// [`VmcuPlanner`], whole models price at the fused plan's peak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedPlanner {
    /// Workspace scheme for fused inverted-bottleneck singletons.
    pub scheme: IbScheme,
}

impl Default for FusedPlanner {
    fn default() -> Self {
        Self {
            scheme: IbScheme::RowBuffer,
        }
    }
}

impl FusedPlanner {
    /// Builds the whole-model [`MemoryPlan`] from an **already computed**
    /// fusion plan — one entry per execution node. [`plan_model`]
    /// delegates here; callers that keep the [`FusionPlan`] around (the
    /// engine's deploy step memoizes it for execution) derive the memory
    /// plan without running the fusion pass a second time.
    ///
    /// [`plan_model`]: MemoryPlanner::plan_model
    pub fn plan_model_from(
        &self,
        fusion: &FusionPlan,
        graph: &Graph,
        device: &Device,
    ) -> MemoryPlan {
        let layers = fusion
            .nodes
            .iter()
            .map(|node| node.layer_plan(graph, device))
            .collect();
        MemoryPlan {
            planner: self.name(),
            device: device.name.clone(),
            layers,
        }
    }
}

impl MemoryPlanner for FusedPlanner {
    fn name(&self) -> &'static str {
        "vMCU-fused"
    }

    fn plan_layer(&self, layer: &LayerDesc) -> (usize, usize) {
        VmcuPlanner {
            scheme: self.scheme,
        }
        .plan_layer(layer)
    }

    fn model_demand_bytes(&self, graph: &Graph) -> usize {
        if !graph.is_chain() {
            // No fusion on DAGs: price the default order with held-tensor
            // liveness, exactly like the per-layer vMCU planner.
            crate::telemetry::record_plan_call();
            let order: Vec<usize> = (0..graph.len()).collect();
            return crate::order::peak_for_order(self, graph, &order);
        }
        fuse_graph(graph, self.scheme).peak_demand_bytes()
    }

    fn plan_model(&self, graph: &Graph, device: &Device) -> MemoryPlan {
        if !graph.is_chain() {
            let order: Vec<usize> = (0..graph.len()).collect();
            return crate::order::plan_model_for_order(self, graph, device, &order);
        }
        self.plan_model_from(&fuse_graph(graph, self.scheme), graph, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::peak_demand_bytes;
    use vmcu_graph::zoo;
    use vmcu_kernels::params::{IbParams, PointwiseParams};
    use vmcu_tensor::Requant;

    fn pw(h: usize, c: usize, k: usize) -> LayerDesc {
        LayerDesc::Pointwise(PointwiseParams::new(h, h, c, k, Requant::identity()))
    }

    #[test]
    fn single_layer_graph_is_a_noop_fusion() {
        let g = Graph::linear("one", vec![pw(8, 4, 8)]).unwrap();
        let plan = fuse_graph(&g, IbScheme::RowBuffer);
        assert_eq!(plan.fused_groups(), 0);
        assert_eq!(plan.nodes.len(), 1);
        assert_eq!(
            peak_demand_bytes(&FusedPlanner::default(), &g),
            peak_demand_bytes(&VmcuPlanner::default(), &g),
            "no-op fusion must price exactly like single-layer vMCU"
        );
    }

    #[test]
    fn unfusable_op_breaks_the_chain() {
        // pw, pw, IB, pw: the IB splits the fusable layers into a front
        // run and a trailing singleton.
        let mut ib = IbParams::new(8, 16, 32, 16, 3, (1, 1, 1));
        ib.clamp1 = (0, 127);
        ib.clamp2 = (0, 127);
        let g = Graph::linear(
            "broken",
            vec![pw(8, 4, 64), pw(8, 64, 16), LayerDesc::Ib(ib), pw(8, 16, 8)],
        )
        .unwrap();
        let plan = fuse_graph(&g, IbScheme::RowBuffer);
        assert_eq!(plan.fused_groups(), 1);
        let ranges: Vec<_> = plan.nodes.iter().map(FusionNode::layer_range).collect();
        assert_eq!(ranges, vec![(0, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn ranges_tile_the_graph() {
        for seed in 0..20 {
            let g = zoo::random_linear_net(seed, 6);
            let plan = fuse_graph(&g, IbScheme::RowBuffer);
            let mut next = 0;
            for node in &plan.nodes {
                let (s, e) = node.layer_range();
                assert_eq!(s, next, "seed {seed}");
                assert!(e > s);
                next = e;
            }
            assert_eq!(next, g.len(), "seed {seed}");
        }
    }

    #[test]
    fn fused_demand_never_exceeds_single_layer_vmcu() {
        // The benefit check makes this structural; admission control's
        // "fused admits at least vMCU" guarantee rests on it.
        for seed in 0..30 {
            let g = zoo::random_linear_net(seed, 5);
            assert!(
                peak_demand_bytes(&FusedPlanner::default(), &g)
                    <= peak_demand_bytes(&VmcuPlanner::default(), &g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fused_peak_is_strictly_below_vmcu_on_the_zoo_chain() {
        // The acceptance criterion: a zoo model where multi-layer fusion
        // strictly beats single-layer segment planning.
        let g = zoo::mbv2_block_unfused();
        let fused = peak_demand_bytes(&FusedPlanner::default(), &g);
        let vmcu = peak_demand_bytes(&VmcuPlanner::default(), &g);
        assert!(
            fused < vmcu,
            "fused {fused} must be strictly below single-layer vMCU {vmcu}"
        );
    }

    #[test]
    fn profitable_prefix_fuses_even_when_the_whole_run_does_not() {
        // [expand 8→32, project 32→8, fat 8→64]: fusing all three drags
        // the fat output into the chain window (no savings — the fat
        // layer is the peak either way, and the rings only add), but the
        // expand/project prefix alone undercuts its unfused peak.
        let g = Graph::linear("prefix", vec![pw(12, 8, 32), pw(12, 32, 8), pw(12, 8, 64)]).unwrap();
        let whole = fused_group(0, g.layers().iter().map(|l| chain_op(l).unwrap()).collect());
        let unfused_peak = g
            .layers()
            .iter()
            .map(|l| {
                let (a, w) = VmcuPlanner::default().plan_layer(l);
                a + w
            })
            .max()
            .unwrap();
        assert!(
            whole.demand_bytes() >= unfused_peak,
            "test premise: whole-run fusion must not be profitable \
             ({} vs {unfused_peak})",
            whole.demand_bytes()
        );
        let plan = fuse_graph(&g, IbScheme::RowBuffer);
        let ranges: Vec<_> = plan.nodes.iter().map(FusionNode::layer_range).collect();
        assert_eq!(
            ranges,
            vec![(0, 2), (2, 3)],
            "prefix fuses, fat tail stays single"
        );
        assert!(
            plan.peak_demand_bytes() <= unfused_peak,
            "partial fusion must not raise the plan's peak"
        );
    }

    #[test]
    fn solver_bound_is_at_most_the_executable_distance() {
        let g = zoo::mbv2_block_unfused();
        let plan = fuse_graph(&g, IbScheme::RowBuffer);
        let FusionNode::Fused(group) = &plan.nodes[0] else {
            panic!("zoo chain must fuse");
        };
        let solver = chain_solver_distance(&group.chain).expect("writes precede reads");
        assert!(
            solver <= group.exec_distance,
            "solver bound {solver} must not exceed executable {}",
            group.exec_distance
        );
    }

    #[test]
    fn plan_model_reports_fused_nodes_with_fit() {
        let g = zoo::mbv2_block_unfused();
        let device = Device::stm32_f411re();
        let plan = FusedPlanner::default().plan_model(&g, &device);
        assert_eq!(plan.layers.len(), 1);
        assert_eq!(plan.layers[0].kind, "fused-chain");
        assert_eq!(plan.layers[0].name, "fused[0..3]");
        assert!(plan.deployable());
        // Demand surfaces agree.
        assert_eq!(
            plan.bottleneck_bytes() - device.runtime_overhead_bytes,
            FusedPlanner::default().model_demand_bytes(&g)
        );
    }

    #[test]
    fn wide_chain_only_fits_fused() {
        let g = zoo::wide_expand_chain();
        let device = Device::stm32_f411re();
        assert!(
            !crate::capacity::plan_graph(&VmcuPlanner::default(), &g, &device).deployable(),
            "layer-at-a-time vMCU must not fit the wide chain at 128 KB"
        );
        assert!(
            crate::capacity::plan_graph(&FusedPlanner::default(), &g, &device).deployable(),
            "the fused pipeline must fit the wide chain at 128 KB"
        );
    }
}
