//! Patch-based front-stage planning — the policy that opens the
//! spatial-bottleneck workload.
//!
//! MCUNetV2 observes that the first few high-resolution layers of a CNN
//! dominate peak RAM, and that executing them patch by patch (Pex's
//! partial execution of operator slices) trades a bounded halo-recompute
//! overhead for a peak that shrinks with the patch grid. [`plan`] applies
//! that here: the **front stage** — the maximal run of spatially
//! patchable layers (pointwise / depthwise / dense 2D convolution) from
//! the graph input — is split into a grid of output tiles, each tile's
//! receptive field is priced at its sliced per-layer vMCU footprint
//! (`vmcu_kernels::patched`), the front adds the output accumulator
//! that collects finished tiles (SRAM-resident until the tail consumes
//! it; the model input itself is streamed per patch, MCUNetV2-style,
//! and never billed), and the **tail** (everything after the front) is
//! planned by the multi-layer fusion pass unchanged. The grid
//! search picks the grid that minimizes peak demand subject to a
//! recompute-overhead cap, and keeps the plain fused plan whenever
//! patching does not strictly lower the peak — so a patched plan's
//! demand never exceeds the fused plan's, which never exceeds
//! single-layer vMCU's.
//!
//! [`PatchedPlanner`] packages the pass as a [`MemoryPlanner`], so
//! [`crate::capacity::peak_demand_bytes`] and fleet admission pick the
//! patched pricing up unchanged.

use crate::fusion::{fuse_graph, FusionNode, FusionPlan};
use crate::planner::{LayerPlan, MemoryPlan, MemoryPlanner};
use crate::vmcu_planner::VmcuPlanner;
use vmcu_graph::{Graph, LayerDesc};
use vmcu_kernels::conv2d::conv2d_exec_footprint;
use vmcu_kernels::depthwise::depthwise_exec_footprint;
use vmcu_kernels::patched::{PatchGrid, PatchedFront};
use vmcu_kernels::pointwise::pointwise_exec_footprint;
use vmcu_kernels::{ChainOp, IbScheme};
use vmcu_sim::Device;

/// Maps a spatially patchable layer to its operator; `None` ends the
/// front stage (fully-connected layers have no spatial axes, inverted
/// bottlenecks are already their own fused unit).
pub fn patch_op(layer: &LayerDesc) -> Option<ChainOp> {
    match layer {
        LayerDesc::Pointwise(p) => Some(ChainOp::Pointwise(*p)),
        LayerDesc::Depthwise(p) => Some(ChainOp::Depthwise(*p)),
        LayerDesc::Conv2d(p) => Some(ChainOp::Conv2d(*p)),
        LayerDesc::Dense(_) | LayerDesc::Ib(_) => None,
        // Merges take two inputs; a patched front threads exactly one.
        LayerDesc::Add(_) | LayerDesc::Concat(_) => None,
    }
}

/// Length of the patchable front stage: the maximal prefix of layers
/// [`patch_op`] accepts.
pub fn patchable_prefix(graph: &Graph) -> usize {
    graph
        .layers()
        .iter()
        .take_while(|l| patch_op(l).is_some())
        .count()
}

/// Grid sizes the search tries along each axis (clamped to the
/// front-stage output extent).
pub const GRID_CANDIDATES: [usize; 6] = [1, 2, 3, 4, 6, 8];

/// A whole-graph patched execution plan: the patched front stage (when
/// patching pays) plus the fused plan of the tail.
#[derive(Debug, Clone)]
pub struct PatchPlan {
    /// Number of graph layers in the patched front (0 = no patching,
    /// the plan is the plain fused plan).
    pub front_len: usize,
    /// The validated front, `None` when `front_len == 0`.
    pub front: Option<PatchedFront>,
    /// Peak SRAM of the patched front: the worst sliced per-layer
    /// footprint across all patches **plus** the front-output
    /// accumulator, which stays resident while later patches execute
    /// (the model input itself is streamed per patch, MCUNetV2-style,
    /// and is not SRAM-resident). 0 when unpatched.
    pub front_demand_bytes: usize,
    /// Fraction of extra front MACs the halo recompute costs.
    pub halo_overhead: f64,
    /// Fusion plan of the remaining layers; node indices are
    /// graph-absolute (already offset by `front_len`).
    pub tail: FusionPlan,
}

impl PatchPlan {
    /// Whether the plan actually patches a front stage.
    pub fn is_patched(&self) -> bool {
        self.front_len > 0
    }

    /// The patch grid (1×1 when unpatched).
    pub fn grid(&self) -> PatchGrid {
        self.front
            .as_ref()
            .map_or(PatchGrid { gy: 1, gx: 1 }, PatchedFront::grid)
    }

    /// Peak SRAM demand across the front and the tail (the patched
    /// analogue of [`crate::capacity::peak_demand_bytes`]).
    pub fn peak_demand_bytes(&self) -> usize {
        self.front_demand_bytes.max(self.tail.peak_demand_bytes())
    }

    /// Display label of the patched front, shared by plan reports and
    /// execution reports.
    pub fn label(&self) -> String {
        let g = self.grid();
        format!("patched[0..{}]@{g}", self.front_len)
    }

    /// The plan entry for the patched front on `device` (`None` when
    /// unpatched) — the single accounting source for the planning
    /// surface and the engine's execution report.
    pub fn front_layer_plan(&self, device: &Device) -> Option<LayerPlan> {
        self.front.as_ref()?;
        let measured = self.front_demand_bytes + device.runtime_overhead_bytes;
        Some(LayerPlan {
            name: self.label(),
            kind: "patched-front",
            activation_bytes: self.front_demand_bytes,
            workspace_bytes: 0,
            measured_bytes: measured,
            fits: measured <= device.ram_bytes,
        })
    }
}

/// Peak pool bytes of one sliced operator — exactly the window
/// `vmcu_kernels::patched::run_patched_front` executes it in.
fn sliced_footprint(op: &ChainOp) -> usize {
    match op {
        ChainOp::Pointwise(p) => pointwise_exec_footprint(p),
        ChainOp::Depthwise(p) => depthwise_exec_footprint(p),
        ChainOp::Conv2d(p) => conv2d_exec_footprint(p),
        ChainOp::Dense(_) => unreachable!("patched fronts hold spatial operators only"),
    }
}

/// Peak sliced per-layer footprint and total sliced MACs across every
/// patch of a front — one walk over the patch stages serves both, so
/// the grid search prices each candidate in a single pass.
fn front_metrics(front: &PatchedFront) -> (usize, u64) {
    let grid = front.grid();
    let mut peak = 0usize;
    let mut macs = 0u64;
    for ty in 0..grid.gy {
        for tx in 0..grid.gx {
            for stage in front.patch_stages(ty, tx) {
                peak = peak.max(sliced_footprint(&stage.op));
                macs += vmcu_kernels::patched::op_macs(&stage.op);
            }
        }
    }
    (peak, macs)
}

/// Shifts a tail fusion plan's node indices to graph-absolute positions.
fn offset_nodes(plan: &mut FusionPlan, off: usize) {
    for node in &mut plan.nodes {
        match node {
            FusionNode::Single { index, .. } => *index += off,
            FusionNode::Fused(g) => {
                g.start += off;
                g.end += off;
            }
        }
    }
}

/// Plans patch-based execution for a linear graph: the maximal patchable
/// front stage is split over every candidate grid, each candidate is
/// priced at its worst sliced per-layer vMCU footprint, and the grid
/// that minimizes the whole-plan peak wins — subject to the
/// halo-recompute cap `max_overhead` (e.g. `0.5` = at most 50% extra
/// front MACs). When no grid strictly undercuts the plain fused plan,
/// the fused plan is returned unpatched, so patched demand never exceeds
/// fused demand.
///
/// # Examples
///
/// The high-resolution front stage of `zoo::hires_front_stage` carries a
/// 147 KB input activation no whole-tensor policy fits in 128 KB; the
/// patch grid shrinks the peak by an order of magnitude:
///
/// ```
/// use vmcu_plan::patch::plan;
/// use vmcu_plan::{peak_demand_bytes, VmcuPlanner};
/// use vmcu_graph::zoo;
/// use vmcu_kernels::IbScheme;
///
/// let g = zoo::hires_front_stage();
/// let p = plan(&g, IbScheme::RowBuffer, 0.5);
/// assert!(p.is_patched(), "the high-res front stage must patch");
/// assert!(p.halo_overhead <= 0.5, "the recompute cap holds");
/// let vmcu = peak_demand_bytes(&VmcuPlanner::default(), &g);
/// assert!(p.peak_demand_bytes() * 2 < vmcu);
/// ```
///
/// # Panics
///
/// Panics only if a layer inside the patchable prefix has no patch
/// lowering — unreachable, since `patchable_prefix` selected it.
pub fn plan(graph: &Graph, scheme: IbScheme, max_overhead: f64) -> PatchPlan {
    crate::telemetry::record_plan_call();
    let fallback = PatchPlan {
        front_len: 0,
        front: None,
        front_demand_bytes: 0,
        halo_overhead: 0.0,
        tail: fuse_graph(graph, scheme),
    };
    // Patching slices a *chain* prefix; on a branchy DAG the tail slice
    // below would not be a valid graph, so the plan stays unpatched.
    let front_len = if graph.is_chain() {
        patchable_prefix(graph)
    } else {
        0
    };
    if front_len == 0 {
        return fallback;
    }
    let ops: Vec<ChainOp> = graph.layers()[..front_len]
        .iter()
        .map(|l| patch_op(l).expect("prefix is patchable"))
        .collect();
    let tail_graph = Graph::linear(
        format!("{}-tail", graph.name),
        graph.layers()[front_len..].to_vec(),
    )
    .expect("a suffix of a validated graph chains");
    let mut tail = fuse_graph(&tail_graph, scheme);
    offset_nodes(&mut tail, front_len);
    let tail_peak = tail.peak_demand_bytes();

    let mut best = fallback;
    // (peak, overhead, patches): strictly lower peak wins; at equal peak
    // the cheaper recompute wins, then the coarser grid. The fallback's
    // overhead of 0 means patching must *strictly* lower the peak.
    let mut best_key = (best.peak_demand_bytes(), 0.0f64, 1usize);
    let probe = PatchedFront::new(ops.clone(), PatchGrid { gy: 1, gx: 1 })
        .expect("patchable prefix validates");
    let (out_h, out_w, out_c) = probe.out_dims();
    // Grid-independent, so computed once for the whole search. The
    // front-output accumulator collects finished tiles and must stay
    // SRAM-resident alongside the active slab window; the model input,
    // by contrast, is streamed per patch (MCUNetV2 re-decodes it) and
    // is not billed.
    let front_out_bytes = out_h * out_w * out_c;
    let unpatched_macs = probe.unpatched_macs();
    for gy in GRID_CANDIDATES {
        if gy > out_h {
            continue;
        }
        for gx in GRID_CANDIDATES {
            if gx > out_w {
                continue;
            }
            let front = PatchedFront::new(ops.clone(), PatchGrid { gy, gx })
                .expect("grid clamped to the output");
            let (slab_peak, patched_macs) = front_metrics(&front);
            let front_demand = slab_peak + front_out_bytes;
            let overhead = if unpatched_macs == 0 {
                0.0
            } else {
                patched_macs as f64 / unpatched_macs as f64 - 1.0
            };
            if overhead > max_overhead {
                continue;
            }
            let peak = front_demand.max(tail_peak);
            let key = (peak, overhead, gy * gx);
            let better = key.0 < best_key.0
                || (key.0 == best_key.0
                    && (key.1 < best_key.1 || (key.1 == best_key.1 && key.2 < best_key.2)));
            if better {
                best_key = key;
                best = PatchPlan {
                    front_len,
                    front: Some(front),
                    front_demand_bytes: front_demand,
                    halo_overhead: overhead,
                    tail: tail.clone(),
                };
            }
        }
    }
    best
}

/// The patch-aware vMCU planner: single layers price exactly like
/// [`VmcuPlanner`], whole models price at the patched plan's peak
/// (falling back to the fused plan when patching does not pay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchedPlanner {
    /// Workspace scheme for fused inverted-bottleneck singletons in the
    /// tail.
    pub scheme: IbScheme,
    /// Halo-recompute cap in percent of the unpatched front MACs.
    pub max_overhead_pct: u32,
}

impl Default for PatchedPlanner {
    fn default() -> Self {
        Self {
            scheme: IbScheme::RowBuffer,
            max_overhead_pct: 50,
        }
    }
}

impl PatchedPlanner {
    /// The recompute cap as a fraction.
    pub fn max_overhead(&self) -> f64 {
        f64::from(self.max_overhead_pct) / 100.0
    }

    /// Plans `graph` under this planner's scheme and cap.
    pub fn patch_plan(&self, graph: &Graph) -> PatchPlan {
        plan(graph, self.scheme, self.max_overhead())
    }

    /// Builds the whole-model [`MemoryPlan`] from an **already computed**
    /// patch plan. [`plan_model`] delegates here; callers that keep the
    /// [`PatchPlan`] around (the engine's deploy step memoizes it for
    /// execution) derive the memory plan without running the grid search
    /// a second time.
    ///
    /// [`plan_model`]: MemoryPlanner::plan_model
    pub fn plan_model_from(&self, pplan: &PatchPlan, graph: &Graph, device: &Device) -> MemoryPlan {
        let mut layers = Vec::with_capacity(pplan.tail.nodes.len() + 1);
        layers.extend(pplan.front_layer_plan(device));
        layers.extend(
            pplan
                .tail
                .nodes
                .iter()
                .map(|node| node.layer_plan(graph, device)),
        );
        MemoryPlan {
            planner: self.name(),
            device: device.name.clone(),
            layers,
        }
    }
}

impl MemoryPlanner for PatchedPlanner {
    fn name(&self) -> &'static str {
        "vMCU-patched"
    }

    fn plan_layer(&self, layer: &LayerDesc) -> (usize, usize) {
        VmcuPlanner {
            scheme: self.scheme,
        }
        .plan_layer(layer)
    }

    fn model_demand_bytes(&self, graph: &Graph) -> usize {
        if !graph.is_chain() {
            // No patching on DAGs: price the default order with
            // held-tensor liveness, like the per-layer vMCU planner.
            crate::telemetry::record_plan_call();
            let order: Vec<usize> = (0..graph.len()).collect();
            return crate::order::peak_for_order(self, graph, &order);
        }
        self.patch_plan(graph).peak_demand_bytes()
    }

    fn plan_model(&self, graph: &Graph, device: &Device) -> MemoryPlan {
        if !graph.is_chain() {
            let order: Vec<usize> = (0..graph.len()).collect();
            return crate::order::plan_model_for_order(self, graph, device, &order);
        }
        self.plan_model_from(&self.patch_plan(graph), graph, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::peak_demand_bytes;
    use crate::fusion::FusedPlanner;
    use vmcu_graph::zoo;

    #[test]
    fn unpatchable_front_falls_back_to_the_fused_plan() {
        // demo_linear_net opens with a pointwise, but an IB follows at
        // index 1 — the prefix is short; whatever the search decides, it
        // must never price above the fused plan.
        let g = zoo::demo_linear_net();
        assert_eq!(patchable_prefix(&g), 1);
        let patched = peak_demand_bytes(&PatchedPlanner::default(), &g);
        let fused = peak_demand_bytes(&FusedPlanner::default(), &g);
        assert!(patched <= fused);
    }

    #[test]
    fn patched_demand_never_exceeds_fused_on_random_nets() {
        // The structural guarantee fleet admission relies on.
        for seed in 0..30 {
            let g = zoo::random_linear_net(seed, 5);
            assert!(
                peak_demand_bytes(&PatchedPlanner::default(), &g)
                    <= peak_demand_bytes(&FusedPlanner::default(), &g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn hires_front_stage_patches_and_fits_128kb() {
        let g = zoo::hires_front_stage();
        let pplan = PatchedPlanner::default().patch_plan(&g);
        assert!(pplan.is_patched());
        assert_eq!(pplan.front_len, 4, "the four spatial layers patch");
        assert!(pplan.grid().patches() > 1, "a real grid is chosen");
        assert!(pplan.halo_overhead <= 0.5);
        let device = Device::stm32_f411re();
        let plan = crate::capacity::plan_graph(&PatchedPlanner::default(), &g, &device);
        assert!(plan.deployable(), "patched hires must fit 128 KB");
        // Every whole-tensor policy pays the 147 KB input and OOMs.
        for planner in [
            &VmcuPlanner::default() as &dyn MemoryPlanner,
            &FusedPlanner::default(),
            &crate::TinyEnginePlanner,
            &crate::HmcosPlanner,
        ] {
            assert!(
                !crate::capacity::plan_graph(planner, &g, &device).deployable(),
                "{} must OOM on hires_front_stage at 128 KB",
                planner.name()
            );
        }
    }

    #[test]
    fn overhead_cap_constrains_the_grid() {
        // A zero cap only admits grids with no halo recompute at all;
        // for a padded front that is the 1x1 "grid" or nothing, so the
        // plan must fall back to fused pricing.
        let g = zoo::hires_front_stage();
        let capped = plan(&g, IbScheme::RowBuffer, 0.0);
        let relaxed = plan(&g, IbScheme::RowBuffer, 0.5);
        assert!(capped.halo_overhead <= 0.0 + f64::EPSILON);
        assert!(relaxed.is_patched());
        assert!(capped.peak_demand_bytes() >= relaxed.peak_demand_bytes());
    }

    #[test]
    fn plan_model_reports_the_patched_front_entry() {
        let g = zoo::hires_front_stage();
        let device = Device::stm32_f411re();
        let planner = PatchedPlanner::default();
        let plan = planner.plan_model(&g, &device);
        assert_eq!(plan.layers[0].kind, "patched-front");
        assert!(plan.layers[0].name.starts_with("patched[0..4]@"));
        assert!(plan.deployable());
        // Demand surfaces agree.
        assert_eq!(
            plan.bottleneck_bytes() - device.runtime_overhead_bytes,
            planner.model_demand_bytes(&g)
        );
        // The tail entries carry graph-absolute indices.
        assert!(plan.layers.iter().any(|l| l.name.contains("#4")));
    }

    #[test]
    fn empty_and_tailless_graphs_plan_cleanly() {
        let empty = Graph::linear("empty", vec![]).unwrap();
        assert_eq!(peak_demand_bytes(&PatchedPlanner::default(), &empty), 0);
        // A graph that is all front: the tail fusion plan is empty.
        let g = zoo::mbv2_block_unfused();
        let pplan = PatchedPlanner::default().patch_plan(&g);
        if pplan.is_patched() {
            assert_eq!(pplan.front_len, g.len());
            assert!(pplan.tail.nodes.is_empty());
        }
    }
}
