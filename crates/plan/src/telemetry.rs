//! Planning-work telemetry: a thread-local counter of planning passes.
//!
//! The deploy-once/run-many contract ("plan once, run many") is only
//! worth anything if it is *checkable*: a session's `infer` must do zero
//! planning work after `deploy`. Every planning entry point in this
//! crate — [`crate::planner::MemoryPlanner::plan`] and the default
//! [`crate::planner::MemoryPlanner::model_demand_bytes`], the fusion
//! pass ([`crate::fusion::fuse_graph`]), the patch search
//! ([`crate::patch::plan`]), and the chain planner
//! ([`crate::chain::plan_chain`]) — bumps this counter, so a test (or
//! the serve-side bench gate) can snapshot it around a hot path and
//! assert the delta is zero.
//!
//! The counter is **thread-local** on purpose: planning done by a worker
//! thread is observable from that thread alone, so concurrently running
//! tests (or fleet workers) never see each other's planning work. A
//! fleet aggregates by having each worker report its own delta.
//!
//! # Examples
//!
//! ```
//! use vmcu_plan::telemetry::plan_calls;
//! use vmcu_plan::{plan_graph, VmcuPlanner};
//! use vmcu_graph::zoo;
//! use vmcu_sim::Device;
//!
//! let before = plan_calls();
//! let _ = plan_graph(&VmcuPlanner::default(), &zoo::demo_linear_net(), &Device::stm32_f411re());
//! assert!(plan_calls() > before, "planning must be visible to telemetry");
//! ```

use std::cell::Cell;

thread_local! {
    static PLAN_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Planning passes recorded on the **current thread** since it started.
/// Monotone; snapshot before and after a region to measure its planning
/// work.
pub fn plan_calls() -> u64 {
    PLAN_CALLS.with(Cell::get)
}

/// Records one planning pass on the current thread. Called by every
/// planning entry point in this crate; custom [`MemoryPlanner`]
/// implementations that override the provided methods should call it
/// too, so "zero replanning" stays checkable for them.
///
/// [`MemoryPlanner`]: crate::planner::MemoryPlanner
pub fn record_plan_call() {
    PLAN_CALLS.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone_and_thread_local() {
        let base = plan_calls();
        record_plan_call();
        record_plan_call();
        assert_eq!(plan_calls(), base + 2);
        // A fresh thread starts from zero, independent of this one.
        let other = std::thread::spawn(|| {
            let t0 = plan_calls();
            record_plan_call();
            plan_calls() - t0
        })
        .join()
        .unwrap();
        assert_eq!(other, 1);
        assert_eq!(plan_calls(), base + 2, "other threads never bleed in");
    }
}
