//! The HMCOS-policy planner (scheduling only, no in-place; §2.3, §7.1).
//!
//! HMCOS searches operator orderings to minimize peak memory but supports
//! no in-place updates. On the linear inverted-bottleneck chains of the
//! evaluation there is nothing to reorder, so its peak is the largest sum
//! of simultaneously-live whole tensors — including both the depthwise
//! input *and* output, which TinyEngine's in-place trick avoids. The paper
//! reports it as the weakest baseline on these networks (§7.3: "HMCOS
//! fails to reduce memory space for such linear structure DNNs").

use crate::planner::MemoryPlanner;
use vmcu_graph::LayerDesc;

/// Scheduling-only planner with HMCOS policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HmcosPlanner;

impl MemoryPlanner for HmcosPlanner {
    fn name(&self) -> &'static str {
        "HMCOS"
    }

    fn plan_layer(&self, layer: &LayerDesc) -> (usize, usize) {
        match layer {
            LayerDesc::Pointwise(p) => (p.in_bytes() + p.out_bytes(), p.w * p.c),
            LayerDesc::Conv2d(p) => (p.in_bytes() + p.out_bytes(), 2 * p.r * p.s * p.c),
            // No in-place: input and output are both whole live tensors.
            LayerDesc::Depthwise(p) => (p.in_bytes() + p.out_bytes(), 0),
            LayerDesc::Dense(p) => (p.in_bytes() + p.out_bytes(), 0),
            LayerDesc::Ib(p) => {
                let (a, b, c, d) = (p.in_bytes(), p.mid_bytes(), p.dw_out_bytes(), p.out_bytes());
                let residual_pin = if p.has_residual() { a } else { 0 };
                // HMCOS schedules the same library kernels the baseline
                // executes, so the pointwise stages carry the same im2col
                // staging rows.
                let im2col1 = p.hw * p.c_in;
                let im2col2 = p.hw2() * p.c_mid;
                let expand = a + b + im2col1;
                let dw = residual_pin + b + c; // both live: no in-place
                let project = residual_pin + c + d + im2col2;
                // No in-place add either: A + D + E live together.
                let add = if p.has_residual() { a + 2 * d } else { 0 };
                (expand.max(dw).max(project).max(add), 0)
            }
            // No in-place: both operands and the output live together.
            LayerDesc::Add(p) => (p.in_bytes() + p.out_bytes(), 0),
            LayerDesc::Concat(p) => (p.in_bytes() + p.out_bytes(), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::named_ib_layers;
    use crate::tinyengine_planner::TinyEnginePlanner;
    use crate::vmcu_planner::VmcuPlanner;
    use vmcu_graph::zoo;
    use vmcu_sim::Device;

    #[test]
    fn vww_bottleneck_near_paper_48_8_kb() {
        // Figure 9: HMCOS bottleneck 48.8 KB (A + B + C at S1).
        let device = Device::stm32_f411re();
        let plan = HmcosPlanner.plan(&named_ib_layers(&zoo::mcunet_5fps_vww()), &device);
        let kb = plan.bottleneck_bytes() as f64 / 1000.0;
        assert!(
            (46.0..=52.0).contains(&kb),
            "HMCOS VWW bottleneck {kb:.1} KB out of expected band"
        );
    }

    #[test]
    fn ordering_vmcu_le_tinyengine_le_hmcos_on_residual_modules() {
        let device = Device::stm32_f767zi();
        let layers = named_ib_layers(&zoo::mcunet_5fps_vww());
        let hm = HmcosPlanner.plan(&layers, &device);
        let te = TinyEnginePlanner.plan(&layers, &device);
        let vm = VmcuPlanner::default().plan(&layers, &device);
        for ((h, t), v) in hm.layers.iter().zip(&te.layers).zip(&vm.layers) {
            assert!(v.measured_bytes <= t.measured_bytes, "{}", h.name);
            assert!(
                t.measured_bytes <= h.measured_bytes,
                "{}: TinyEngine (in-place dw) should not exceed HMCOS",
                h.name
            );
        }
        assert!(hm.bottleneck_bytes() > te.bottleneck_bytes());
        assert!(te.bottleneck_bytes() > vm.bottleneck_bytes());
    }

    #[test]
    fn imagenet_undeployable_on_f411re() {
        let device = Device::stm32_f411re();
        let plan = HmcosPlanner.plan(&named_ib_layers(&zoo::mcunet_320kb_imagenet()), &device);
        assert!(!plan.deployable());
    }
}
