//! Greedy arena planner (TensorFlow-Lite-Micro style, extra baseline).
//!
//! TFLM pre-plans a single memory arena: every activation tensor gets a
//! lifetime interval `[first_producer, last_consumer]`, tensors are
//! sorted by size, and each is placed at the lowest offset that does not
//! overlap an already-placed tensor with an intersecting lifetime. This is
//! the "decoupled, tensor-level" state of the art the paper positions
//! against (§2.3) — useful here as a third baseline and as a sanity bound:
//! for a linear chain its peak is exactly `max(in+out)` over layers.

use vmcu_graph::Graph;

/// One placed tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaSlot {
    /// Tensor label (edge index: `t0` is the graph input).
    pub name: String,
    /// Byte size.
    pub size: usize,
    /// Arena offset.
    pub offset: usize,
    /// Lifetime: first layer that uses the tensor (producer; the graph
    /// input uses 0).
    pub born: usize,
    /// Lifetime: last layer that uses the tensor.
    pub dies: usize,
}

/// The arena layout for a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaPlan {
    /// Placed tensors.
    pub slots: Vec<ArenaSlot>,
    /// Total arena bytes (peak memory).
    pub arena_bytes: usize,
}

/// Plans a linear graph's activations into one arena, greedy by size.
pub fn plan_arena(graph: &Graph) -> ArenaPlan {
    // Edge tensors: t_i = input of layer i (t_0 = graph input), plus the
    // final output t_n. Edge i is born when produced (layer i-1, or 0 for
    // the input) and dies after its consumer (layer i, or the last layer
    // for the output).
    let n = graph.len();
    let mut slots: Vec<ArenaSlot> = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let size = if i < n {
            graph.layers()[i].in_bytes()
        } else {
            graph.layers()[n - 1].out_bytes()
        };
        let born = i.saturating_sub(1);
        let dies = i.min(n - 1);
        slots.push(ArenaSlot {
            name: format!("t{i}"),
            size,
            offset: 0,
            born,
            dies,
        });
    }
    // Greedy-by-size placement.
    let mut order: Vec<usize> = (0..slots.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(slots[i].size));
    let mut placed: Vec<usize> = Vec::new();
    for &i in &order {
        let mut offset = 0usize;
        loop {
            let conflict = placed.iter().find(|&&j| {
                let a = &slots[i];
                let b = &slots[j];
                let lifetimes_overlap = a.born <= b.dies && b.born <= a.dies;
                let ranges_overlap = offset < b.offset + b.size && b.offset < offset + a.size;
                lifetimes_overlap && ranges_overlap
            });
            match conflict {
                Some(&j) => offset = slots[j].offset + slots[j].size,
                None => break,
            }
        }
        slots[i].offset = offset;
        placed.push(i);
    }
    let arena_bytes = slots.iter().map(|s| s.offset + s.size).max().unwrap_or(0);
    ArenaPlan { slots, arena_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_graph::LayerDesc;
    use vmcu_kernels::params::PointwiseParams;
    use vmcu_tensor::Requant;

    fn pw(h: usize, c: usize, k: usize) -> LayerDesc {
        LayerDesc::Pointwise(PointwiseParams::new(h, h, c, k, Requant::identity()))
    }

    #[test]
    fn linear_chain_peak_is_bounded_by_adjacent_pairs() {
        let g = Graph::linear("g", vec![pw(8, 4, 16), pw(8, 16, 8), pw(8, 8, 4)]).unwrap();
        let plan = plan_arena(&g);
        // The optimum for a linear chain is the largest in+out pair
        // ((4+16)*64 = 1280); greedy-by-size is allowed to overshoot (it
        // stacks t2 above t1 here, like TFLM's planner would), but must
        // stay within the sum of the two largest tensors.
        assert!(plan.arena_bytes >= 8 * 8 * (4 + 16));
        assert!(plan.arena_bytes <= 8 * 8 * (16 + 8));
    }

    #[test]
    fn non_overlapping_lifetimes_share_space() {
        let g = Graph::linear("g", vec![pw(8, 8, 8), pw(8, 8, 8), pw(8, 8, 8)]).unwrap();
        let plan = plan_arena(&g);
        // t0 and t2 don't overlap in lifetime, so the arena holds two
        // tensors, not four.
        assert_eq!(plan.arena_bytes, 2 * 8 * 8 * 8);
    }

    #[test]
    fn placements_never_alias_live_tensors() {
        let g = Graph::linear("g", vec![pw(8, 4, 16), pw(8, 16, 8), pw(8, 8, 32)]).unwrap();
        let plan = plan_arena(&g);
        for (i, a) in plan.slots.iter().enumerate() {
            for b in &plan.slots[i + 1..] {
                let lifetimes = a.born <= b.dies && b.born <= a.dies;
                let ranges = a.offset < b.offset + b.size && b.offset < a.offset + a.size;
                assert!(
                    !(lifetimes && ranges),
                    "slots {} and {} alias while both live",
                    a.name,
                    b.name
                );
            }
        }
    }
}
