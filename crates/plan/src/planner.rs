//! Planner interface and plan types.
//!
//! A memory planner decides how much RAM a layer (or fused module) needs
//! for activations and workspace. Planners differ only in *policy* —
//! segment-level overlap (vMCU), tensor-level with in-place depthwise
//! (TinyEngine), scheduling without in-place (HMCOS) — which is exactly
//! the comparison of §7.

use vmcu_graph::{Graph, LayerDesc};
use vmcu_sim::Device;

/// Per-layer planning result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerPlan {
    /// Layer name (e.g. `S1`, `B2`, `H/W80,C16,K16`).
    pub name: String,
    /// Layer kind.
    pub kind: &'static str,
    /// Activation bytes (inputs/outputs/intermediates under this policy).
    pub activation_bytes: usize,
    /// Workspace bytes (rings, im2col staging, fused-window buffers).
    pub workspace_bytes: usize,
    /// RAM as measured on device: activations + workspace + runtime
    /// overhead (stack, libc, vector table).
    pub measured_bytes: usize,
    /// Whether the layer fits the device RAM.
    pub fits: bool,
}

impl LayerPlan {
    /// Activation + workspace bytes (no runtime overhead).
    pub fn planned_bytes(&self) -> usize {
        self.activation_bytes + self.workspace_bytes
    }
}

/// A plan over a sequence of layers/modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Planner name.
    pub planner: &'static str,
    /// Target device name.
    pub device: String,
    /// Per-layer plans.
    pub layers: Vec<LayerPlan>,
}

impl MemoryPlan {
    /// Index of the bottleneck (maximum measured RAM) layer.
    ///
    /// # Panics
    ///
    /// Panics on an empty plan.
    pub fn bottleneck(&self) -> usize {
        assert!(!self.layers.is_empty(), "plan must not be empty");
        let mut best = 0;
        for (i, l) in self.layers.iter().enumerate() {
            // Strict comparison: ties resolve to the earliest layer (the
            // paper reports the *first* module as the VWW bottleneck).
            if l.measured_bytes > self.layers[best].measured_bytes {
                best = i;
            }
        }
        best
    }

    /// Measured RAM of the bottleneck layer.
    pub fn bottleneck_bytes(&self) -> usize {
        self.layers[self.bottleneck()].measured_bytes
    }

    /// Whether every layer fits the device.
    pub fn deployable(&self) -> bool {
        self.layers.iter().all(|l| l.fits)
    }
}

/// A memory-planning policy.
///
/// Planners are stateless policy objects (`Send + Sync`), so one
/// resolved planner can be cached in a deployment or an admission
/// controller and shared across worker threads instead of being re-boxed
/// per call.
pub trait MemoryPlanner: Send + Sync {
    /// Planner name for reports.
    fn name(&self) -> &'static str;

    /// Plans one layer: returns `(activation_bytes, workspace_bytes)`.
    fn plan_layer(&self, layer: &LayerDesc) -> (usize, usize);

    /// Peak SRAM demand of a whole model (activations + workspace at the
    /// bottleneck, no runtime overhead). The default is the per-layer
    /// maximum on chains; on branchy DAGs it prices the default
    /// topological order with last-consumer liveness, so held branch
    /// tensors are charged beside every window they outlive. Graph-aware
    /// planners (fusion, reorder) override it.
    fn model_demand_bytes(&self, graph: &Graph) -> usize {
        if !graph.is_chain() {
            crate::telemetry::record_plan_call();
            let order: Vec<usize> = (0..graph.len()).collect();
            return crate::order::peak_for_order(self, graph, &order);
        }
        crate::telemetry::record_plan_call();
        graph
            .layers()
            .iter()
            .map(|l| {
                let (act, ws) = self.plan_layer(l);
                act + ws
            })
            .max()
            .unwrap_or(0)
    }

    /// Plans a whole model for a device. The default plans layer by
    /// layer on chains and prices the default topological order with
    /// last-consumer liveness on DAGs; graph-aware planners (fusion,
    /// reorder) override it with one plan entry per execution node.
    fn plan_model(&self, graph: &Graph, device: &Device) -> MemoryPlan {
        if !graph.is_chain() {
            let order: Vec<usize> = (0..graph.len()).collect();
            return crate::order::plan_model_for_order(self, graph, device, &order);
        }
        self.plan(&crate::capacity::named_graph_layers(graph), device)
    }

    /// Plans a sequence of named layers for a device.
    fn plan(&self, layers: &[(String, LayerDesc)], device: &Device) -> MemoryPlan {
        crate::telemetry::record_plan_call();
        let plans = layers
            .iter()
            .map(|(name, layer)| {
                let (act, ws) = self.plan_layer(layer);
                let measured = act + ws + device.runtime_overhead_bytes;
                LayerPlan {
                    name: name.clone(),
                    kind: layer.kind(),
                    activation_bytes: act,
                    workspace_bytes: ws,
                    measured_bytes: measured,
                    fits: measured <= device.ram_bytes,
                }
            })
            .collect();
        MemoryPlan {
            planner: self.name(),
            device: device.name.clone(),
            layers: plans,
        }
    }
}

/// Convenience: wraps named modules into the `(name, layer)` form.
pub fn named_ib_layers(modules: &[vmcu_graph::zoo::NamedIb]) -> Vec<(String, LayerDesc)> {
    modules
        .iter()
        .map(|m| (m.name.to_owned(), LayerDesc::Ib(m.params)))
        .collect()
}

/// Convenience: wraps the Figure 7 pointwise cases.
pub fn named_pointwise_layers(
    cases: &[vmcu_graph::zoo::NamedPointwise],
) -> Vec<(String, LayerDesc)> {
    cases
        .iter()
        .map(|c| (c.name.clone(), LayerDesc::Pointwise(c.params)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_kernels::params::PointwiseParams;
    use vmcu_tensor::Requant;

    struct Disjoint;
    impl MemoryPlanner for Disjoint {
        fn name(&self) -> &'static str {
            "disjoint"
        }
        fn plan_layer(&self, layer: &LayerDesc) -> (usize, usize) {
            (layer.in_bytes() + layer.out_bytes(), 0)
        }
    }

    fn layer(hw: usize, c: usize, k: usize) -> LayerDesc {
        LayerDesc::Pointwise(PointwiseParams::new(hw, hw, c, k, Requant::identity()))
    }

    #[test]
    fn plan_reports_bottleneck_and_fit() {
        let device = Device::stm32_f411re();
        let layers = vec![
            ("small".to_owned(), layer(10, 8, 8)),
            ("big".to_owned(), layer(90, 16, 16)),
        ];
        let plan = Disjoint.plan(&layers, &device);
        assert_eq!(plan.bottleneck(), 1);
        // 90*90*16*2 = 259,200 + overhead > 128 KiB.
        assert!(!plan.layers[1].fits);
        assert!(plan.layers[0].fits);
        assert!(!plan.deployable());
    }

    #[test]
    fn measured_includes_runtime_overhead() {
        let device = Device::stm32_f411re();
        let layers = vec![("l".to_owned(), layer(4, 4, 4))];
        let plan = Disjoint.plan(&layers, &device);
        assert_eq!(
            plan.layers[0].measured_bytes,
            plan.layers[0].planned_bytes() + device.runtime_overhead_bytes
        );
    }
}
