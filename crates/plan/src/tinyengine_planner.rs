//! The TinyEngine-policy planner (tensor-level management, §2.3).
//!
//! Tensors are allocated whole; input and output of a layer may overlap
//! only when the *entire* tensors can (in-place depthwise, in-place add).
//! Convolutions stage one im2col row; the in-place depthwise keeps a ring
//! of `R` original rows. For an inverted bottleneck the peak is taken over
//! the four stages with the residual input pinned for residual modules —
//! this reproduces the paper's landmarks: B2 = A + B = 247.8 KB and
//! S1 ≈ 36 KB on device.

use crate::planner::MemoryPlanner;
use vmcu_graph::LayerDesc;

/// Tensor-level planner with TinyEngine policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TinyEnginePlanner;

/// Rows the in-place depthwise buffers. At stride 1 TinyEngine's template
/// keeps the full `R`-row window of original values (this is what the
/// paper's measured S1/S7 RAM implies). At stride ≥ 2 the output pointer
/// falls behind the input pointer, so only the rows already overwritten
/// but still read — `max(0, pad + 1 − stride)` plus the working row —
/// need copies.
fn dw_ring_rows(r: usize, pad: usize, stride: usize, h: usize) -> usize {
    if stride == 1 {
        r.min(h)
    } else {
        (pad + 2).saturating_sub(stride).max(1).min(h)
    }
}

impl MemoryPlanner for TinyEnginePlanner {
    fn name(&self) -> &'static str {
        "TinyEngine"
    }

    fn plan_layer(&self, layer: &LayerDesc) -> (usize, usize) {
        match layer {
            LayerDesc::Pointwise(p) => {
                // Disjoint in/out + one staged im2col row.
                (p.in_bytes() + p.out_bytes(), p.w * p.c)
            }
            LayerDesc::Conv2d(p) => {
                // Disjoint in/out + im2col patch staging (R·S·C per pixel,
                // double-buffered).
                (p.in_bytes() + p.out_bytes(), 2 * p.r * p.s * p.c)
            }
            LayerDesc::Depthwise(p) => {
                // In-place + ring of R original rows.
                (
                    p.in_bytes().max(p.out_bytes()),
                    dw_ring_rows(p.r, p.pad, p.stride, p.h) * p.w * p.c,
                )
            }
            LayerDesc::Dense(p) => (p.in_bytes() + p.out_bytes(), 0),
            LayerDesc::Ib(p) => {
                let (a, b, d) = (p.in_bytes(), p.mid_bytes(), p.out_bytes());
                let residual_pin = if p.has_residual() { a } else { 0 };
                // Stage peaks: expand | depthwise (in-place over B, ring)
                // | project (C shares B's allocation) | residual add.
                let im2col1 = p.hw * p.c_in;
                let ring = dw_ring_rows(p.rs, p.pad(), p.s2, p.hw1()) * p.hw1() * p.c_mid;
                let im2col2 = p.hw2() * p.c_mid;
                let expand = a + b + im2col1;
                let dw = residual_pin + b + ring;
                let project = residual_pin + b + d + im2col2;
                let add = if p.has_residual() { a + d } else { 0 };
                let peak = expand.max(dw).max(project).max(add);
                (peak, 0)
            }
            // In-place residual add: output overwrites one operand.
            LayerDesc::Add(p) => (p.in_bytes(), 0),
            // Concat copies into a fresh tensor: all three live.
            LayerDesc::Concat(p) => (p.in_bytes() + p.out_bytes(), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{named_ib_layers, MemoryPlanner};
    use crate::vmcu_planner::VmcuPlanner;
    use vmcu_graph::zoo;
    use vmcu_sim::Device;

    #[test]
    fn imagenet_bottleneck_is_b2_at_247_8_kb() {
        // §7.3: "the bottleneck of TinyEngine is 247.8KB (B2)".
        let device = Device::stm32_f767zi();
        let plan = TinyEnginePlanner.plan(&named_ib_layers(&zoo::mcunet_320kb_imagenet()), &device);
        let b = plan.bottleneck();
        assert_eq!(plan.layers[b].name, "B2");
        let planned_kb = plan.layers[b].planned_bytes() as f64 / 1000.0;
        assert!(
            (247.0..=253.0).contains(&planned_kb),
            "TinyEngine B2 = {planned_kb:.1} KB, expected ~247.8-249"
        );
    }

    #[test]
    fn vww_bottleneck_is_s1_near_36_kb() {
        // Figure 9: TinyEngine bottleneck 36.0 KB at the first module.
        let device = Device::stm32_f411re();
        let plan = TinyEnginePlanner.plan(&named_ib_layers(&zoo::mcunet_5fps_vww()), &device);
        let b = plan.bottleneck();
        assert_eq!(plan.layers[b].name, "S1");
        let kb = plan.bottleneck_bytes() as f64 / 1000.0;
        assert!(
            (33.0..=39.0).contains(&kb),
            "TinyEngine VWW bottleneck {kb:.1} KB out of expected band"
        );
    }

    #[test]
    fn imagenet_does_not_fit_f411re_under_tinyengine() {
        // §7.3: HMCOS and TinyEngine cannot deploy MCUNet-320KB-ImageNet
        // on the 128 KB device; vMCU can.
        let device = Device::stm32_f411re();
        let layers = named_ib_layers(&zoo::mcunet_320kb_imagenet());
        assert!(!TinyEnginePlanner.plan(&layers, &device).deployable());
        assert!(VmcuPlanner::default().plan(&layers, &device).deployable());
    }

    #[test]
    fn vmcu_beats_tinyengine_on_every_module() {
        let device = Device::stm32_f411re();
        for zoo_set in [zoo::mcunet_5fps_vww(), zoo::mcunet_320kb_imagenet()] {
            let layers = named_ib_layers(&zoo_set);
            let te = TinyEnginePlanner.plan(&layers, &device);
            let vm = VmcuPlanner::default().plan(&layers, &device);
            for (t, v) in te.layers.iter().zip(&vm.layers) {
                assert!(
                    v.measured_bytes <= t.measured_bytes,
                    "{}: vMCU {} > TinyEngine {}",
                    t.name,
                    v.measured_bytes,
                    t.measured_bytes
                );
            }
        }
    }
}
