//! Capacity lookups: how much SRAM a whole model demands under a policy,
//! and how many instances of it a device can host concurrently.
//!
//! This is the planning surface the fleet scheduler's admission
//! controller (`vmcu-serve`) is built on: a model's *peak demand* is the
//! maximum per-layer `activations + workspace` bytes its planner reports,
//! and a device admits models until their summed demands exhaust the
//! SRAM left after runtime overhead. Because vMCU's segment-level plans
//! peak far below tensor-level plans (§7), the same device admits
//! strictly more concurrent vMCU models — the paper's RAM savings
//! restated as serving capacity.

use crate::planner::{MemoryPlan, MemoryPlanner};
use vmcu_graph::{Graph, LayerDesc};
use vmcu_sim::Device;

/// Names each layer of a linear graph `kind#index` — the same naming the
/// facade engine uses in its reports, so plans and execution logs line
/// up.
pub fn named_graph_layers(graph: &Graph) -> Vec<(String, LayerDesc)> {
    graph
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| (format!("{}#{i}", l.kind()), l.clone()))
        .collect()
}

/// Plans a whole model for a device — one plan entry per execution node
/// (per layer for per-layer planners, per fused group for the fusion
/// pass).
///
/// # Examples
///
/// ```
/// use vmcu_plan::{plan_graph, VmcuPlanner};
/// use vmcu_graph::zoo;
/// use vmcu_sim::Device;
///
/// let g = zoo::demo_linear_net();
/// let plan = plan_graph(&VmcuPlanner::default(), &g, &Device::stm32_f411re());
/// assert_eq!(plan.layers.len(), g.len());
/// assert!(plan.deployable());
/// ```
pub fn plan_graph(planner: &dyn MemoryPlanner, graph: &Graph, device: &Device) -> MemoryPlan {
    planner.plan_model(graph, device)
}

/// Peak SRAM demand of a model under a policy: the bottleneck node's
/// `activations + workspace` bytes, excluding the device's fixed runtime
/// overhead (which is paid once per device, not once per model).
///
/// # Examples
///
/// The admission-control pricing surface: segment-level planning demands
/// far less than tensor-level planning for the same model, and the fused
/// multi-layer pipeline undercuts both on chains with fat intermediates:
///
/// ```
/// use vmcu_plan::fusion::FusedPlanner;
/// use vmcu_plan::{peak_demand_bytes, TinyEnginePlanner, VmcuPlanner};
/// use vmcu_graph::zoo;
///
/// let g = zoo::mbv2_block_unfused();
/// let te = peak_demand_bytes(&TinyEnginePlanner, &g);
/// let vm = peak_demand_bytes(&VmcuPlanner::default(), &g);
/// let fused = peak_demand_bytes(&FusedPlanner::default(), &g);
/// assert!(vm < te);
/// assert!(fused < vm);
/// ```
pub fn peak_demand_bytes(planner: &dyn MemoryPlanner, graph: &Graph) -> usize {
    planner.model_demand_bytes(graph)
}

/// How many instances of this model fit a device's usable SRAM at once
/// (0 when even one does not fit).
pub fn concurrent_capacity(planner: &dyn MemoryPlanner, graph: &Graph, device: &Device) -> usize {
    let demand = peak_demand_bytes(planner, graph);
    if demand == 0 {
        return 0;
    }
    device.usable_ram_bytes() / demand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tinyengine_planner::TinyEnginePlanner;
    use crate::vmcu_planner::VmcuPlanner;
    use vmcu_graph::zoo;

    #[test]
    fn named_layers_match_graph_order() {
        let g = zoo::demo_linear_net();
        let named = named_graph_layers(&g);
        assert_eq!(named.len(), g.len());
        assert_eq!(named[0].0, "pointwise#0");
        assert_eq!(named[1].0, "inverted-bottleneck#1");
    }

    #[test]
    fn plan_graph_covers_every_layer() {
        let g = zoo::demo_linear_net();
        let device = Device::stm32_f411re();
        let plan = plan_graph(&VmcuPlanner::default(), &g, &device);
        assert_eq!(plan.layers.len(), g.len());
        assert!(plan.deployable());
    }

    #[test]
    fn peak_demand_is_the_bottleneck_layer() {
        let g = zoo::demo_linear_net();
        let device = Device::stm32_f411re();
        let planner = VmcuPlanner::default();
        let demand = peak_demand_bytes(&planner, &g);
        let plan = plan_graph(&planner, &g, &device);
        assert_eq!(
            demand,
            plan.bottleneck_bytes() - device.runtime_overhead_bytes
        );
    }

    #[test]
    fn vmcu_capacity_beats_tinyengine_on_fig7_case1() {
        // Figure 7 case 1 at 128 KB: vMCU hosts one instance, TinyEngine
        // hosts none — the deployability gap as a capacity number.
        let case = &zoo::fig7_cases()[0];
        let g = Graph::linear(case.name.clone(), vec![LayerDesc::Pointwise(case.params)]).unwrap();
        let device = Device::stm32_f411re();
        let vm = concurrent_capacity(&VmcuPlanner::default(), &g, &device);
        let te = concurrent_capacity(&TinyEnginePlanner, &g, &device);
        assert!(vm >= 1, "vMCU must host Fig. 7 case 1 ({vm})");
        assert_eq!(te, 0, "TinyEngine must not fit case 1 at 128 KB");
    }

    #[test]
    fn small_modules_pack_more_densely_under_vmcu() {
        let s5 = &zoo::mcunet_5fps_vww()[4];
        let g = Graph::linear(s5.name, vec![LayerDesc::Ib(s5.params)]).unwrap();
        let device = Device::stm32_f411re();
        let vm = concurrent_capacity(&VmcuPlanner::default(), &g, &device);
        let te = concurrent_capacity(&TinyEnginePlanner, &g, &device);
        assert!(
            vm > te,
            "vMCU capacity {vm} must exceed TinyEngine capacity {te}"
        );
    }

    #[test]
    fn empty_capacity_is_zero_not_divide_by_zero() {
        let g = Graph::linear("empty", vec![]).unwrap();
        let device = Device::stm32_f411re();
        assert_eq!(peak_demand_bytes(&VmcuPlanner::default(), &g), 0);
        assert_eq!(concurrent_capacity(&VmcuPlanner::default(), &g, &device), 0);
    }
}
