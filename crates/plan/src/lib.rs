//! # vmcu-plan — memory planners
//!
//! The policy layer of the comparison in §7: given layers or fused
//! modules, each planner reports the RAM it would need.
//!
//! * [`VmcuPlanner`] — segment-level management; numbers come from the
//!   kernels' executable traces, so every figure is deployable by
//!   construction;
//! * [`TinyEnginePlanner`] — tensor-level with in-place depthwise and
//!   im2col staging (the paper's strongest baseline);
//! * [`HmcosPlanner`] — scheduling only, no in-place (weakest on linear
//!   chains);
//! * [`arena`] — a TFLM-style greedy arena as an extra baseline;
//! * [`headroom`] — the Figure 11/12 NAS-headroom searches;
//! * [`capacity`] — whole-graph peak-demand and concurrent-capacity
//!   lookups, the admission-control surface used by fleet serving
//!   (`vmcu-serve`);
//! * [`fusion`] — the multi-layer segment fusion pass and the
//!   fusion-aware [`FusedPlanner`], which groups fusable layer runs into
//!   single fused chains so fat intermediates never materialize;
//! * [`lowering`] — per-device kernel lowering selection: direct
//!   segment-aware kernels vs the im2col + lane-blocked matmul path,
//!   decided analytically from the device's `CostModel`;
//! * [`order`] — execution-order search on branchy DAGs and the
//!   [`ReorderPlanner`]: per-node vMCU windows priced with last-consumer
//!   liveness, executed in the searched minimum-peak topological order,
//!   structurally never worse than the default order;
//! * [`patch`] — patch-based front-stage planning and the
//!   [`PatchedPlanner`]: high-resolution front layers execute as spatial
//!   patches whose receptive-field slabs, not whole tensors, set the
//!   peak — the policy that deploys models whose *input* exceeds SRAM;
//! * [`split`] — layer-wise partitioning across 2–8 networked MCUs and
//!   the [`SplitPlanner`]: contiguous per-device stages chosen to
//!   minimize the max per-device peak, the policy that deploys models
//!   no *single* device can hold;
//! * [`telemetry`] — a thread-local counter of planning passes, so the
//!   deploy-once/run-many contract (`session.infer` does zero planning
//!   after `deploy`) is checkable by tests and the serve bench gate.
//!
//! # Examples
//!
//! ```
//! use vmcu_plan::{MemoryPlanner, TinyEnginePlanner, VmcuPlanner};
//! use vmcu_plan::planner::named_ib_layers;
//! use vmcu_graph::zoo;
//! use vmcu_sim::Device;
//!
//! let device = Device::stm32_f411re();
//! let layers = named_ib_layers(&zoo::mcunet_5fps_vww());
//! let te = TinyEnginePlanner.plan(&layers, &device);
//! let vm = VmcuPlanner::default().plan(&layers, &device);
//! assert!(vm.bottleneck_bytes() < te.bottleneck_bytes());
//! ```

pub mod arena;
pub mod capacity;
pub mod chain;
pub mod fusion;
pub mod headroom;
pub mod hmcos_planner;
pub mod lowering;
pub mod order;
pub mod patch;
pub mod planner;
pub mod split;
pub mod telemetry;
pub mod tinyengine_planner;
pub mod vmcu_planner;

pub use capacity::{concurrent_capacity, peak_demand_bytes, plan_graph};
pub use chain::{plan_chain, ChainPlan};
pub use fusion::{fuse_graph, FusedPlanner, FusionNode, FusionPlan};
pub use hmcos_planner::HmcosPlanner;
pub use lowering::{select_conv2d_lowering, select_fc_lowering, LoweringChoice, LoweringKind};
pub use order::{plan_order, OrderPlan, ReorderPlanner};
pub use patch::{PatchPlan, PatchedPlanner};
pub use planner::{LayerPlan, MemoryPlan, MemoryPlanner};
pub use split::{plan_split, SplitPlan, SplitPlanner, SplitStage};
pub use tinyengine_planner::TinyEnginePlanner;
pub use vmcu_planner::VmcuPlanner;
