//! NAS-headroom search (Figures 11 and 12, §7.4).
//!
//! vMCU's footprint reductions relax the memory constraint a NAS search
//! operates under: at *equal* RAM to TinyEngine, a module can afford a
//! larger image or more channels. These searches find, for each module,
//! the largest integer image size (resp. scaled channel sizes) whose vMCU
//! footprint still fits the RAM TinyEngine needs for the original module.

use crate::planner::MemoryPlanner;
use crate::tinyengine_planner::TinyEnginePlanner;
use crate::vmcu_planner::VmcuPlanner;
use vmcu_graph::LayerDesc;
use vmcu_kernels::params::IbParams;

/// vMCU footprint of a module in bytes (activation + workspace).
fn vmcu_bytes(planner: &VmcuPlanner, p: &IbParams) -> usize {
    let (a, w) = planner.plan_layer(&LayerDesc::Ib(*p));
    a + w
}

/// The RAM budget TinyEngine needs for the module (activation +
/// workspace).
pub fn tinyengine_budget(p: &IbParams) -> usize {
    let (a, w) = TinyEnginePlanner.plan_layer(&LayerDesc::Ib(*p));
    a + w
}

/// Largest image size (both height and width) whose vMCU footprint fits
/// `budget_bytes`, returned as a ratio to the original size.
pub fn max_image_scale(p: &IbParams, planner: &VmcuPlanner, budget_bytes: usize) -> f64 {
    let mut best = p.hw;
    let mut hw = p.hw;
    loop {
        hw += 1;
        // Keep geometry valid: the fused kernel needs the dw window to fit.
        let mut scaled = *p;
        scaled.hw = hw;
        if vmcu_bytes(planner, &scaled) > budget_bytes {
            break;
        }
        best = hw;
        if hw > 64 * p.hw {
            break; // unbounded growth guard (cannot happen in practice)
        }
    }
    best as f64 / p.hw as f64
}

/// Largest channel scale (input and output channels, with the expanded
/// channels growing proportionally) whose vMCU footprint fits
/// `budget_bytes`, returned as a ratio to the original channel count.
pub fn max_channel_scale(p: &IbParams, planner: &VmcuPlanner, budget_bytes: usize) -> f64 {
    let expand_ratio = p.c_mid as f64 / p.c_in as f64;
    let mut best = p.c_in;
    let mut c_in = p.c_in;
    loop {
        c_in += 1;
        let mut scaled = *p;
        scaled.c_in = c_in;
        scaled.c_out = if p.has_residual() {
            c_in
        } else {
            ((p.c_out as f64 * c_in as f64 / p.c_in as f64).round() as usize).max(1)
        };
        scaled.c_mid = ((c_in as f64 * expand_ratio).round() as usize).max(1);
        if vmcu_bytes(planner, &scaled) > budget_bytes {
            break;
        }
        best = c_in;
        if c_in > 64 * p.c_in {
            break;
        }
    }
    best as f64 / p.c_in as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_graph::zoo;

    #[test]
    fn image_scale_exceeds_one_for_all_vww_modules() {
        let planner = VmcuPlanner::default();
        for m in zoo::mcunet_5fps_vww() {
            let budget = tinyengine_budget(&m.params);
            let r = max_image_scale(&m.params, &planner, budget);
            assert!(
                r > 1.1,
                "{}: image scale {r:.2} should exceed 1.1 at TinyEngine budget",
                m.name
            );
            assert!(r < 4.0, "{}: image scale {r:.2} implausibly large", m.name);
        }
    }

    #[test]
    fn channel_scale_exceeds_one_for_all_vww_modules() {
        let planner = VmcuPlanner::default();
        for m in zoo::mcunet_5fps_vww() {
            let budget = tinyengine_budget(&m.params);
            let r = max_channel_scale(&m.params, &planner, budget);
            assert!(
                r > 1.1,
                "{}: channel scale {r:.2} should exceed 1.1",
                m.name
            );
            assert!(
                r < 5.0,
                "{}: channel scale {r:.2} implausibly large",
                m.name
            );
        }
    }

    #[test]
    fn scaling_is_monotone_in_budget() {
        let planner = VmcuPlanner::default();
        let p = zoo::mcunet_5fps_vww()[0].params;
        let b = tinyengine_budget(&p);
        let r1 = max_image_scale(&p, &planner, b);
        let r2 = max_image_scale(&p, &planner, b * 2);
        assert!(r2 >= r1);
    }
}
