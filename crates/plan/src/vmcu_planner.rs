//! The vMCU segment-level planner.
//!
//! Activation footprints come straight from the kernels' executable
//! traces ([`vmcu_kernels::trace`]): the planner reports exactly the pool
//! window each kernel implementation needs, so every number here is
//! *executable* — validated empirically by the checked pool in tests.

use crate::planner::MemoryPlanner;
use vmcu_graph::LayerDesc;
use vmcu_kernels::conv2d::conv2d_exec_footprint;
use vmcu_kernels::depthwise::depthwise_exec_footprint;
use vmcu_kernels::fc::fc_exec_footprint;
use vmcu_kernels::fused_ib::{ib_exec_footprint, ib_workspace_bytes};
use vmcu_kernels::merge::{add_exec_footprint, concat_exec_footprint};
use vmcu_kernels::pointwise::pointwise_exec_footprint;
use vmcu_kernels::IbScheme;

/// Segment-level planner (the paper's system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmcuPlanner {
    /// Fused inverted-bottleneck workspace scheme.
    pub scheme: IbScheme,
}

impl Default for VmcuPlanner {
    fn default() -> Self {
        Self {
            scheme: IbScheme::RowBuffer,
        }
    }
}

impl MemoryPlanner for VmcuPlanner {
    fn name(&self) -> &'static str {
        "vMCU"
    }

    fn plan_layer(&self, layer: &LayerDesc) -> (usize, usize) {
        match layer {
            LayerDesc::Pointwise(p) => (pointwise_exec_footprint(p), 0),
            LayerDesc::Conv2d(p) => (conv2d_exec_footprint(p), 0),
            LayerDesc::Depthwise(p) => (depthwise_exec_footprint(p), 0),
            LayerDesc::Dense(p) => (fc_exec_footprint(p), 0),
            LayerDesc::Ib(p) => (
                ib_exec_footprint(p, self.scheme),
                ib_workspace_bytes(p, self.scheme),
            ),
            // Merges overlap output onto the first operand's segments:
            // the add window is exactly the two inputs, the concat window
            // saves one branch's worth over disjoint in+out.
            LayerDesc::Add(p) => (add_exec_footprint(p), 0),
            LayerDesc::Concat(p) => (concat_exec_footprint(p), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::named_ib_layers;
    use vmcu_graph::zoo;
    use vmcu_sim::Device;

    #[test]
    fn vww_bottleneck_is_near_paper_13_9kb() {
        // Paper Figure 9: vMCU memory bottleneck 13.9 KB on F411RE.
        let device = Device::stm32_f411re();
        let plan = VmcuPlanner::default().plan(&named_ib_layers(&zoo::mcunet_5fps_vww()), &device);
        let kb = plan.bottleneck_bytes() as f64 / 1000.0;
        assert!(
            (10.0..=17.0).contains(&kb),
            "vMCU VWW bottleneck {kb:.1} KB out of expected band"
        );
        assert!(plan.deployable(), "VWW must deploy on F411RE under vMCU");
    }

    #[test]
    fn imagenet_bottleneck_is_near_paper_102_7kb() {
        // Paper Figure 10 / §7.3: vMCU bottleneck 102.7 KB (B1), enabling
        // deployment on the 128 KB F411RE.
        let device = Device::stm32_f411re();
        let plan =
            VmcuPlanner::default().plan(&named_ib_layers(&zoo::mcunet_320kb_imagenet()), &device);
        let b = plan.bottleneck();
        assert_eq!(plan.layers[b].name, "B1");
        let kb = plan.bottleneck_bytes() as f64 / 1000.0;
        assert!(
            (92.0..=112.0).contains(&kb),
            "vMCU ImageNet bottleneck {kb:.1} KB out of expected band"
        );
        assert!(
            plan.deployable(),
            "ImageNet must deploy on F411RE under vMCU"
        );
    }

    #[test]
    fn pixel_window_never_needs_more_workspace() {
        let pw = VmcuPlanner {
            scheme: IbScheme::PixelWindow,
        };
        let rb = VmcuPlanner::default();
        for m in zoo::mcunet_5fps_vww() {
            let layer = vmcu_graph::LayerDesc::Ib(m.params);
            let (_, ws_pw) = pw.plan_layer(&layer);
            let (_, ws_rb) = rb.plan_layer(&layer);
            assert!(ws_pw <= ws_rb, "{}", m.name);
        }
    }
}
