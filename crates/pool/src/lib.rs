//! # vmcu-pool — the virtualized circular memory pool
//!
//! vMCU's central idea (§3–§4): treat the MCU's scarce SRAM as a circular
//! buffer of segments. Kernels address the pool with *logical* addresses
//! that grow without bound; a modulo operation (the boundary check every
//! vMCU kernel performs on `RAMLoad`/`RAMStore`) wraps them into the
//! physical window. Output segments are stored into slots whose input
//! segments have already been freed, which is what lets input and output
//! tensors overlap.
//!
//! [`SegmentPool`] tracks liveness at byte granularity and, in checked
//! mode, turns any violation — a store clobbering live data, a read of
//! dead bytes, a double free — into a typed [`PoolError`] instead of a
//! silent wrong answer. The planners' minimality claims are validated
//! empirically against this: running a kernel with the solver's offset
//! succeeds; shrinking the pool by one segment makes it fail.
//!
//! # Examples
//!
//! ```
//! use vmcu_pool::SegmentPool;
//! use vmcu_sim::{Device, Machine};
//!
//! let mut m = Machine::new(Device::stm32_f411re());
//! // An 8-byte pool holding a 6-byte input that we stream over.
//! let mut pool = SegmentPool::new(&m, 0, 8, 2).unwrap();
//! pool.host_fill_live(&mut m, 0, &[1, 2, 3, 4, 5, 6]).unwrap();
//! let mut reg = [0u8; 2];
//! pool.load(&mut m, 0, &mut reg).unwrap();   // read segment 0
//! pool.free(0, 2).unwrap();                  // retire it
//! pool.store(&mut m, &reg.clone(), 6).unwrap(); // reuse the slot via wrap
//! assert_eq!(pool.live_bytes(), 6);
//! ```

use std::fmt;
use vmcu_sim::{Machine, MemError};

/// A pool-access failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolError {
    /// A store targeted a byte that is still live (the silent-corruption
    /// case of §2.4, surfaced as an error).
    Clobber {
        /// Logical byte address of the store.
        logical: i64,
        /// Physical offset within the pool window.
        phys: usize,
    },
    /// A load touched a byte that is not live (reading garbage).
    DeadRead {
        /// Logical byte address of the load.
        logical: i64,
        /// Physical offset within the pool window.
        phys: usize,
    },
    /// A free targeted a byte that was already free.
    DoubleFree {
        /// Logical byte address of the free.
        logical: i64,
    },
    /// The pool window does not fit in device RAM.
    WindowOutOfRam {
        /// Window base address.
        base: usize,
        /// Window length in bytes.
        len: usize,
        /// RAM capacity.
        ram: usize,
    },
    /// Underlying memory error.
    Mem(MemError),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Clobber { logical, phys } => write!(
                f,
                "store at logical {logical} would clobber live byte at pool offset {phys}"
            ),
            PoolError::DeadRead { logical, phys } => write!(
                f,
                "load at logical {logical} reads dead byte at pool offset {phys}"
            ),
            PoolError::DoubleFree { logical } => {
                write!(f, "double free at logical address {logical}")
            }
            PoolError::WindowOutOfRam { base, len, ram } => write!(
                f,
                "pool window [{base}, {}) exceeds RAM capacity {ram}",
                base + len
            ),
            PoolError::Mem(e) => write!(f, "pool memory error: {e}"),
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for PoolError {
    fn from(e: MemError) -> Self {
        PoolError::Mem(e)
    }
}

/// The circular segment pool over a RAM window.
///
/// With the `shadow` feature, the pool mirrors its byte liveness into the
/// machine's RAM shadow map ([`vmcu_sim::Ram`]): stores mark bytes live,
/// frees mark them dead, and `Ram::write` itself rejects any store over a
/// live byte. This is the memory-layer backstop — it still fires when
/// pool-level checking has been disabled with [`SegmentPool::set_checked`].
#[derive(Debug, Clone)]
pub struct SegmentPool {
    base: usize,
    len: usize,
    seg_bytes: usize,
    live: Vec<bool>,
    live_count: usize,
    peak_live: usize,
    checked: bool,
    /// Frees not yet mirrored to the RAM shadow map. [`Self::free`] has no
    /// machine handle, so frees are queued here and flushed by the next
    /// pool operation that does.
    #[cfg(feature = "shadow")]
    pending_dead: Vec<(usize, usize)>,
    /// Whether the shadow map for this window has been claimed (reset)
    /// yet. A fresh pool owns its window outright, so stale liveness from
    /// a previous pool over the same bytes is cleared on first use.
    #[cfg(feature = "shadow")]
    shadow_claimed: bool,
}

impl SegmentPool {
    /// Creates a pool over RAM bytes `[base, base + len)` with the given
    /// kernel-specific segment size (used for cost accounting; liveness is
    /// tracked per byte).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::WindowOutOfRam`] when the window exceeds the
    /// machine's RAM.
    ///
    /// # Panics
    ///
    /// Panics if `len` or `seg_bytes` is zero.
    pub fn new(m: &Machine, base: usize, len: usize, seg_bytes: usize) -> Result<Self, PoolError> {
        assert!(len > 0, "pool window must be non-empty");
        assert!(seg_bytes > 0, "segment size must be positive");
        if base + len > m.ram.capacity() {
            return Err(PoolError::WindowOutOfRam {
                base,
                len,
                ram: m.ram.capacity(),
            });
        }
        Ok(Self {
            base,
            len,
            seg_bytes,
            live: vec![false; len],
            live_count: 0,
            peak_live: 0,
            checked: true,
            #[cfg(feature = "shadow")]
            pending_dead: Vec::new(),
            #[cfg(feature = "shadow")]
            shadow_claimed: false,
        })
    }

    /// Mirrors queued frees (and, on first use, the window claim) into the
    /// RAM shadow map before a write-side pool operation touches memory.
    #[cfg(feature = "shadow")]
    fn flush_shadow(&mut self, m: &mut Machine) {
        if !self.shadow_claimed {
            m.ram.shadow_mark_dead(self.base, self.len);
            self.shadow_claimed = true;
        }
        for (addr, n) in self.pending_dead.drain(..) {
            m.ram.shadow_mark_dead(addr, n);
        }
    }

    /// Disables clobber/dead-read checking (production mode — matches
    /// on-device behaviour where violations are silent).
    pub fn set_checked(&mut self, checked: bool) {
        self.checked = checked;
    }

    /// Pool window length in bytes.
    pub fn window_len(&self) -> usize {
        self.len
    }

    /// Kernel-specific segment size in bytes.
    pub fn seg_bytes(&self) -> usize {
        self.seg_bytes
    }

    /// Currently live bytes.
    pub fn live_bytes(&self) -> usize {
        self.live_count
    }

    /// High-water mark of live bytes (empirical footprint).
    pub fn peak_live_bytes(&self) -> usize {
        self.peak_live
    }

    /// Physical offset of a logical address (the modulo boundary check).
    pub fn phys(&self, logical: i64) -> usize {
        logical.rem_euclid(self.len as i64) as usize
    }

    fn set_live(&mut self, phys: usize, live: bool) {
        if self.live[phys] != live {
            self.live[phys] = live;
            if live {
                self.live_count += 1;
                self.peak_live = self.peak_live.max(self.live_count);
            } else {
                self.live_count -= 1;
            }
        }
    }

    /// Splits a possibly-wrapping range into at most two physical spans.
    fn spans(&self, logical: i64, len: usize) -> [(usize, usize); 2] {
        assert!(
            len <= self.len,
            "access of {len} bytes exceeds pool window {}",
            self.len
        );
        let start = self.phys(logical);
        let first = len.min(self.len - start);
        [(start, first), (0, len - first)]
    }

    // ---- costed kernel operations -----------------------------------------

    /// `RAMLoad` through the pool: reads `dst.len()` logical bytes starting
    /// at `logical`, charging one modulo plus the machine's load cost.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::DeadRead`] in checked mode when any byte is not
    /// live, or a memory error from the machine.
    pub fn load(&mut self, m: &mut Machine, logical: i64, dst: &mut [u8]) -> Result<(), PoolError> {
        m.charge_modulo(1);
        let mut off = 0usize;
        for (phys, n) in self.spans(logical, dst.len()) {
            if n == 0 {
                continue;
            }
            if self.checked {
                for p in phys..phys + n {
                    if !self.live[p] {
                        return Err(PoolError::DeadRead {
                            logical: logical + (off + (p - phys)) as i64,
                            phys: p,
                        });
                    }
                }
            }
            m.ram_load(self.base + phys, &mut dst[off..off + n])?;
            off += n;
        }
        Ok(())
    }

    /// `RAMStore` through the pool: writes `src` at `logical`, charging one
    /// modulo plus the machine's store cost, and marks the bytes live.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::Clobber`] in checked mode when any target byte
    /// is still live, or a memory error from the machine.
    pub fn store(&mut self, m: &mut Machine, src: &[u8], logical: i64) -> Result<(), PoolError> {
        m.charge_modulo(1);
        #[cfg(feature = "shadow")]
        self.flush_shadow(m);
        let mut off = 0usize;
        for (phys, n) in self.spans(logical, src.len()) {
            if n == 0 {
                continue;
            }
            if self.checked {
                for p in phys..phys + n {
                    if self.live[p] {
                        return Err(PoolError::Clobber {
                            logical: logical + (off + (p - phys)) as i64,
                            phys: p,
                        });
                    }
                }
            }
            m.ram_store(self.base + phys, &src[off..off + n])?;
            #[cfg(feature = "shadow")]
            m.ram.shadow_mark_live(self.base + phys, n);
            for p in phys..phys + n {
                self.set_live(p, true);
            }
            off += n;
        }
        Ok(())
    }

    /// `RAMFree`: retires `len` logical bytes starting at `logical`
    /// (bookkeeping only — on hardware this is a pointer bump, so no cost
    /// is charged).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::DoubleFree`] in checked mode when any byte is
    /// already free.
    pub fn free(&mut self, logical: i64, len: usize) -> Result<(), PoolError> {
        for (phys, n) in self.spans(logical, len) {
            for p in phys..phys + n {
                if self.checked && !self.live[p] {
                    return Err(PoolError::DoubleFree {
                        logical: logical + (p - phys) as i64,
                    });
                }
                self.set_live(p, false);
            }
            // No machine handle here; queue the shadow update for the next
            // pool operation that has one.
            #[cfg(feature = "shadow")]
            if n > 0 {
                self.pending_dead.push((self.base + phys, n));
            }
        }
        Ok(())
    }

    // ---- host-side (uncosted) setup ---------------------------------------

    /// Writes input data at `logical` and marks it live without charging
    /// cycles (test-bench input staging).
    ///
    /// # Errors
    ///
    /// Returns a memory error on RAM failures.
    pub fn host_fill_live(
        &mut self,
        m: &mut Machine,
        logical: i64,
        data: &[u8],
    ) -> Result<(), PoolError> {
        #[cfg(feature = "shadow")]
        self.flush_shadow(m);
        let mut off = 0usize;
        for (phys, n) in self.spans(logical, data.len()) {
            if n == 0 {
                continue;
            }
            m.host_write_ram(self.base + phys, &data[off..off + n])?;
            #[cfg(feature = "shadow")]
            m.ram.shadow_mark_live(self.base + phys, n);
            for p in phys..phys + n {
                self.set_live(p, true);
            }
            off += n;
        }
        Ok(())
    }

    /// Reads back `len` bytes at `logical` without charging cycles
    /// (test-bench output readback).
    ///
    /// # Errors
    ///
    /// Returns a memory error on RAM failures.
    pub fn host_read(&self, m: &Machine, logical: i64, len: usize) -> Result<Vec<u8>, PoolError> {
        let mut out = Vec::with_capacity(len);
        for (phys, n) in self.spans(logical, len) {
            if n == 0 {
                continue;
            }
            out.extend_from_slice(&m.host_read_ram(self.base + phys, n)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;

    fn setup(pool_len: usize, seg: usize) -> (Machine, SegmentPool) {
        let m = Machine::new(Device::stm32_f411re());
        let pool = SegmentPool::new(&m, 0, pool_len, seg).unwrap();
        (m, pool)
    }

    #[test]
    fn modulo_addressing_wraps() {
        let (_, pool) = setup(10, 2);
        assert_eq!(pool.phys(0), 0);
        assert_eq!(pool.phys(10), 0);
        assert_eq!(pool.phys(13), 3);
        assert_eq!(pool.phys(-1), 9);
    }

    #[test]
    fn load_store_round_trip_and_costs() {
        let (mut m, mut pool) = setup(16, 4);
        pool.store(&mut m, &[9, 8, 7, 6], 4).unwrap();
        let mut buf = [0u8; 4];
        pool.load(&mut m, 4, &mut buf).unwrap();
        assert_eq!(buf, [9, 8, 7, 6]);
        assert_eq!(m.counters.modulo_ops, 2);
        assert_eq!(m.counters.ram_write_bytes, 4);
    }

    #[test]
    fn wrapping_store_splits_across_boundary() {
        let (mut m, mut pool) = setup(8, 4);
        pool.store(&mut m, &[1, 2, 3, 4], 6).unwrap(); // bytes 6,7,0,1
        assert_eq!(m.host_read_ram(6, 2).unwrap(), vec![1, 2]);
        assert_eq!(m.host_read_ram(0, 2).unwrap(), vec![3, 4]);
        let mut buf = [0u8; 4];
        pool.load(&mut m, 6, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn clobber_is_detected() {
        let (mut m, mut pool) = setup(8, 4);
        pool.store(&mut m, &[1; 4], 0).unwrap();
        // Same physical slot via wrap-around: logical 8 maps to offset 0.
        let err = pool.store(&mut m, &[2; 4], 8).unwrap_err();
        assert!(matches!(err, PoolError::Clobber { phys: 0, .. }));
    }

    #[test]
    fn free_then_reuse_is_legal() {
        let (mut m, mut pool) = setup(8, 4);
        pool.store(&mut m, &[1; 4], 0).unwrap();
        pool.free(0, 4).unwrap();
        pool.store(&mut m, &[2; 4], 8).unwrap(); // same slot, now free
        assert_eq!(pool.live_bytes(), 4);
        assert_eq!(pool.peak_live_bytes(), 4);
    }

    #[test]
    fn dead_read_is_detected() {
        let (mut m, mut pool) = setup(8, 4);
        let mut buf = [0u8; 2];
        let err = pool.load(&mut m, 0, &mut buf).unwrap_err();
        assert!(matches!(err, PoolError::DeadRead { .. }));
    }

    #[test]
    fn double_free_is_detected() {
        let (mut m, mut pool) = setup(8, 4);
        pool.store(&mut m, &[1; 4], 0).unwrap();
        pool.free(0, 4).unwrap();
        assert!(matches!(pool.free(0, 4), Err(PoolError::DoubleFree { .. })));
    }

    #[cfg(not(feature = "shadow"))]
    #[test]
    fn unchecked_mode_allows_silent_clobber() {
        let (mut m, mut pool) = setup(8, 4);
        pool.set_checked(false);
        pool.store(&mut m, &[1; 4], 0).unwrap();
        pool.store(&mut m, &[2; 4], 8).unwrap(); // silently overwrites
        let mut buf = [0u8; 4];
        pool.load(&mut m, 0, &mut buf).unwrap();
        assert_eq!(buf, [2; 4]);
    }

    /// The memory-layer backstop: even with pool checking disabled
    /// (production mode), the RAM shadow map still rejects a store over
    /// live bytes.
    #[cfg(feature = "shadow")]
    #[test]
    fn shadow_backstop_catches_unchecked_clobber() {
        let (mut m, mut pool) = setup(8, 4);
        pool.set_checked(false);
        pool.store(&mut m, &[1; 4], 0).unwrap();
        let err = pool.store(&mut m, &[2; 4], 8).unwrap_err();
        assert!(matches!(
            err,
            PoolError::Mem(MemError::ShadowClobber { addr: 0, len: 4 })
        ));
        // Freeing through the pool restores the invariant.
        pool.free(0, 4).unwrap();
        pool.store(&mut m, &[2; 4], 8).unwrap();
        assert_eq!(m.ram.shadow_live_bytes(), 4);
    }

    /// A fresh pool claims its window: stale liveness left by a previous
    /// pool over the same bytes does not poison the new one.
    #[cfg(feature = "shadow")]
    #[test]
    fn shadow_fresh_pool_claims_window() {
        let (mut m, mut pool) = setup(8, 4);
        pool.store(&mut m, &[1; 4], 0).unwrap();
        drop(pool);
        let mut pool2 = SegmentPool::new(&m, 0, 8, 4).unwrap();
        pool2.store(&mut m, &[2; 4], 0).unwrap();
        assert_eq!(m.ram.shadow_live_bytes(), 4);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let (mut m, mut pool) = setup(16, 4);
        pool.store(&mut m, &[1; 4], 0).unwrap();
        pool.store(&mut m, &[1; 4], 4).unwrap();
        pool.free(0, 8).unwrap();
        pool.store(&mut m, &[1; 4], 8).unwrap();
        assert_eq!(pool.live_bytes(), 4);
        assert_eq!(pool.peak_live_bytes(), 8);
    }

    #[test]
    fn host_fill_and_read_are_free_of_cost() {
        let (mut m, mut pool) = setup(8, 4);
        pool.host_fill_live(&mut m, 6, &[1, 2, 3, 4]).unwrap(); // wraps
        assert_eq!(pool.host_read(&m, 6, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(m.counters.cycles, 0);
        assert_eq!(pool.live_bytes(), 4);
    }

    #[test]
    fn window_must_fit_in_ram() {
        let m = Machine::new(Device::stm32_f411re());
        let cap = m.ram.capacity();
        assert!(matches!(
            SegmentPool::new(&m, cap - 4, 8, 2),
            Err(PoolError::WindowOutOfRam { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "exceeds pool window")]
    fn oversized_access_panics() {
        let (mut m, mut pool) = setup(8, 4);
        let mut buf = [0u8; 16];
        let _ = pool.load(&mut m, 0, &mut buf);
    }

    #[test]
    fn error_display_mentions_addresses() {
        let e = PoolError::Clobber {
            logical: 42,
            phys: 2,
        };
        assert!(e.to_string().contains("42"));
    }
}
