//! Property tests: the three solvers must agree wherever their contracts
//! overlap, on arbitrary affine problems — not just the layers the paper
//! evaluates.

use proptest::prelude::*;
use vmcu_ir::affine::{IterDomain, LinearAccess};
use vmcu_solver::problem::{FootprintProblem, ReadAccess};
use vmcu_solver::{analytic, enumerate, multilayer};

/// Strategy: a random box domain with 1..=4 dims of extent 1..=6.
fn domain() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(1i64..=6, 1..=4)
}

/// Strategy: a random linear access over `dims` dimensions.
fn access(dims: usize) -> impl Strategy<Value = LinearAccess> {
    (prop::collection::vec(-4i64..=4, dims), -10i64..=10)
        .prop_map(|(coef, off)| LinearAccess::new(coef, off))
}

fn problem() -> impl Strategy<Value = FootprintProblem> {
    domain().prop_flat_map(|extents| {
        let d = extents.len();
        (
            Just(extents),
            prop::collection::vec(access(d), 1..=3),
            prop::collection::vec(access(d), 1..=3),
        )
            .prop_map(|(extents, reads, writes)| {
                FootprintProblem::new(
                    IterDomain::new(extents),
                    reads.into_iter().map(ReadAccess::unbounded).collect(),
                    writes,
                    64,
                    64,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The analytic lex-decomposition solver is exact on unbounded-read
    /// problems: it must equal the enumerative ground truth.
    #[test]
    fn analytic_equals_enumerate(p in problem()) {
        let exact = enumerate::min_distance(&p).expect("writes exist");
        let fast = analytic::min_distance(&p);
        prop_assert_eq!(fast, exact);
    }

    /// Using any distance >= D* is safe; D* - 1 is not. Verified against
    /// the raw constraint on every instance pair via a third formulation:
    /// a replayed event trace (reads/writes in execution order, writes of
    /// an instance joining before its reads, matching the paper's j <= i).
    #[test]
    fn distance_is_tight(p in problem()) {
        let d = enumerate::min_distance(&p).expect("writes exist");
        // Rebuild the same bound from a trace to cross-validate the scan.
        let mut events = Vec::new();
        for point in p.domain.points() {
            for w in &p.writes {
                events.push(multilayer::Event::Write(w.eval(&point)));
            }
            for r in &p.reads {
                events.push(multilayer::Event::Read(r.access.eval(&point)));
            }
        }
        let trace_d = multilayer::min_distance_events(events).expect("writes exist");
        prop_assert_eq!(trace_d, d);
    }

    /// GEMM closed form equals the general solver for all shapes.
    #[test]
    fn gemm_closed_form_is_exact(m in 1i64..=8, n in 1i64..=8, k in 1i64..=8) {
        let p = FootprintProblem::gemm(m, n, k);
        prop_assert_eq!(
            vmcu_solver::closed_form::gemm_min_distance(m, n, k),
            enumerate::min_distance(&p).expect("writes exist")
        );
    }

    /// Padding can only loosen the analytic bound, never tighten it below
    /// the exact answer.
    #[test]
    fn analytic_is_conservative_under_padding(
        h in 3i64..=7, w in 3i64..=7, c in 1i64..=3, k in 1i64..=3, pad in 0i64..=1
    ) {
        let p = FootprintProblem::conv2d(h, w, c, k, 3, 3, 1, pad);
        let exact = enumerate::min_distance(&p).expect("writes exist");
        prop_assert!(analytic::min_distance(&p) >= exact);
        if pad == 0 {
            prop_assert_eq!(analytic::min_distance(&p), exact);
        }
    }

    /// Footprint never exceeds disjoint allocation and never goes below
    /// the larger tensor.
    #[test]
    fn footprint_bounds(m in 1i64..=8, n in 1i64..=8, k in 1i64..=8) {
        let p = FootprintProblem::gemm(m, n, k);
        let sol = enumerate::solve(&p);
        prop_assert!(sol.footprint <= p.in_size + p.out_size);
        prop_assert!(sol.footprint >= p.in_size.max(p.out_size));
    }
}
