//! Paper closed forms for common layers (§4's worked GEMM example and the
//! §5.3 segment-size rule), as fast paths checked against the general
//! solvers.

use crate::problem::{FootprintProblem, OffsetSolution};

/// `D*` for GEMM with `In[M,K]`, `Out[M,N]` in segment units.
///
/// The paper derives `min(bIn − bOut)` for the constraint
/// `(K−N)m − n + k ≥ bOut − bIn`; maximizing over the domain gives
/// `N − 1` when `N ≤ K` and `(N−K)(M−1) + N − 1` when `N > K`.
///
/// # Panics
///
/// Panics if any dimension is less than 1.
pub fn gemm_min_distance(m: i64, n: i64, k: i64) -> i64 {
    assert!(m >= 1 && n >= 1 && k >= 1, "GEMM dims must be >= 1");
    (n - 1) + 0.max((n - k) * (m - 1))
}

/// Minimal peak footprint in segments for GEMM — the paper's
/// `max(MN, MK) + min(N, K) − 1`.
pub fn gemm_min_footprint(m: i64, n: i64, k: i64) -> i64 {
    OffsetSolution::from_distance(gemm_min_distance(m, n, k), m * k, m * n).footprint
}

/// The §5.3 segment-size rule for a fully-connected layer: the minimum of
/// the input row size and the output row size (in elements).
pub fn fc_segment_elems(k: i64, n: i64) -> i64 {
    k.min(n)
}

/// The §5.3 segment-size rule for convolutions and inverted bottlenecks:
/// the minimum of input and output channel count (in elements).
pub fn conv_segment_elems(c_in: i64, c_out: i64) -> i64 {
    c_in.min(c_out)
}

/// Minimal footprint in **bytes** for an int8 pointwise convolution over
/// `pixels` positions (`c_in` → `c_out` channels) with the §5.3 segment
/// size. Used by the Figure 7 planner path.
pub fn pointwise_min_footprint_bytes(pixels: i64, c_in: i64, c_out: i64) -> i64 {
    let seg = conv_segment_elems(c_in, c_out);
    let p = FootprintProblem::pointwise(pixels, c_in, c_out, seg);
    let segs = gemm_min_footprint(pixels, c_out / seg, c_in / seg);
    debug_assert_eq!(segs, crate::analytic::solve(&p).footprint);
    segs * seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analytic, enumerate};

    #[test]
    fn paper_worked_example_k3_n2() {
        // Figure 1(c): K=3, N=2 -> one empty segment, 7 total for M=2.
        assert_eq!(gemm_min_distance(2, 2, 3), 1);
        assert_eq!(gemm_min_footprint(2, 2, 3), 7);
    }

    #[test]
    fn closed_form_matches_both_solvers() {
        for m in 1..=5 {
            for n in 1..=5 {
                for k in 1..=5 {
                    let p = FootprintProblem::gemm(m, n, k);
                    let cf = gemm_min_distance(m, n, k);
                    assert_eq!(cf, analytic::min_distance(&p), "m={m} n={n} k={k}");
                    assert_eq!(
                        cf,
                        enumerate::min_distance(&p).unwrap(),
                        "m={m} n={n} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn footprint_branches_match_paper_formula() {
        // N <= K: MK + N − 1; N > K: MN + K − 1.
        assert_eq!(gemm_min_footprint(4, 2, 6), 4 * 6 + 1);
        assert_eq!(gemm_min_footprint(4, 6, 2), 4 * 6 + 1);
        assert_eq!(gemm_min_footprint(1, 9, 3), 9 + 2);
    }

    #[test]
    fn segment_size_rules() {
        assert_eq!(fc_segment_elems(128, 10), 10);
        assert_eq!(conv_segment_elems(16, 8), 8);
        assert_eq!(conv_segment_elems(3, 16), 3);
    }

    #[test]
    fn pointwise_bytes_equal_channels() {
        // C == K: footprint = pixels * C bytes (plus zero slack):
        // max(MK,MN) + min(N,K)-1 with N=K=1 seg -> M segments of C bytes.
        assert_eq!(pointwise_min_footprint_bytes(6400, 16, 16), 6400 * 16);
    }

    #[test]
    fn pointwise_bytes_mixed_channels() {
        // Fig 7 case 4: 80x80, C=16, K=8. seg=8: M=6400, K=2, N=1 segs.
        // segs = max(12800, 6400) + 1 - 1 = 12800 -> 102400 bytes.
        assert_eq!(pointwise_min_footprint_bytes(6400, 16, 8), 102_400);
    }
}
