//! Closed-form footprint solver by lexicographic case decomposition.
//!
//! The inner maximization `max_{j ≤lex i} (write(j) − read(i))` over a box
//! domain decomposes into `d + 1` cases by the position where `j` and `i`
//! first differ:
//!
//! * case `t < d`: `j` and `i` agree on dims `< t`, `j_t < i_t`, and the
//!   remaining dims are unconstrained;
//! * case `d`: `j = i`.
//!
//! In every case the objective separates per dimension: coupled dims
//! contribute `max_x (w_c − r_c)·x`, free dims contribute
//! `max_x w_c·x + max_y (−r_c·y)`, and the strict dim is a two-variable
//! linear program over the lattice triangle `0 ≤ j < i ≤ B−1`, whose
//! maximum sits on one of the three (integer) vertices. The result is exact
//! and `O(d²)` per read/write pair — compare the `O(|domain|)` scan of
//! [`crate::enumerate`], against which this module is property-tested.
//!
//! Padding bounds on reads are ignored (treated as real reads), so for
//! padded convolution problems this solver is *conservative*: its distance
//! is an upper bound on the exact one.

use crate::problem::{FootprintProblem, OffsetSolution};
use vmcu_ir::affine::LinearAccess;

/// `max_{0 <= x <= ub} c·x` for `ub >= 0`.
fn axis_max(c: i64, ub: i64) -> i64 {
    if c >= 0 {
        c * ub
    } else {
        0
    }
}

/// `max { w·j − r·i : 0 <= j < i <= ub }`, `ub >= 1`; evaluates the three
/// triangle vertices.
fn triangle_max(w: i64, r: i64, ub: i64) -> i64 {
    let v1 = -r; // (i, j) = (1, 0)
    let v2 = -r * ub; // (i, j) = (ub, 0)
    let v3 = w * (ub - 1) - r * ub; // (i, j) = (ub, ub − 1)
    v1.max(v2).max(v3)
}

/// `max_{j ≤lex i} (write(j) − read(i))` for one read/write pair over the
/// box with the given extents.
fn pair_max(extents: &[i64], write: &LinearAccess, read: &LinearAccess) -> i64 {
    let d = extents.len();
    let base = write.off - read.off;
    // Case t = d: j = i on every dimension.
    let mut best = base
        + (0..d)
            .map(|c| axis_max(write.coef[c] - read.coef[c], extents[c] - 1))
            .sum::<i64>();
    // Cases t < d: first strict difference at dimension t.
    for t in 0..d {
        if extents[t] < 2 {
            continue; // j_t < i_t infeasible on a unit extent
        }
        let mut v = base;
        for (c, &ext) in extents.iter().enumerate().take(t) {
            v += axis_max(write.coef[c] - read.coef[c], ext - 1);
        }
        v += triangle_max(write.coef[t], read.coef[t], extents[t] - 1);
        for (c, &ext) in extents.iter().enumerate().skip(t + 1) {
            v += axis_max(write.coef[c], ext - 1);
            v += axis_max(-read.coef[c], ext - 1);
        }
        best = best.max(v);
    }
    best
}

/// Computes `D* = min (bIn − bOut)` analytically.
///
/// # Panics
///
/// Panics if the problem has no reads or no writes —
/// `FootprintProblem` construction guarantees both.
pub fn min_distance(problem: &FootprintProblem) -> i64 {
    let extents = problem.domain.extents();
    problem
        .reads
        .iter()
        .flat_map(|r| {
            problem
                .writes
                .iter()
                .map(move |w| pair_max(extents, w, &r.access))
        })
        .max()
        .expect("problem construction guarantees at least one read and write")
}

/// Solves and packages the result.
pub fn solve(problem: &FootprintProblem) -> OffsetSolution {
    OffsetSolution::from_distance(min_distance(problem), problem.in_size, problem.out_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::problem::FootprintProblem;

    #[test]
    fn matches_enumerate_on_gemm_grid() {
        for m in 1..=4 {
            for n in 1..=4 {
                for k in 1..=4 {
                    let p = FootprintProblem::gemm(m, n, k);
                    assert_eq!(
                        min_distance(&p),
                        enumerate::min_distance(&p).unwrap(),
                        "m={m} n={n} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure_1c_example() {
        let p = FootprintProblem::gemm(2, 2, 3);
        assert_eq!(solve(&p).footprint, 7);
    }

    #[test]
    fn axis_max_signs() {
        assert_eq!(axis_max(3, 5), 15);
        assert_eq!(axis_max(-3, 5), 0);
        assert_eq!(axis_max(0, 5), 0);
        assert_eq!(axis_max(7, 0), 0);
    }

    #[test]
    fn triangle_max_vertices() {
        // w=1, r=0, ub=4: best j as large as possible: j=3 -> 3.
        assert_eq!(triangle_max(1, 0, 4), 3);
        // w=0, r=1: pay for i, keep it at the minimum feasible i=1 -> -1.
        assert_eq!(triangle_max(0, 1, 4), -1);
        // w=0, r=-1: reward for i: i=ub -> 4.
        assert_eq!(triangle_max(0, -1, 4), 4);
        // brute-force cross-check
        for w in -3..=3 {
            for r in -3..=3 {
                for ub in 1..=5 {
                    let mut best = i64::MIN;
                    for i in 1..=ub {
                        for j in 0..i {
                            best = best.max(w * j - r * i);
                        }
                    }
                    assert_eq!(triangle_max(w, r, ub), best, "w={w} r={r} ub={ub}");
                }
            }
        }
    }

    #[test]
    fn conservative_on_padded_conv() {
        let p = FootprintProblem::conv2d(6, 6, 2, 2, 3, 3, 1, 1);
        let exact = enumerate::min_distance(&p).unwrap();
        let analytic = min_distance(&p);
        assert!(analytic >= exact, "analytic must be an upper bound");
    }

    #[test]
    fn exact_on_unpadded_conv() {
        let p = FootprintProblem::conv2d(6, 6, 2, 4, 3, 3, 1, 0);
        assert_eq!(min_distance(&p), enumerate::min_distance(&p).unwrap());
    }
}
