//! The memory-management optimization problem of §4.
//!
//! Given a kernel's iteration domain, its (possibly many) read address
//! expressions into the input tensor and write address expressions into the
//! output tensor, the problem is
//!
//! ```text
//! min  bIn − bOut
//! s.t. ∀ j ≤lex i :  read(i) + bIn  ≥  write(j) + bOut
//! ```
//!
//! equivalently `bIn − bOut ≥ D*` with
//! `D* = max_{j ≤lex i} ( write(j) − read(i) )`. All addresses are in
//! abstract *address units* — segments for the paper's single-layer
//! formulation, bytes for the fused multi-layer problems — chosen by the
//! caller.

use vmcu_ir::affine::{IterDomain, LinearAccess};

/// Inclusive bounds `[lo, hi]` on a read address; reads outside are
/// padding accesses that never touch memory and are excluded by the exact
/// solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadBounds {
    /// Smallest real input address.
    pub lo: i64,
    /// Largest real input address.
    pub hi: i64,
}

/// One read access: an address expression plus optional validity bounds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReadAccess {
    /// Address expression `read(i)`.
    pub access: LinearAccess,
    /// Optional bounds excluding padding reads.
    pub bounds: Option<ReadBounds>,
}

impl ReadAccess {
    /// A read access valid everywhere.
    pub fn unbounded(access: LinearAccess) -> Self {
        Self {
            access,
            bounds: None,
        }
    }

    /// A read access valid only inside `[lo, hi]`.
    pub fn bounded(access: LinearAccess, lo: i64, hi: i64) -> Self {
        Self {
            access,
            bounds: Some(ReadBounds { lo, hi }),
        }
    }

    /// Whether the read at iteration point `i` touches real input memory.
    pub fn is_real(&self, i: &[i64]) -> bool {
        match self.bounds {
            None => true,
            Some(ReadBounds { lo, hi }) => {
                let a = self.access.eval(i);
                a >= lo && a <= hi
            }
        }
    }
}

/// A single-kernel footprint problem (constraint (1) of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintProblem {
    /// Iteration domain executed in lexicographic order.
    pub domain: IterDomain,
    /// Read address expressions into the input tensor.
    pub reads: Vec<ReadAccess>,
    /// Write address expressions into the output tensor.
    pub writes: Vec<LinearAccess>,
    /// Input tensor size in address units.
    pub in_size: i64,
    /// Output tensor size in address units.
    pub out_size: i64,
}

impl FootprintProblem {
    /// Creates a problem; validates dimensional consistency.
    ///
    /// # Panics
    ///
    /// Panics if any access has a dimensionality different from the
    /// domain's, if there are no reads or writes, or if a size is not
    /// positive.
    pub fn new(
        domain: IterDomain,
        reads: Vec<ReadAccess>,
        writes: Vec<LinearAccess>,
        in_size: i64,
        out_size: i64,
    ) -> Self {
        assert!(!reads.is_empty(), "problem must have at least one read");
        assert!(!writes.is_empty(), "problem must have at least one write");
        assert!(in_size > 0 && out_size > 0, "tensor sizes must be positive");
        for r in &reads {
            assert_eq!(
                r.access.dims(),
                domain.dims(),
                "read access dims must match domain"
            );
        }
        for w in &writes {
            assert_eq!(
                w.dims(),
                domain.dims(),
                "write access dims must match domain"
            );
        }
        Self {
            domain,
            reads,
            writes,
            in_size,
            out_size,
        }
    }

    /// The GEMM problem of Figure 3 in segment units: domain `(m, n, k)`,
    /// reads `In[m,k]` (mapping vector `[K,1]`), writes `Out[m,n]`
    /// (mapping vector `[N,1]`).
    ///
    /// # Panics
    ///
    /// Panics unless `m, n, k >= 1`.
    pub fn gemm(m: i64, n: i64, k: i64) -> Self {
        assert!(m >= 1 && n >= 1 && k >= 1, "GEMM dims must be >= 1");
        let domain = IterDomain::new(vec![m, n, k]);
        let read = LinearAccess::new(vec![k, 0, 1], 0);
        let write = LinearAccess::new(vec![n, 1, 0], 0);
        Self::new(
            domain,
            vec![ReadAccess::unbounded(read)],
            vec![write],
            m * k,
            m * n,
        )
    }

    /// A pointwise (1×1) convolution over `pixels` spatial positions with
    /// `c_in` input channels and `c_out` output channels, managed at
    /// segment granularity `seg_elems` (the paper picks
    /// `seg = min(c_in, c_out)`, §5.3).
    ///
    /// Pointwise convolution *is* a GEMM with `M = pixels`,
    /// `K = c_in/seg`, `N = c_out/seg` in segment units.
    ///
    /// # Panics
    ///
    /// Panics if `seg_elems` does not divide both channel counts.
    pub fn pointwise(pixels: i64, c_in: i64, c_out: i64, seg_elems: i64) -> Self {
        assert!(
            c_in % seg_elems == 0 && c_out % seg_elems == 0,
            "segment size {seg_elems} must divide channels {c_in}/{c_out}"
        );
        Self::gemm(pixels, c_out / seg_elems, c_in / seg_elems)
    }

    /// A dense 2D convolution in *byte* units with NHWC layout, matching
    /// the Figure 5 loop nest: domain `(p, q, r, s)` over output pixels and
    /// the filter window; reads `In[p·stride + r − pad, q·stride + s − pad, :]`
    /// row by row; writes `Out[p, q, :]`. Channel loops are folded into the
    /// per-access unit (one unit = one channel vector = `c` or `k` bytes),
    /// so addresses here are in *pixel* units scaled by channel bytes.
    ///
    /// Reads that fall into padding are marked out-of-bounds so the exact
    /// solver ignores them.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (non-positive output size).
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        h: i64,
        w: i64,
        c_in: i64,
        c_out: i64,
        r: i64,
        s: i64,
        stride: i64,
        pad: i64,
    ) -> Self {
        let p = (h + 2 * pad - r) / stride + 1;
        let q = (w + 2 * pad - s) / stride + 1;
        assert!(p > 0 && q > 0, "convolution output must be non-empty");
        let domain = IterDomain::new(vec![p, q, r, s]);
        // Input byte address: ((p*stride + r - pad) * w + (q*stride + s - pad)) * c_in
        let read = LinearAccess::new(
            vec![stride * w * c_in, stride * c_in, w * c_in, c_in],
            -pad * w * c_in - pad * c_in,
        );
        // Output byte address: (p * q_extent + q) * c_out
        let write = LinearAccess::new(vec![q * c_out, c_out, 0, 0], 0);
        Self::new(
            domain,
            vec![ReadAccess::bounded(read, 0, h * w * c_in - 1)],
            vec![write],
            h * w * c_in,
            p * q * c_out,
        )
    }
}

/// Solution of a footprint problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OffsetSolution {
    /// `D* = min (bIn − bOut)` — the minimal safe pointer distance. May be
    /// negative (output may start *after* the input without conflict).
    pub min_distance: i64,
    /// The distance actually used after clamping to non-negative span
    /// optimum: `max(min_distance, 0)`.
    pub used_distance: i64,
    /// Peak combined footprint in address units when using
    /// `used_distance`.
    pub footprint: i64,
}

impl OffsetSolution {
    /// Builds the solution from a raw `D*` and the tensor sizes.
    ///
    /// The span occupied by input `[bIn, bIn+in)` and output
    /// `[bIn−D, bIn−D+out)` is minimized over all feasible `D ≥ D*`; since
    /// the span is non-increasing as `D` decreases toward `0` and
    /// non-decreasing beyond, the optimum is at `D = max(D*, 0)`.
    pub fn from_distance(min_distance: i64, in_size: i64, out_size: i64) -> Self {
        let used = min_distance.max(0);
        let footprint = (in_size + used).max(out_size);
        Self {
            min_distance,
            used_distance: used,
            footprint,
        }
    }

    /// Footprint reduction versus allocating input and output disjointly
    /// (`in_size + out_size`), as a fraction in `[0, 1]`.
    pub fn reduction_vs_disjoint(&self, in_size: i64, out_size: i64) -> f64 {
        let disjoint = (in_size + out_size) as f64;
        1.0 - self.footprint as f64 / disjoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_problem_shapes() {
        let p = FootprintProblem::gemm(4, 2, 3);
        assert_eq!(p.domain.extents(), &[4, 2, 3]);
        assert_eq!(p.in_size, 12);
        assert_eq!(p.out_size, 8);
        assert_eq!(p.reads[0].access.eval(&[1, 0, 2]), 5);
        assert_eq!(p.writes[0].eval(&[1, 1, 0]), 3);
    }

    #[test]
    fn pointwise_is_segment_gemm() {
        let p = FootprintProblem::pointwise(100, 32, 16, 16);
        assert_eq!(p.domain.extents(), &[100, 1, 2]);
        assert_eq!(p.in_size, 200);
        assert_eq!(p.out_size, 100);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn pointwise_rejects_nondividing_segment() {
        let _ = FootprintProblem::pointwise(10, 30, 16, 16);
    }

    #[test]
    fn conv2d_read_bounds_exclude_padding() {
        let p = FootprintProblem::conv2d(8, 8, 4, 4, 3, 3, 1, 1);
        let read = &p.reads[0];
        // Output pixel (0,0), window tap (0,0) reads input (-1,-1): padding.
        assert!(!read.is_real(&[0, 0, 0, 0]));
        // Window tap (1,1) reads input (0,0): real.
        assert!(read.is_real(&[0, 0, 1, 1]));
    }

    #[test]
    fn conv2d_geometry() {
        let p = FootprintProblem::conv2d(8, 8, 4, 8, 3, 3, 1, 1);
        assert_eq!(p.domain.extents(), &[8, 8, 3, 3]);
        assert_eq!(p.in_size, 8 * 8 * 4);
        assert_eq!(p.out_size, 8 * 8 * 8);
        // stride-2 shrinks output
        let p2 = FootprintProblem::conv2d(8, 8, 4, 8, 3, 3, 2, 1);
        assert_eq!(p2.domain.extents()[0], 4);
    }

    #[test]
    fn solution_span_accounting() {
        // D* >= 0: input plus D extra units, unless output dominates.
        let s = OffsetSolution::from_distance(2, 10, 6);
        assert_eq!(s.used_distance, 2);
        assert_eq!(s.footprint, 12);
        // Output larger than shifted input.
        let s = OffsetSolution::from_distance(1, 4, 10);
        assert_eq!(s.footprint, 10);
        // Negative D*: tensors can simply coexist at max size.
        let s = OffsetSolution::from_distance(-5, 8, 6);
        assert_eq!(s.used_distance, 0);
        assert_eq!(s.footprint, 8);
    }

    #[test]
    fn reduction_fraction() {
        let s = OffsetSolution::from_distance(1, 6, 4);
        // footprint 7 vs disjoint 10 -> 30% reduction (Figure 1c!)
        assert!((s.reduction_vs_disjoint(6, 4) - 0.3).abs() < 1e-12);
    }
}
