//! Multi-layer (fused) footprint problems — §5.2.
//!
//! A fused kernel executes several layer *stages* per iteration instance
//! (e.g. the inverted bottleneck performs pw1 → dw → pw2 → add for every
//! output position). Intermediate tensors live in a fixed workspace; the
//! optimization couples only the *graph input* tensor `In*` and *graph
//! output* tensor `Out*`:
//!
//! ```text
//! min  bIn* − bOut*   s.t. every write to Out* at execution time t never
//!                          clobbers an In* address read at any time ≥ t
//! ```
//!
//! Two equivalent interfaces are provided:
//!
//! * [`FusedProblem`] — stages with affine accesses over a shared fused
//!   iteration domain, solved by lexicographic scan (exact);
//! * [`min_distance_events`] — a raw execution trace of reads/writes, for
//!   schedules that are easier to emit than to express affinely (the
//!   row-buffer inverted-bottleneck pipeline and the generalized fused
//!   chain — `vmcu_plan::fusion` bounds every chain it builds with it).
//!
//! # Examples
//!
//! A streaming copy reads byte `x` then writes byte `x`: each write lands
//! one byte behind the next read, so the output may trail the input by a
//! single byte (`D* = −1`) and the two tensors overlap almost entirely:
//!
//! ```
//! use vmcu_solver::multilayer::{min_distance_events, Event};
//!
//! let events = (0..8).flat_map(|x| [Event::Read(x), Event::Write(x)]);
//! assert_eq!(min_distance_events(events), Some(-1));
//! ```

use crate::problem::{OffsetSolution, ReadAccess};
use vmcu_ir::affine::{IterDomain, LinearAccess};

/// One fused stage: the `In*` reads and `Out*` writes it performs at each
/// iteration instance. Stages execute in index order within an instance.
#[derive(Debug, Clone, Default)]
pub struct FusedStage {
    /// Human-readable stage name (diagnostics only).
    pub name: String,
    /// Reads from the graph input tensor.
    pub reads: Vec<ReadAccess>,
    /// Writes to the graph output tensor.
    pub writes: Vec<LinearAccess>,
}

impl FusedStage {
    /// Creates a named stage.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Adds a read access.
    pub fn read(mut self, r: ReadAccess) -> Self {
        self.reads.push(r);
        self
    }

    /// Adds a write access.
    pub fn write(mut self, w: LinearAccess) -> Self {
        self.writes.push(w);
        self
    }
}

/// A fused multi-layer problem over a shared iteration domain.
#[derive(Debug, Clone)]
pub struct FusedProblem {
    /// Fused iteration domain (instances run in lexicographic order).
    pub domain: IterDomain,
    /// Stages executed per instance, in order.
    pub stages: Vec<FusedStage>,
    /// Graph input size in address units.
    pub in_size: i64,
    /// Graph output size in address units.
    pub out_size: i64,
}

impl FusedProblem {
    /// Computes `D* = min (bIn* − bOut*)` by scanning the execution order
    /// (instances lexicographically, stages in order; reads of a stage
    /// precede its writes).
    ///
    /// Returns `None` when no write precedes any read (unconstrained).
    pub fn min_distance(&self) -> Option<i64> {
        let mut max_write: Option<i64> = None;
        let mut best: Option<i64> = None;
        for point in self.domain.points() {
            for stage in &self.stages {
                for r in &stage.reads {
                    if !r.is_real(&point) {
                        continue;
                    }
                    if let Some(mw) = max_write {
                        let cand = mw - r.access.eval(&point);
                        best = Some(best.map_or(cand, |b| b.max(cand)));
                    }
                }
                for w in &stage.writes {
                    let addr = w.eval(&point);
                    max_write = Some(max_write.map_or(addr, |m| m.max(addr)));
                }
            }
        }
        best
    }

    /// Solves and packages the result.
    pub fn solve(&self) -> OffsetSolution {
        let d = self
            .min_distance()
            .unwrap_or(-(self.in_size + self.out_size));
        OffsetSolution::from_distance(d, self.in_size, self.out_size)
    }
}

/// One event of an execution trace over the graph input/output tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Read of the given input address (address units, tensor-relative).
    Read(i64),
    /// Write of the given output address.
    Write(i64),
}

/// Computes `D* = min (bIn − bOut)` from a raw trace: the maximum over all
/// (write, later-or-equal read) pairs of `write_addr − read_addr`.
///
/// Returns `None` if no write ever precedes a read.
pub fn min_distance_events(events: impl IntoIterator<Item = Event>) -> Option<i64> {
    let mut max_write: Option<i64> = None;
    let mut best: Option<i64> = None;
    for ev in events {
        match ev {
            Event::Write(w) => {
                max_write = Some(max_write.map_or(w, |m| m.max(w)));
            }
            Event::Read(r) => {
                if let Some(mw) = max_write {
                    let cand = mw - r;
                    best = Some(best.map_or(cand, |b| b.max(cand)));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FootprintProblem;

    #[test]
    fn single_stage_fused_equals_single_layer() {
        // A one-stage fused problem must agree with the single-layer
        // solver on GEMM.
        let p = FootprintProblem::gemm(3, 2, 4);
        let fused = FusedProblem {
            domain: p.domain.clone(),
            stages: vec![FusedStage::new("gemm")
                .read(p.reads[0].clone())
                .write(p.writes[0].clone())],
            in_size: p.in_size,
            out_size: p.out_size,
        };
        // Stage order differs from the paper's j <= i convention by the
        // intra-instance read-before-write refinement, which can only
        // lower the distance by the same-instance term.
        let single = crate::enumerate::min_distance(&p).unwrap();
        let multi = fused.min_distance().unwrap();
        assert!(multi <= single);
        assert!(single - multi <= 1);
    }

    #[test]
    fn event_trace_streaming_copy() {
        // A pure streaming copy: read x then write x, for x in 0..n.
        // A write at x precedes the read at x+1: D* = x - (x+1) = -1.
        let n = 10;
        let events = (0..n).flat_map(|x| [Event::Read(x), Event::Write(x)]);
        assert_eq!(min_distance_events(events), Some(-1));
    }

    #[test]
    fn event_trace_reversed_producer() {
        // Writing descending addresses while reading ascending ones forces
        // a large distance: the first write (n-1) must stay clear of the
        // last read (n-1)... which happens after it: D* = (n-1) - 0 ... -
        // actually max over pairs: write n-1 at t=0, later reads 1..n:
        // best = (n-1) - 1.
        let n = 10;
        let mut events = vec![Event::Read(0), Event::Write(n - 1)];
        for x in 1..n {
            events.push(Event::Read(x));
            events.push(Event::Write(n - 1 - x));
        }
        assert_eq!(min_distance_events(events), Some(n - 2));
    }

    #[test]
    fn no_writes_before_reads_is_unconstrained() {
        let events = [Event::Read(0), Event::Read(5), Event::Write(3)];
        assert_eq!(min_distance_events(events), None);
        let fused = FusedProblem {
            domain: IterDomain::new(vec![2]),
            stages: vec![FusedStage::new("read-only")
                .read(ReadAccess::unbounded(LinearAccess::new(vec![1], 0)))],
            in_size: 2,
            out_size: 1,
        };
        assert_eq!(fused.min_distance(), None);
        // Packaged solution falls back to a safely negative distance.
        assert_eq!(fused.solve().used_distance, 0);
    }

    #[test]
    fn residual_add_stage_tightens_distance() {
        // Stage 1 reads ahead (window), stage 2 reads the current element
        // (residual) and writes it. The residual read is the straggler
        // but happens before the same-position write, so overlap remains
        // possible with one position of slack.
        let w = 8;
        let domain = IterDomain::new(vec![w]);
        let window = FusedStage::new("window").read(ReadAccess::bounded(
            LinearAccess::new(vec![1], 1),
            0,
            w - 1,
        ));
        let residual = FusedStage::new("residual")
            .read(ReadAccess::unbounded(LinearAccess::new(vec![1], 0)))
            .write(LinearAccess::new(vec![1], 0));
        let fused = FusedProblem {
            domain,
            stages: vec![window, residual],
            in_size: w,
            out_size: w,
        };
        // write(x) precedes reads at x+1 (window reads x+2, residual reads
        // x+1): max(x - (x+1)) = -1 -> outputs can trail inputs in place.
        assert_eq!(fused.min_distance(), Some(-1));
        assert_eq!(fused.solve().footprint, w);
    }
}
