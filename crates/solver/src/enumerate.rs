//! Exact footprint solver by lexicographic scan.
//!
//! `D* = max_{j ≤lex i} (write(j) − read(i))` is computed in a single pass
//! over the iteration domain: points are visited in lexicographic order
//! while a running maximum of all write addresses seen so far (the prefix
//! `j ≤ i`) is maintained; at each point the candidate
//! `prefix_max_write − min_read(i)` is evaluated. This is `O(|domain|)`
//! rather than the naive `O(|domain|²)`, which keeps it usable as a ground
//! truth even for full-size layers (millions of instances).
//!
//! Padding reads (out-of-bounds per [`crate::ReadAccess::bounds`]) are skipped —
//! the analytic solver treats them conservatively, so `enumerate ≤
//! analytic` on padded problems and `enumerate == analytic` on unpadded
//! ones (property-tested).

use crate::problem::{FootprintProblem, OffsetSolution};

/// Solves the problem exactly by scanning the iteration domain.
///
/// Returns `None` for the degenerate case where no write ever precedes a
/// real read (then any offset is safe and `D*` is `-infinity`; callers use
/// [`OffsetSolution::from_distance`] with a large negative distance).
pub fn min_distance(problem: &FootprintProblem) -> Option<i64> {
    let mut prefix_max_write: Option<i64> = None;
    let mut best: Option<i64> = None;
    for point in problem.domain.points() {
        // Writes of instance `point` join the prefix before its reads are
        // constrained (the paper's j <= i includes j = i).
        for w in &problem.writes {
            let addr = w.eval(&point);
            prefix_max_write = Some(prefix_max_write.map_or(addr, |m| m.max(addr)));
        }
        let Some(max_w) = prefix_max_write else {
            continue;
        };
        for r in &problem.reads {
            if !r.is_real(&point) {
                continue;
            }
            let cand = max_w - r.access.eval(&point);
            best = Some(best.map_or(cand, |b| b.max(cand)));
        }
    }
    best
}

/// Solves and packages the result (distance clamped, span computed).
///
/// Problems whose reads never conflict with any earlier write yield a
/// solution with `min_distance` equal to `-(in_size + out_size)` (an
/// arbitrarily safe distance).
pub fn solve(problem: &FootprintProblem) -> OffsetSolution {
    let d = min_distance(problem).unwrap_or(-(problem.in_size + problem.out_size));
    OffsetSolution::from_distance(d, problem.in_size, problem.out_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FootprintProblem;

    #[test]
    fn figure_1c_fully_connected_example() {
        // M=2, K=3, N=2: 6 input segments, 4 output segments; paper needs
        // 7 total (one empty segment ahead of the input).
        let p = FootprintProblem::gemm(2, 2, 3);
        let sol = solve(&p);
        assert_eq!(sol.min_distance, 1);
        assert_eq!(sol.footprint, 7);
    }

    #[test]
    fn paper_gemm_closed_form_n_le_k() {
        // N <= K: footprint = M*K + N - 1
        for (m, n, k) in [(3, 2, 4), (5, 3, 3), (1, 1, 1), (4, 1, 7)] {
            let sol = solve(&FootprintProblem::gemm(m, n, k));
            assert_eq!(sol.footprint, m * k + n - 1, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn paper_gemm_closed_form_n_gt_k() {
        // N > K: footprint = M*N + K - 1
        for (m, n, k) in [(2, 3, 2), (3, 5, 2), (4, 4, 1)] {
            let sol = solve(&FootprintProblem::gemm(m, n, k));
            assert_eq!(sol.footprint, m * n + k - 1, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn pointwise_matches_gemm_reduction() {
        // 16 in / 16 out channels, seg 16: 1 seg per pixel each way:
        // footprint = pixels + 1 - 1 = pixels segments.
        let sol = solve(&FootprintProblem::pointwise(100, 16, 16, 16));
        assert_eq!(sol.footprint, 100);
    }

    #[test]
    fn conv2d_padding_reads_are_ignored() {
        // A 1x1-input conv with huge padding: all window reads except the
        // center are padding; D* must come from the center tap only.
        let p = FootprintProblem::conv2d(4, 4, 2, 2, 3, 3, 1, 1);
        let sol = solve(&p);
        // Writes trail reads by at most ~one row of pixels.
        assert!(sol.min_distance > 0);
        assert!(sol.footprint < p.in_size + p.out_size);
    }

    #[test]
    fn stride_two_conv_needs_no_extra_space_beyond_input() {
        // Stride 2 halves the output; input is consumed twice as fast as
        // output is produced, so overlap is easy.
        let p = FootprintProblem::conv2d(8, 8, 4, 4, 3, 3, 2, 1);
        let sol = solve(&p);
        assert!(sol.footprint <= p.in_size + p.out_size / 2);
    }
}
