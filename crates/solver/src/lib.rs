//! # vmcu-solver — segment-level memory footprint optimization
//!
//! Implements §4 ("Segment-level Memory Management") and the §5.2
//! multi-layer generalization of vMCU (MLSys 2024): given a kernel's
//! iteration domain and affine input/output accesses, compute the minimal
//! safe distance `D* = min (bIn − bOut)` between the input and output base
//! pointers in the circular segment pool, and from it the minimal peak
//! footprint.
//!
//! Three independent solvers cross-check each other:
//!
//! * [`enumerate`] — exact `O(|domain|)` lexicographic scan (ground truth);
//! * [`analytic`] — exact closed form via lex case decomposition,
//!   `O(d²)` per access pair (conservative under padding);
//! * [`closed_form`] — the paper's GEMM formulas and §5.3 segment-size
//!   rules as fast paths.
//!
//! [`multilayer`] solves fused multi-stage problems (inverted bottleneck)
//! either from affine stage descriptions or from raw execution traces.
//!
//! # Examples
//!
//! The worked example of Figure 1(c)/Figure 3 — a fully-connected layer
//! with `M=2, K=3, N=2` needs 7 segments instead of 10:
//!
//! ```
//! use vmcu_solver::{analytic, problem::FootprintProblem};
//!
//! let problem = FootprintProblem::gemm(2, 2, 3);
//! let solution = analytic::solve(&problem);
//! assert_eq!(solution.min_distance, 1); // one empty segment ahead
//! assert_eq!(solution.footprint, 7);    // vs 6 + 4 = 10 disjoint
//! ```

pub mod analytic;
pub mod closed_form;
pub mod enumerate;
pub mod multilayer;
pub mod problem;

pub use multilayer::{Event, FusedProblem, FusedStage};
pub use problem::{FootprintProblem, OffsetSolution, ReadAccess};
