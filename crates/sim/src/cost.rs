//! Instruction-class cost model for Cortex-M cores.
//!
//! Absolute cycle counts on real silicon depend on flash wait states,
//! bus arbitration, and compiler quality; this model instead captures the
//! *relative* costs the paper's evaluation hinges on:
//!
//! * int8 MACs execute through packed SIMD (`SXTB16` + `SMLAD`,
//!   2 MACs/instruction) — faster on the dual-issue M7;
//! * partially-unrolled inner loops (TinyEngine unrolls to a fixed depth
//!   of 16) pay a per-MAC pipeline-stall penalty that fully-unrolled vMCU
//!   loops avoid (§7.2);
//! * every segment load/store in vMCU pays one address-modulo operation
//!   (circular buffer boundary check, §5.3);
//! * im2col pre-processing is pure RAM-to-RAM copy traffic.
//!
//! All fractional costs use ×100 fixed point to keep the simulator purely
//! integral and deterministic.

/// Packed-SIMD dot-product capability of a core.
///
/// `mac_cycles_x100` already prices a MAC issued at the core's *native*
/// lane width (the `SXTB16`+`SMLAD` pairing on DSP-capable cores); this
/// descriptor makes that width explicit so kernels can be priced at
/// *other* widths — most importantly the scalar (`lanes = 1`) lowering a
/// capability-unaware compiler would emit, which pays `lanes`× the
/// native per-MAC cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimdCapability {
    /// int8 MAC lanes per multiply-accumulate instruction: 1 on scalar
    /// M0-class cores, 2 with the DSP extension (`SMLAD`), 4 on
    /// MVE-class (Helium) cores.
    pub lanes: u64,
    /// Fixed register-packing setup cycles per vectorized dot-tile
    /// invocation (`SXTB16` widening, predication setup). Charged by the
    /// im2col/matmul lowering per tile, not per MAC — the native direct
    /// kernels fold steady-state packing into `mac_cycles_x100`.
    pub packing_cycles: u64,
}

impl SimdCapability {
    /// Scalar capability: one MAC per instruction, nothing to pack.
    pub fn scalar() -> Self {
        Self {
            lanes: 1,
            packing_cycles: 0,
        }
    }
}

/// Per-operation cycle costs (fixed point: `_x100` fields are cycles×100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Cycles ×100 per 8-bit MAC in a fully unrolled packed-SIMD loop
    /// *at the native lane width* ([`SimdCapability::lanes`]).
    pub mac_cycles_x100: u64,
    /// Extra multiplier ×100 applied to MAC cycles when the inner loop is
    /// only partially unrolled (pipeline stalls + loop upkeep); `100`
    /// means no penalty.
    pub partial_unroll_penalty_x100: u64,
    /// Cycles ×100 per byte moved between RAM and registers (memcpy-style
    /// word copies).
    pub ram_byte_cycles_x100: u64,
    /// Cycles ×100 per byte read from Flash (includes wait states
    /// amortized by prefetch).
    pub flash_byte_cycles_x100: u64,
    /// Cycles ×100 per byte *programmed* into Flash. Writing NOR flash is
    /// orders of magnitude slower than reading it (erase + word-program
    /// sequences through the flash controller), which is what makes
    /// hot-swapping a model image onto a device a priceable decision
    /// rather than a free one.
    pub flash_write_byte_cycles_x100: u64,
    /// Cycles per address modulo (circular-buffer boundary check).
    pub modulo_cycles: u64,
    /// Cycles per taken branch.
    pub branch_cycles: u64,
    /// Cycles of fixed overhead per intrinsic call (address setup).
    pub call_overhead_cycles: u64,
    /// Cycles ×100 per element of the requantization epilogue
    /// (multiply-high + rounding shift + saturate).
    pub requant_cycles_x100: u64,
    /// Packed-SIMD dot-product capability.
    pub simd: SimdCapability,
}

impl CostModel {
    /// Cortex-M4 cost model (single-issue, DSP extension).
    pub fn cortex_m4() -> Self {
        Self {
            mac_cycles_x100: 100,             // SMLAD 1/cycle, packing overhead folded in
            partial_unroll_penalty_x100: 150, // stalls every unroll boundary
            ram_byte_cycles_x100: 50,         // ~2 cycles per 32-bit word
            flash_byte_cycles_x100: 75,       // ART accelerator hides most waits
            flash_write_byte_cycles_x100: 40_000, // erase+program, ~4µs/byte at 100MHz
            modulo_cycles: 3,
            branch_cycles: 3,
            call_overhead_cycles: 6,
            requant_cycles_x100: 300,
            simd: SimdCapability {
                lanes: 2, // SXTB16 + SMLAD: two int8 MACs per instruction
                packing_cycles: 2,
            },
        }
    }

    /// Cortex-M7 cost model (dual-issue, faster buses).
    pub fn cortex_m7() -> Self {
        Self {
            mac_cycles_x100: 55,
            partial_unroll_penalty_x100: 165, // dual-issue pipeline suffers more from short dependent chains
            ram_byte_cycles_x100: 30,
            flash_byte_cycles_x100: 55,
            flash_write_byte_cycles_x100: 30_000, // wider program words, faster controller
            modulo_cycles: 2,
            branch_cycles: 2,
            call_overhead_cycles: 5,
            requant_cycles_x100: 300,
            simd: SimdCapability {
                lanes: 2,
                packing_cycles: 1, // dual-issue hides half the widening
            },
        }
    }

    /// Cortex-M0+-class cost model (no DSP extension: scalar MACs, slow
    /// single-cycle-bus memories). The capability floor of the hardware
    /// landscape — every MAC is a `LDRB`/`MUL`/`ADD` sequence.
    pub fn cortex_m0() -> Self {
        Self {
            mac_cycles_x100: 400, // scalar widen+mul+add, no dual-issue
            partial_unroll_penalty_x100: 140,
            ram_byte_cycles_x100: 75,
            flash_byte_cycles_x100: 100,
            flash_write_byte_cycles_x100: 50_000, // byte-wide programming, busy-wait per word
            modulo_cycles: 4,
            branch_cycles: 4,
            call_overhead_cycles: 8,
            requant_cycles_x100: 500, // no SSAT, branchy saturation
            simd: SimdCapability::scalar(),
        }
    }

    /// Cortex-M55-class cost model (Helium/MVE: quad int8 lanes,
    /// low-overhead loops).
    pub fn cortex_m55() -> Self {
        Self {
            mac_cycles_x100: 30,              // VMLADAVA: 4 int8 MACs per beat-pair
            partial_unroll_penalty_x100: 120, // LE/LETP loops stall little
            ram_byte_cycles_x100: 25,
            flash_byte_cycles_x100: 40,
            flash_write_byte_cycles_x100: 20_000, // row-buffer programming
            modulo_cycles: 2,
            branch_cycles: 1,
            call_overhead_cycles: 4,
            requant_cycles_x100: 200, // VQRDMULH + VQSHRNB vectorize it
            simd: SimdCapability {
                lanes: 4,
                packing_cycles: 1,
            },
        }
    }

    /// Cycles for `n` MACs; `fully_unrolled` selects whether the stall
    /// penalty applies.
    pub fn mac_cost(&self, n: u64, fully_unrolled: bool) -> u64 {
        let base = n * self.mac_cycles_x100;
        let scaled = if fully_unrolled {
            base
        } else {
            base * self.partial_unroll_penalty_x100 / 100
        };
        scaled.div_ceil(100)
    }

    /// Cycles for `n` MACs issued at `lanes_used` lanes per instruction
    /// instead of the native width: an under-filled MAC instruction still
    /// retires in the same time, so per-MAC cost scales by
    /// `native_lanes / lanes_used`. At the native width this is exactly
    /// [`CostModel::mac_cost`] (same rounding, bit for bit).
    pub fn mac_cost_lanes(&self, n: u64, fully_unrolled: bool, lanes_used: u64) -> u64 {
        let lanes_used = lanes_used.max(1).min(self.simd.lanes);
        if lanes_used == self.simd.lanes {
            return self.mac_cost(n, fully_unrolled);
        }
        let base = n * self.mac_cycles_x100 * self.simd.lanes / lanes_used;
        let scaled = if fully_unrolled {
            base
        } else {
            base * self.partial_unroll_penalty_x100 / 100
        };
        scaled.div_ceil(100)
    }

    /// Cycles for an `n`-element requantization epilogue.
    pub fn requant_cost(&self, n: u64) -> u64 {
        (n * self.requant_cycles_x100).div_ceil(100)
    }

    /// Cycles to move `n` bytes between RAM and registers.
    pub fn ram_move_cost(&self, n: u64) -> u64 {
        (n * self.ram_byte_cycles_x100).div_ceil(100)
    }

    /// Cycles to read `n` bytes from Flash.
    pub fn flash_read_cost(&self, n: u64) -> u64 {
        (n * self.flash_byte_cycles_x100).div_ceil(100)
    }

    /// Cycles to *program* `n` bytes into Flash (staging a model image).
    ///
    /// This is the simulated price of a model hot-swap: re-staging a
    /// deployment's weights onto a device charges
    /// `flash_write_cost(image_bytes)` cycles of device time, hundreds of
    /// times the cost of reading the same bytes back.
    pub fn flash_write_cost(&self, n: u64) -> u64 {
        (n * self.flash_write_byte_cycles_x100).div_ceil(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m7_is_faster_per_mac_than_m4() {
        let m4 = CostModel::cortex_m4();
        let m7 = CostModel::cortex_m7();
        assert!(m7.mac_cost(1000, true) < m4.mac_cost(1000, true));
    }

    #[test]
    fn partial_unroll_costs_more() {
        let m = CostModel::cortex_m4();
        assert!(m.mac_cost(1000, false) > m.mac_cost(1000, true));
        // penalty is multiplicative: 50% here
        assert_eq!(m.mac_cost(1000, false), 1500);
    }

    #[test]
    fn move_costs_round_up() {
        let m = CostModel::cortex_m4();
        assert_eq!(m.ram_move_cost(1), 1); // 0.5 cycles rounds up
        assert_eq!(m.ram_move_cost(8), 4);
        assert_eq!(m.flash_read_cost(4), 3);
    }

    #[test]
    fn zero_work_is_free() {
        let m = CostModel::cortex_m7();
        assert_eq!(m.mac_cost(0, false), 0);
        assert_eq!(m.ram_move_cost(0), 0);
        assert_eq!(m.flash_read_cost(0), 0);
        assert_eq!(m.mac_cost_lanes(0, true, 1), 0);
        assert_eq!(m.requant_cost(0), 0);
    }

    #[test]
    fn native_lanes_price_identically_to_mac_cost() {
        // The lane-aware path must not perturb existing numbers: at the
        // native width it *is* mac_cost, including the div_ceil rounding.
        for m in [
            CostModel::cortex_m4(),
            CostModel::cortex_m7(),
            CostModel::cortex_m0(),
            CostModel::cortex_m55(),
        ] {
            for n in [0u64, 1, 7, 24, 216, 1000] {
                for unrolled in [true, false] {
                    assert_eq!(
                        m.mac_cost_lanes(n, unrolled, m.simd.lanes),
                        m.mac_cost(n, unrolled)
                    );
                }
            }
        }
    }

    #[test]
    fn scalar_lowering_pays_the_lane_ratio() {
        // Filling one of two SMLAD lanes doubles per-MAC cost on M4/M7.
        let m4 = CostModel::cortex_m4();
        assert_eq!(
            m4.mac_cost_lanes(1000, true, 1),
            2 * m4.mac_cost(1000, true)
        );
        let m7 = CostModel::cortex_m7();
        assert_eq!(
            m7.mac_cost_lanes(1000, true, 1),
            2 * m7.mac_cost(1000, true)
        );
        // A quad-lane core pays 4x for scalar code, 2x for pairwise code.
        let m55 = CostModel::cortex_m55();
        assert_eq!(
            m55.mac_cost_lanes(1000, true, 1),
            4 * m55.mac_cost(1000, true)
        );
        assert_eq!(
            m55.mac_cost_lanes(1000, true, 2),
            2 * m55.mac_cost(1000, true)
        );
    }

    #[test]
    fn lanes_clamp_to_the_capability() {
        // Claiming more lanes than the hardware has cannot price below
        // native, and lanes = 0 is treated as scalar.
        let m4 = CostModel::cortex_m4();
        assert_eq!(m4.mac_cost_lanes(100, true, 8), m4.mac_cost(100, true));
        assert_eq!(
            m4.mac_cost_lanes(100, true, 0),
            m4.mac_cost_lanes(100, true, 1)
        );
        let m0 = CostModel::cortex_m0();
        assert_eq!(m0.simd.lanes, 1);
        assert_eq!(m0.mac_cost_lanes(100, true, 4), m0.mac_cost(100, true));
    }

    #[test]
    fn requant_cost_matches_the_historic_constant_on_m4_m7() {
        // The epilogue used to be a free constant of 3 cycles/element in
        // the kernels crate; folding it into the model must not move
        // existing devices.
        for m in [CostModel::cortex_m4(), CostModel::cortex_m7()] {
            for n in [1u64, 4, 17, 256] {
                assert_eq!(m.requant_cost(n), 3 * n);
            }
        }
        assert_eq!(CostModel::cortex_m0().requant_cost(4), 20);
        assert_eq!(CostModel::cortex_m55().requant_cost(4), 8);
    }

    #[test]
    fn flash_writes_dwarf_flash_reads() {
        // Programming flash must cost orders of magnitude more than
        // reading it on every core, or hot-swap decisions are free.
        for m in [
            CostModel::cortex_m4(),
            CostModel::cortex_m7(),
            CostModel::cortex_m0(),
            CostModel::cortex_m55(),
        ] {
            assert!(m.flash_write_cost(1024) >= 100 * m.flash_read_cost(1024));
        }
        // M4: 400 cycles/byte, rounding up.
        let m4 = CostModel::cortex_m4();
        assert_eq!(m4.flash_write_cost(1), 400);
        assert_eq!(m4.flash_write_cost(0), 0);
    }

    #[test]
    fn capability_ladder_is_ordered() {
        let per_mac = |m: CostModel| m.mac_cost(10_000, true);
        assert!(per_mac(CostModel::cortex_m0()) > per_mac(CostModel::cortex_m4()));
        assert!(per_mac(CostModel::cortex_m4()) > per_mac(CostModel::cortex_m7()));
        assert!(per_mac(CostModel::cortex_m7()) > per_mac(CostModel::cortex_m55()));
        assert_eq!(CostModel::cortex_m0().simd.lanes, 1);
        assert_eq!(CostModel::cortex_m55().simd.lanes, 4);
    }
}
