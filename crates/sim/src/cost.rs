//! Instruction-class cost model for Cortex-M cores.
//!
//! Absolute cycle counts on real silicon depend on flash wait states,
//! bus arbitration, and compiler quality; this model instead captures the
//! *relative* costs the paper's evaluation hinges on:
//!
//! * int8 MACs execute through packed SIMD (`SXTB16` + `SMLAD`,
//!   2 MACs/instruction) — faster on the dual-issue M7;
//! * partially-unrolled inner loops (TinyEngine unrolls to a fixed depth
//!   of 16) pay a per-MAC pipeline-stall penalty that fully-unrolled vMCU
//!   loops avoid (§7.2);
//! * every segment load/store in vMCU pays one address-modulo operation
//!   (circular buffer boundary check, §5.3);
//! * im2col pre-processing is pure RAM-to-RAM copy traffic.
//!
//! All fractional costs use ×100 fixed point to keep the simulator purely
//! integral and deterministic.

/// Per-operation cycle costs (fixed point: `_x100` fields are cycles×100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Cycles ×100 per 8-bit MAC in a fully unrolled packed-SIMD loop.
    pub mac_cycles_x100: u64,
    /// Extra multiplier ×100 applied to MAC cycles when the inner loop is
    /// only partially unrolled (pipeline stalls + loop upkeep); `100`
    /// means no penalty.
    pub partial_unroll_penalty_x100: u64,
    /// Cycles ×100 per byte moved between RAM and registers (memcpy-style
    /// word copies).
    pub ram_byte_cycles_x100: u64,
    /// Cycles ×100 per byte read from Flash (includes wait states
    /// amortized by prefetch).
    pub flash_byte_cycles_x100: u64,
    /// Cycles per address modulo (circular-buffer boundary check).
    pub modulo_cycles: u64,
    /// Cycles per taken branch.
    pub branch_cycles: u64,
    /// Cycles of fixed overhead per intrinsic call (address setup).
    pub call_overhead_cycles: u64,
}

impl CostModel {
    /// Cortex-M4 cost model (single-issue, DSP extension).
    pub fn cortex_m4() -> Self {
        Self {
            mac_cycles_x100: 100,             // SMLAD 1/cycle, packing overhead folded in
            partial_unroll_penalty_x100: 150, // stalls every unroll boundary
            ram_byte_cycles_x100: 50,         // ~2 cycles per 32-bit word
            flash_byte_cycles_x100: 75,       // ART accelerator hides most waits
            modulo_cycles: 3,
            branch_cycles: 3,
            call_overhead_cycles: 6,
        }
    }

    /// Cortex-M7 cost model (dual-issue, faster buses).
    pub fn cortex_m7() -> Self {
        Self {
            mac_cycles_x100: 55,
            partial_unroll_penalty_x100: 165, // dual-issue pipeline suffers more from short dependent chains
            ram_byte_cycles_x100: 30,
            flash_byte_cycles_x100: 55,
            modulo_cycles: 2,
            branch_cycles: 2,
            call_overhead_cycles: 5,
        }
    }

    /// Cycles for `n` MACs; `fully_unrolled` selects whether the stall
    /// penalty applies.
    pub fn mac_cost(&self, n: u64, fully_unrolled: bool) -> u64 {
        let base = n * self.mac_cycles_x100;
        let scaled = if fully_unrolled {
            base
        } else {
            base * self.partial_unroll_penalty_x100 / 100
        };
        scaled.div_ceil(100)
    }

    /// Cycles to move `n` bytes between RAM and registers.
    pub fn ram_move_cost(&self, n: u64) -> u64 {
        (n * self.ram_byte_cycles_x100).div_ceil(100)
    }

    /// Cycles to read `n` bytes from Flash.
    pub fn flash_read_cost(&self, n: u64) -> u64 {
        (n * self.flash_byte_cycles_x100).div_ceil(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m7_is_faster_per_mac_than_m4() {
        let m4 = CostModel::cortex_m4();
        let m7 = CostModel::cortex_m7();
        assert!(m7.mac_cost(1000, true) < m4.mac_cost(1000, true));
    }

    #[test]
    fn partial_unroll_costs_more() {
        let m = CostModel::cortex_m4();
        assert!(m.mac_cost(1000, false) > m.mac_cost(1000, true));
        // penalty is multiplicative: 50% here
        assert_eq!(m.mac_cost(1000, false), 1500);
    }

    #[test]
    fn move_costs_round_up() {
        let m = CostModel::cortex_m4();
        assert_eq!(m.ram_move_cost(1), 1); // 0.5 cycles rounds up
        assert_eq!(m.ram_move_cost(8), 4);
        assert_eq!(m.flash_read_cost(4), 3);
    }

    #[test]
    fn zero_work_is_free() {
        let m = CostModel::cortex_m7();
        assert_eq!(m.mac_cost(0, false), 0);
        assert_eq!(m.ram_move_cost(0), 0);
        assert_eq!(m.flash_read_cost(0), 0);
    }
}
