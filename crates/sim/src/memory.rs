//! Simulated MCU memories.
//!
//! An MCU has no MMU and no OS (§2.1): programs address raw SRAM and
//! execute/read constants from Flash. [`Ram`] and [`Flash`] are
//! bounds-checked byte arrays; all higher layers (segment pool, kernels)
//! go through them, so out-of-range addressing is a typed error rather
//! than silent corruption.

use std::fmt;

/// Memory access failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemError {
    /// Access past the end of RAM.
    RamOutOfRange {
        /// First byte of the access.
        addr: usize,
        /// Length of the access.
        len: usize,
        /// RAM capacity.
        capacity: usize,
    },
    /// Access past the end of Flash.
    FlashOutOfRange {
        /// First byte of the access.
        addr: usize,
        /// Length of the access.
        len: usize,
        /// Flash capacity.
        capacity: usize,
    },
    /// A store hit a byte the shadow liveness map says is still live.
    ///
    /// Only raised by builds with the `shadow` feature; the variant exists
    /// unconditionally so downstream matches do not change shape with the
    /// feature set.
    ShadowClobber {
        /// First live byte the store would overwrite.
        addr: usize,
        /// Number of live bytes inside the store range.
        len: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::RamOutOfRange {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "RAM access [{addr}, {}) exceeds capacity {capacity}",
                addr + len
            ),
            MemError::FlashOutOfRange {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "flash access [{addr}, {}) exceeds capacity {capacity}",
                addr + len
            ),
            MemError::ShadowClobber { addr, len } => write!(
                f,
                "shadow liveness: store overwrites {len} live byte(s) starting at RAM {addr}"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// Simulated SRAM.
///
/// With the `shadow` feature, RAM additionally carries a per-byte
/// liveness map mirrored from the segment pool: every store first checks
/// that no target byte is still live, so an executor that drifts from its
/// certified plan (double store, store before free) is caught at the
/// memory layer even when pool-level checking is disabled.
#[derive(Debug, Clone)]
pub struct Ram {
    data: Vec<u8>,
    #[cfg(feature = "shadow")]
    live: Vec<bool>,
}

impl Ram {
    /// Allocates `capacity` zeroed bytes of RAM.
    pub fn new(capacity: usize) -> Self {
        Self {
            data: vec![0; capacity],
            #[cfg(feature = "shadow")]
            live: vec![false; capacity],
        }
    }

    /// RAM capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    fn check(&self, addr: usize, len: usize) -> Result<(), MemError> {
        if addr
            .checked_add(len)
            .is_some_and(|end| end <= self.data.len())
        {
            Ok(())
        } else {
            Err(MemError::RamOutOfRange {
                addr,
                len,
                capacity: self.data.len(),
            })
        }
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RamOutOfRange`] when the range exceeds capacity.
    pub fn read(&self, addr: usize, len: usize) -> Result<&[u8], MemError> {
        self.check(addr, len)?;
        Ok(&self.data[addr..addr + len])
    }

    /// Writes `bytes` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RamOutOfRange`] when the range exceeds
    /// capacity, or (under the `shadow` feature) [`MemError::ShadowClobber`]
    /// when a target byte is still live in the shadow map.
    pub fn write(&mut self, addr: usize, bytes: &[u8]) -> Result<(), MemError> {
        self.check(addr, bytes.len())?;
        #[cfg(feature = "shadow")]
        self.shadow_check(addr, bytes.len())?;
        self.data[addr..addr + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Fills `len` bytes at `addr` with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RamOutOfRange`] when the range exceeds
    /// capacity, or (under the `shadow` feature) [`MemError::ShadowClobber`]
    /// when a target byte is still live in the shadow map.
    pub fn fill(&mut self, addr: usize, len: usize, value: u8) -> Result<(), MemError> {
        self.check(addr, len)?;
        #[cfg(feature = "shadow")]
        self.shadow_check(addr, len)?;
        self.data[addr..addr + len].fill(value);
        Ok(())
    }

    /// Zeroes all of RAM in place, keeping the allocation. A cleared RAM
    /// is indistinguishable from a freshly booted one, which lets a
    /// long-lived worker reuse its simulated SRAM across inferences.
    pub fn clear(&mut self) {
        self.data.fill(0);
        #[cfg(feature = "shadow")]
        self.live.fill(false);
    }

    #[cfg(feature = "shadow")]
    fn shadow_check(&self, addr: usize, len: usize) -> Result<(), MemError> {
        let mut first = None;
        let mut count = 0usize;
        for (i, &l) in self.live[addr..addr + len].iter().enumerate() {
            if l {
                first.get_or_insert(addr + i);
                count += 1;
            }
        }
        match first {
            Some(a) => Err(MemError::ShadowClobber {
                addr: a,
                len: count,
            }),
            None => Ok(()),
        }
    }

    /// Marks `[addr, addr + len)` live in the shadow map (pool mirror;
    /// called after a pool store or host fill).
    #[cfg(feature = "shadow")]
    pub fn shadow_mark_live(&mut self, addr: usize, len: usize) {
        let end = (addr + len).min(self.live.len());
        for b in &mut self.live[addr.min(end)..end] {
            *b = true;
        }
    }

    /// Marks `[addr, addr + len)` dead in the shadow map (pool mirror;
    /// called when the pool frees those bytes).
    #[cfg(feature = "shadow")]
    pub fn shadow_mark_dead(&mut self, addr: usize, len: usize) {
        let end = (addr + len).min(self.live.len());
        for b in &mut self.live[addr.min(end)..end] {
            *b = false;
        }
    }

    /// Number of bytes currently live in the shadow map.
    #[cfg(feature = "shadow")]
    pub fn shadow_live_bytes(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }
}

/// Simulated Flash: written once while building the firmware image,
/// read-only afterwards (weights live here; §4 excludes them from RAM
/// management).
#[derive(Debug, Clone)]
pub struct Flash {
    data: Vec<u8>,
    len_used: usize,
}

impl Flash {
    /// Allocates `capacity` bytes of erased (0xFF) flash.
    pub fn new(capacity: usize) -> Self {
        Self {
            data: vec![0xFF; capacity],
            len_used: 0,
        }
    }

    /// Flash capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes consumed by programmed images.
    pub fn used(&self) -> usize {
        self.len_used
    }

    /// Appends an image to flash, returning its base address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::FlashOutOfRange`] when the image does not fit.
    pub fn program(&mut self, bytes: &[u8]) -> Result<usize, MemError> {
        let addr = self.len_used;
        if addr + bytes.len() > self.data.len() {
            return Err(MemError::FlashOutOfRange {
                addr,
                len: bytes.len(),
                capacity: self.data.len(),
            });
        }
        self.data[addr..addr + bytes.len()].copy_from_slice(bytes);
        self.len_used += bytes.len();
        Ok(addr)
    }

    /// Erases all programmed images, returning the flash to its erased
    /// (0xFF) state without reallocating. Only the used prefix is
    /// rewritten, so re-deploying small firmware images on a large flash
    /// stays cheap.
    pub fn reset(&mut self) {
        self.data[..self.len_used].fill(0xFF);
        self.len_used = 0;
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::FlashOutOfRange`] when the range exceeds
    /// capacity.
    pub fn read(&self, addr: usize, len: usize) -> Result<&[u8], MemError> {
        if addr
            .checked_add(len)
            .is_some_and(|end| end <= self.data.len())
        {
            Ok(&self.data[addr..addr + len])
        } else {
            Err(MemError::FlashOutOfRange {
                addr,
                len,
                capacity: self.data.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_round_trip() {
        let mut ram = Ram::new(64);
        ram.write(10, &[1, 2, 3]).unwrap();
        assert_eq!(ram.read(10, 3).unwrap(), &[1, 2, 3]);
        assert_eq!(ram.read(9, 1).unwrap(), &[0]);
    }

    #[test]
    fn ram_bounds_are_enforced() {
        let mut ram = Ram::new(16);
        assert!(matches!(
            ram.write(15, &[0, 0]),
            Err(MemError::RamOutOfRange {
                addr: 15,
                len: 2,
                capacity: 16
            })
        ));
        assert!(ram.read(16, 1).is_err());
        assert!(ram.read(usize::MAX, 2).is_err()); // overflow-safe
        assert!(ram.read(16, 0).is_ok()); // empty access at end is fine
    }

    #[test]
    fn ram_fill() {
        let mut ram = Ram::new(8);
        ram.fill(2, 4, 0xAB).unwrap();
        assert_eq!(
            ram.read(0, 8).unwrap(),
            &[0, 0, 0xAB, 0xAB, 0xAB, 0xAB, 0, 0]
        );
        assert!(ram.fill(6, 4, 0).is_err());
    }

    #[test]
    fn ram_clear_restores_boot_state() {
        let mut ram = Ram::new(32);
        ram.write(5, &[9; 10]).unwrap();
        ram.clear();
        assert_eq!(ram.read(0, 32).unwrap(), &[0; 32]);
        assert_eq!(ram.capacity(), 32);
    }

    #[test]
    fn flash_reset_erases_and_allows_reprogramming() {
        let mut flash = Flash::new(8);
        flash.program(&[1, 2, 3, 4, 5, 6]).unwrap();
        flash.reset();
        assert_eq!(flash.used(), 0);
        assert_eq!(flash.read(0, 8).unwrap(), &[0xFF; 8]);
        // The full capacity is available again after a reset.
        assert_eq!(flash.program(&[7; 8]).unwrap(), 0);
    }

    #[test]
    fn flash_programs_sequentially() {
        let mut flash = Flash::new(32);
        let a = flash.program(&[1, 2, 3]).unwrap();
        let b = flash.program(&[4, 5]).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 3);
        assert_eq!(flash.used(), 5);
        assert_eq!(flash.read(3, 2).unwrap(), &[4, 5]);
    }

    #[test]
    fn flash_capacity_enforced() {
        let mut flash = Flash::new(4);
        flash.program(&[0; 3]).unwrap();
        assert!(flash.program(&[0; 2]).is_err());
        assert!(flash.read(3, 2).is_err());
    }

    #[test]
    fn erased_flash_reads_ff() {
        let flash = Flash::new(4);
        assert_eq!(flash.read(0, 4).unwrap(), &[0xFF; 4]);
    }

    #[cfg(feature = "shadow")]
    #[test]
    fn shadow_catches_store_over_live_bytes() {
        let mut ram = Ram::new(16);
        ram.write(4, &[1, 2, 3, 4]).unwrap();
        ram.shadow_mark_live(4, 4);
        assert_eq!(ram.shadow_live_bytes(), 4);
        // Overlapping store: bytes 6..8 are live.
        assert_eq!(
            ram.write(6, &[9, 9, 9]),
            Err(MemError::ShadowClobber { addr: 6, len: 2 })
        );
        assert!(ram.fill(4, 2, 0).is_err());
        // Freeing the bytes makes the store legal again.
        ram.shadow_mark_dead(4, 4);
        ram.write(6, &[9, 9, 9]).unwrap();
    }

    #[cfg(feature = "shadow")]
    #[test]
    fn shadow_map_resets_with_clear() {
        let mut ram = Ram::new(8);
        ram.shadow_mark_live(0, 8);
        ram.clear();
        assert_eq!(ram.shadow_live_bytes(), 0);
        ram.write(0, &[1; 8]).unwrap();
    }

    #[test]
    fn error_messages_mention_ranges() {
        let e = MemError::RamOutOfRange {
            addr: 8,
            len: 4,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.contains('8') && s.contains("10"));
    }
}
