//! Device models for the evaluation platforms (§7.1) and the Table 1
//! hardware-landscape comparison.

use crate::cost::CostModel;
use crate::energy::EnergyModel;
use std::fmt;

/// Processor core of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Core {
    /// ARM Cortex-M0+ (scalar, no DSP extension).
    CortexM0Plus,
    /// ARM Cortex-M4 (single-issue, DSP extension).
    CortexM4,
    /// ARM Cortex-M7 (dual-issue, DSP extension).
    CortexM7,
    /// ARM Cortex-M55 (Helium/MVE vector extension).
    CortexM55,
}

impl fmt::Display for Core {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Core::CortexM0Plus => f.write_str("Cortex-M0+"),
            Core::CortexM4 => f.write_str("Cortex-M4"),
            Core::CortexM7 => f.write_str("Cortex-M7"),
            Core::CortexM55 => f.write_str("Cortex-M55"),
        }
    }
}

/// A concrete MCU target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Device {
    /// Marketing name.
    pub name: String,
    /// Core kind.
    pub core: Core,
    /// SRAM capacity in bytes.
    pub ram_bytes: usize,
    /// Flash capacity in bytes.
    pub flash_bytes: usize,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// RAM permanently consumed by the runtime (stack, libc, vector
    /// table). On-device measurements include it; set to 0 for pure
    /// algorithmic footprints.
    pub runtime_overhead_bytes: usize,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Energy model.
    pub energy: EnergyModel,
    /// SIMD dot-product lane setup: reduction length of one `Dot`
    /// micro-kernel invocation (the paper's 2×2×16 fixed-size matmul).
    pub dot_ki: usize,
    /// Output lanes of one `Dot` invocation.
    pub dot_ni: usize,
}

impl Device {
    /// STM32-F411RE: Cortex-M4, 128 KB RAM, 512 KB Flash, 100 MHz.
    pub fn stm32_f411re() -> Self {
        Self {
            name: "STM32-F411RE".to_owned(),
            core: Core::CortexM4,
            ram_bytes: 128 * 1024,
            flash_bytes: 512 * 1024,
            clock_hz: 100_000_000,
            runtime_overhead_bytes: 4 * 1024,
            cost: CostModel::cortex_m4(),
            energy: EnergyModel::stm32_f4(),
            dot_ki: 16,
            dot_ni: 2,
        }
    }

    /// STM32-F767ZI: Cortex-M7, 512 KB RAM, 2 MB Flash, 216 MHz.
    pub fn stm32_f767zi() -> Self {
        Self {
            name: "STM32-F767ZI".to_owned(),
            core: Core::CortexM7,
            ram_bytes: 512 * 1024,
            flash_bytes: 2 * 1024 * 1024,
            clock_hz: 216_000_000,
            runtime_overhead_bytes: 4 * 1024,
            cost: CostModel::cortex_m7(),
            energy: EnergyModel::stm32_f7(),
            dot_ki: 16,
            dot_ni: 2,
        }
    }

    /// STM32-G071RB: Cortex-M0+, 36 KB RAM, 128 KB Flash, 64 MHz — the
    /// scalar (no-DSP) floor of the SIMD capability ladder.
    pub fn stm32_g071rb() -> Self {
        Self {
            name: "STM32-G071RB".to_owned(),
            core: Core::CortexM0Plus,
            ram_bytes: 36 * 1024,
            flash_bytes: 128 * 1024,
            clock_hz: 64_000_000,
            runtime_overhead_bytes: 4 * 1024,
            cost: CostModel::cortex_m0(),
            energy: EnergyModel::stm32_g0(),
            dot_ki: 8,
            dot_ni: 1,
        }
    }

    /// MPS3-AN547 (Corstone-300): Cortex-M55, 1 MB SRAM, 4 MB Flash,
    /// 400 MHz — the quad-lane MVE-style top of the capability ladder.
    pub fn mps3_an547() -> Self {
        Self {
            name: "MPS3-AN547".to_owned(),
            core: Core::CortexM55,
            ram_bytes: 1024 * 1024,
            flash_bytes: 4 * 1024 * 1024,
            clock_hz: 400_000_000,
            runtime_overhead_bytes: 4 * 1024,
            cost: CostModel::cortex_m55(),
            energy: EnergyModel::corstone_m55(),
            dot_ki: 16,
            dot_ni: 4,
        }
    }

    /// The SIMD capability ladder in ascending lane order: scalar M0+,
    /// dual-lane M4/M7, quad-lane M55.
    pub fn simd_ladder() -> Vec<Self> {
        vec![
            Self::stm32_g071rb(),
            Self::stm32_f411re(),
            Self::stm32_f767zi(),
            Self::mps3_an547(),
        ]
    }

    /// RAM available to tensor data after runtime overhead.
    pub fn usable_ram_bytes(&self) -> usize {
        self.ram_bytes.saturating_sub(self.runtime_overhead_bytes)
    }

    /// Converts cycles to milliseconds at the device clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e3 / self.clock_hz as f64
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} KB RAM, {} KB Flash, {} MHz)",
            self.name,
            self.core,
            self.ram_bytes / 1024,
            self.flash_bytes / 1024,
            self.clock_hz / 1_000_000
        )
    }
}

/// One row of the Table 1 hardware-landscape comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlatformSummary {
    /// Hardware name.
    pub hardware: &'static str,
    /// Memory capacity description.
    pub memory: &'static str,
    /// Storage capacity description.
    pub storage: &'static str,
    /// Software support description.
    pub sw_support: &'static str,
}

/// The three platform classes of Table 1.
pub const TABLE1_PLATFORMS: [PlatformSummary; 3] = [
    PlatformSummary {
        hardware: "A100",
        memory: "40GB",
        storage: "TB-PB",
        sw_support: "CUDA runtime",
    },
    PlatformSummary {
        hardware: "Kirin-990",
        memory: "8GB",
        storage: "256GB",
        sw_support: "OS (Linux)",
    },
    PlatformSummary {
        hardware: "F411RE",
        memory: "128KB",
        storage: "512KB",
        sw_support: "None",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f411re_matches_paper_specs() {
        let d = Device::stm32_f411re();
        assert_eq!(d.ram_bytes, 131_072);
        assert_eq!(d.flash_bytes, 524_288);
        assert_eq!(d.core, Core::CortexM4);
        assert!(d.usable_ram_bytes() < d.ram_bytes);
    }

    #[test]
    fn f767zi_matches_paper_specs() {
        let d = Device::stm32_f767zi();
        assert_eq!(d.ram_bytes, 524_288);
        assert_eq!(d.core, Core::CortexM7);
        assert_eq!(d.clock_hz, 216_000_000);
    }

    #[test]
    fn simd_ladder_is_ordered_by_lanes() {
        let ladder = Device::simd_ladder();
        assert_eq!(ladder.len(), 4);
        let lanes: Vec<u64> = ladder.iter().map(|d| d.cost.simd.lanes).collect();
        assert_eq!(lanes, [1, 2, 2, 4]);
        for pair in ladder.windows(2) {
            assert!(pair[0].cost.simd.lanes <= pair[1].cost.simd.lanes);
        }
    }

    #[test]
    fn g071rb_is_the_scalar_floor() {
        let d = Device::stm32_g071rb();
        assert_eq!(d.core, Core::CortexM0Plus);
        assert_eq!(d.cost.simd.lanes, 1);
        assert_eq!(d.cost.simd.packing_cycles, 0);
        assert!(d.ram_bytes < Device::stm32_f411re().ram_bytes);
        assert!(d.to_string().contains("Cortex-M0+"));
    }

    #[test]
    fn an547_is_the_quad_lane_top() {
        let d = Device::mps3_an547();
        assert_eq!(d.core, Core::CortexM55);
        assert_eq!(d.cost.simd.lanes, 4);
        assert_eq!(d.dot_ni, 4);
        assert!(d.to_string().contains("Cortex-M55"));
    }

    #[test]
    fn cycles_to_ms_at_clock() {
        let d = Device::stm32_f411re();
        assert!((d.cycles_to_ms(100_000_000) - 1000.0).abs() < 1e-9);
        assert!((d.cycles_to_ms(1_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn table1_spans_five_orders_of_magnitude() {
        assert_eq!(TABLE1_PLATFORMS.len(), 3);
        assert_eq!(TABLE1_PLATFORMS[0].hardware, "A100");
        assert_eq!(TABLE1_PLATFORMS[2].sw_support, "None");
    }

    #[test]
    fn display_is_informative() {
        let s = Device::stm32_f411re().to_string();
        assert!(s.contains("128 KB RAM") && s.contains("Cortex-M4"));
    }
}
