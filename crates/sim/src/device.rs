//! Device models for the evaluation platforms (§7.1) and the Table 1
//! hardware-landscape comparison.

use crate::cost::CostModel;
use crate::energy::EnergyModel;
use std::fmt;

/// Processor core of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Core {
    /// ARM Cortex-M4 (single-issue, DSP extension).
    CortexM4,
    /// ARM Cortex-M7 (dual-issue, DSP extension).
    CortexM7,
}

impl fmt::Display for Core {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Core::CortexM4 => f.write_str("Cortex-M4"),
            Core::CortexM7 => f.write_str("Cortex-M7"),
        }
    }
}

/// A concrete MCU target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Device {
    /// Marketing name.
    pub name: String,
    /// Core kind.
    pub core: Core,
    /// SRAM capacity in bytes.
    pub ram_bytes: usize,
    /// Flash capacity in bytes.
    pub flash_bytes: usize,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// RAM permanently consumed by the runtime (stack, libc, vector
    /// table). On-device measurements include it; set to 0 for pure
    /// algorithmic footprints.
    pub runtime_overhead_bytes: usize,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Energy model.
    pub energy: EnergyModel,
    /// SIMD dot-product lane setup: reduction length of one `Dot`
    /// micro-kernel invocation (the paper's 2×2×16 fixed-size matmul).
    pub dot_ki: usize,
    /// Output lanes of one `Dot` invocation.
    pub dot_ni: usize,
}

impl Device {
    /// STM32-F411RE: Cortex-M4, 128 KB RAM, 512 KB Flash, 100 MHz.
    pub fn stm32_f411re() -> Self {
        Self {
            name: "STM32-F411RE".to_owned(),
            core: Core::CortexM4,
            ram_bytes: 128 * 1024,
            flash_bytes: 512 * 1024,
            clock_hz: 100_000_000,
            runtime_overhead_bytes: 4 * 1024,
            cost: CostModel::cortex_m4(),
            energy: EnergyModel::stm32_f4(),
            dot_ki: 16,
            dot_ni: 2,
        }
    }

    /// STM32-F767ZI: Cortex-M7, 512 KB RAM, 2 MB Flash, 216 MHz.
    pub fn stm32_f767zi() -> Self {
        Self {
            name: "STM32-F767ZI".to_owned(),
            core: Core::CortexM7,
            ram_bytes: 512 * 1024,
            flash_bytes: 2 * 1024 * 1024,
            clock_hz: 216_000_000,
            runtime_overhead_bytes: 4 * 1024,
            cost: CostModel::cortex_m7(),
            energy: EnergyModel::stm32_f7(),
            dot_ki: 16,
            dot_ni: 2,
        }
    }

    /// RAM available to tensor data after runtime overhead.
    pub fn usable_ram_bytes(&self) -> usize {
        self.ram_bytes.saturating_sub(self.runtime_overhead_bytes)
    }

    /// Converts cycles to milliseconds at the device clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e3 / self.clock_hz as f64
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} KB RAM, {} KB Flash, {} MHz)",
            self.name,
            self.core,
            self.ram_bytes / 1024,
            self.flash_bytes / 1024,
            self.clock_hz / 1_000_000
        )
    }
}

/// One row of the Table 1 hardware-landscape comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlatformSummary {
    /// Hardware name.
    pub hardware: &'static str,
    /// Memory capacity description.
    pub memory: &'static str,
    /// Storage capacity description.
    pub storage: &'static str,
    /// Software support description.
    pub sw_support: &'static str,
}

/// The three platform classes of Table 1.
pub const TABLE1_PLATFORMS: [PlatformSummary; 3] = [
    PlatformSummary {
        hardware: "A100",
        memory: "40GB",
        storage: "TB-PB",
        sw_support: "CUDA runtime",
    },
    PlatformSummary {
        hardware: "Kirin-990",
        memory: "8GB",
        storage: "256GB",
        sw_support: "OS (Linux)",
    },
    PlatformSummary {
        hardware: "F411RE",
        memory: "128KB",
        storage: "512KB",
        sw_support: "None",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f411re_matches_paper_specs() {
        let d = Device::stm32_f411re();
        assert_eq!(d.ram_bytes, 131_072);
        assert_eq!(d.flash_bytes, 524_288);
        assert_eq!(d.core, Core::CortexM4);
        assert!(d.usable_ram_bytes() < d.ram_bytes);
    }

    #[test]
    fn f767zi_matches_paper_specs() {
        let d = Device::stm32_f767zi();
        assert_eq!(d.ram_bytes, 524_288);
        assert_eq!(d.core, Core::CortexM7);
        assert_eq!(d.clock_hz, 216_000_000);
    }

    #[test]
    fn cycles_to_ms_at_clock() {
        let d = Device::stm32_f411re();
        assert!((d.cycles_to_ms(100_000_000) - 1000.0).abs() < 1e-9);
        assert!((d.cycles_to_ms(1_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn table1_spans_five_orders_of_magnitude() {
        assert_eq!(TABLE1_PLATFORMS.len(), 3);
        assert_eq!(TABLE1_PLATFORMS[0].hardware, "A100");
        assert_eq!(TABLE1_PLATFORMS[2].sw_support, "None");
    }

    #[test]
    fn display_is_informative() {
        let s = Device::stm32_f411re().to_string();
        assert!(s.contains("128 KB RAM") && s.contains("Cortex-M4"));
    }
}
