//! Execution counters: the simulator's observable outputs.
//!
//! Every kernel action is accounted here; latency and energy are pure
//! functions of these counters plus the device models, which is what makes
//! the reproduction's performance claims auditable.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counted work of a (partial) kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Counters {
    /// Total modelled clock cycles.
    pub cycles: u64,
    /// 8-bit multiply-accumulate operations.
    pub macs: u64,
    /// Bytes read from RAM.
    pub ram_read_bytes: u64,
    /// Bytes written to RAM.
    pub ram_write_bytes: u64,
    /// Bytes read from Flash.
    pub flash_read_bytes: u64,
    /// Address modulo operations (circular-buffer boundary checks).
    pub modulo_ops: u64,
    /// Taken branches (loop back-edges, calls).
    pub branches: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total RAM traffic in bytes (reads + writes).
    pub fn ram_bytes(&self) -> u64 {
        self.ram_read_bytes + self.ram_write_bytes
    }

    /// Difference since an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier (any field larger).
    pub fn since(&self, earlier: &Counters) -> Counters {
        let sub = |a: u64, b: u64| {
            a.checked_sub(b)
                .expect("counter snapshot is not earlier than self")
        };
        Counters {
            cycles: sub(self.cycles, earlier.cycles),
            macs: sub(self.macs, earlier.macs),
            ram_read_bytes: sub(self.ram_read_bytes, earlier.ram_read_bytes),
            ram_write_bytes: sub(self.ram_write_bytes, earlier.ram_write_bytes),
            flash_read_bytes: sub(self.flash_read_bytes, earlier.flash_read_bytes),
            modulo_ops: sub(self.modulo_ops, earlier.modulo_ops),
            branches: sub(self.branches, earlier.branches),
        }
    }
}

impl Add for Counters {
    type Output = Counters;

    fn add(self, rhs: Counters) -> Counters {
        Counters {
            cycles: self.cycles + rhs.cycles,
            macs: self.macs + rhs.macs,
            ram_read_bytes: self.ram_read_bytes + rhs.ram_read_bytes,
            ram_write_bytes: self.ram_write_bytes + rhs.ram_write_bytes,
            flash_read_bytes: self.flash_read_bytes + rhs.flash_read_bytes,
            modulo_ops: self.modulo_ops + rhs.modulo_ops,
            branches: self.branches + rhs.branches,
        }
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} macs={} ram_r={}B ram_w={}B flash_r={}B mod={} br={}",
            self.cycles,
            self.macs,
            self.ram_read_bytes,
            self.ram_write_bytes,
            self.flash_read_bytes,
            self.modulo_ops,
            self.branches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_add_assign_agree() {
        let a = Counters {
            cycles: 10,
            macs: 4,
            ram_read_bytes: 2,
            ram_write_bytes: 1,
            flash_read_bytes: 8,
            modulo_ops: 1,
            branches: 3,
        };
        let mut b = a;
        b += a;
        assert_eq!(b, a + a);
        assert_eq!(b.cycles, 20);
        assert_eq!(b.ram_bytes(), 6);
    }

    #[test]
    fn since_computes_deltas() {
        let early = Counters {
            cycles: 5,
            ..Counters::new()
        };
        let late = Counters {
            cycles: 12,
            macs: 3,
            ..Counters::new()
        };
        let d = late.since(&early);
        assert_eq!(d.cycles, 7);
        assert_eq!(d.macs, 3);
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn since_rejects_non_monotone_snapshots() {
        let early = Counters {
            cycles: 12,
            ..Counters::new()
        };
        let late = Counters {
            cycles: 5,
            ..Counters::new()
        };
        let _ = late.since(&early);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Counters::new().to_string().is_empty());
    }
}
