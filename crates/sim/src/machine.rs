//! The execution context kernels run against.
//!
//! A [`Machine`] bundles a device model with its simulated RAM/Flash and a
//! live [`Counters`] instance. Kernels (and the IR interpreter) perform all
//! data movement and arithmetic through it, so functional results and
//! modelled costs come from the same code path.
//!
//! Host-side helpers (`host_*`) move data without charging cycles — they
//! model the test bench (loading an input image, reading back results),
//! not on-device work.

use crate::counters::Counters;
use crate::device::Device;
use crate::memory::{Flash, MemError, Ram};

/// Simulated MCU executing one firmware image.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Device model (cost/energy tables, capacities).
    pub device: Device,
    /// Simulated SRAM.
    pub ram: Ram,
    /// Simulated Flash.
    pub flash: Flash,
    /// Accumulated work counters.
    pub counters: Counters,
}

/// Latency/energy summary of a counted execution window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecSummary {
    /// Raw counters of the window.
    pub counters: Counters,
    /// Wall-clock latency at the device clock, in milliseconds.
    pub latency_ms: f64,
    /// Energy in millijoules.
    pub energy_mj: f64,
}

impl Machine {
    /// Boots a machine for `device` with zeroed RAM and erased Flash.
    pub fn new(device: Device) -> Self {
        let ram = Ram::new(device.ram_bytes);
        let flash = Flash::new(device.flash_bytes);
        Self {
            device,
            ram,
            flash,
            counters: Counters::new(),
        }
    }

    /// Resets the machine to its freshly booted state — zeroed RAM, erased
    /// Flash, zeroed counters — without reallocating the simulated
    /// memories. A fleet worker serving thousands of requests reuses one
    /// machine instead of re-allocating hundreds of KB per inference.
    pub fn reset(&mut self) {
        self.ram.clear();
        self.flash.reset();
        self.counters = Counters::new();
    }

    /// Resets the volatile state only — zeroed RAM, zeroed counters —
    /// while keeping the programmed Flash image intact. This is the
    /// between-inference reset of a deployed session: weights are flashed
    /// once at deploy time and stay resident across inferences, exactly
    /// like a real MCU deployment.
    pub fn reset_volatile(&mut self) {
        self.ram.clear();
        self.counters = Counters::new();
    }

    // ---- costed on-device operations -------------------------------------

    /// `RAMLoad` data path: copies `dst.len()` bytes of RAM into registers,
    /// charging copy cycles and traffic.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on out-of-range addresses.
    pub fn ram_load(&mut self, addr: usize, dst: &mut [u8]) -> Result<(), MemError> {
        let bytes = self.ram.read(addr, dst.len())?;
        dst.copy_from_slice(bytes);
        let n = dst.len() as u64;
        self.counters.ram_read_bytes += n;
        self.counters.cycles +=
            self.device.cost.ram_move_cost(n) + self.device.cost.call_overhead_cycles;
        Ok(())
    }

    /// `RAMStore` data path: copies registers into RAM.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on out-of-range addresses.
    pub fn ram_store(&mut self, addr: usize, src: &[u8]) -> Result<(), MemError> {
        self.ram.write(addr, src)?;
        let n = src.len() as u64;
        self.counters.ram_write_bytes += n;
        self.counters.cycles +=
            self.device.cost.ram_move_cost(n) + self.device.cost.call_overhead_cycles;
        Ok(())
    }

    /// RAM-to-RAM copy (the im2col pre-processing path of the TinyEngine
    /// baseline): charges both read and write traffic.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on out-of-range addresses.
    pub fn ram_copy(&mut self, src: usize, dst: usize, len: usize) -> Result<(), MemError> {
        let bytes = self.ram.read(src, len)?.to_vec();
        self.ram.write(dst, &bytes)?;
        let n = len as u64;
        self.counters.ram_read_bytes += n;
        self.counters.ram_write_bytes += n;
        self.counters.cycles +=
            2 * self.device.cost.ram_move_cost(n) + self.device.cost.call_overhead_cycles;
        Ok(())
    }

    /// `FlashLoad` data path.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on out-of-range addresses.
    pub fn flash_load(&mut self, addr: usize, dst: &mut [u8]) -> Result<(), MemError> {
        let bytes = self.flash.read(addr, dst.len())?;
        dst.copy_from_slice(bytes);
        let n = dst.len() as u64;
        self.counters.flash_read_bytes += n;
        self.counters.cycles +=
            self.device.cost.flash_read_cost(n) + self.device.cost.call_overhead_cycles;
        Ok(())
    }

    /// Charges `n` 8-bit MACs (`fully_unrolled` selects the stall model).
    pub fn charge_macs(&mut self, n: u64, fully_unrolled: bool) {
        self.counters.macs += n;
        self.counters.cycles += self.device.cost.mac_cost(n, fully_unrolled);
    }

    /// Charges `n` 8-bit MACs issued at `lanes_used` SIMD lanes per
    /// instruction ([`crate::cost::CostModel::mac_cost_lanes`]): the
    /// pricing surface for alternative kernel lowerings. At the device's
    /// native width this is exactly [`Machine::charge_macs`].
    pub fn charge_macs_lanes(&mut self, n: u64, fully_unrolled: bool, lanes_used: u64) {
        self.counters.macs += n;
        self.counters.cycles += self
            .device
            .cost
            .mac_cost_lanes(n, fully_unrolled, lanes_used);
    }

    /// Charges `tiles` dot tiles of `n_per_tile` MACs each in one call —
    /// counter-identical to calling [`Machine::charge_macs`] `tiles`
    /// times (the per-call `div_ceil` rounding is applied per tile, so
    /// hoisting the accounting out of a hot loop cannot drift cycles).
    pub fn charge_macs_batched(&mut self, n_per_tile: u64, tiles: u64, fully_unrolled: bool) {
        self.counters.macs += n_per_tile * tiles;
        self.counters.cycles += tiles * self.device.cost.mac_cost(n_per_tile, fully_unrolled);
    }

    /// Charges an `n`-element requantization epilogue at the device's
    /// [`requant_cycles_x100`](crate::cost::CostModel::requant_cycles_x100).
    pub fn charge_requant(&mut self, n: u64) {
        self.counters.cycles += self.device.cost.requant_cost(n);
    }

    /// Charges `n` address-modulo operations (circular-buffer boundary
    /// checks).
    pub fn charge_modulo(&mut self, n: u64) {
        self.counters.modulo_ops += n;
        self.counters.cycles += n * self.device.cost.modulo_cycles;
    }

    /// Charges `n` taken branches (loop back-edges).
    pub fn charge_branches(&mut self, n: u64) {
        self.counters.branches += n;
        self.counters.cycles += n * self.device.cost.branch_cycles;
    }

    /// Charges `n` generic ALU cycles (requantization epilogues etc.).
    pub fn charge_cycles(&mut self, n: u64) {
        self.counters.cycles += n;
    }

    // ---- host-side (uncosted) helpers ------------------------------------

    /// Writes bytes into RAM without charging cycles (test-bench input
    /// loading).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on out-of-range addresses.
    pub fn host_write_ram(&mut self, addr: usize, bytes: &[u8]) -> Result<(), MemError> {
        self.ram.write(addr, bytes)
    }

    /// Reads bytes from RAM without charging cycles (test-bench output
    /// readback).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on out-of-range addresses.
    pub fn host_read_ram(&self, addr: usize, len: usize) -> Result<Vec<u8>, MemError> {
        Ok(self.ram.read(addr, len)?.to_vec())
    }

    /// Programs a constant image (weights) into Flash, returning its base
    /// address. Uncosted: flashing happens at deploy time.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when flash capacity is exceeded.
    pub fn host_program_flash(&mut self, bytes: &[u8]) -> Result<usize, MemError> {
        self.flash.program(bytes)
    }

    // ---- reporting --------------------------------------------------------

    /// Snapshot of the current counters.
    pub fn snapshot(&self) -> Counters {
        self.counters
    }

    /// Summary of work done since `since` (latency and energy at this
    /// machine's device models).
    pub fn summarize_since(&self, since: &Counters) -> ExecSummary {
        let delta = self.counters.since(since);
        ExecSummary {
            counters: delta,
            latency_ms: self.device.cycles_to_ms(delta.cycles),
            energy_mj: self.device.energy.energy_mj(&delta),
        }
    }

    /// Summary of all work since boot.
    pub fn summarize(&self) -> ExecSummary {
        self.summarize_since(&Counters::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(Device::stm32_f411re())
    }

    #[test]
    fn ram_load_store_round_trip_with_costs() {
        let mut m = machine();
        m.host_write_ram(100, &[7, 8, 9, 10]).unwrap();
        let mut buf = [0u8; 4];
        m.ram_load(100, &mut buf).unwrap();
        assert_eq!(buf, [7, 8, 9, 10]);
        m.ram_store(200, &buf).unwrap();
        assert_eq!(m.host_read_ram(200, 4).unwrap(), vec![7, 8, 9, 10]);
        let c = m.snapshot();
        assert_eq!(c.ram_read_bytes, 4);
        assert_eq!(c.ram_write_bytes, 4);
        assert!(c.cycles > 0);
    }

    #[test]
    fn host_helpers_are_free() {
        let mut m = machine();
        m.host_write_ram(0, &[1; 64]).unwrap();
        let _ = m.host_read_ram(0, 64).unwrap();
        assert_eq!(m.snapshot(), Counters::new());
    }

    #[test]
    fn reset_is_indistinguishable_from_fresh_boot() {
        let mut m = machine();
        m.host_write_ram(0, &[9; 128]).unwrap();
        m.host_program_flash(&[7; 64]).unwrap();
        m.charge_macs(1000, true);
        m.reset();
        assert_eq!(m.snapshot(), Counters::new());
        assert_eq!(m.host_read_ram(0, 128).unwrap(), vec![0; 128]);
        assert_eq!(m.flash.used(), 0);
        // Reprogramming starts at the flash base again.
        assert_eq!(m.host_program_flash(&[1]).unwrap(), 0);
    }

    #[test]
    fn reset_volatile_keeps_the_flash_image() {
        let mut m = machine();
        let base = m.host_program_flash(&[7; 64]).unwrap();
        m.host_write_ram(0, &[9; 128]).unwrap();
        m.charge_macs(1000, true);
        m.reset_volatile();
        assert_eq!(m.snapshot(), Counters::new());
        assert_eq!(m.host_read_ram(0, 128).unwrap(), vec![0; 128]);
        // The deployed weights survive the reset.
        assert_eq!(m.flash.used(), 64);
        assert_eq!(m.flash.read(base, 64).unwrap(), &[7; 64]);
    }

    #[test]
    fn flash_load_counts_traffic() {
        let mut m = machine();
        let base = m.host_program_flash(&[5; 32]).unwrap();
        let mut buf = [0u8; 32];
        m.flash_load(base, &mut buf).unwrap();
        assert_eq!(buf, [5; 32]);
        assert_eq!(m.snapshot().flash_read_bytes, 32);
    }

    #[test]
    fn mac_charging_tracks_unrolling() {
        let mut m = machine();
        m.charge_macs(1000, true);
        let unrolled = m.snapshot().cycles;
        let mut m2 = machine();
        m2.charge_macs(1000, false);
        assert!(m2.snapshot().cycles > unrolled);
        assert_eq!(m.snapshot().macs, 1000);
    }

    #[test]
    fn ram_copy_charges_both_directions() {
        let mut m = machine();
        m.host_write_ram(0, &[3; 16]).unwrap();
        m.ram_copy(0, 64, 16).unwrap();
        assert_eq!(m.host_read_ram(64, 16).unwrap(), vec![3; 16]);
        assert_eq!(m.snapshot().ram_read_bytes, 16);
        assert_eq!(m.snapshot().ram_write_bytes, 16);
    }

    #[test]
    fn summaries_convert_units() {
        let mut m = machine();
        let before = m.snapshot();
        m.charge_macs(100_000, true);
        let s = m.summarize_since(&before);
        assert!(s.latency_ms > 0.0);
        assert!(s.energy_mj > 0.0);
        assert_eq!(s.counters.macs, 100_000);
    }

    #[test]
    fn out_of_range_propagates() {
        let mut m = machine();
        let cap = m.ram.capacity();
        let mut buf = [0u8; 8];
        assert!(m.ram_load(cap, &mut buf).is_err());
        assert!(m.ram_store(cap - 4, &buf).is_err());
    }

    #[test]
    fn batched_charging_is_counter_identical_to_per_tile_calls() {
        // 9 tiles of 24 MACs on the M7 model: per-call div_ceil rounding
        // makes 9 * cost(24) != cost(216), so the batched path must
        // round per tile to stay identical.
        let mut per_call = Machine::new(Device::stm32_f767zi());
        for _ in 0..9 {
            per_call.charge_macs(24, true);
        }
        let mut batched = Machine::new(Device::stm32_f767zi());
        batched.charge_macs_batched(24, 9, true);
        assert_eq!(batched.snapshot(), per_call.snapshot());
        // And the naive merge really would have drifted:
        let mut merged = Machine::new(Device::stm32_f767zi());
        merged.charge_macs(216, true);
        assert_ne!(merged.snapshot().cycles, per_call.snapshot().cycles);
    }

    #[test]
    fn lane_charging_doubles_scalar_cost_on_dsp_cores() {
        let mut native = machine();
        native.charge_macs_lanes(1000, true, 2);
        let mut scalar = machine();
        scalar.charge_macs_lanes(1000, true, 1);
        assert_eq!(scalar.snapshot().cycles, 2 * native.snapshot().cycles);
        assert_eq!(native.snapshot().macs, scalar.snapshot().macs);
    }

    #[test]
    fn requant_charges_model_cycles() {
        let mut m = machine();
        m.charge_requant(10);
        assert_eq!(m.snapshot().cycles, m.device.cost.requant_cost(10));
    }

    #[test]
    fn modulo_and_branch_charges() {
        let mut m = machine();
        m.charge_modulo(10);
        m.charge_branches(5);
        let c = m.snapshot();
        assert_eq!(c.modulo_ops, 10);
        assert_eq!(c.branches, 5);
        assert_eq!(
            c.cycles,
            10 * m.device.cost.modulo_cycles + 5 * m.device.cost.branch_cycles
        );
    }
}
