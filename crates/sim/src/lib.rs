//! # vmcu-sim — simulated MCU substrate
//!
//! The vMCU paper evaluates on STM32 boards (Cortex-M4/M7); this crate is
//! the hardware substitution: byte-accurate simulated [RAM](memory::Ram)
//! and [`Flash`], [device models](device::Device) for the two
//! evaluation platforms, an instruction-class [cost model](cost::CostModel)
//! (packed-SIMD MACs, memcpy traffic, modulo boundary checks, unrolling
//! stalls) and an [energy model](energy::EnergyModel)
//! (`E = core·cycles + ram·bytes + flash·bytes`).
//!
//! Kernels execute against a [`Machine`], which performs real data
//! movement on the simulated memories while charging modelled costs, so
//! functional correctness and performance accounting share one code path.
//!
//! # Examples
//!
//! ```
//! use vmcu_sim::{Device, Machine};
//!
//! let mut m = Machine::new(Device::stm32_f411re());
//! let weights = m.host_program_flash(&[1, 2, 3, 4])?;
//! let mut regs = [0u8; 4];
//! m.flash_load(weights, &mut regs)?;
//! m.charge_macs(4, true);
//! let summary = m.summarize();
//! assert_eq!(summary.counters.macs, 4);
//! assert!(summary.latency_ms > 0.0);
//! # Ok::<(), vmcu_sim::MemError>(())
//! ```

pub mod cost;
pub mod counters;
pub mod device;
pub mod energy;
pub mod link;
pub mod machine;
pub mod memory;

pub use cost::{CostModel, SimdCapability};
pub use counters::Counters;
pub use device::{Core, Device, PlatformSummary, TABLE1_PLATFORMS};
pub use energy::EnergyModel;
pub use link::LinkModel;
pub use machine::{ExecSummary, Machine};
pub use memory::{Flash, MemError, Ram};
