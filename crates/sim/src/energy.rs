//! Energy model.
//!
//! The paper attributes vMCU's energy advantage to (a) fewer RAM accesses
//! (no im2col) and (b) lower latency (§7.2). Both enter here directly:
//!
//! ```text
//! E = core_pj · cycles + ram_pj · ram_bytes + flash_pj · flash_bytes
//! ```
//!
//! Coefficients are order-of-magnitude values for STM32 parts (datasheet
//! run-mode current at nominal voltage); they set the *scale* of the mJ
//! axis while the counters set the *ratios*.

use crate::counters::Counters;

/// Per-event energy coefficients in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnergyModel {
    /// Core + clock-tree energy per cycle.
    pub core_pj_per_cycle: u64,
    /// Energy per byte of RAM traffic (read or write).
    pub ram_pj_per_byte: u64,
    /// Energy per byte fetched from Flash.
    pub flash_pj_per_byte: u64,
}

impl EnergyModel {
    /// STM32F411 (Cortex-M4 @ 100 MHz, ~33 mW active).
    pub fn stm32_f4() -> Self {
        Self {
            core_pj_per_cycle: 330,
            ram_pj_per_byte: 35,
            flash_pj_per_byte: 90,
        }
    }

    /// STM32F767 (Cortex-M7 @ 216 MHz, ~100 mW active).
    pub fn stm32_f7() -> Self {
        Self {
            core_pj_per_cycle: 460,
            ram_pj_per_byte: 28,
            flash_pj_per_byte: 70,
        }
    }

    /// STM32G0 (Cortex-M0+ @ 64 MHz, ~10 mW active): low absolute power,
    /// but scalar MACs burn more cycles — and therefore energy — per
    /// inference.
    pub fn stm32_g0() -> Self {
        Self {
            core_pj_per_cycle: 160,
            ram_pj_per_byte: 30,
            flash_pj_per_byte: 80,
        }
    }

    /// Corstone-300-class Cortex-M55 @ 400 MHz: wider datapath at a
    /// denser process node.
    pub fn corstone_m55() -> Self {
        Self {
            core_pj_per_cycle: 250,
            ram_pj_per_byte: 20,
            flash_pj_per_byte: 45,
        }
    }

    /// Total energy for the counted work, in picojoules.
    pub fn energy_pj(&self, c: &Counters) -> u64 {
        self.core_pj_per_cycle * c.cycles
            + self.ram_pj_per_byte * c.ram_bytes()
            + self.flash_pj_per_byte * c.flash_read_bytes
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self, c: &Counters) -> f64 {
        self.energy_pj(c) as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_each_component() {
        let m = EnergyModel::stm32_f4();
        let base = Counters::new();
        assert_eq!(m.energy_pj(&base), 0);
        let mut c = base;
        c.cycles = 10;
        let core_only = m.energy_pj(&c);
        c.ram_write_bytes = 4;
        let with_ram = m.energy_pj(&c);
        c.flash_read_bytes = 4;
        let with_flash = m.energy_pj(&c);
        assert!(core_only < with_ram && with_ram < with_flash);
        assert_eq!(core_only, 3300);
    }

    #[test]
    fn millijoules_conversion() {
        let m = EnergyModel {
            core_pj_per_cycle: 1000,
            ram_pj_per_byte: 0,
            flash_pj_per_byte: 0,
        };
        let c = Counters {
            cycles: 1_000_000,
            ..Counters::new()
        };
        assert!((m.energy_mj(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f7_core_energy_exceeds_f4_per_cycle() {
        assert!(
            EnergyModel::stm32_f7().core_pj_per_cycle > EnergyModel::stm32_f4().core_pj_per_cycle
        );
    }
}
