//! Inter-device link cost model for split (multi-MCU) inference.
//!
//! When a model is partitioned layer-wise across networked MCUs, every
//! cut edge ships an activation tensor over a board-to-board link (UART,
//! SPI, or a low-power radio). Like [`crate::cost::CostModel`] and the
//! Flash-programming charge, the link is priced **deterministically in
//! integers** — fixed per-transfer setup latency, integer bytes/µs
//! bandwidth, and a ×100 fixed-point energy-per-byte coefficient — so a
//! split pipeline's simulated time and energy are bit-reproducible
//! across hosts, which the CI bench gate depends on.

/// Deterministic cost model for one board-to-board link.
///
/// A transfer of `n` bytes costs
/// `latency_us + ceil(n / bytes_per_us)` microseconds of simulated time
/// and `ceil(n * energy_per_byte_x100 / 100)` microjoules of energy —
/// all integer arithmetic, mirroring `flash_write_cost`'s `div_ceil`
/// discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Fixed per-transfer setup cost (packetization, DMA setup, link
    /// turnaround) in microseconds.
    pub latency_us: u64,
    /// Sustained link bandwidth in bytes per microsecond (must be ≥ 1).
    pub bytes_per_us: u64,
    /// Transfer energy in hundredths of a microjoule per byte (×100
    /// fixed point, like the cost model's cycle coefficients).
    pub energy_per_byte_x100: u64,
}

impl LinkModel {
    /// An 8 Mbit/s serial link (SPI-class): 1 byte/µs sustained, 150 µs
    /// per-transfer setup, 0.15 µJ/byte. The default link every split
    /// deployment prices transfers with.
    #[must_use]
    pub const fn serial_8mbps() -> Self {
        Self {
            latency_us: 150,
            bytes_per_us: 1,
            energy_per_byte_x100: 15,
        }
    }

    /// Simulated wall time to move `bytes` across the link, in
    /// microseconds: fixed setup plus `ceil(bytes / bandwidth)`.
    #[must_use]
    pub const fn transfer_us(&self, bytes: u64) -> u64 {
        self.latency_us + bytes.div_ceil(self.bytes_per_us)
    }

    /// Same transfer priced in milliseconds (derived from the integer
    /// microsecond count, so still bit-reproducible).
    #[must_use]
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.transfer_us(bytes) as f64 / 1e3
    }

    /// Energy to move `bytes`, in whole microjoules
    /// (`ceil(bytes * coeff / 100)`).
    #[must_use]
    pub const fn transfer_energy_uj(&self, bytes: u64) -> u64 {
        (bytes * self.energy_per_byte_x100).div_ceil(100)
    }

    /// Same energy in millijoules (derived from the integer microjoule
    /// count).
    #[must_use]
    pub fn transfer_energy_mj(&self, bytes: u64) -> f64 {
        self.transfer_energy_uj(bytes) as f64 / 1e3
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::serial_8mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_integer_and_monotone() {
        let link = LinkModel::serial_8mbps();
        assert_eq!(link.transfer_us(0), 150);
        assert_eq!(link.transfer_us(1), 151);
        assert_eq!(link.transfer_us(25_600), 150 + 25_600);
        assert!(link.transfer_us(25_601) > link.transfer_us(25_600));
    }

    #[test]
    fn bandwidth_division_rounds_up() {
        let link = LinkModel {
            latency_us: 10,
            bytes_per_us: 4,
            energy_per_byte_x100: 100,
        };
        assert_eq!(link.transfer_us(1), 11);
        assert_eq!(link.transfer_us(4), 11);
        assert_eq!(link.transfer_us(5), 12);
    }

    #[test]
    fn energy_uses_fixed_point_ceiling() {
        let link = LinkModel::serial_8mbps();
        // 0.15 µJ/byte: 1 byte rounds up to a whole microjoule.
        assert_eq!(link.transfer_energy_uj(1), 1);
        assert_eq!(link.transfer_energy_uj(100), 15);
        assert_eq!(link.transfer_energy_mj(100), 0.015);
    }

    #[test]
    fn millisecond_view_matches_the_integer_count() {
        let link = LinkModel::default();
        assert_eq!(link.transfer_ms(850), link.transfer_us(850) as f64 / 1e3);
    }
}
