//! Layer descriptors and per-layer weights.
//!
//! A [`LayerDesc`] is the graph-level view of one kernel invocation; it
//! wraps the parameter blocks from `vmcu-kernels` so planners, executors,
//! and the facade all agree on geometry and quantization.

use vmcu_kernels::params::{Conv2dParams, DepthwiseParams, FcParams, IbParams, PointwiseParams};
use vmcu_tensor::{random, Tensor};

/// One layer of a model graph.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerDesc {
    /// Pointwise (1×1) convolution.
    Pointwise(PointwiseParams),
    /// Dense 2D convolution.
    Conv2d(Conv2dParams),
    /// Depthwise convolution.
    Depthwise(DepthwiseParams),
    /// Fully-connected layer.
    Dense(FcParams),
    /// Fused inverted-bottleneck module.
    Ib(IbParams),
}

impl LayerDesc {
    /// Human-readable kind.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerDesc::Pointwise(_) => "pointwise",
            LayerDesc::Conv2d(_) => "conv2d",
            LayerDesc::Depthwise(_) => "depthwise",
            LayerDesc::Dense(_) => "dense",
            LayerDesc::Ib(_) => "inverted-bottleneck",
        }
    }

    /// Input activation bytes.
    pub fn in_bytes(&self) -> usize {
        match self {
            LayerDesc::Pointwise(p) => p.in_bytes(),
            LayerDesc::Conv2d(p) => p.in_bytes(),
            LayerDesc::Depthwise(p) => p.in_bytes(),
            LayerDesc::Dense(p) => p.in_bytes(),
            LayerDesc::Ib(p) => p.in_bytes(),
        }
    }

    /// Output activation bytes.
    pub fn out_bytes(&self) -> usize {
        match self {
            LayerDesc::Pointwise(p) => p.out_bytes(),
            LayerDesc::Conv2d(p) => p.out_bytes(),
            LayerDesc::Depthwise(p) => p.out_bytes(),
            LayerDesc::Dense(p) => p.out_bytes(),
            LayerDesc::Ib(p) => p.out_bytes(),
        }
    }

    /// Input tensor shape.
    pub fn in_shape(&self) -> Vec<usize> {
        match self {
            LayerDesc::Pointwise(p) => vec![p.h, p.w, p.c],
            LayerDesc::Conv2d(p) => vec![p.h, p.w, p.c],
            LayerDesc::Depthwise(p) => vec![p.h, p.w, p.c],
            LayerDesc::Dense(p) => vec![p.m, p.k],
            LayerDesc::Ib(p) => vec![p.hw, p.hw, p.c_in],
        }
    }

    /// Output tensor shape.
    pub fn out_shape(&self) -> Vec<usize> {
        match self {
            LayerDesc::Pointwise(p) => vec![p.h, p.w, p.k],
            LayerDesc::Conv2d(p) => vec![p.out_h(), p.out_w(), p.k],
            LayerDesc::Depthwise(p) => vec![p.out_h(), p.out_w(), p.c],
            LayerDesc::Dense(p) => vec![p.m, p.n],
            LayerDesc::Ib(p) => vec![p.hw2(), p.hw2(), p.c_out],
        }
    }

    /// Weight bytes (resident in Flash).
    pub fn weight_bytes(&self) -> usize {
        match self {
            LayerDesc::Pointwise(p) => p.c * p.k,
            LayerDesc::Conv2d(p) => p.r * p.s * p.c * p.k,
            LayerDesc::Depthwise(p) => p.r * p.s * p.c,
            LayerDesc::Dense(p) => p.weight_bytes(),
            LayerDesc::Ib(p) => p.c_in * p.c_mid + p.rs * p.rs * p.c_mid + p.c_mid * p.c_out,
        }
    }
}

/// Synthetic weights for one layer (deterministic per seed).
#[derive(Debug, Clone, PartialEq)]
pub enum LayerWeights {
    /// Pointwise `[C, K]`.
    Pointwise(Tensor<i8>),
    /// Conv2d `[R, S, C, K]`.
    Conv2d(Tensor<i8>),
    /// Depthwise `[R, S, C]`.
    Depthwise(Tensor<i8>),
    /// Dense `[K, N]`.
    Dense(Tensor<i8>),
    /// Inverted bottleneck: expand `[Cin, Cmid]`, depthwise
    /// `[R, S, Cmid]`, project `[Cmid, Cout]`.
    Ib {
        /// Expand weights.
        w1: Tensor<i8>,
        /// Depthwise weights.
        wdw: Tensor<i8>,
        /// Project weights.
        w2: Tensor<i8>,
    },
}

impl LayerWeights {
    /// Generates deterministic weights for a layer.
    pub fn random(layer: &LayerDesc, seed: u64) -> Self {
        match layer {
            LayerDesc::Pointwise(p) => {
                LayerWeights::Pointwise(random::tensor_i8(&[p.c, p.k], seed))
            }
            LayerDesc::Conv2d(p) => {
                LayerWeights::Conv2d(random::tensor_i8(&[p.r, p.s, p.c, p.k], seed))
            }
            LayerDesc::Depthwise(p) => {
                LayerWeights::Depthwise(random::tensor_i8(&[p.r, p.s, p.c], seed))
            }
            LayerDesc::Dense(p) => LayerWeights::Dense(random::tensor_i8(&[p.k, p.n], seed)),
            LayerDesc::Ib(p) => LayerWeights::Ib {
                w1: random::tensor_i8(&[p.c_in, p.c_mid], seed),
                wdw: random::tensor_i8(&[p.rs, p.rs, p.c_mid], seed.wrapping_add(1)),
                w2: random::tensor_i8(&[p.c_mid, p.c_out], seed.wrapping_add(2)),
            },
        }
    }

    /// Total weight bytes.
    pub fn bytes(&self) -> usize {
        match self {
            LayerWeights::Pointwise(t)
            | LayerWeights::Conv2d(t)
            | LayerWeights::Depthwise(t)
            | LayerWeights::Dense(t) => t.len(),
            LayerWeights::Ib { w1, wdw, w2 } => w1.len() + wdw.len() + w2.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_tensor::Requant;

    #[test]
    fn shapes_are_consistent() {
        let l = LayerDesc::Pointwise(PointwiseParams::new(8, 8, 16, 24, Requant::identity()));
        assert_eq!(l.in_bytes(), 8 * 8 * 16);
        assert_eq!(l.out_bytes(), 8 * 8 * 24);
        assert_eq!(l.in_shape(), vec![8, 8, 16]);
        assert_eq!(l.out_shape(), vec![8, 8, 24]);
        assert_eq!(l.weight_bytes(), 16 * 24);
    }

    #[test]
    fn ib_weight_accounting() {
        let p = IbParams::new(20, 16, 48, 16, 3, (1, 1, 1));
        let l = LayerDesc::Ib(p);
        assert_eq!(l.weight_bytes(), 16 * 48 + 9 * 48 + 48 * 16);
        let w = LayerWeights::random(&l, 3);
        assert_eq!(w.bytes(), l.weight_bytes());
    }

    #[test]
    fn weights_are_deterministic() {
        let l = LayerDesc::Dense(FcParams::new(4, 8, 8, Requant::identity()));
        assert_eq!(LayerWeights::random(&l, 9), LayerWeights::random(&l, 9));
        assert_ne!(LayerWeights::random(&l, 9), LayerWeights::random(&l, 10));
    }
}
