//! Layer descriptors and per-layer weights.
//!
//! A [`LayerDesc`] is the graph-level view of one kernel invocation; it
//! wraps the parameter blocks from `vmcu-kernels` so planners, executors,
//! and the facade all agree on geometry and quantization. Merge layers
//! (residual add, channel concat) take two inputs and carry no weights.

use vmcu_kernels::params::{
    AddParams, ConcatParams, Conv2dParams, DepthwiseParams, FcParams, IbParams, PointwiseParams,
};
use vmcu_tensor::{random, Tensor};

/// One layer of a model graph.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerDesc {
    /// Pointwise (1×1) convolution.
    Pointwise(PointwiseParams),
    /// Dense 2D convolution.
    Conv2d(Conv2dParams),
    /// Depthwise convolution.
    Depthwise(DepthwiseParams),
    /// Fully-connected layer.
    Dense(FcParams),
    /// Fused inverted-bottleneck module.
    Ib(IbParams),
    /// Elementwise residual add (two same-shape inputs, no weights).
    Add(AddParams),
    /// Channel concatenation (two inputs, no weights).
    Concat(ConcatParams),
}

impl LayerDesc {
    /// Human-readable kind.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerDesc::Pointwise(_) => "pointwise",
            LayerDesc::Conv2d(_) => "conv2d",
            LayerDesc::Depthwise(_) => "depthwise",
            LayerDesc::Dense(_) => "dense",
            LayerDesc::Ib(_) => "inverted-bottleneck",
            LayerDesc::Add(_) => "add",
            LayerDesc::Concat(_) => "concat",
        }
    }

    /// Number of input tensors (2 for merges, 1 otherwise).
    pub fn arity(&self) -> usize {
        match self {
            LayerDesc::Add(_) | LayerDesc::Concat(_) => 2,
            _ => 1,
        }
    }

    /// Whether this is a branch-merging layer.
    pub fn is_merge(&self) -> bool {
        self.arity() == 2
    }

    /// Input activation bytes (summed over all inputs for merges).
    pub fn in_bytes(&self) -> usize {
        match self {
            LayerDesc::Pointwise(p) => p.in_bytes(),
            LayerDesc::Conv2d(p) => p.in_bytes(),
            LayerDesc::Depthwise(p) => p.in_bytes(),
            LayerDesc::Dense(p) => p.in_bytes(),
            LayerDesc::Ib(p) => p.in_bytes(),
            LayerDesc::Add(p) => p.in_bytes(),
            LayerDesc::Concat(p) => p.in_bytes(),
        }
    }

    /// Output activation bytes.
    pub fn out_bytes(&self) -> usize {
        match self {
            LayerDesc::Pointwise(p) => p.out_bytes(),
            LayerDesc::Conv2d(p) => p.out_bytes(),
            LayerDesc::Depthwise(p) => p.out_bytes(),
            LayerDesc::Dense(p) => p.out_bytes(),
            LayerDesc::Ib(p) => p.out_bytes(),
            LayerDesc::Add(p) => p.out_bytes(),
            LayerDesc::Concat(p) => p.out_bytes(),
        }
    }

    /// Input tensor shape (first input for merges; see
    /// [`LayerDesc::in_shapes`] for all of them).
    pub fn in_shape(&self) -> Vec<usize> {
        match self {
            LayerDesc::Pointwise(p) => vec![p.h, p.w, p.c],
            LayerDesc::Conv2d(p) => vec![p.h, p.w, p.c],
            LayerDesc::Depthwise(p) => vec![p.h, p.w, p.c],
            LayerDesc::Dense(p) => vec![p.m, p.k],
            LayerDesc::Ib(p) => vec![p.hw, p.hw, p.c_in],
            LayerDesc::Add(p) => vec![p.h, p.w, p.c],
            LayerDesc::Concat(p) => vec![p.h, p.w, p.c_a],
        }
    }

    /// Expected shape of every input, in slot order.
    pub fn in_shapes(&self) -> Vec<Vec<usize>> {
        match self {
            LayerDesc::Add(p) => vec![vec![p.h, p.w, p.c], vec![p.h, p.w, p.c]],
            LayerDesc::Concat(p) => {
                vec![vec![p.h, p.w, p.c_a], vec![p.h, p.w, p.c_b]]
            }
            _ => vec![self.in_shape()],
        }
    }

    /// Output tensor shape.
    pub fn out_shape(&self) -> Vec<usize> {
        match self {
            LayerDesc::Pointwise(p) => vec![p.h, p.w, p.k],
            LayerDesc::Conv2d(p) => vec![p.out_h(), p.out_w(), p.k],
            LayerDesc::Depthwise(p) => vec![p.out_h(), p.out_w(), p.c],
            LayerDesc::Dense(p) => vec![p.m, p.n],
            LayerDesc::Ib(p) => vec![p.hw2(), p.hw2(), p.c_out],
            LayerDesc::Add(p) => vec![p.h, p.w, p.c],
            LayerDesc::Concat(p) => vec![p.h, p.w, p.c_a + p.c_b],
        }
    }

    /// Weight bytes (resident in Flash).
    pub fn weight_bytes(&self) -> usize {
        match self {
            LayerDesc::Pointwise(p) => p.c * p.k,
            LayerDesc::Conv2d(p) => p.r * p.s * p.c * p.k,
            LayerDesc::Depthwise(p) => p.r * p.s * p.c,
            LayerDesc::Dense(p) => p.weight_bytes(),
            LayerDesc::Ib(p) => p.c_in * p.c_mid + p.rs * p.rs * p.c_mid + p.c_mid * p.c_out,
            LayerDesc::Add(_) | LayerDesc::Concat(_) => 0,
        }
    }
}

/// Synthetic weights for one layer (deterministic per seed).
#[derive(Debug, Clone, PartialEq)]
pub enum LayerWeights {
    /// Pointwise `[C, K]`.
    Pointwise(Tensor<i8>),
    /// Conv2d `[R, S, C, K]`.
    Conv2d(Tensor<i8>),
    /// Depthwise `[R, S, C]`.
    Depthwise(Tensor<i8>),
    /// Dense `[K, N]`.
    Dense(Tensor<i8>),
    /// Inverted bottleneck: expand `[Cin, Cmid]`, depthwise
    /// `[R, S, Cmid]`, project `[Cmid, Cout]`.
    Ib {
        /// Expand weights.
        w1: Tensor<i8>,
        /// Depthwise weights.
        wdw: Tensor<i8>,
        /// Project weights.
        w2: Tensor<i8>,
    },
    /// No weights (merge layers).
    None,
}

impl LayerWeights {
    /// Generates deterministic weights for a layer.
    pub fn random(layer: &LayerDesc, seed: u64) -> Self {
        match layer {
            LayerDesc::Pointwise(p) => {
                LayerWeights::Pointwise(random::tensor_i8(&[p.c, p.k], seed))
            }
            LayerDesc::Conv2d(p) => {
                LayerWeights::Conv2d(random::tensor_i8(&[p.r, p.s, p.c, p.k], seed))
            }
            LayerDesc::Depthwise(p) => {
                LayerWeights::Depthwise(random::tensor_i8(&[p.r, p.s, p.c], seed))
            }
            LayerDesc::Dense(p) => LayerWeights::Dense(random::tensor_i8(&[p.k, p.n], seed)),
            LayerDesc::Ib(p) => LayerWeights::Ib {
                w1: random::tensor_i8(&[p.c_in, p.c_mid], seed),
                wdw: random::tensor_i8(&[p.rs, p.rs, p.c_mid], seed.wrapping_add(1)),
                w2: random::tensor_i8(&[p.c_mid, p.c_out], seed.wrapping_add(2)),
            },
            LayerDesc::Add(_) | LayerDesc::Concat(_) => LayerWeights::None,
        }
    }

    /// Total weight bytes.
    pub fn bytes(&self) -> usize {
        match self {
            LayerWeights::Pointwise(t)
            | LayerWeights::Conv2d(t)
            | LayerWeights::Depthwise(t)
            | LayerWeights::Dense(t) => t.len(),
            LayerWeights::Ib { w1, wdw, w2 } => w1.len() + wdw.len() + w2.len(),
            LayerWeights::None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_tensor::Requant;

    #[test]
    fn shapes_are_consistent() {
        let l = LayerDesc::Pointwise(PointwiseParams::new(8, 8, 16, 24, Requant::identity()));
        assert_eq!(l.in_bytes(), 8 * 8 * 16);
        assert_eq!(l.out_bytes(), 8 * 8 * 24);
        assert_eq!(l.in_shape(), vec![8, 8, 16]);
        assert_eq!(l.out_shape(), vec![8, 8, 24]);
        assert_eq!(l.weight_bytes(), 16 * 24);
        assert_eq!(l.arity(), 1);
    }

    #[test]
    fn ib_weight_accounting() {
        let p = IbParams::new(20, 16, 48, 16, 3, (1, 1, 1));
        let l = LayerDesc::Ib(p);
        assert_eq!(l.weight_bytes(), 16 * 48 + 9 * 48 + 48 * 16);
        let w = LayerWeights::random(&l, 3);
        assert_eq!(w.bytes(), l.weight_bytes());
    }

    #[test]
    fn weights_are_deterministic() {
        let l = LayerDesc::Dense(FcParams::new(4, 8, 8, Requant::identity()));
        assert_eq!(LayerWeights::random(&l, 9), LayerWeights::random(&l, 9));
        assert_ne!(LayerWeights::random(&l, 9), LayerWeights::random(&l, 10));
    }

    #[test]
    fn merge_layers_have_two_inputs_and_no_weights() {
        let add = LayerDesc::Add(AddParams::new(8, 8, 4));
        assert_eq!(add.arity(), 2);
        assert!(add.is_merge());
        assert_eq!(add.weight_bytes(), 0);
        assert_eq!(add.in_bytes(), 2 * 8 * 8 * 4);
        assert_eq!(add.out_shape(), vec![8, 8, 4]);
        assert_eq!(LayerWeights::random(&add, 1), LayerWeights::None);

        let cat = LayerDesc::Concat(ConcatParams::new(8, 8, 6, 10));
        assert_eq!(cat.in_shapes(), vec![vec![8, 8, 6], vec![8, 8, 10]]);
        assert_eq!(cat.out_shape(), vec![8, 8, 16]);
        assert_eq!(cat.out_bytes(), 8 * 8 * 16);
    }
}
