//! Reference graph executor.
//!
//! Runs a whole [`Graph`] through the oracle operators on plain host
//! tensors — no simulator, no memory planning. This is the ground truth
//! every planned/simulated execution is compared against.

use crate::graph::{Graph, NodeInput};
use crate::layer::{LayerDesc, LayerWeights};
use vmcu_kernels::fused_ib::ib_reference;
use vmcu_tensor::{reference, Tensor};

/// Runs the graph on `input`, returning every intermediate activation
/// (the last entry is the graph output). Each node gathers its inputs
/// from earlier activations (or the graph input), so branchy DAGs run
/// exactly as chains do.
///
/// # Panics
///
/// Panics if `weights` does not match the graph or shapes mismatch
/// (construction via [`Graph::linear`]/[`Graph::dag`] and
/// [`Graph::random_weights`] guarantees both).
pub fn run_reference(
    graph: &Graph,
    weights: &[LayerWeights],
    input: &Tensor<i8>,
) -> Vec<Tensor<i8>> {
    assert_eq!(weights.len(), graph.len(), "weights/layers mismatch");
    let mut acts: Vec<Tensor<i8>> = Vec::with_capacity(graph.len());
    for (i, (layer, w)) in graph.layers().iter().zip(weights).enumerate() {
        let ins: Vec<&Tensor<i8>> = graph
            .node_inputs(i)
            .iter()
            .map(|edge| match edge {
                NodeInput::GraphInput => input,
                NodeInput::Node(j) => &acts[*j],
            })
            .collect();
        let cur = &ins[0];
        let out = match (layer, w) {
            (LayerDesc::Pointwise(p), LayerWeights::Pointwise(wt)) => {
                reference::pointwise(cur, wt, None, 1, p.rq, p.clamp)
            }
            (LayerDesc::Conv2d(p), LayerWeights::Conv2d(wt)) => {
                reference::conv2d(cur, wt, None, p.stride, p.pad, p.rq, p.clamp)
            }
            (LayerDesc::Depthwise(p), LayerWeights::Depthwise(wt)) => {
                reference::depthwise(cur, wt, None, p.stride, p.pad, p.rq, p.clamp)
            }
            (LayerDesc::Dense(p), LayerWeights::Dense(wt)) => {
                reference::dense(cur, wt, None, p.rq, p.clamp)
            }
            (LayerDesc::Ib(p), LayerWeights::Ib { w1, wdw, w2 }) => {
                ib_reference(p, cur, w1, wdw, w2)
            }
            (LayerDesc::Add(_), LayerWeights::None) => reference::add(ins[0], ins[1]),
            (LayerDesc::Concat(_), LayerWeights::None) => reference::concat(ins[0], ins[1]),
            (l, w) => panic!("layer/weights kind mismatch: {l:?} vs {w:?}"),
        };
        acts.push(out);
    }
    acts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::demo_linear_net;
    use vmcu_tensor::random;

    #[test]
    fn demo_net_runs_end_to_end() {
        let g = demo_linear_net();
        let weights = g.random_weights(7);
        let input = random::tensor_i8(&g.in_shape(), 1);
        let acts = run_reference(&g, &weights, &input);
        assert_eq!(acts.len(), g.len());
        assert_eq!(acts.last().unwrap().shape(), g.out_shape().as_slice());
    }

    #[test]
    fn execution_is_deterministic() {
        let g = demo_linear_net();
        let weights = g.random_weights(7);
        let input = random::tensor_i8(&g.in_shape(), 1);
        let a = run_reference(&g, &weights, &input);
        let b = run_reference(&g, &weights, &input);
        assert_eq!(a, b);
    }

    #[test]
    fn different_weights_change_output() {
        let g = demo_linear_net();
        let input = random::tensor_i8(&g.in_shape(), 1);
        let a = run_reference(&g, &g.random_weights(7), &input);
        let b = run_reference(&g, &g.random_weights(8), &input);
        assert_ne!(a.last(), b.last());
    }
}
