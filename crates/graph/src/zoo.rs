//! The model zoo: every workload of the paper's evaluation (§7).
//!
//! * [`fig7_cases`] — the nine single-layer pointwise convolutions of
//!   Figures 7 and 8;
//! * [`mcunet_5fps_vww`] — the 8 inverted-bottleneck modules of
//!   MCUNet-5fps-VWW (Table 2, S1–S8);
//! * [`mcunet_320kb_imagenet`] — the 17 measured modules of
//!   MCUNet-320KB-ImageNet (Table 2, B1–B17);
//! * [`demo_linear_net`] — a small shape-chained network for end-to-end
//!   examples and tests;
//! * [`fleet_catalog`] — the named deployable models a `vmcu-serve`
//!   request stream draws from.

use crate::graph::{Graph, NodeInput};
use crate::layer::LayerDesc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmcu_kernels::params::{AddParams, ConcatParams, DepthwiseParams, IbParams, PointwiseParams};
use vmcu_tensor::Requant;

/// A named module configuration from Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedIb {
    /// Paper name (S1–S8, B1–B17).
    pub name: &'static str,
    /// Module parameters.
    pub params: IbParams,
}

fn ib(
    name: &'static str,
    hw: usize,
    c_in: usize,
    c_mid: usize,
    c_out: usize,
    rs: usize,
    strides: (usize, usize, usize),
) -> NamedIb {
    let mut p = IbParams::new(hw, c_in, c_mid, c_out, rs, strides);
    // MobileNetV2-style activations: ReLU6 after expand and depthwise,
    // linear bottleneck after projection.
    p.clamp1 = (0, 127);
    p.clamp2 = (0, 127);
    NamedIb { name, params: p }
}

/// MCUNet-5fps-VWW backbone modules (Table 2, top half).
pub fn mcunet_5fps_vww() -> Vec<NamedIb> {
    vec![
        ib("S1", 20, 16, 48, 16, 3, (1, 1, 1)),
        ib("S2", 20, 16, 48, 16, 3, (1, 1, 1)),
        ib("S3", 10, 24, 144, 16, 3, (1, 1, 1)),
        ib("S4", 10, 24, 120, 24, 3, (1, 1, 1)),
        ib("S5", 5, 40, 240, 40, 3, (1, 1, 1)),
        ib("S6", 5, 48, 192, 48, 3, (1, 1, 1)),
        ib("S7", 3, 96, 480, 96, 3, (1, 1, 1)),
        ib("S8", 3, 96, 384, 96, 3, (1, 1, 1)),
    ]
}

/// MCUNet-320KB-ImageNet measured modules (Table 2, bottom half; the 18th
/// module is excluded as in the paper — its 7×7 window exceeds the 6×6
/// image and is unsuitable for fusion).
pub fn mcunet_320kb_imagenet() -> Vec<NamedIb> {
    vec![
        ib("B1", 176, 3, 16, 8, 3, (2, 1, 1)),
        ib("B2", 88, 8, 24, 16, 7, (1, 2, 1)),
        ib("B3", 44, 16, 80, 16, 3, (1, 1, 1)),
        ib("B4", 44, 16, 80, 16, 7, (1, 1, 1)),
        ib("B5", 44, 16, 64, 24, 5, (1, 1, 1)),
        ib("B6", 44, 16, 80, 24, 5, (1, 2, 1)),
        ib("B7", 22, 24, 120, 24, 5, (1, 1, 1)),
        ib("B8", 22, 24, 120, 24, 5, (1, 1, 1)),
        ib("B9", 22, 24, 120, 40, 3, (1, 2, 1)),
        ib("B10", 11, 40, 240, 40, 7, (1, 1, 1)),
        ib("B11", 11, 40, 160, 40, 5, (1, 1, 1)),
        ib("B12", 11, 40, 200, 48, 7, (1, 2, 1)),
        ib("B13", 11, 48, 240, 48, 7, (1, 1, 1)),
        ib("B14", 11, 48, 240, 48, 3, (1, 1, 1)),
        ib("B15", 11, 48, 288, 96, 3, (1, 2, 1)),
        ib("B16", 6, 96, 480, 96, 7, (1, 1, 1)),
        ib("B17", 6, 96, 384, 96, 3, (1, 1, 1)),
    ]
}

/// A named single-layer case from Figure 7/8.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedPointwise {
    /// Paper label, e.g. `H/W80,C16,K16`.
    pub name: String,
    /// Layer parameters.
    pub params: PointwiseParams,
}

/// The nine pointwise-convolution cases of Figures 7 and 8.
pub fn fig7_cases() -> Vec<NamedPointwise> {
    [
        (80, 16, 16),
        (56, 32, 32),
        (28, 64, 64),
        (80, 16, 8),
        (40, 32, 16),
        (20, 48, 24),
        (24, 16, 32),
        (12, 32, 64),
        (6, 64, 128),
    ]
    .into_iter()
    .map(|(hw, c, k)| NamedPointwise {
        name: format!("H/W{hw},C{c},K{k}"),
        params: PointwiseParams::new(hw, hw, c, k, Requant::from_scale(1.0 / 64.0, 0)),
    })
    .collect()
}

/// A small shape-chained network (pointwise → IB → IB → pointwise) used
/// by the end-to-end examples and integration tests.
///
/// # Panics
///
/// Panics if the baked-in layer shapes fail to chain — impossible for
/// these constants.
pub fn demo_linear_net() -> Graph {
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut ib1 = IbParams::new(12, 8, 24, 8, 3, (1, 1, 1));
    ib1.clamp1 = (0, 127);
    ib1.clamp2 = (0, 127);
    let mut ib2 = IbParams::new(12, 8, 32, 16, 3, (1, 2, 1));
    ib2.clamp1 = (0, 127);
    ib2.clamp2 = (0, 127);
    Graph::linear(
        "demo-linear-net",
        vec![
            LayerDesc::Pointwise(PointwiseParams::new(12, 12, 4, 8, rq)),
            LayerDesc::Ib(ib1),
            LayerDesc::Ib(ib2),
            LayerDesc::Pointwise(PointwiseParams::new(6, 6, 16, 32, rq)),
        ],
    )
    .expect("demo net shapes chain")
}

/// An inverted bottleneck written out as **three separate layers**
/// (pointwise expand → depthwise → pointwise project) instead of one
/// fused [`LayerDesc::Ib`] module. Layer-at-a-time planning must pay the
/// expanded 20×20×48 intermediate; the multi-layer fusion pass
/// (`vmcu_plan::fusion`) pipelines the chain through line-buffer rings
/// and never materializes it — the zoo model demonstrating the paper's
/// multi-layer claim.
///
/// # Panics
///
/// Panics if the baked-in layer shapes fail to chain — impossible for
/// these constants.
pub fn mbv2_block_unfused() -> Graph {
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut expand = PointwiseParams::new(20, 20, 16, 48, rq);
    expand.clamp = (0, 127);
    let mut dw = DepthwiseParams::new(20, 20, 48, 3, 3, 1, 1, rq);
    dw.clamp = (0, 127);
    let project = PointwiseParams::new(20, 20, 48, 16, rq);
    Graph::linear(
        "mbv2-block-unfused",
        vec![
            LayerDesc::Pointwise(expand),
            LayerDesc::Depthwise(dw),
            LayerDesc::Pointwise(project),
        ],
    )
    .expect("block shapes chain")
}

/// A wide expand–project chain whose 40×40×96 intermediate (153.6 KB)
/// exceeds the 128 KB device outright: layer-at-a-time planning cannot
/// deploy it under **any** policy, the fused pipeline can — the "only
/// fits fused" regime.
///
/// # Panics
///
/// Panics if the baked-in layer shapes fail to chain — impossible for
/// these constants.
pub fn wide_expand_chain() -> Graph {
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut expand = PointwiseParams::new(40, 40, 16, 96, rq);
    expand.clamp = (0, 127);
    let mut dw = DepthwiseParams::new(40, 40, 96, 3, 3, 1, 1, rq);
    dw.clamp = (0, 127);
    let project = PointwiseParams::new(40, 40, 96, 16, rq);
    Graph::linear(
        "wide-expand-chain",
        vec![
            LayerDesc::Pointwise(expand),
            LayerDesc::Depthwise(dw),
            LayerDesc::Pointwise(project),
        ],
    )
    .expect("chain shapes chain")
}

/// An MCUNetV2-style model whose high-resolution front stage is the
/// memory wall: the 96×96×16 input activation alone is 147,456 bytes —
/// more than the 128 KB device's entire SRAM — so **every** whole-tensor
/// policy (vMCU, vMCU-fused, TinyEngine, HMCOS) fails to deploy it.
/// Patch-based execution (`PlannerKind::VmcuPatched`) runs the four
/// spatial front layers tile by tile, where only a tile's
/// receptive-field slab is resident, and the model fits with room to
/// spare — the "opens a new workload" model of the zoo.
///
/// # Panics
///
/// Panics if the baked-in layer shapes fail to chain — impossible for
/// these constants.
pub fn hires_front_stage() -> Graph {
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut dw1 = DepthwiseParams::new(96, 96, 16, 3, 3, 2, 1, rq);
    dw1.clamp = (0, 127);
    let mut pw1 = PointwiseParams::new(48, 48, 16, 24, rq);
    pw1.clamp = (0, 127);
    let mut dw2 = DepthwiseParams::new(48, 48, 24, 3, 3, 2, 1, rq);
    dw2.clamp = (0, 127);
    let mut pw2 = PointwiseParams::new(24, 24, 24, 32, rq);
    pw2.clamp = (0, 127);
    let mut ib = IbParams::new(24, 32, 64, 32, 3, (1, 1, 1));
    ib.clamp1 = (0, 127);
    ib.clamp2 = (0, 127);
    Graph::linear(
        "hires-front-stage",
        vec![
            LayerDesc::Depthwise(dw1),
            LayerDesc::Pointwise(pw1),
            LayerDesc::Depthwise(dw2),
            LayerDesc::Pointwise(pw2),
            LayerDesc::Ib(ib),
        ],
    )
    .expect("front-stage shapes chain")
}

/// The split-only model: a deep 40×40 expand–project stack that no
/// *single* 128 KB device can hold under **any** policy, but a 2-device
/// split pipeline can. The leading inverted bottleneck is deliberate —
/// patch-based planning cannot tile through an `Ib` module, so the
/// patched policy falls back to the fused plan and fails like everyone
/// else. The fused chain over all the expand–project blocks is
/// *profitable* (it undercuts the 153.6 KB wide intermediates) yet its
/// accumulated line-buffer rings still overshoot 128 KB; cutting the
/// chain between blocks — where the tensor is a narrow 25.6 KB — gives
/// every stage a comfortable fused footprint. The model that motivates
/// `PlannerKind::VmcuSplit`.
///
/// # Panics
///
/// Panics if the baked-in layer shapes fail to chain — impossible for
/// these constants.
pub fn hires_split_only() -> Graph {
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut front = IbParams::new(40, 16, 32, 16, 3, (1, 1, 1));
    front.clamp1 = (0, 127);
    front.clamp2 = (0, 127);
    let mut layers = vec![LayerDesc::Ib(front)];
    for _ in 0..7 {
        let mut expand = PointwiseParams::new(40, 40, 16, 96, rq);
        expand.clamp = (0, 127);
        let mut dw = DepthwiseParams::new(40, 40, 96, 3, 3, 1, 1, rq);
        dw.clamp = (0, 127);
        let project = PointwiseParams::new(40, 40, 96, 16, rq);
        layers.push(LayerDesc::Pointwise(expand));
        layers.push(LayerDesc::Depthwise(dw));
        layers.push(LayerDesc::Pointwise(project));
    }
    Graph::linear("hires-split-only", layers).expect("block shapes chain")
}

/// A named deployable model for fleet serving.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedGraph {
    /// Catalog name requests refer to.
    pub name: &'static str,
    /// The model graph.
    pub graph: Graph,
}

/// The fleet-serving catalog: the models a `vmcu-serve` request stream
/// draws from. Every entry is executable by both the vMCU and the
/// TinyEngine executors (no dense 2D convolutions), and the mix spans the
/// interesting admission regimes at 128 KB: tiny always-fit modules
/// (S5/S6), mid-size chains (the demo net), and the Figure 7 boundary
/// cases that deploy under vMCU but not under tensor-level planning.
///
/// # Panics
///
/// Panics if any catalog entry's fixed shapes fail to chain —
/// impossible for these constants.
pub fn fleet_catalog() -> Vec<NamedGraph> {
    let fig7 = fig7_cases();
    let vww = mcunet_5fps_vww();
    let single_pw = |i: usize| {
        Graph::linear(
            fig7[i].name.clone(),
            vec![LayerDesc::Pointwise(fig7[i].params)],
        )
        .expect("single layer always chains")
    };
    let single_ib = |i: usize| {
        Graph::linear(vww[i].name, vec![LayerDesc::Ib(vww[i].params)])
            .expect("single layer always chains")
    };
    vec![
        NamedGraph {
            name: "demo-linear-net",
            graph: demo_linear_net(),
        },
        NamedGraph {
            name: "vww-s5",
            graph: single_ib(4),
        },
        NamedGraph {
            name: "vww-s6",
            graph: single_ib(5),
        },
        // Fig. 7 case 1 (H/W80,C16,K16): fits 128 KB under vMCU only.
        NamedGraph {
            name: "fig7-hw80-c16-k16",
            graph: single_pw(0),
        },
        // Fig. 7 case 5 (H/W40,C32,K16): borderline — vMCU comfortably
        // in, tensor-level close to the edge.
        NamedGraph {
            name: "fig7-hw40-c32-k16",
            graph: single_pw(4),
        },
        // A deeper mixed chain from the differential-test generator.
        NamedGraph {
            name: "mixed-chain-9",
            graph: random_linear_net(9, 4),
        },
        // The unfused inverted bottleneck: admitted by every planner, but
        // the fusion pass prices it far below layer-at-a-time vMCU, so
        // the fused policy packs more clones per device.
        NamedGraph {
            name: "mbv2-block-unfused",
            graph: mbv2_block_unfused(),
        },
        // The spatial-bottleneck model: its 147 KB input activation OOMs
        // every whole-tensor policy at 128 KB; only patch-based
        // execution admits it.
        NamedGraph {
            name: "hires-front-stage",
            graph: hires_front_stage(),
        },
        // The capacity-frontier model: no single 128 KB device holds it
        // under any policy (patched included); only the multi-device
        // split pipeline admits it.
        NamedGraph {
            name: "hires-split-only",
            graph: hires_split_only(),
        },
    ]
}

/// A random shape-chained linear network for differential testing: a mix
/// of pointwise, depthwise, and inverted-bottleneck layers whose shapes
/// compose. Deterministic per seed.
///
/// # Panics
///
/// Panics if the generator emits a non-chaining layer sequence; every
/// transition above preserves the chain invariant, so it does not.
pub fn random_linear_net(seed: u64, layers: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut hw = [8usize, 10, 12][rng.gen_range(0..3)];
    let mut c = [4usize, 6, 8][rng.gen_range(0..3)];
    let mut out = Vec::new();
    for _ in 0..layers {
        match rng.gen_range(0..3) {
            0 => {
                let k = [4usize, 6, 8, 12][rng.gen_range(0..4)];
                out.push(LayerDesc::Pointwise(PointwiseParams::new(hw, hw, c, k, rq)));
                c = k;
            }
            1 => {
                // Depthwise keeps channels; occasionally strides down.
                let stride = if hw >= 8 && rng.gen_bool(0.3) { 2 } else { 1 };
                out.push(LayerDesc::Depthwise(DepthwiseParams::new(
                    hw, hw, c, 3, 3, stride, 1, rq,
                )));
                hw = (hw + 2 - 3) / stride + 1;
            }
            _ => {
                let expand = rng.gen_range(2..4);
                let c_out = if rng.gen_bool(0.5) {
                    c
                } else {
                    (c + 2).min(12)
                };
                let s2 = if hw >= 8 && rng.gen_bool(0.25) { 2 } else { 1 };
                let mut p = IbParams::new(hw, c, c * expand, c_out, 3, (1, s2, 1));
                p.clamp1 = (0, 127);
                p.clamp2 = (0, 127);
                out.push(LayerDesc::Ib(p));
                hw = p.hw2();
                c = c_out;
            }
        }
    }
    Graph::linear(format!("random-{seed}"), out).expect("generator chains shapes")
}

/// An MBv2-style residual block as an explicit DAG: expand → depthwise →
/// project, with the block input carried around the branch into an
/// elementwise [`LayerDesc::Add`]. The graph input stays live until the
/// merge — the canonical last-consumer liveness case.
///
/// # Panics
///
/// Panics if the baked-in node shapes fail to merge — impossible for
/// these constants.
pub fn mbv2_residual_dag() -> Graph {
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut expand = PointwiseParams::new(12, 12, 16, 48, rq);
    expand.clamp = (0, 127);
    let mut dw = DepthwiseParams::new(12, 12, 48, 3, 3, 1, 1, rq);
    dw.clamp = (0, 127);
    let project = PointwiseParams::new(12, 12, 48, 16, rq);
    Graph::dag(
        "mbv2-residual-dag",
        vec![
            (LayerDesc::Pointwise(expand), vec![NodeInput::GraphInput]),
            (LayerDesc::Depthwise(dw), vec![NodeInput::Node(0)]),
            (LayerDesc::Pointwise(project), vec![NodeInput::Node(1)]),
            (
                LayerDesc::Add(AddParams::new(12, 12, 16)),
                vec![NodeInput::Node(2), NodeInput::GraphInput],
            ),
        ],
    )
    .expect("residual block shapes merge")
}

/// A two-head output net: a shared trunk feeding two pointwise heads
/// whose outputs are channel-concatenated into the single graph output.
/// The trunk tensor has two consumers — the multi-successor liveness
/// case.
///
/// # Panics
///
/// Panics if the baked-in node shapes fail to merge — impossible for
/// these constants.
pub fn two_head_net() -> Graph {
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut trunk = PointwiseParams::new(12, 12, 8, 16, rq);
    trunk.clamp = (0, 127);
    let head_a = PointwiseParams::new(12, 12, 16, 6, rq);
    let head_b = PointwiseParams::new(12, 12, 16, 10, rq);
    Graph::dag(
        "two-head-net",
        vec![
            (LayerDesc::Pointwise(trunk), vec![NodeInput::GraphInput]),
            (LayerDesc::Pointwise(head_a), vec![NodeInput::Node(0)]),
            (LayerDesc::Pointwise(head_b), vec![NodeInput::Node(0)]),
            (
                LayerDesc::Concat(ConcatParams::new(12, 12, 6, 10)),
                vec![NodeInput::Node(1), NodeInput::Node(2)],
            ),
        ],
    )
    .expect("head shapes concat")
}

/// The reorder-only model: two independent fat branches off the input,
/// each expanded to a ~70 KB tensor and then reduced to a sliver, merged
/// by a residual add. The *default* node order interleaves the branches
/// (expand A, expand B, reduce A, reduce B), so both fat tensors are
/// co-resident and the peak exceeds a 128 KB device under **every**
/// planner. Executing one branch to completion before starting the other
/// (`PlannerKind::VmcuReorder`'s searched order) keeps a single fat
/// tensor live at a time and the model fits with room to spare.
///
/// # Panics
///
/// Panics if the baked-in node shapes fail to merge — impossible for
/// these constants.
pub fn branchy_oom_net() -> Graph {
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let mut expand_a = PointwiseParams::new(30, 30, 16, 80, rq);
    expand_a.clamp = (0, 127);
    let mut expand_b = expand_a;
    expand_b.clamp = (0, 126); // distinct branch semantics
    let reduce = PointwiseParams::new(30, 30, 80, 4, rq);
    Graph::dag(
        "branchy-oom-net",
        vec![
            (LayerDesc::Pointwise(expand_a), vec![NodeInput::GraphInput]),
            (LayerDesc::Pointwise(expand_b), vec![NodeInput::GraphInput]),
            (LayerDesc::Pointwise(reduce), vec![NodeInput::Node(0)]),
            (LayerDesc::Pointwise(reduce), vec![NodeInput::Node(1)]),
            (
                LayerDesc::Add(AddParams::new(30, 30, 4)),
                vec![NodeInput::Node(2), NodeInput::Node(3)],
            ),
        ],
    )
    .expect("branch shapes merge")
}

/// The branchy zoo: the DAG models exercised by the reorder planner's
/// benches and end-to-end tests.
pub fn branchy_zoo() -> Vec<Graph> {
    vec![mbv2_residual_dag(), two_head_net(), branchy_oom_net()]
}

/// A random branchy DAG for differential testing: a pool of pointwise /
/// stride-1 depthwise nodes at a fixed spatial size, with random skip
/// edges flowing into [`LayerDesc::Add`] / [`LayerDesc::Concat`] merges,
/// closed off so every node feeds the single sink. Deterministic per
/// seed.
///
/// # Panics
///
/// Panics if the generator wires a shape-inconsistent DAG; the fixed
/// spatial size and channel bookkeeping above rule that out.
pub fn random_dag_net(seed: u64, body_nodes: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let rq = Requant::from_scale(1.0 / 64.0, 0);
    let hw = [6usize, 8, 10][rng.gen_range(0..3)];
    let c0 = [4usize, 8][rng.gen_range(0..2)];
    let mut nodes: Vec<(LayerDesc, Vec<NodeInput>)> = Vec::new();
    // Output channels per produced tensor, and whether it has a consumer.
    let mut ch: Vec<usize> = Vec::new();
    let mut consumed: Vec<bool> = Vec::new();

    let push = |nodes: &mut Vec<(LayerDesc, Vec<NodeInput>)>,
                ch: &mut Vec<usize>,
                consumed: &mut Vec<bool>,
                layer: LayerDesc,
                ins: Vec<NodeInput>| {
        for edge in &ins {
            if let NodeInput::Node(j) = edge {
                consumed[*j] = true;
            }
        }
        ch.push(layer.out_shape()[2]);
        consumed.push(false);
        nodes.push((layer, ins));
    };

    // Node 0 always consumes the graph input.
    let k0 = [4usize, 6, 8][rng.gen_range(0..3)];
    push(
        &mut nodes,
        &mut ch,
        &mut consumed,
        LayerDesc::Pointwise(PointwiseParams::new(hw, hw, c0, k0, rq)),
        vec![NodeInput::GraphInput],
    );

    for _ in 0..body_nodes {
        let n = nodes.len();
        // Prefer extending an unconsumed tensor so branches stay narrow.
        let src = (0..n)
            .filter(|&i| !consumed[i])
            .min_by_key(|&i| i)
            .filter(|_| rng.gen_bool(0.7))
            .unwrap_or_else(|| rng.gen_range(0..n));
        match rng.gen_range(0..4) {
            // Residual add with an earlier same-channel tensor.
            0 => {
                let mates: Vec<usize> = (0..n).filter(|&j| j != src && ch[j] == ch[src]).collect();
                if let Some(&mate) = mates.first() {
                    let layer = LayerDesc::Add(AddParams::new(hw, hw, ch[src]));
                    push(
                        &mut nodes,
                        &mut ch,
                        &mut consumed,
                        layer,
                        vec![NodeInput::Node(src), NodeInput::Node(mate)],
                    );
                    continue;
                }
                let k = [4usize, 6, 8, 12][rng.gen_range(0..4)];
                let layer = LayerDesc::Pointwise(PointwiseParams::new(hw, hw, ch[src], k, rq));
                push(
                    &mut nodes,
                    &mut ch,
                    &mut consumed,
                    layer,
                    vec![NodeInput::Node(src)],
                );
            }
            // Channel concat with any earlier tensor (bounded width).
            1 => {
                let mates: Vec<usize> = (0..n)
                    .filter(|&j| j != src && ch[j] + ch[src] <= 24)
                    .collect();
                if let Some(&mate) = mates.last() {
                    let layer = LayerDesc::Concat(ConcatParams::new(hw, hw, ch[src], ch[mate]));
                    push(
                        &mut nodes,
                        &mut ch,
                        &mut consumed,
                        layer,
                        vec![NodeInput::Node(src), NodeInput::Node(mate)],
                    );
                    continue;
                }
                let k = [4usize, 6][rng.gen_range(0..2)];
                let layer = LayerDesc::Pointwise(PointwiseParams::new(hw, hw, ch[src], k, rq));
                push(
                    &mut nodes,
                    &mut ch,
                    &mut consumed,
                    layer,
                    vec![NodeInput::Node(src)],
                );
            }
            // Stride-1 depthwise keeps shape.
            2 => {
                let layer =
                    LayerDesc::Depthwise(DepthwiseParams::new(hw, hw, ch[src], 3, 3, 1, 1, rq));
                push(
                    &mut nodes,
                    &mut ch,
                    &mut consumed,
                    layer,
                    vec![NodeInput::Node(src)],
                );
            }
            // Pointwise — sometimes forking off an already-consumed
            // tensor (a skip edge / second consumer).
            _ => {
                let fork = if n > 1 && rng.gen_bool(0.4) {
                    rng.gen_range(0..n)
                } else {
                    src
                };
                let k = [4usize, 6, 8, 12][rng.gen_range(0..4)];
                let layer = LayerDesc::Pointwise(PointwiseParams::new(hw, hw, ch[fork], k, rq));
                push(
                    &mut nodes,
                    &mut ch,
                    &mut consumed,
                    layer,
                    vec![NodeInput::Node(fork)],
                );
            }
        }
    }

    // Close the DAG: merge leftover unconsumed tensors pairwise until a
    // single sink remains (the last node is always unconsumed, so the
    // final merge is the sink).
    loop {
        let open: Vec<usize> = (0..nodes.len()).filter(|&i| !consumed[i]).collect();
        let (Some(&u), Some(&v)) = (open.first(), open.get(1)) else {
            break;
        };
        let layer = if ch[u] == ch[v] {
            LayerDesc::Add(AddParams::new(hw, hw, ch[u]))
        } else {
            LayerDesc::Concat(ConcatParams::new(hw, hw, ch[u], ch[v]))
        };
        push(
            &mut nodes,
            &mut ch,
            &mut consumed,
            layer,
            vec![NodeInput::Node(u), NodeInput::Node(v)],
        );
    }

    Graph::dag(format!("random-dag-{seed}"), nodes).expect("generator builds valid DAGs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vww_has_eight_modules_matching_table2() {
        let m = mcunet_5fps_vww();
        assert_eq!(m.len(), 8);
        assert_eq!(m[0].params.in_bytes(), 6400); // S1: 20*20*16
        assert_eq!(m[0].params.mid_bytes(), 19200); // 20*20*48
        assert!(m
            .iter()
            .all(|x| x.params.has_residual() || x.params.c_in != x.params.c_out));
        // All VWW modules are stride-1 residual blocks except channel
        // changers S3, S4->? (S3: 24->16 no residual).
        assert!(!m[2].params.has_residual());
    }

    #[test]
    fn imagenet_has_seventeen_modules() {
        let m = mcunet_320kb_imagenet();
        assert_eq!(m.len(), 17);
        // Paper landmarks: B2's expanded tensor is 185,856 bytes (the
        // 247.8 KB TinyEngine bottleneck is A+B = 61,952 + 185,856).
        let b2 = &m[1].params;
        assert_eq!(b2.in_bytes() + b2.mid_bytes(), 247_808);
        // B1 input: 176*176*3 = 92,928 bytes.
        assert_eq!(m[0].params.in_bytes(), 92_928);
        // B16: 7x7 window over a 6x6 image works only due to padding 3.
        assert_eq!(m[15].params.hw2(), 6);
    }

    #[test]
    fn fig7_cases_match_paper_labels() {
        let cases = fig7_cases();
        assert_eq!(cases.len(), 9);
        assert_eq!(cases[0].name, "H/W80,C16,K16");
        assert_eq!(cases[0].params.in_bytes(), 102_400);
        assert_eq!(cases[3].params.out_bytes(), 51_200);
        assert_eq!(cases[8].params.k, 128);
    }

    #[test]
    fn random_nets_chain_for_many_seeds() {
        for seed in 0..50 {
            let g = random_linear_net(seed, 4);
            assert_eq!(g.len(), 4, "seed {seed}");
            assert!(!g.in_shape().is_empty());
        }
    }

    #[test]
    fn random_nets_are_deterministic() {
        assert_eq!(random_linear_net(7, 5), random_linear_net(7, 5));
    }

    #[test]
    fn fleet_catalog_is_named_and_deterministic() {
        let cat = fleet_catalog();
        assert!(cat.len() >= 5);
        let mut names: Vec<_> = cat.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "catalog names must be unique");
        assert_eq!(fleet_catalog(), cat, "catalog must be deterministic");
        // Serving executors support everything except dense 2D conv.
        assert!(cat
            .iter()
            .flat_map(|m| m.graph.layers())
            .all(|l| !matches!(l, LayerDesc::Conv2d(_))));
    }

    #[test]
    fn demo_net_chains_and_runs_shapes() {
        let g = demo_linear_net();
        assert_eq!(g.in_shape(), vec![12, 12, 4]);
        assert_eq!(g.out_shape(), vec![6, 6, 32]);
    }

    #[test]
    fn branchy_zoo_models_are_dags() {
        for g in branchy_zoo() {
            assert!(!g.is_chain(), "{} must branch", g.name);
            assert!(g.layers().iter().any(LayerDesc::is_merge));
        }
        assert_eq!(mbv2_residual_dag().out_shape(), vec![12, 12, 16]);
        assert_eq!(two_head_net().out_shape(), vec![12, 12, 16]);
        assert_eq!(branchy_oom_net().out_shape(), vec![30, 30, 4]);
    }

    #[test]
    fn random_dags_build_for_many_seeds() {
        for seed in 0..100 {
            let g = random_dag_net(seed, 5);
            assert!(!g.is_empty(), "seed {seed}");
            assert!(!g.in_shape().is_empty());
            // The sink is the last node: everything else is consumed.
            let mut consumed = vec![false; g.len()];
            for ins in g.inputs() {
                for edge in ins {
                    if let crate::graph::NodeInput::Node(j) = edge {
                        consumed[*j] = true;
                    }
                }
            }
            assert!(consumed[..g.len() - 1].iter().all(|&c| c), "seed {seed}");
        }
    }

    #[test]
    fn random_dags_are_deterministic_and_branchy_somewhere() {
        assert_eq!(random_dag_net(3, 6), random_dag_net(3, 6));
        // Across a seed range the generator must actually emit merges.
        assert!((0..20).any(|s| random_dag_net(s, 6)
            .layers()
            .iter()
            .any(LayerDesc::is_merge)));
    }
}
