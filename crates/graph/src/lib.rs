//! # vmcu-graph — model graphs and the evaluation model zoo
//!
//! DNN [graphs](graph::Graph) — linear chains and branchy DAGs with
//! explicit multi-input edges — over the kernel parameter blocks, a
//! [reference executor](exec) (oracle), and the [zoo] containing
//! every workload of the paper's evaluation: the nine Figure 7/8
//! single-layer cases and all Table 2 inverted-bottleneck modules of
//! MCUNet-5fps-VWW and MCUNet-320KB-ImageNet.
//!
//! # Examples
//!
//! ```
//! use vmcu_graph::zoo;
//!
//! let vww = zoo::mcunet_5fps_vww();
//! assert_eq!(vww.len(), 8);
//! // S1 is the network's memory bottleneck in the paper.
//! assert_eq!(vww[0].params.in_bytes() + vww[0].params.mid_bytes(), 25_600);
//! ```

pub mod exec;
#[allow(clippy::module_inception)]
pub mod graph;
pub mod layer;
pub mod zoo;

pub use graph::{Graph, GraphBuildError, NodeInput, ShapeMismatchError};
pub use layer::{LayerDesc, LayerWeights};
