//! Linear model graphs.
//!
//! The networks the paper evaluates are linear chains of modules — the
//! very structure where scheduling-based memory optimizers (Serenity,
//! HMCOS) find nothing to reorder and vMCU's segment overlap is the only
//! lever (§8.4). A [`Graph`] is that chain, with shape-chaining validated
//! at construction.

use crate::layer::{LayerDesc, LayerWeights};
use std::fmt;

/// A linear DNN graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Model name.
    pub name: String,
    layers: Vec<LayerDesc>,
}

/// Error from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// Index of the offending layer.
    pub layer: usize,
    /// Producer output shape.
    pub produced: Vec<usize>,
    /// Consumer input shape.
    pub expected: Vec<usize>,
}

impl fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer {} expects input shape {:?} but predecessor produces {:?}",
            self.layer, self.expected, self.produced
        )
    }
}

impl std::error::Error for ShapeMismatchError {}

impl Graph {
    /// Builds a linear graph, validating that consecutive layer shapes
    /// chain.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatchError`] on the first mismatching edge.
    pub fn linear(
        name: impl Into<String>,
        layers: Vec<LayerDesc>,
    ) -> Result<Self, ShapeMismatchError> {
        for i in 1..layers.len() {
            let produced = layers[i - 1].out_shape();
            let expected = layers[i].in_shape();
            if produced != expected {
                return Err(ShapeMismatchError {
                    layer: i,
                    produced,
                    expected,
                });
            }
        }
        Ok(Self {
            name: name.into(),
            layers,
        })
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[LayerDesc] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the graph has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Input shape of the whole graph.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn in_shape(&self) -> Vec<usize> {
        self.layers.first().expect("non-empty graph").in_shape()
    }

    /// Output shape of the whole graph.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn out_shape(&self) -> Vec<usize> {
        self.layers.last().expect("non-empty graph").out_shape()
    }

    /// Total weight bytes across layers (Flash budget).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(LayerDesc::weight_bytes).sum()
    }

    /// Deterministic weights for every layer.
    pub fn random_weights(&self, seed: u64) -> Vec<LayerWeights> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| LayerWeights::random(l, seed.wrapping_add(1000 * i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_kernels::params::{DepthwiseParams, PointwiseParams};
    use vmcu_tensor::Requant;

    fn pw(h: usize, c: usize, k: usize) -> LayerDesc {
        LayerDesc::Pointwise(PointwiseParams::new(h, h, c, k, Requant::identity()))
    }

    #[test]
    fn chains_validate() {
        let g = Graph::linear("g", vec![pw(8, 4, 8), pw(8, 8, 16)]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.in_shape(), vec![8, 8, 4]);
        assert_eq!(g.out_shape(), vec![8, 8, 16]);
    }

    #[test]
    fn mismatches_are_rejected_with_context() {
        let err = Graph::linear("g", vec![pw(8, 4, 8), pw(8, 16, 16)]).unwrap_err();
        assert_eq!(err.layer, 1);
        assert!(err.to_string().contains("expects input shape"));
    }

    #[test]
    fn mixed_layer_chain() {
        let g = Graph::linear(
            "g",
            vec![
                pw(8, 4, 8),
                LayerDesc::Depthwise(DepthwiseParams::new(
                    8,
                    8,
                    8,
                    3,
                    3,
                    2,
                    1,
                    Requant::identity(),
                )),
                pw(4, 8, 4),
            ],
        )
        .unwrap();
        assert_eq!(g.out_shape(), vec![4, 4, 4]);
        assert!(g.weight_bytes() > 0);
        assert_eq!(g.random_weights(1).len(), 3);
    }
}
