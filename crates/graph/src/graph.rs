//! Model graphs: linear chains and branchy DAGs.
//!
//! The networks the paper evaluates are linear chains of modules — the
//! very structure where scheduling-based memory optimizers (Serenity,
//! HMCOS) find nothing to reorder and vMCU's segment overlap is the only
//! lever (§8.4). A [`Graph`] is that chain generalized to a DAG: each
//! node names its inputs explicitly (the graph input or an earlier
//! node), so residual adds, concats, and multi-head trunks are
//! expressible, and a tensor stays live until its *last* consumer.
//! Node index order is the default topological order; [`Graph::linear`]
//! builds the chain special case with the same shape validation as
//! before.

use crate::layer::{LayerDesc, LayerWeights};
use std::fmt;

/// One input edge of a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeInput {
    /// The graph's external input tensor.
    GraphInput,
    /// The output of an earlier node (by index).
    Node(usize),
}

/// A DNN graph: a DAG of layers in a fixed default topological order.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Model name.
    pub name: String,
    layers: Vec<LayerDesc>,
    /// Per-node input edges; `inputs[i].len()` equals layer `i`'s arity.
    inputs: Vec<Vec<NodeInput>>,
}

/// Error from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// Index of the offending layer.
    pub layer: usize,
    /// Producer output shape.
    pub produced: Vec<usize>,
    /// Consumer input shape.
    pub expected: Vec<usize>,
}

impl fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer {} expects input shape {:?} but predecessor produces {:?}",
            self.layer, self.expected, self.produced
        )
    }
}

impl std::error::Error for ShapeMismatchError {}

/// Error from DAG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphBuildError {
    /// An input edge references a shape that does not match.
    Shape(ShapeMismatchError),
    /// A node references itself or a later node (not a DAG order).
    ForwardEdge {
        /// Consumer node.
        node: usize,
        /// Referenced (not-yet-executed) producer.
        input: usize,
    },
    /// A node has the wrong number of inputs for its layer kind.
    Arity {
        /// Offending node.
        node: usize,
        /// Inputs the layer kind expects.
        expected: usize,
        /// Inputs the edge list supplies.
        got: usize,
    },
    /// A non-final node's output is never consumed.
    DeadNode {
        /// The unconsumed node.
        node: usize,
    },
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphBuildError::Shape(e) => e.fmt(f),
            GraphBuildError::ForwardEdge { node, input } => {
                write!(
                    f,
                    "node {node} references node {input}, which is not earlier in the DAG order"
                )
            }
            GraphBuildError::Arity {
                node,
                expected,
                got,
            } => write!(f, "node {node} expects {expected} input(s) but got {got}"),
            GraphBuildError::DeadNode { node } => {
                write!(f, "node {node} is not the output and has no consumer")
            }
            GraphBuildError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphBuildError {}

impl From<ShapeMismatchError> for GraphBuildError {
    fn from(e: ShapeMismatchError) -> Self {
        GraphBuildError::Shape(e)
    }
}

impl Graph {
    /// Builds a linear graph, validating that consecutive layer shapes
    /// chain.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatchError`] on the first mismatching edge.
    pub fn linear(
        name: impl Into<String>,
        layers: Vec<LayerDesc>,
    ) -> Result<Self, ShapeMismatchError> {
        for i in 1..layers.len() {
            let produced = layers[i - 1].out_shape();
            let expected = layers[i].in_shape();
            if produced != expected {
                return Err(ShapeMismatchError {
                    layer: i,
                    produced,
                    expected,
                });
            }
        }
        let inputs = (0..layers.len())
            .map(|i| {
                if i == 0 {
                    vec![NodeInput::GraphInput]
                } else {
                    vec![NodeInput::Node(i - 1)]
                }
            })
            .collect();
        Ok(Self {
            name: name.into(),
            layers,
            inputs,
        })
    }

    /// Builds a DAG from `(layer, inputs)` pairs in topological order.
    ///
    /// Validation: every edge must point to the graph input or an
    /// earlier node, arity must match the layer kind (merges take two
    /// inputs, everything else one), every produced shape must match the
    /// consumer's expected shape at that position, all `GraphInput`
    /// consumers must agree on the input shape, and every node except
    /// the last (the graph output) must be consumed at least once.
    ///
    /// # Errors
    ///
    /// Returns [`GraphBuildError`] naming the first offending node.
    pub fn dag(
        name: impl Into<String>,
        nodes: Vec<(LayerDesc, Vec<NodeInput>)>,
    ) -> Result<Self, GraphBuildError> {
        if nodes.is_empty() {
            return Err(GraphBuildError::Empty);
        }
        let mut graph_in: Option<Vec<usize>> = None;
        let mut consumed = vec![false; nodes.len()];
        for (i, (layer, ins)) in nodes.iter().enumerate() {
            let expected_shapes = layer.in_shapes();
            if ins.len() != expected_shapes.len() {
                return Err(GraphBuildError::Arity {
                    node: i,
                    expected: expected_shapes.len(),
                    got: ins.len(),
                });
            }
            for (slot, edge) in ins.iter().enumerate() {
                let expected = &expected_shapes[slot];
                match edge {
                    NodeInput::GraphInput => match &graph_in {
                        None => graph_in = Some(expected.clone()),
                        Some(shape) if shape != expected => {
                            return Err(GraphBuildError::Shape(ShapeMismatchError {
                                layer: i,
                                produced: shape.clone(),
                                expected: expected.clone(),
                            }))
                        }
                        Some(_) => {}
                    },
                    NodeInput::Node(j) => {
                        if *j >= i {
                            return Err(GraphBuildError::ForwardEdge { node: i, input: *j });
                        }
                        let produced = nodes[*j].0.out_shape();
                        if &produced != expected {
                            return Err(GraphBuildError::Shape(ShapeMismatchError {
                                layer: i,
                                produced,
                                expected: expected.clone(),
                            }));
                        }
                        consumed[*j] = true;
                    }
                }
            }
        }
        if let Some(dead) = consumed[..nodes.len() - 1].iter().position(|c| !c) {
            return Err(GraphBuildError::DeadNode { node: dead });
        }
        let (layers, inputs) = nodes.into_iter().unzip();
        Ok(Self {
            name: name.into(),
            layers,
            inputs,
        })
    }

    /// The layers in default (index) topological order.
    pub fn layers(&self) -> &[LayerDesc] {
        &self.layers
    }

    /// Per-node input edges, parallel to [`Graph::layers`].
    pub fn inputs(&self) -> &[Vec<NodeInput>] {
        &self.inputs
    }

    /// The input edges of one node.
    pub fn node_inputs(&self, node: usize) -> &[NodeInput] {
        &self.inputs[node]
    }

    /// Whether the graph is a straight-line chain (node `i` consumes
    /// exactly node `i-1`; node 0 consumes the graph input).
    pub fn is_chain(&self) -> bool {
        self.inputs.iter().enumerate().all(|(i, ins)| {
            if i == 0 {
                ins == &[NodeInput::GraphInput]
            } else {
                ins == &[NodeInput::Node(i - 1)]
            }
        })
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the graph has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Input shape of the whole graph — the shape every `GraphInput`
    /// consumer expects.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn in_shape(&self) -> Vec<usize> {
        for (i, ins) in self.inputs.iter().enumerate() {
            for (slot, edge) in ins.iter().enumerate() {
                if *edge == NodeInput::GraphInput {
                    return self.layers[i].in_shapes().swap_remove(slot);
                }
            }
        }
        self.layers.first().expect("non-empty graph").in_shape()
    }

    /// Output shape of the whole graph (the last node is the output).
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn out_shape(&self) -> Vec<usize> {
        self.layers.last().expect("non-empty graph").out_shape()
    }

    /// Total weight bytes across layers (Flash budget).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(LayerDesc::weight_bytes).sum()
    }

    /// Deterministic weights for every layer.
    pub fn random_weights(&self, seed: u64) -> Vec<LayerWeights> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| LayerWeights::random(l, seed.wrapping_add(1000 * i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_kernels::params::{AddParams, ConcatParams, DepthwiseParams, PointwiseParams};
    use vmcu_tensor::Requant;

    fn pw(h: usize, c: usize, k: usize) -> LayerDesc {
        LayerDesc::Pointwise(PointwiseParams::new(h, h, c, k, Requant::identity()))
    }

    #[test]
    fn chains_validate() {
        let g = Graph::linear("g", vec![pw(8, 4, 8), pw(8, 8, 16)]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.in_shape(), vec![8, 8, 4]);
        assert_eq!(g.out_shape(), vec![8, 8, 16]);
        assert!(g.is_chain());
        assert_eq!(g.node_inputs(1), &[NodeInput::Node(0)]);
    }

    #[test]
    fn mismatches_are_rejected_with_context() {
        let err = Graph::linear("g", vec![pw(8, 4, 8), pw(8, 16, 16)]).unwrap_err();
        assert_eq!(err.layer, 1);
        assert!(err.to_string().contains("expects input shape"));
    }

    #[test]
    fn mixed_layer_chain() {
        let g = Graph::linear(
            "g",
            vec![
                pw(8, 4, 8),
                LayerDesc::Depthwise(DepthwiseParams::new(
                    8,
                    8,
                    8,
                    3,
                    3,
                    2,
                    1,
                    Requant::identity(),
                )),
                pw(4, 8, 4),
            ],
        )
        .unwrap();
        assert_eq!(g.out_shape(), vec![4, 4, 4]);
        assert!(g.weight_bytes() > 0);
        assert_eq!(g.random_weights(1).len(), 3);
    }

    #[test]
    fn residual_dag_validates() {
        // input → pw → Add(pw_out, input): the graph input stays live
        // until the merge.
        let g = Graph::dag(
            "res",
            vec![
                (pw(8, 4, 4), vec![NodeInput::GraphInput]),
                (
                    LayerDesc::Add(AddParams::new(8, 8, 4)),
                    vec![NodeInput::Node(0), NodeInput::GraphInput],
                ),
            ],
        )
        .unwrap();
        assert!(!g.is_chain());
        assert_eq!(g.in_shape(), vec![8, 8, 4]);
        assert_eq!(g.out_shape(), vec![8, 8, 4]);
    }

    #[test]
    fn two_head_concat_validates() {
        let g = Graph::dag(
            "heads",
            vec![
                (pw(8, 4, 8), vec![NodeInput::GraphInput]),
                (pw(8, 8, 6), vec![NodeInput::Node(0)]),
                (pw(8, 8, 10), vec![NodeInput::Node(0)]),
                (
                    LayerDesc::Concat(ConcatParams::new(8, 8, 6, 10)),
                    vec![NodeInput::Node(1), NodeInput::Node(2)],
                ),
            ],
        )
        .unwrap();
        assert_eq!(g.out_shape(), vec![8, 8, 16]);
    }

    #[test]
    fn forward_edges_are_rejected() {
        let err = Graph::dag(
            "bad",
            vec![
                (pw(8, 4, 4), vec![NodeInput::Node(1)]),
                (pw(8, 4, 4), vec![NodeInput::GraphInput]),
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GraphBuildError::ForwardEdge { node: 0, input: 1 }
        ));
    }

    #[test]
    fn merge_arity_is_enforced() {
        let err = Graph::dag(
            "bad",
            vec![
                (pw(8, 4, 4), vec![NodeInput::GraphInput]),
                (
                    LayerDesc::Add(AddParams::new(8, 8, 4)),
                    vec![NodeInput::Node(0)],
                ),
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GraphBuildError::Arity {
                node: 1,
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn dead_nodes_are_rejected() {
        let err = Graph::dag(
            "bad",
            vec![
                (pw(8, 4, 4), vec![NodeInput::GraphInput]),
                (pw(8, 4, 8), vec![NodeInput::GraphInput]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, GraphBuildError::DeadNode { node: 0 }));
    }

    #[test]
    fn branch_shape_mismatches_are_rejected() {
        let err = Graph::dag(
            "bad",
            vec![
                (pw(8, 4, 6), vec![NodeInput::GraphInput]),
                (
                    LayerDesc::Add(AddParams::new(8, 8, 4)),
                    vec![NodeInput::Node(0), NodeInput::GraphInput],
                ),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, GraphBuildError::Shape(_)));
    }
}
