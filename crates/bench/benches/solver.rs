//! Criterion micro-benchmarks for the footprint solvers: the analytic
//! lex-decomposition must stay orders of magnitude faster than the exact
//! scan while returning the same answer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmcu::vmcu_solver::{analytic, closed_form, enumerate, FootprintProblem};

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver");
    for (m, n, k) in [(64, 8, 8), (400, 16, 16), (1600, 32, 32)] {
        let p = FootprintProblem::gemm(m, n, k);
        g.bench_with_input(
            BenchmarkId::new("enumerate", format!("{m}x{n}x{k}")),
            &p,
            |b, p| b.iter(|| enumerate::min_distance(black_box(p))),
        );
        g.bench_with_input(
            BenchmarkId::new("analytic", format!("{m}x{n}x{k}")),
            &p,
            |b, p| b.iter(|| analytic::min_distance(black_box(p))),
        );
        g.bench_with_input(
            BenchmarkId::new("closed_form", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |b, &(m, n, k)| b.iter(|| closed_form::gemm_min_distance(m, n, k)),
        );
    }
    g.finish();
}

fn bench_conv_problems(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver-conv");
    let p = FootprintProblem::conv2d(20, 20, 16, 16, 3, 3, 1, 1);
    g.bench_function("enumerate-conv-20x20", |b| {
        b.iter(|| enumerate::min_distance(black_box(&p)));
    });
    g.bench_function("analytic-conv-20x20", |b| {
        b.iter(|| analytic::min_distance(black_box(&p)));
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_conv_problems);
criterion_main!(benches);
