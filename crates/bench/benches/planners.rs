//! Criterion micro-benchmarks for the planners: planning a whole network
//! must stay interactive (the paper's planning is an offline compile step;
//! ours should still be snappy enough for NAS-in-the-loop use).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_plan::headroom::{max_image_scale, tinyengine_budget};
use vmcu::vmcu_plan::planner::named_ib_layers;

fn bench_planning(c: &mut Criterion) {
    let device = Device::stm32_f767zi();
    let layers = named_ib_layers(&zoo::mcunet_320kb_imagenet());
    let mut g = c.benchmark_group("plan-imagenet-17-modules");
    g.bench_function("vmcu", |b| {
        let p = VmcuPlanner::default();
        b.iter(|| p.plan(black_box(&layers), &device));
    });
    g.bench_function("tinyengine", |b| {
        b.iter(|| TinyEnginePlanner.plan(black_box(&layers), &device));
    });
    g.bench_function("hmcos", |b| {
        b.iter(|| HmcosPlanner.plan(black_box(&layers), &device));
    });
    g.finish();
}

fn bench_headroom(c: &mut Criterion) {
    let mut g = c.benchmark_group("headroom");
    g.sample_size(10);
    let p = zoo::mcunet_5fps_vww()[0].params;
    let budget = tinyengine_budget(&p);
    g.bench_function("image-scale-S1", |b| {
        let planner = VmcuPlanner::default();
        b.iter(|| max_image_scale(black_box(&p), &planner, budget));
    });
    g.finish();
}

criterion_group!(benches, bench_planning, bench_headroom);
criterion_main!(benches);
