//! Criterion micro-benchmarks for kernel simulation throughput: how fast
//! the simulator executes the segment-aware kernels versus the TinyEngine
//! baselines (host-side speed of the reproduction, not MCU speed).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_tensor::random;

fn bench_pointwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("pointwise-sim");
    g.sample_size(10);
    let case = &zoo::fig7_cases()[6]; // H/W24,C16,K32 — mid-size
    let layer = LayerDesc::Pointwise(case.params);
    let w = LayerWeights::random(&layer, 1);
    let input = random::tensor_i8(&layer.in_shape(), 2);
    let dev = Device::stm32_f767zi();
    g.bench_function("vmcu", |b| {
        let engine = Engine::new(dev.clone());
        b.iter(|| {
            engine
                .run_layer(&case.name, black_box(&layer), &w, &input)
                .unwrap()
        });
    });
    g.bench_function("tinyengine", |b| {
        let engine = Engine::new(dev.clone()).planner(PlannerKind::TinyEngine);
        b.iter(|| {
            engine
                .run_layer(&case.name, black_box(&layer), &w, &input)
                .unwrap()
        });
    });
    g.finish();
}

fn bench_fused_ib(c: &mut Criterion) {
    let mut g = c.benchmark_group("fused-ib-sim");
    g.sample_size(10);
    let m = &zoo::mcunet_5fps_vww()[4]; // S5: 5x5, 40->240->40
    let layer = LayerDesc::Ib(m.params);
    let w = LayerWeights::random(&layer, 3);
    let input = random::tensor_i8(&layer.in_shape(), 4);
    let dev = Device::stm32_f411re();
    for scheme in [IbScheme::RowBuffer, IbScheme::PixelWindow] {
        g.bench_function(format!("{scheme:?}"), |b| {
            let engine = Engine::new(dev.clone()).planner(PlannerKind::Vmcu(scheme));
            b.iter(|| {
                engine
                    .run_layer(m.name, black_box(&layer), &w, &input)
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pointwise, bench_fused_ib);
criterion_main!(benches);
