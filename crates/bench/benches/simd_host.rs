//! Criterion micro-benchmarks for the host-side hot loops this PR series
//! optimizes: the register-tiled `dot_tile_u8` GEMM micro-kernel and the
//! fused-chain row schedule. These measure how fast the *simulator*
//! executes on the host — the Rust-level cost of one simulated inference
//! — not simulated MCU cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vmcu::prelude::*;
use vmcu::vmcu_kernels::fused_chain::{
    chain_exec_distance, chain_workspace_bytes, run_fused_chain, FusedChain,
};
use vmcu::vmcu_kernels::intrinsics::dot_tile_u8;
use vmcu::vmcu_kernels::{ChainOp, PointwiseParams};
use vmcu::vmcu_pool::SegmentPool;
use vmcu::vmcu_sim::Machine;
use vmcu::vmcu_tensor::random;

fn bench_dot_tile(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot-tile-host");
    g.sample_size(10);
    let a: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    let b_mat: Vec<u8> = (0..64 * 16u32).map(|i| (i * 91 + 5) as u8).collect();
    let dev = Device::stm32_f767zi();
    g.bench_function("ki64-ni16-x256", |bch| {
        let mut m = Machine::new(dev.clone());
        bch.iter(|| {
            let mut acc = [0i32; 16];
            for _ in 0..256 {
                dot_tile_u8(&mut m, black_box(&a), black_box(&b_mat), 16, &mut acc, true);
            }
            acc
        });
    });
    g.finish();
}

fn bench_fused_chain_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("fused-chain-host");
    g.sample_size(10);
    // pw expand -> pw project: exercises the Pointwise compute_row arm,
    // the hottest path of the fused-chain inner loop.
    let rq = Requant::from_scale(1.0 / 32.0, 0);
    let chain = FusedChain::new(vec![
        ChainOp::Pointwise(PointwiseParams::new(16, 16, 8, 32, rq)),
        ChainOp::Pointwise(PointwiseParams::new(16, 16, 32, 8, rq)),
    ])
    .unwrap();
    let dev = Device::stm32_f767zi();
    let input = random::tensor_i8(&[16, 16, 8], 70);
    let weights = [
        random::tensor_i8(&[8, 32], 90),
        random::tensor_i8(&[32, 8], 91),
    ];
    g.bench_function("pw-expand-project-16x16", |bch| {
        bch.iter(|| {
            let mut m = Machine::new(dev.clone());
            let flash: Vec<usize> = weights
                .iter()
                .map(|w| m.host_program_flash(&w.as_bytes()).unwrap())
                .collect();
            let d = chain_exec_distance(&chain);
            let window = (chain.in_bytes() + d.max(0) as usize).max(chain.out_bytes());
            let mut pool = SegmentPool::new(&m, 0, window, chain.seg()).unwrap();
            pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
            run_fused_chain(&mut m, &mut pool, &chain, 0, -d, &flash, window).unwrap();
            black_box(m.counters.cycles);
            let _ = chain_workspace_bytes(&chain);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_dot_tile, bench_fused_chain_rows);
criterion_main!(benches);
