//! Table 3: latency and throughput of the VWW inverted bottlenecks.

use crate::result::{Check, ExpResult};
use crate::table::Table;
use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_tensor::random;

/// Paper latencies (ms) for vMCU and TinyEngine per module S1–S8.
pub const PAPER_VMCU_MS: [f64; 8] = [37.0, 37.0, 33.0, 28.0, 22.0, 20.0, 34.0, 27.0];
/// Paper TinyEngine latencies (ms).
pub const PAPER_TE_MS: [f64; 8] = [37.0, 37.0, 35.0, 29.0, 24.0, 19.0, 36.0, 28.0];

/// Regenerates Table 3 on STM32-F411RE.
///
/// # Panics
///
/// Panics if a VWW module fails to deploy on the F411RE or the two
/// executors disagree bit-exact — both would falsify the experiment.
pub fn table3() -> ExpResult {
    let device = Device::stm32_f411re();
    let mut t = Table::new(&[
        "module",
        "vMCU ms",
        "throughput img/s",
        "TinyEngine ms",
        "ratio",
        "paper ratio",
    ]);
    let mut checks = Vec::new();
    let mut ratios = Vec::new();
    for (i, m) in zoo::mcunet_5fps_vww().iter().enumerate() {
        let layer = LayerDesc::Ib(m.params);
        let w = LayerWeights::random(&layer, 31);
        let input = random::tensor_i8(&layer.in_shape(), 32);
        // The paper's measured latency parity corresponds to the
        // sliding-window fused kernel (its 11-segment workspace with
        // column-entry recomputation); see the scheme ablation.
        let (out_v, rep_v) = Engine::new(device.clone())
            .planner(PlannerKind::Vmcu(IbScheme::SlidingWindow))
            .run_layer(m.name, &layer, &w, &input)
            .expect("VWW fits F411RE under vMCU");
        let (out_t, rep_t) = Engine::new(device.clone())
            .planner(PlannerKind::TinyEngine)
            .run_layer(m.name, &layer, &w, &input)
            .expect("VWW fits F411RE under TinyEngine");
        assert_eq!(out_v, out_t, "module outputs must agree bit-exact");
        let ratio = rep_v.exec.latency_ms / rep_t.exec.latency_ms;
        ratios.push(ratio);
        t.row(vec![
            m.name.to_owned(),
            format!("{:.1}", rep_v.exec.latency_ms),
            format!("{:.0}", 1000.0 / rep_v.exec.latency_ms),
            format!("{:.1}", rep_t.exec.latency_ms),
            format!("{ratio:.2}x"),
            format!("{:.2}x", PAPER_VMCU_MS[i] / PAPER_TE_MS[i]),
        ]);
        checks.push(Check::in_range(
            format!("{} latency comparable to TinyEngine", m.name),
            ratio,
            0.55,
            1.45,
        ));
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    checks.push(Check::in_range(
        "mean vMCU/TinyEngine latency ratio (paper 1.03x)",
        mean,
        0.70,
        1.30,
    ));

    ExpResult {
        id: "table3".into(),
        title: "Latency of inverted bottlenecks in MCUNet-5fps-VWW".into(),
        paper_claim: "vMCU latency is comparable to TinyEngine (1.03x overall)".into(),
        table: t,
        checks,
        notes: vec![
            "absolute ms depend on the simulator's calibration; the check is the \
             ratio, which the paper reports as ~1.03x"
                .into(),
            "the RowBuffer fused kernel (the memory-default) runs ~1.5x faster than \
             TinyEngine by never recomputing expanded pixels — see the \
             ablation_ib_scheme experiment for the full memory/latency spectrum"
                .into(),
        ],
    }
}
