//! One module per regenerated table/figure (see DESIGN.md's experiment
//! index).

pub mod ablations;
pub mod fig1;
pub mod fig11_12;
pub mod fig7;
pub mod fig8;
pub mod fig9_10;
pub mod table3;
pub mod tables;

use crate::result::ExpResult;

/// Runs every experiment in paper order. `heavy` includes the simulated
/// executions (Figure 8, Table 3, ablations), which take noticeably
/// longer than the pure planning experiments.
pub fn run_all(heavy: bool) -> Vec<ExpResult> {
    let mut out = vec![
        tables::table1(),
        tables::table2(),
        fig1::fig1(),
        fig7::fig7(),
        fig9_10::fig9(),
        fig9_10::fig10(),
        fig11_12::fig11(),
        fig11_12::fig12(),
    ];
    if heavy {
        out.insert(4, fig8::fig8());
        out.push(table3::table3());
        out.push(ablations::ablation_ib_scheme());
        out.push(ablations::ablation_segment_size());
    }
    out
}
