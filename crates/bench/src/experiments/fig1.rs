//! The Figure 1(c) motivational example: tensor-level vs segment-level
//! management of a fully-connected layer (2×3 input segments, 2×2 output
//! segments).

use crate::result::{Check, ExpResult};
use crate::table::Table;
use vmcu::vmcu_solver::{analytic, enumerate, FootprintProblem};

/// Regenerates the motivational example.
pub fn fig1() -> ExpResult {
    let problem = FootprintProblem::gemm(2, 2, 3);
    let exact = enumerate::solve(&problem);
    let fast = analytic::solve(&problem);
    let disjoint = problem.in_size + problem.out_size;

    let mut t = Table::new(&["management", "segments", "empty segments ahead"]);
    t.row(vec![
        "tensor-level (disjoint)".into(),
        disjoint.to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "vMCU segment-level".into(),
        exact.footprint.to_string(),
        exact.min_distance.to_string(),
    ]);

    ExpResult {
        id: "fig1".into(),
        title: "Motivational example: FC layer, K=3, N=2, M=2".into(),
        paper_claim: "tensor-level needs 10 segments; segment-level needs 7".into(),
        checks: vec![
            Check::new("disjoint = 10", disjoint == 10, format!("{disjoint}")),
            Check::new(
                "segment-level = 7",
                exact.footprint == 7,
                format!("{}", exact.footprint),
            ),
            Check::new(
                "one empty segment ahead",
                exact.min_distance == 1,
                format!("{}", exact.min_distance),
            ),
            Check::new(
                "analytic solver agrees",
                fast == exact,
                format!("{fast:?} vs {exact:?}"),
            ),
        ],
        table: t,
        notes: vec![],
    }
}
