//! Figure 7: single-layer RAM usage on STM32-F411RE, TinyEngine vs vMCU.

use crate::result::{Check, ExpResult};
use crate::table::{kb, pct, Table};
use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_plan::planner::named_pointwise_layers;

/// Paper-reported reduction per case (fractions of TinyEngine RAM).
pub const PAPER_REDUCTIONS: [f64; 9] = [
    0.4945, 0.4910, 0.4699, 0.3308, 0.3193, 0.2926, 0.2946, 0.2386, 0.1201,
];

/// Regenerates Figure 7.
pub fn fig7() -> ExpResult {
    let device = Device::stm32_f411re();
    let layers = named_pointwise_layers(&zoo::fig7_cases());
    let te = TinyEnginePlanner.plan(&layers, &device);
    let vm = VmcuPlanner::default().plan(&layers, &device);

    let mut t = Table::new(&[
        "case",
        "TinyEngine KB",
        "vMCU KB",
        "reduction",
        "paper",
        "TE fits 128KB",
        "vMCU fits",
    ]);
    let mut checks = Vec::new();
    let mut reductions = Vec::new();
    for (i, (l_te, l_vm)) in te.layers.iter().zip(&vm.layers).enumerate() {
        let r = 1.0 - l_vm.measured_bytes as f64 / l_te.measured_bytes as f64;
        reductions.push(r);
        t.row(vec![
            l_te.name.clone(),
            kb(l_te.measured_bytes),
            kb(l_vm.measured_bytes),
            pct(r),
            pct(PAPER_REDUCTIONS[i]),
            if l_te.fits { "yes" } else { "OOM" }.to_owned(),
            if l_vm.fits { "yes" } else { "OOM" }.to_owned(),
        ]);
        // The two smallest cases are dominated by fixed per-deployment
        // overheads whose exact size on the authors' firmware is not
        // recoverable from the figure; allow a wider upper band there.
        let hi_slack = if i >= 7 { 0.13 } else { 0.06 };
        checks.push(Check::in_range(
            format!("{} reduction near paper", l_te.name),
            r,
            PAPER_REDUCTIONS[i] - 0.06,
            PAPER_REDUCTIONS[i] + hi_slack,
        ));
    }
    // The paper: TinyEngine exceeds the 128 KB limit on cases 1, 2, 4;
    // vMCU deploys all nine.
    for (i, expect_fit) in [(0, false), (1, false), (3, false)] {
        checks.push(Check::new(
            format!("TinyEngine case {} out of memory", i + 1),
            te.layers[i].fits == expect_fit,
            format!("measured {} KB", kb(te.layers[i].measured_bytes)),
        ));
    }
    checks.push(Check::new(
        "vMCU deploys all nine cases",
        vm.deployable(),
        "all fit 128 KB",
    ));
    let band = (
        reductions.iter().copied().fold(f64::INFINITY, f64::min),
        reductions.iter().copied().fold(0.0f64, f64::max),
    );
    checks.push(Check::in_range(
        "min reduction near 12%",
        band.0,
        0.06,
        0.26,
    ));
    checks.push(Check::in_range(
        "max reduction near 49.5%",
        band.1,
        0.44,
        0.52,
    ));

    ExpResult {
        id: "fig7".into(),
        title: "Single-layer RAM usage on STM32-F411RE".into(),
        paper_claim: "vMCU reduces RAM 12.01%-49.45%; TinyEngine OOMs on cases 1, 2, 4".into(),
        table: t,
        checks,
        notes: vec![
            "measured = planned activations + workspace + 4 KiB runtime overhead".into(),
            "case 9 (H/W6,C64,K128) reproduces at ~23% vs the paper's 12.01%: at \
             2-5 KB activations the paper's number is dominated by firmware \
             overheads not recoverable from the figure; all other cases land \
             within ±3pp"
                .into(),
        ],
    }
}
