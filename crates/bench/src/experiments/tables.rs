//! Table 1 (hardware landscape) and Table 2 (module configurations).

use crate::result::{Check, ExpResult};
use crate::table::Table;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_sim::TABLE1_PLATFORMS;

/// Regenerates Table 1.
pub fn table1() -> ExpResult {
    let mut t = Table::new(&["Hardware", "Memory", "Storage", "SW Support"]);
    for p in TABLE1_PLATFORMS {
        t.row(vec![
            p.hardware.to_owned(),
            p.memory.to_owned(),
            p.storage.to_owned(),
            p.sw_support.to_owned(),
        ]);
    }
    ExpResult {
        id: "table1".into(),
        title: "Features of accelerators, mobile devices, and MCUs".into(),
        paper_claim: "MCU memory is 2-5 orders of magnitude below mobile/cloud, with no OS".into(),
        checks: vec![Check::new(
            "three platform classes",
            t.rows.len() == 3,
            format!("{} rows", t.rows.len()),
        )],
        table: t,
        notes: vec![],
    }
}

/// Regenerates Table 2.
pub fn table2() -> ExpResult {
    let mut t = Table::new(&[
        "Name", "H/W", "C_in", "C_mid", "C_out", "R/S", "strides", "residual",
    ]);
    for m in zoo::mcunet_5fps_vww()
        .iter()
        .chain(&zoo::mcunet_320kb_imagenet())
    {
        let p = &m.params;
        t.row(vec![
            m.name.to_owned(),
            p.hw.to_string(),
            p.c_in.to_string(),
            p.c_mid.to_string(),
            p.c_out.to_string(),
            p.rs.to_string(),
            format!("{},{},{}", p.s1, p.s2, p.s3),
            if p.has_residual() { "yes" } else { "no" }.to_owned(),
        ]);
    }
    let rows = t.rows.len();
    ExpResult {
        id: "table2".into(),
        title: "Configurations of inverted bottlenecks".into(),
        paper_claim: "8 VWW modules + 17 measured ImageNet modules".into(),
        checks: vec![
            Check::new("8 + 17 modules", rows == 25, format!("{rows} rows")),
            Check::new(
                "B2 expanded tensor totals 247.8 KB with its input",
                zoo::mcunet_320kb_imagenet()[1].params.in_bytes()
                    + zoo::mcunet_320kb_imagenet()[1].params.mid_bytes()
                    == 247_808,
                "A+B at B2",
            ),
        ],
        table: t,
        notes: vec![],
    }
}
