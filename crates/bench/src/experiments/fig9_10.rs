//! Figures 9 and 10: per-module RAM for the two MCUNets under the three
//! planners.

use crate::result::{Check, ExpResult};
use crate::table::{kb, pct, Table};
use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo::{self, NamedIb};
use vmcu::vmcu_plan::planner::named_ib_layers;
use vmcu::vmcu_plan::MemoryPlan;

fn ram_figure(
    id: &str,
    title: &str,
    paper_claim: &str,
    modules: &[NamedIb],
    device: &Device,
    expect: Expectations,
) -> ExpResult {
    let layers = named_ib_layers(modules);
    let te = TinyEnginePlanner.plan(&layers, device);
    let hm = HmcosPlanner.plan(&layers, device);
    let vm = VmcuPlanner::default().plan(&layers, device);

    let mut t = Table::new(&[
        "module",
        "TinyEngine KB",
        "HMCOS KB",
        "vMCU KB",
        "vMCU vs TE",
    ]);
    for ((l_te, l_hm), l_vm) in te.layers.iter().zip(&hm.layers).zip(&vm.layers) {
        let r = 1.0 - l_vm.measured_bytes as f64 / l_te.measured_bytes as f64;
        t.row(vec![
            l_te.name.clone(),
            kb(l_te.measured_bytes),
            kb(l_hm.measured_bytes),
            kb(l_vm.measured_bytes),
            pct(r),
        ]);
    }

    let b_te = te.bottleneck_bytes() as f64 / 1000.0;
    let b_hm = hm.bottleneck_bytes() as f64 / 1000.0;
    let b_vm = vm.bottleneck_bytes() as f64 / 1000.0;
    let cut = 1.0 - b_vm / b_te;

    let mut checks = vec![
        Check::in_range(
            format!("TinyEngine bottleneck ≈ {:.1} KB", expect.te_kb),
            b_te,
            expect.te_kb * 0.9,
            expect.te_kb * 1.1,
        ),
        Check::in_range(
            format!("vMCU bottleneck ≈ {:.1} KB", expect.vm_kb),
            b_vm,
            expect.vm_kb * 0.85,
            expect.vm_kb * 1.15,
        ),
        Check::in_range(
            format!("bottleneck reduction ≈ {:.1}%", expect.cut * 100.0),
            cut,
            expect.cut - 0.10,
            expect.cut + 0.10,
        ),
        Check::new(
            "ordering vMCU < TinyEngine <= HMCOS on every module",
            ordered(&vm, &te, &hm),
            "per-module comparison",
        ),
        Check::new(
            format!("TinyEngine bottleneck at {}", expect.te_bottleneck),
            te.layers[te.bottleneck()].name == expect.te_bottleneck,
            te.layers[te.bottleneck()].name.clone(),
        ),
    ];
    if let Some(hm_kb) = expect.hm_kb {
        checks.push(Check::in_range(
            format!("HMCOS bottleneck ≈ {hm_kb:.1} KB"),
            b_hm,
            hm_kb * 0.85,
            hm_kb * 1.15,
        ));
    }
    if expect.vmcu_deploys_on_f411re {
        let f411 = Device::stm32_f411re();
        let vm_small = VmcuPlanner::default().plan(&layers, &f411);
        let te_small = TinyEnginePlanner.plan(&layers, &f411);
        checks.push(Check::new(
            "vMCU deploys on 128 KB F411RE; TinyEngine/HMCOS do not",
            vm_small.deployable() && !te_small.deployable(),
            format!(
                "vMCU bottleneck {} KB vs limit 131 KB",
                kb(vm_small.bottleneck_bytes())
            ),
        ));
    }

    ExpResult {
        id: id.into(),
        title: title.into(),
        paper_claim: paper_claim.into(),
        table: t,
        checks,
        notes: expect.notes,
    }
}

fn ordered(vm: &MemoryPlan, te: &MemoryPlan, hm: &MemoryPlan) -> bool {
    vm.layers
        .iter()
        .zip(&te.layers)
        .zip(&hm.layers)
        .all(|((v, t), h)| {
            v.measured_bytes < t.measured_bytes && t.measured_bytes <= h.measured_bytes
        })
}

struct Expectations {
    te_kb: f64,
    hm_kb: Option<f64>,
    vm_kb: f64,
    cut: f64,
    te_bottleneck: &'static str,
    vmcu_deploys_on_f411re: bool,
    notes: Vec<String>,
}

/// Regenerates Figure 9 (MCUNet-5fps-VWW on STM32-F411RE).
pub fn fig9() -> ExpResult {
    ram_figure(
        "fig9",
        "Inverted-bottleneck RAM for MCUNet-5fps-VWW on STM32-F411RE",
        "bottlenecks: TinyEngine 36.0 KB, HMCOS 48.8 KB, vMCU 13.9 KB (-61.5%)",
        &zoo::mcunet_5fps_vww(),
        &Device::stm32_f411re(),
        Expectations {
            te_kb: 36.0,
            hm_kb: Some(48.8),
            vm_kb: 13.9,
            cut: 0.615,
            te_bottleneck: "S1",
            vmcu_deploys_on_f411re: false,
            notes: vec![],
        },
    )
}

/// Regenerates Figure 10 (MCUNet-320KB-ImageNet on STM32-F767ZI).
pub fn fig10() -> ExpResult {
    ram_figure(
        "fig10",
        "Inverted-bottleneck RAM for MCUNet-320KB-ImageNet on STM32-F767ZI",
        "bottlenecks: TinyEngine 247.8 KB (B2), HMCOS 464.6 KB (B3), vMCU 102.7 KB (B1, -58.6%)",
        &zoo::mcunet_320kb_imagenet(),
        &Device::stm32_f767zi(),
        Expectations {
            te_kb: 251.9, // A+B at B2 (247.8) + im2col row + runtime overhead
            hm_kb: None,
            vm_kb: 102.7,
            cut: 0.586,
            te_bottleneck: "B2",
            vmcu_deploys_on_f411re: true,
            notes: vec![
                "our HMCOS model (no in-place, exact liveness) peaks at A+B+C ≈ 344.8 KB on B3; \
                 the paper measured 464.6 KB for the real HMCOS artifact, which evidently \
                 carries an extra expanded-tensor-sized buffer — our model is charitable \
                 to the baseline, so the vMCU-vs-HMCOS margin here is a lower bound"
                    .into(),
            ],
        },
    )
}
