//! Figures 11 and 12: NAS headroom at equal RAM — how much larger an image
//! or channel count vMCU affords within the RAM TinyEngine needs.

use crate::result::{Check, ExpResult};
use crate::table::Table;
use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_plan::headroom::{max_channel_scale, max_image_scale, tinyengine_budget};

fn scaling(
    id: &str,
    title: &str,
    paper_claim: &str,
    paper_band: (f64, f64),
    f: impl Fn(&IbParams, &VmcuPlanner, usize) -> f64,
) -> ExpResult {
    let planner = VmcuPlanner::default();
    let mut t = Table::new(&["module", "TinyEngine budget KB", "scale at equal RAM"]);
    let mut checks = Vec::new();
    let mut scales = Vec::new();
    for m in zoo::mcunet_5fps_vww() {
        let budget = tinyengine_budget(&m.params);
        let r = f(&m.params, &planner, budget);
        scales.push(r);
        t.row(vec![
            m.name.to_owned(),
            crate::table::kb(budget),
            format!("{r:.2}x"),
        ]);
        checks.push(Check::in_range(
            format!("{} scale exceeds 1x", m.name),
            r,
            1.05,
            4.5,
        ));
    }
    let lo = scales.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = scales.iter().copied().fold(0.0f64, f64::max);
    checks.push(Check::in_range(
        format!("min scale near paper {:.2}x", paper_band.0),
        lo,
        paper_band.0 - 0.25,
        paper_band.0 + 0.45,
    ));
    checks.push(Check::in_range(
        format!("max scale near paper {:.2}x", paper_band.1),
        hi,
        paper_band.1 - 0.80,
        paper_band.1 + 0.80,
    ));
    ExpResult {
        id: id.into(),
        title: title.into(),
        paper_claim: paper_claim.into(),
        table: t,
        checks,
        notes: vec![],
    }
}

/// Regenerates Figure 11 (image-size headroom).
pub fn fig11() -> ExpResult {
    scaling(
        "fig11",
        "Image-size increase at TinyEngine-equal RAM (MCUNet-5fps-VWW)",
        "image size (H and W) can grow 1.29x-2.58x",
        (1.29, 2.58),
        max_image_scale,
    )
}

/// Regenerates Figure 12 (channel headroom).
pub fn fig12() -> ExpResult {
    scaling(
        "fig12",
        "Channel increase at TinyEngine-equal RAM (MCUNet-5fps-VWW)",
        "channel sizes can grow 1.26x-3.17x",
        (1.26, 3.17),
        max_channel_scale,
    )
}
