//! Figure 8: single-layer energy and latency on STM32-F767ZI.
//!
//! Both implementations execute the same nine pointwise layers on the
//! simulated Cortex-M7; outputs are asserted identical, so the energy and
//! latency deltas come purely from policy (im2col traffic, unrolling
//! stalls, modulo checks).

use crate::result::{Check, ExpResult};
use crate::table::{pct, Table};
use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_tensor::random;

/// Regenerates Figure 8.
///
/// # Panics
///
/// Panics if a Figure 7 case fails to deploy on the F767ZI or the two
/// executors disagree bit-exact — both would falsify the experiment.
pub fn fig8() -> ExpResult {
    let device = Device::stm32_f767zi();
    let mut t = Table::new(&[
        "case",
        "TE mJ",
        "vMCU mJ",
        "energy cut",
        "TE ms",
        "vMCU ms",
        "latency cut",
    ]);
    let mut checks = Vec::new();
    let mut e_cuts = Vec::new();
    let mut l_cuts = Vec::new();
    for case in zoo::fig7_cases() {
        let layer = LayerDesc::Pointwise(case.params);
        let w = LayerWeights::random(&layer, 21);
        let input = random::tensor_i8(&layer.in_shape(), 22);
        let (out_t, rep_t) = Engine::new(device.clone())
            .planner(PlannerKind::TinyEngine)
            .run_layer(&case.name, &layer, &w, &input)
            .expect("F767ZI fits all cases");
        let (out_v, rep_v) = Engine::new(device.clone())
            .run_layer(&case.name, &layer, &w, &input)
            .expect("F767ZI fits all cases");
        assert_eq!(out_t, out_v, "implementations must agree bit-exact");
        let e_cut = 1.0 - rep_v.exec.energy_mj / rep_t.exec.energy_mj;
        let l_cut = 1.0 - rep_v.exec.latency_ms / rep_t.exec.latency_ms;
        e_cuts.push(e_cut);
        l_cuts.push(l_cut);
        t.row(vec![
            case.name.clone(),
            format!("{:.2}", rep_t.exec.energy_mj),
            format!("{:.2}", rep_v.exec.energy_mj),
            pct(e_cut),
            format!("{:.2}", rep_t.exec.latency_ms),
            format!("{:.2}", rep_v.exec.latency_ms),
            pct(l_cut),
        ]);
        checks.push(Check::in_range(
            format!("{} energy reduction positive band", case.name),
            e_cut,
            0.05,
            0.60,
        ));
        checks.push(Check::in_range(
            format!("{} latency reduction positive band", case.name),
            l_cut,
            0.05,
            0.55,
        ));
    }
    let span = |v: &[f64]| {
        (
            v.iter().copied().fold(f64::INFINITY, f64::min),
            v.iter().copied().fold(0.0f64, f64::max),
        )
    };
    let (e_lo, e_hi) = span(&e_cuts);
    let (l_lo, l_hi) = span(&l_cuts);
    checks.push(Check::in_range(
        "min energy cut (paper 20.6%)",
        e_lo,
        0.08,
        0.35,
    ));
    checks.push(Check::in_range(
        "max energy cut (paper 53.0%)",
        e_hi,
        0.30,
        0.60,
    ));
    checks.push(Check::in_range(
        "min latency cut (paper 18.5%)",
        l_lo,
        0.08,
        0.32,
    ));
    checks.push(Check::in_range(
        "max latency cut (paper 40.0%)",
        l_hi,
        0.25,
        0.55,
    ));

    ExpResult {
        id: "fig8".into(),
        title: "Single-layer energy and latency on STM32-F767ZI".into(),
        paper_claim: "vMCU cuts energy 20.6%-53.0% and latency 18.5%-40.0% vs TinyEngine".into(),
        table: t,
        checks,
        notes: vec![
            "absolute mJ/ms are calibrated by the simulator's cost/energy models; \
             the reductions come from counted work (im2col traffic, column-pair \
             input re-reads, unroll stalls, modulo checks)"
                .into(),
            "our top-end energy cut (~37%) is conservative versus the paper's 53%: \
             we model only the traffic/stall mechanisms the paper names, not \
             board-level effects (flash wait-state inflation under the baseline's \
             access pattern) we cannot justify from first principles"
                .into(),
        ],
    }
}
