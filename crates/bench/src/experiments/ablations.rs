//! Ablations beyond the paper's figures: the fused-workspace scheme
//! trade-off (DESIGN.md) and the §5.3 segment-size sweep.

use crate::result::{Check, ExpResult};
use crate::table::{kb, Table};

use vmcu::prelude::*;
use vmcu::vmcu_graph::zoo;
use vmcu::vmcu_kernels::fused_ib::{ib_exec_footprint, ib_workspace_bytes};
use vmcu::vmcu_solver::closed_form::gemm_min_footprint;
use vmcu::vmcu_tensor::random;

/// PixelWindow (paper's 11-segment workspace, recompute) vs RowBuffer
/// (R-row ring, compute-once): memory and latency per VWW module.
///
/// # Panics
///
/// Panics if a VWW module fails to deploy under either scheme — that
/// would falsify the ablation.
pub fn ablation_ib_scheme() -> ExpResult {
    let device = Device::stm32_f411re();
    let mut t = Table::new(&[
        "module",
        "RowBuffer KB",
        "Window KB",
        "RowBuffer ms",
        "SlidingWindow ms",
        "PixelWindow ms",
        "sliding extra MACs",
    ]);
    let mut checks = Vec::new();
    for m in zoo::mcunet_5fps_vww() {
        let p = m.params;
        let layer = LayerDesc::Ib(p);
        let w = LayerWeights::random(&layer, 41);
        let input = random::tensor_i8(&layer.in_shape(), 42);
        let run = |scheme: IbScheme| {
            let (_, rep) = Engine::new(device.clone())
                .planner(PlannerKind::Vmcu(scheme))
                .run_layer(m.name, &layer, &w, &input)
                .expect("VWW fits under both schemes");
            rep
        };
        let rb = run(IbScheme::RowBuffer);
        let sw = run(IbScheme::SlidingWindow);
        let pw = run(IbScheme::PixelWindow);
        let rb_bytes = ib_exec_footprint(&p, IbScheme::RowBuffer)
            + ib_workspace_bytes(&p, IbScheme::RowBuffer);
        let pw_bytes = ib_exec_footprint(&p, IbScheme::PixelWindow)
            + ib_workspace_bytes(&p, IbScheme::PixelWindow);
        t.row(vec![
            m.name.to_owned(),
            kb(rb_bytes),
            kb(pw_bytes),
            format!("{:.1}", rb.exec.latency_ms),
            format!("{:.1}", sw.exec.latency_ms),
            format!("{:.1}", pw.exec.latency_ms),
            format!(
                "{:.2}x",
                sw.exec.counters.macs as f64 / rb.exec.counters.macs as f64
            ),
        ]);
        checks.push(Check::new(
            format!("{}: window workspace never exceeds the row ring", m.name),
            ib_workspace_bytes(&p, IbScheme::PixelWindow)
                <= ib_workspace_bytes(&p, IbScheme::RowBuffer),
            format!("{pw_bytes} vs {rb_bytes} total (window pool span can be slightly larger)"),
        ));
        checks.push(Check::new(
            format!("{}: PixelWindow costs more MACs", m.name),
            pw.exec.counters.macs > rb.exec.counters.macs,
            "recompute tax",
        ));
        checks.push(Check::new(
            format!("{}: SlidingWindow sits between the extremes", m.name),
            rb.exec.counters.macs <= sw.exec.counters.macs
                && sw.exec.counters.macs <= pw.exec.counters.macs,
            "column-entry recompute only",
        ));
    }
    ExpResult {
        id: "ablation-ib-scheme".into(),
        title: "Fused inverted-bottleneck workspace scheme trade-off".into(),
        paper_claim: "the paper's 11-segment workspace implies recomputation; a row ring \
                      trades a few KB for compute-once (DESIGN.md)"
            .into(),
        table: t,
        checks,
        notes: vec![],
    }
}

/// §5.3: segment size vs footprint and latency for a pointwise layer.
///
/// # Panics
///
/// Panics if the fixed case fails to deploy on the F767ZI at some
/// segment size — that would falsify the ablation.
pub fn ablation_segment_size() -> ExpResult {
    let device = Device::stm32_f767zi();
    let case = zoo::fig7_cases()[5].clone(); // H/W20,C48,K24 — modest size
    let (c, k, pixels) = (case.params.c, case.params.k, case.params.pixels());
    let mut t = Table::new(&[
        "seg elems",
        "affine footprint B",
        "overlap slack B",
        "latency ms",
        "modulo ops",
    ]);
    let mut checks = Vec::new();
    let mut latencies = Vec::new();
    for seg in [1usize, 2, 4, 8, 12, 24] {
        // Affine footprint in bytes at this segment size (paper
        // formulation: segments of `seg` elements).
        let fp_segs = gemm_min_footprint(
            pixels as i64,
            (k / seg.min(k)) as i64,
            (c / seg.min(c)) as i64,
        );
        let fp_bytes = fp_segs as usize * seg;
        let slack_bytes = (c.min(k) / seg.min(c.min(k))).saturating_sub(1) * seg;
        let mut params = case.params;
        params.seg = seg;
        let layer = LayerDesc::Pointwise(params);
        let w = LayerWeights::random(&layer, 51);
        let input = random::tensor_i8(&layer.in_shape(), 52);
        let (_, rep) = Engine::new(device.clone())
            .run_layer(&case.name, &layer, &w, &input)
            .expect("fits F767ZI");
        t.row(vec![
            seg.to_string(),
            fp_bytes.to_string(),
            slack_bytes.to_string(),
            format!("{:.2}", rep.exec.latency_ms),
            rep.exec.counters.modulo_ops.to_string(),
        ]);
        latencies.push(rep.exec.latency_ms);
    }
    // Smaller segments must cost latency (more boundary checks): seg=1
    // should be the slowest, the largest seg the fastest.
    checks.push(Check::new(
        "seg=1 is slowest (modulo per element)",
        latencies[0] >= *latencies.last().unwrap(),
        format!(
            "{:.2} ms vs {:.2} ms",
            latencies[0],
            latencies.last().unwrap()
        ),
    ));
    checks.push(Check::new(
        "latency improves from seg=1 to seg=24",
        latencies.windows(2).filter(|w| w[1] <= w[0] * 1.02).count() >= 3,
        "mostly monotone",
    ));
    ExpResult {
        id: "ablation-segment-size".into(),
        title: "Segment-size selection trade-off (§5.3)".into(),
        paper_claim: "smaller segments shrink footprint but modulo overhead hurts latency; \
                      the paper picks seg = min(C, K)"
            .into(),
        table: t,
        checks,
        notes: vec![
            "our pool tracks liveness per byte, so the footprint is nearly \
             segment-insensitive here (only the affine plan's empty-segment \
             headroom varies); the paper's footprint sensitivity comes from \
             coarse segment-granular freeing, while the latency sensitivity — \
             the boundary-check overhead that motivates seg = min(C, K) — \
             reproduces directly"
                .into(),
        ],
    }
}
