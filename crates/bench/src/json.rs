//! Hand-rolled JSON emission and parsing for experiment results.
//!
//! The workspace builds offline without `serde`, so the few structures
//! that need machine-readable output render themselves into this tiny
//! value tree, which pretty-prints in the same style as
//! `serde_json::to_string_pretty` (2-space indent, `"key": value`). The
//! matching [`Json::parse`] reads those files back — the CI bench gate
//! uses it to compare a fresh `BENCH_fleet.json` against the committed
//! baseline.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// The null literal.
    Null,
    /// A boolean literal.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

/// JSON parse failure: byte offset plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module emits: null, bool,
    /// finite numbers, strings with standard escapes, arrays, objects).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with the byte offset of the first
    /// syntax error, including trailing garbage after the root value.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonParseError {
                at: pos,
                message: "trailing characters after JSON value".into(),
            });
        }
        Ok(value)
    }

    /// Builds an array from anything convertible to values.
    pub fn array<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Self {
        Json::Array(items.into_iter().map(Into::into).collect())
    }

    /// Renders with 2-space indentation and a trailing newline-free root.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON numbers must be finite");
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(out, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, depth + 1);
            }),
            Json::Object(fields) => write_seq(out, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push_str(": ");
                v.write(out, depth + 1);
            }),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::str(s)
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

// ---- parsing ---------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(at: usize, message: impl Into<String>) -> JsonParseError {
    JsonParseError {
        at,
        message: message.into(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| err(*pos, "unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates never appear in this module's output.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| err(*pos, "invalid codepoint in \\u escape"))?,
                        );
                        *pos += 4;
                    }
                    other => {
                        return Err(err(*pos, format!("unknown escape `\\{}`", *other as char)))
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 character (bytes are valid UTF-8 by
                // construction: the input is a &str).
                let s = std::str::from_utf8(&bytes[*pos..]).expect("input was a valid &str");
                let c = s.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number bytes");
    text.parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| err(start, "invalid number"))
}

fn write_seq(
    out: &mut String,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        for _ in 0..=depth {
            out.push_str("  ");
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_in_serde_style() {
        let v = Json::Object(vec![
            ("name".into(), Json::str("x")),
            ("passed".into(), Json::Bool(true)),
            ("rows".into(), Json::array(["a", "b"])),
            ("empty".into(), Json::Array(vec![])),
        ]);
        let s = v.to_string_pretty();
        assert!(s.contains("\"passed\": true"));
        assert!(s.contains("  \"rows\": [\n    \"a\",\n    \"b\"\n  ]"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.starts_with("{\n  \"name\": \"x\","));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let s = Json::str("a\"b\\c\nd\u{1}").to_string_pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_print_plainly() {
        assert_eq!(Json::Num(42.0).to_string_pretty(), "42");
        assert_eq!(Json::Num(1.5).to_string_pretty(), "1.5");
        assert_eq!(Json::from(7usize).to_string_pretty(), "7");
        assert_eq!(Json::Null.to_string_pretty(), "null");
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let v = Json::Object(vec![
            ("name".into(), Json::str("fleet \"x\"\n")),
            ("rps".into(), Json::Num(1234.5)),
            ("neg".into(), Json::Num(-2e3)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "rows".into(),
                Json::Array(vec![Json::Num(1.0), Json::str("a\u{1}b")]),
            ),
            ("empty".into(), Json::Array(vec![])),
        ]);
        let text = v.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        // Round trip: re-emitting the parsed tree reproduces the text.
        assert_eq!(parsed.to_string_pretty(), text);
        assert_eq!(parsed.get("rps").and_then(Json::as_f64), Some(1234.5));
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("fleet \"x\"\n")
        );
        assert_eq!(
            parsed
                .get("rows")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
        assert!(matches!(parsed.get("none"), Some(Json::Null)));
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn parse_reports_errors_with_offsets() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "1.2.3",
            "{} extra",
            "\"unterminated",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad}: {e}");
        }
        assert_eq!(Json::parse("{} x").unwrap_err().at, 3);
    }

    #[test]
    fn parse_accepts_plain_json_from_other_tools() {
        let parsed =
            Json::parse("  {\"a\": [1, 2.5, {\"b\": null}], \"c\": \"\\u0041\"} ").unwrap();
        assert_eq!(parsed.get("c").and_then(Json::as_str), Some("A"));
        let a = parsed.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[1].as_f64(), Some(2.5));
    }
}
