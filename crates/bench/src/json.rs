//! Hand-rolled JSON emission for experiment results.
//!
//! The workspace builds offline without `serde`, so the few structures
//! that need machine-readable output render themselves into this tiny
//! value tree, which pretty-prints in the same style as
//! `serde_json::to_string_pretty` (2-space indent, `"key": value`).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// A boolean literal.
    Bool(bool),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Builds an array from anything convertible to values.
    pub fn array<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Self {
        Json::Array(items.into_iter().map(Into::into).collect())
    }

    /// Renders with 2-space indentation and a trailing newline-free root.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(out, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, depth + 1);
            }),
            Json::Object(fields) => write_seq(out, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push_str(": ");
                v.write(out, depth + 1);
            }),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::str(s)
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

fn write_seq(
    out: &mut String,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        for _ in 0..=depth {
            out.push_str("  ");
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_in_serde_style() {
        let v = Json::Object(vec![
            ("name".into(), Json::str("x")),
            ("passed".into(), Json::Bool(true)),
            ("rows".into(), Json::array(["a", "b"])),
            ("empty".into(), Json::Array(vec![])),
        ]);
        let s = v.to_string_pretty();
        assert!(s.contains("\"passed\": true"));
        assert!(s.contains("  \"rows\": [\n    \"a\",\n    \"b\"\n  ]"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.starts_with("{\n  \"name\": \"x\","));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let s = Json::str("a\"b\\c\nd\u{1}").to_string_pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
