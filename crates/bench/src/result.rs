//! Experiment result container and shape checks.
//!
//! Every experiment produces an [`ExpResult`]: the regenerated table, the
//! paper's expectation for it, and machine-checked *shape criteria* (who
//! wins, by roughly what factor). `all_experiments` aggregates them into
//! `EXPERIMENTS.md` and exits non-zero if any shape check fails.

use crate::json::Json;
use crate::table::Table;
use std::fmt;

/// One machine-checked shape criterion.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being checked.
    pub name: String,
    /// Whether it held.
    pub passed: bool,
    /// Measured-vs-expected detail.
    pub detail: String,
}

impl Check {
    /// Creates a check result.
    pub fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            passed,
            detail: detail.into(),
        }
    }

    /// Checks that `value` lies within `[lo, hi]`.
    pub fn in_range(name: impl Into<String>, value: f64, lo: f64, hi: f64) -> Self {
        Self::new(
            name,
            (lo..=hi).contains(&value),
            format!("value {value:.2} expected in [{lo:.2}, {hi:.2}]"),
        )
    }

    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::str(&*self.name)),
            ("passed".into(), Json::Bool(self.passed)),
            ("detail".into(), Json::str(&*self.detail)),
        ])
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {}",
            if self.passed { "PASS" } else { "FAIL" },
            self.name,
            self.detail
        )
    }
}

/// A regenerated table/figure.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Experiment id (`fig7`, `table3`, …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for this experiment.
    pub paper_claim: String,
    /// The regenerated table.
    pub table: Table,
    /// Shape checks.
    pub checks: Vec<Check>,
    /// Free-form notes (substitutions, calibration caveats).
    pub notes: Vec<String>,
}

impl ExpResult {
    /// Whether every shape check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Serializes the experiment as pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        Json::Object(vec![
            ("id".into(), Json::str(&*self.id)),
            ("title".into(), Json::str(&*self.title)),
            ("paper_claim".into(), Json::str(&*self.paper_claim)),
            ("table".into(), self.table.to_json()),
            (
                "checks".into(),
                Json::Array(self.checks.iter().map(Check::to_json).collect()),
            ),
            (
                "notes".into(),
                Json::array(self.notes.iter().map(String::as_str)),
            ),
        ])
        .to_string_pretty()
    }

    /// Renders the experiment as a markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("**Paper claim**: {}\n\n", self.paper_claim));
        out.push_str(&self.table.to_markdown());
        out.push_str("\nShape checks:\n\n");
        for c in &self.checks {
            out.push_str(&format!(
                "- {} **{}** — {}\n",
                if c.passed { "✅" } else { "❌" },
                c.name,
                c.detail
            ));
        }
        if !self.notes.is_empty() {
            out.push_str("\nNotes:\n\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out.push('\n');
        out
    }
}

impl fmt::Display for ExpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        writeln!(f, "paper: {}", self.paper_claim)?;
        writeln!(f)?;
        write!(f, "{}", self.table)?;
        writeln!(f)?;
        for c in &self.checks {
            writeln!(f, "{c}")?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExpResult {
        let mut t = Table::new(&["case", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        ExpResult {
            id: "figX".into(),
            title: "sample".into(),
            paper_claim: "something".into(),
            table: t,
            checks: vec![
                Check::in_range("band", 0.5, 0.0, 1.0),
                Check::new("flag", true, "ok"),
            ],
            notes: vec!["calibrated".into()],
        }
    }

    #[test]
    fn passes_when_all_checks_pass() {
        assert!(sample().passed());
        let mut bad = sample();
        bad.checks.push(Check::in_range("oops", 2.0, 0.0, 1.0));
        assert!(!bad.passed());
    }

    #[test]
    fn markdown_contains_sections() {
        let md = sample().to_markdown();
        assert!(md.contains("## figX"));
        assert!(md.contains("**Paper claim**"));
        assert!(md.contains("✅"));
        assert!(md.contains("note") || md.contains("calibrated"));
    }

    #[test]
    fn display_shows_pass_fail() {
        let s = sample().to_string();
        assert!(s.contains("[PASS]"));
    }
}
