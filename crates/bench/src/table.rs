//! Fixed-width table rendering for experiment output.

use crate::json::Json;
use std::fmt;

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Serializes headers and rows as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "headers".into(),
                Json::array(self.headers.iter().map(String::as_str)),
            ),
            (
                "rows".into(),
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| Json::array(r.iter().map(String::as_str)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", c, width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(w.iter().sum::<usize>() + 2 * w.len()))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats bytes as decimal kilobytes (the paper's unit).
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1000.0)
}

/// Formats a reduction fraction as a percentage.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much-longer-name".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("much-longer-name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.starts_with("| a | b |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(kb(247_808), "247.8");
        assert_eq!(pct(0.615), "61.5%");
    }
}
