//! Regenerates the Figure 1(c) motivational example.
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::fig1::fig1());
    std::process::exit(i32::from(!ok));
}
