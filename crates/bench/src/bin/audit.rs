//! Static certification sweep: `vmcu-verify` over zoo × planners × ladder.
//!
//! Every zoo model is deployed under every planner kind on every ladder
//! device; each deployment that resolves is audited by the static plan
//! verifier — no kernel executes, the plan arithmetic alone is proven
//! hazard-free. Combinations that do not fit a device are recorded as
//! `undeployable` (that is the planner's verdict, not a failure).
//!
//! Emits `BENCH_audit.json` with one row per combination and exits
//! non-zero if any audited deployment reports a violation (or nothing
//! deployed at all, which would make the sweep vacuous).
//!
//! Flags: `--out PATH` (default `BENCH_audit.json`), `--light` (skip the
//! seeded random nets for quick CI smoke runs).

use vmcu::prelude::*;
use vmcu_bench::json::Json;
use vmcu_graph::zoo;

fn planner_kinds() -> Vec<PlannerKind> {
    vec![
        PlannerKind::Vmcu(IbScheme::RowBuffer),
        PlannerKind::Vmcu(IbScheme::PixelWindow),
        PlannerKind::VmcuFused(IbScheme::RowBuffer),
        PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        PlannerKind::TinyEngine,
        PlannerKind::Hmcos,
        PlannerKind::VmcuSplit {
            devices: 4,
            scheme: IbScheme::RowBuffer,
        },
        PlannerKind::VmcuReorder(IbScheme::RowBuffer),
    ]
}

fn models(light: bool) -> Vec<(String, vmcu_graph::Graph)> {
    let mut out: Vec<(String, vmcu_graph::Graph)> = vec![
        ("demo-linear".into(), zoo::demo_linear_net()),
        ("mbv2-block-unfused".into(), zoo::mbv2_block_unfused()),
        ("wide-expand-chain".into(), zoo::wide_expand_chain()),
        ("hires-front-stage".into(), zoo::hires_front_stage()),
        ("hires-split-only".into(), zoo::hires_split_only()),
        ("mbv2-residual-dag".into(), zoo::mbv2_residual_dag()),
        ("two-head-net".into(), zoo::two_head_net()),
        ("branchy-oom-net".into(), zoo::branchy_oom_net()),
    ];
    if !light {
        for seed in [11u64, 29, 47] {
            out.push((
                format!("random-linear-{seed}"),
                zoo::random_linear_net(seed, 6),
            ));
            out.push((format!("random-dag-{seed}"), zoo::random_dag_net(seed, 5)));
        }
    }
    out
}

fn main() {
    let mut out_path = "BENCH_audit.json".to_owned();
    let mut light = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--light" => light = true,
            other => panic!("unknown flag {other}"),
        }
    }

    println!("audit: static hazard certification over zoo × planners × ladder");
    let mut rows = Vec::new();
    let mut audited = 0usize;
    let mut undeployable = 0usize;
    let mut violations = 0usize;
    let mut distances = 0usize;
    for (model_name, graph) in models(light) {
        let weights = graph.random_weights(0xA0D1);
        for device in Device::simd_ladder() {
            for kind in planner_kinds() {
                let engine = Engine::new(device.clone()).planner(kind);
                let Ok(dep) = engine.deploy(&graph, &weights) else {
                    undeployable += 1;
                    rows.push(Json::Object(vec![
                        ("model".into(), Json::str(&*model_name)),
                        ("device".into(), Json::str(&*device.name)),
                        ("planner".into(), Json::str(kind.name())),
                        ("deployed".into(), Json::Bool(false)),
                    ]));
                    continue;
                };
                let report = vmcu_verify::audit(&dep);
                audited += 1;
                violations += report.violations.len();
                distances += report.distances_checked;
                if !report.is_clean() {
                    println!(
                        "VIOLATIONS {model_name} × {} × {}:",
                        kind.name(),
                        device.name
                    );
                    for v in &report.violations {
                        println!("  - {v}");
                    }
                }
                rows.push(Json::Object(vec![
                    ("model".into(), Json::str(&*model_name)),
                    ("device".into(), Json::str(&*device.name)),
                    ("planner".into(), Json::str(kind.name())),
                    ("deployed".into(), Json::Bool(true)),
                    ("clean".into(), Json::Bool(report.is_clean())),
                    (
                        "violations".into(),
                        Json::Num(report.violations.len() as f64),
                    ),
                    (
                        "nodes_checked".into(),
                        Json::Num(report.nodes_checked as f64),
                    ),
                    (
                        "distances_checked".into(),
                        Json::Num(report.distances_checked as f64),
                    ),
                ]));
            }
        }
    }

    let doc = Json::Object(vec![
        ("suite".into(), Json::str("static-plan-audit")),
        ("audited".into(), Json::Num(audited as f64)),
        ("undeployable".into(), Json::Num(undeployable as f64)),
        ("violations".into(), Json::Num(violations as f64)),
        ("distances_checked".into(), Json::Num(distances as f64)),
        ("rows".into(), Json::Array(rows)),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!(
        "wrote {out_path}: {audited} deployments audited ({undeployable} undeployable), \
         {distances} distances cross-checked, {violations} violations"
    );
    let ok = violations == 0 && audited > 0;
    std::process::exit(i32::from(!ok));
}
