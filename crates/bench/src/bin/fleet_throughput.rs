//! Fleet-serving experiment: batch admission capacity plus the online
//! serving simulator, per planning policy.
//!
//! Two sections land in `BENCH_fleet.json`:
//!
//! * **`planners`** — the legacy batch rows: the same seeded request
//!   batch offered to an N-device 128 KB fleet under vMCU, vMCU-fused,
//!   vMCU-patched, TinyEngine, HMCOS, vMCU-split, and vMCU-reorder
//!   planning (requests/sec, admission rate, p50/p99 latency). The
//!   split rows exercise the multi-device pipeline: the
//!   `hires-split-only` model OOMs every single device and is served
//!   only by the split fleet — checked deterministically every run.
//!   The reorder check (`reorder_peak_never_worse`) verifies the DAG
//!   order search's ≤-contract on the branchy zoo and that
//!   `branchy-oom-net` deploys only under the reorder policy.
//! * **`online`** — sustained online runs ([`Fleet::run_online`]): a
//!   seeded million-request arrival stream through per-device EDF
//!   queues with deadline shedding and LRU model hot-swap. Every
//!   planner serves the Poisson stream; the vMCU policy additionally
//!   serves the bursty and diurnal profiles. Reported: p50/p99 sojourn,
//!   shed rate, swap counts and priced staging time, SLO violations,
//!   and host-side wall-clock throughput.
//!
//! All simulated metrics are bit-reproducible across machines — one
//! online row is re-run in-process and compared bit-for-bit as a check.
//! The CI bench gate (`bench_gate`) consumes the emitted file and gates
//! p99 sojourn and shed rate against `ci/bench_baseline.json`.
//!
//! Flags: `--light` (shorter batch stream for CI), `--workers N`,
//! `--requests N` (batch), `--seed S`, `--out PATH`, `--online`
//! (online-only walkthrough mode), `--online-requests N` (default
//! 1,000,000), `--rate R` (nominal req/s, default 150), `--slo-ms F`
//! (default 250), `--profile poisson|bursty|diurnal` (restrict online
//! profiles).
//!
//! [`Fleet::run_online`]: vmcu_serve::Fleet::run_online

use vmcu::prelude::*;
use vmcu_bench::json::Json;
use vmcu_serve::{
    random_stream, ArrivalProfile, Fleet, FleetConfig, FleetStats, ModelCatalog, OnlineConfig,
    OnlineStats,
};

struct Args {
    light: bool,
    workers: usize,
    requests: usize,
    seed: u64,
    out: String,
    online_only: bool,
    online_requests: usize,
    rate: f64,
    slo_ms: f64,
    profile: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        light: false,
        workers: 4,
        requests: 96,
        seed: 2024,
        out: "BENCH_fleet.json".to_owned(),
        online_only: false,
        online_requests: 1_000_000,
        rate: 150.0,
        slo_ms: 250.0,
        profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--light" => args.light = true,
            "--online" => args.online_only = true,
            "--workers" => args.workers = value("--workers").parse().expect("--workers: integer"),
            "--requests" => {
                args.requests = value("--requests").parse().expect("--requests: integer");
            }
            "--online-requests" => {
                args.online_requests = value("--online-requests")
                    .parse()
                    .expect("--online-requests: integer");
            }
            "--rate" => args.rate = value("--rate").parse().expect("--rate: req/s"),
            "--slo-ms" => args.slo_ms = value("--slo-ms").parse().expect("--slo-ms: ms"),
            "--profile" => args.profile = Some(value("--profile")),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    if args.light {
        args.requests = args.requests.min(32);
    }
    args
}

/// The three load shapes, parameterized by the nominal rate: steady
/// Poisson at `rate`, 200 ms bursts at 4x over a halved base, and a
/// one-simulated-minute diurnal swing around `rate`.
fn profiles(rate: f64) -> Vec<ArrivalProfile> {
    vec![
        ArrivalProfile::Poisson { rate_per_sec: rate },
        ArrivalProfile::Bursty {
            base_rate_per_sec: rate * 0.5,
            burst_rate_per_sec: rate * 4.0,
            burst_ms: 200.0,
            gap_ms: 800.0,
        },
        ArrivalProfile::Diurnal {
            trough_rate_per_sec: rate * 0.25,
            peak_rate_per_sec: rate * 2.0,
            period_ms: 60_000.0,
        },
    ]
}

fn stats_json(planner: &str, stats: &FleetStats) -> Json {
    Json::Object(vec![
        ("planner".into(), Json::str(planner)),
        ("offered".into(), Json::from(stats.offered)),
        ("admitted".into(), Json::from(stats.admitted)),
        ("completed".into(), Json::from(stats.completed)),
        ("rejected".into(), Json::from(stats.rejected)),
        ("failed".into(), Json::from(stats.failed)),
        ("admission_rate".into(), Json::from(stats.admission_rate)),
        (
            "requests_per_sec".into(),
            Json::from(stats.requests_per_sec),
        ),
        ("makespan_ms".into(), Json::from(stats.makespan_ms)),
        ("p50_latency_ms".into(), Json::from(stats.p50_latency_ms)),
        ("p99_latency_ms".into(), Json::from(stats.p99_latency_ms)),
        ("energy_mj".into(), Json::from(stats.energy_mj)),
        // Planning vs inference, separated: deploy-side plan calls are
        // paid once per fleet; serve-side calls (and their per-request
        // amortization) are the gated metric — 0 on the plan-once path.
        (
            "deploy_plan_calls".into(),
            Json::from(stats.deploy_plan_calls as usize),
        ),
        (
            "serve_plan_calls".into(),
            Json::from(stats.serve_plan_calls as usize),
        ),
        (
            "plan_calls_per_request".into(),
            Json::from(stats.plan_calls_per_request),
        ),
        ("planning_ms".into(), Json::from(stats.planning_ms)),
        ("host_wall_ms".into(), Json::from(stats.host_wall_ms)),
    ])
}

fn online_json(planner: &str, profile: &str, cfg: &OnlineConfig, s: &OnlineStats) -> Json {
    Json::Object(vec![
        ("planner".into(), Json::str(planner)),
        ("profile".into(), Json::str(profile)),
        ("requests".into(), Json::from(cfg.requests)),
        ("slo_ms".into(), Json::from(cfg.slo_ms)),
        ("offered".into(), Json::from(s.offered)),
        ("routed".into(), Json::from(s.routed)),
        ("rejected".into(), Json::from(s.rejected)),
        ("completed".into(), Json::from(s.completed)),
        ("shed".into(), Json::from(s.shed)),
        ("failed".into(), Json::from(s.failed)),
        ("shed_rate".into(), Json::from(s.shed_rate)),
        ("slo_violations".into(), Json::from(s.slo_violations)),
        ("p50_sojourn_ms".into(), Json::from(s.p50_sojourn_ms)),
        ("p99_sojourn_ms".into(), Json::from(s.p99_sojourn_ms)),
        ("p99_first_half_ms".into(), Json::from(s.p99_first_half_ms)),
        (
            "p99_second_half_ms".into(),
            Json::from(s.p99_second_half_ms),
        ),
        ("stagings".into(), Json::from(s.stagings as usize)),
        ("swaps".into(), Json::from(s.swaps as usize)),
        ("evictions".into(), Json::from(s.evictions as usize)),
        ("swap_ms".into(), Json::from(s.swap_ms)),
        ("makespan_ms".into(), Json::from(s.makespan_ms)),
        (
            "sim_requests_per_sec".into(),
            Json::from(s.sim_requests_per_sec),
        ),
        ("energy_mj".into(), Json::from(s.energy_mj)),
        (
            "deploy_plan_calls".into(),
            Json::from(s.deploy_plan_calls as usize),
        ),
        (
            "serve_plan_calls".into(),
            Json::from(s.serve_plan_calls as usize),
        ),
        ("planning_ms".into(), Json::from(s.planning_ms)),
        ("host_wall_ms".into(), Json::from(s.host_wall_ms)),
        (
            "host_requests_per_sec".into(),
            Json::from(s.host_requests_per_sec),
        ),
    ])
}

fn main() {
    let args = parse_args();
    let device = Device::stm32_f411re();
    let catalog = ModelCatalog::standard();
    let requests = random_stream(catalog.models(), args.requests, args.seed);

    let planners = [
        ("vMCU", PlannerKind::Vmcu(IbScheme::RowBuffer)),
        ("vMCU-fused", PlannerKind::VmcuFused(IbScheme::RowBuffer)),
        (
            "vMCU-patched",
            PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        ),
        ("TinyEngine", PlannerKind::TinyEngine),
        ("HMCOS", PlannerKind::Hmcos),
        (
            "vMCU-split",
            PlannerKind::VmcuSplit {
                devices: 4,
                scheme: IbScheme::RowBuffer,
            },
        ),
        (
            "vMCU-reorder",
            PlannerKind::VmcuReorder(IbScheme::RowBuffer),
        ),
    ];
    let mut rows = Vec::new();
    let mut per_planner = Vec::new();
    let mut online_rows = Vec::new();
    let mut online_stats: Vec<(String, String, OnlineStats)> = Vec::new();
    // The bit-reproducibility witness: the first online row is re-run
    // and its simulated projection must compare equal, bit for bit.
    let mut repro: Option<(String, bool)> = None;
    println!(
        "fleet_throughput: {} x {} | batch {} requests, online {} requests at {} req/s nominal, SLO {} ms, seed {}",
        args.workers, device, args.requests, args.online_requests, args.rate, args.slo_ms, args.seed
    );
    for (name, kind) in planners {
        let fleet = Fleet::new(
            FleetConfig::new(device.clone(), args.workers, kind),
            catalog.clone(),
        );
        if !args.online_only {
            let report = fleet.run_batch(&requests);
            let s = &report.stats;
            println!(
                "  batch  {name:<12} admitted {:>3}/{:<3} ({:>5.1}%)  {:>8.2} req/s  p50 {:>7.3} ms  p99 {:>7.3} ms  {:>7.2} mJ  plan {}+{} calls",
                s.admitted,
                s.offered,
                s.admission_rate * 100.0,
                s.requests_per_sec,
                s.p50_latency_ms,
                s.p99_latency_ms,
                s.energy_mj,
                s.deploy_plan_calls,
                s.serve_plan_calls
            );
            rows.push(stats_json(name, s));
            per_planner.push((name, s.clone()));
        }
        // Online: every planner serves the Poisson stream; the vMCU
        // policy also serves the bursty and diurnal shapes (load-shape
        // sensitivity is a property of the queueing policy, not of the
        // planner comparison).
        for profile in profiles(args.rate) {
            if name != "vMCU" && profile.name() != "poisson" {
                continue;
            }
            if args
                .profile
                .as_deref()
                .is_some_and(|want| want != profile.name())
            {
                continue;
            }
            let cfg = OnlineConfig::new(profile, args.online_requests, args.seed)
                .with_slo_ms(args.slo_ms);
            let report = fleet.run_online(&cfg);
            let s = &report.stats;
            println!(
                "  online {name:<12} {:<8} completed {:>7}/{:<7}  shed {:>5.2}%  p50 {:>7.2} ms  p99 {:>7.2} ms  swaps {:>6} ({:>9.1} ms staged)  {:>9.0} req/s host",
                cfg.profile.name(),
                s.completed,
                s.offered,
                s.shed_rate * 100.0,
                s.p50_sojourn_ms,
                s.p99_sojourn_ms,
                s.swaps,
                s.swap_ms,
                s.host_requests_per_sec,
            );
            if repro.is_none() {
                let again = fleet.run_online(&cfg);
                repro = Some((
                    format!("{name}/{}", cfg.profile.name()),
                    again.stats.simulated() == s.simulated() && again.workers == report.workers,
                ));
            }
            online_rows.push(online_json(name, cfg.profile.name(), &cfg, s));
            online_stats.push((name.to_owned(), cfg.profile.name().to_owned(), s.clone()));
        }
    }

    let mut checks: Vec<(String, bool, String)> = Vec::new();
    if !args.online_only {
        // The headline batch criteria: segment-level planning must admit
        // strictly more of the same offered load than both disjoint
        // baselines, and the fusion pass may only add capacity on top.
        let by_name = |wanted: &str| {
            &per_planner
                .iter()
                .find(|(name, _)| *name == wanted)
                .expect("planner ran")
                .1
        };
        let vmcu = by_name("vMCU");
        let fused = by_name("vMCU-fused");
        let patched = by_name("vMCU-patched");
        for name in ["TinyEngine", "HMCOS"] {
            let s = by_name(name);
            checks.push((
                format!("vmcu_admits_more_than_{}", name.to_lowercase()),
                vmcu.admitted > s.admitted,
                format!("vMCU {} vs {} {}", vmcu.admitted, name, s.admitted),
            ));
        }
        checks.push((
            "fused_admits_at_least_vmcu".to_owned(),
            fused.admitted >= vmcu.admitted,
            format!("vMCU-fused {} vs vMCU {}", fused.admitted, vmcu.admitted),
        ));
        checks.push((
            "patched_admits_at_least_vmcu".to_owned(),
            patched.admitted >= vmcu.admitted,
            format!(
                "vMCU-patched {} vs vMCU {}",
                patched.admitted, vmcu.admitted
            ),
        ));
        checks.push((
            "no_execution_failures".to_owned(),
            per_planner.iter().all(|(_, s)| s.failed == 0),
            "typed engine errors during admitted runs".to_owned(),
        ));
        checks.push((
            "planning_amortized".to_owned(),
            per_planner.iter().all(|(_, s)| s.serve_plan_calls == 0),
            format!(
                "serve-side plan calls per planner: {:?} (deploy-side: {:?})",
                per_planner
                    .iter()
                    .map(|(_, s)| s.serve_plan_calls)
                    .collect::<Vec<_>>(),
                per_planner
                    .iter()
                    .map(|(_, s)| s.deploy_plan_calls)
                    .collect::<Vec<_>>()
            ),
        ));
    }
    if !args.online_only {
        // The split tentpole, as a deterministic serving check: the
        // hires-split-only zoo model OOMs every single 128 KB device,
        // so a 2-worker fleet rejects its request under single-device
        // vMCU planning and completes it under the split policy (the
        // pipeline commits one stage arena per device).
        let hires = vec![vmcu_serve::RequestSpec {
            id: 0,
            model: "hires-split-only".into(),
            seed: args.seed,
        }];
        let single = Fleet::new(
            FleetConfig::new(device.clone(), 2, PlannerKind::Vmcu(IbScheme::RowBuffer)),
            catalog.clone(),
        )
        .run_batch(&hires);
        let split = Fleet::new(
            FleetConfig::new(
                device.clone(),
                2,
                PlannerKind::VmcuSplit {
                    devices: 2,
                    scheme: IbScheme::RowBuffer,
                },
            ),
            catalog.clone(),
        )
        .run_batch(&hires);
        checks.push((
            "split_serves_the_oversized_model".to_owned(),
            single.stats.rejected == 1 && split.stats.completed == 1 && split.stats.failed == 0,
            format!(
                "hires-split-only on 2x {}: vMCU rejected {}, vMCU-split completed {}",
                device.name, single.stats.rejected, split.stats.completed
            ),
        ));
    }
    if !args.online_only {
        // The reorder tentpole, deterministically: on every branchy zoo
        // DAG the searched execution order's liveness-priced peak is
        // never worse than the default topological order's (the
        // ≤-fallback contract), and the branchy-oom-net model — which
        // the default order cannot fit on the 128 KB device — deploys
        // under the reorder policy.
        let planner = VmcuPlanner::default();
        let zoo_plans: Vec<(String, vmcu::vmcu_plan::OrderPlan)> = vmcu_graph::zoo::branchy_zoo()
            .into_iter()
            .map(|g| {
                let plan = vmcu::vmcu_plan::plan_order(&planner, &g);
                (g.name, plan)
            })
            .collect();
        let never_worse = zoo_plans
            .iter()
            .all(|(_, p)| p.peak_bytes <= p.default_peak_bytes);
        let oom = vmcu_graph::zoo::branchy_oom_net();
        let oom_weights = oom.random_weights(args.seed);
        let default_oom = Engine::new(device.clone())
            .planner(PlannerKind::Vmcu(IbScheme::RowBuffer))
            .deploy(&oom, &oom_weights)
            .is_err();
        let reorder_fits = Engine::new(device.clone())
            .planner(PlannerKind::VmcuReorder(IbScheme::RowBuffer))
            .deploy(&oom, &oom_weights)
            .is_ok();
        checks.push((
            "reorder_peak_never_worse".to_owned(),
            never_worse && default_oom && reorder_fits,
            format!(
                "searched vs default peak per DAG: {:?}; branchy-oom-net on {}: default OOM {}, reordered fits {}",
                zoo_plans
                    .iter()
                    .map(|(n, p)| format!("{n} {} <= {}", p.peak_bytes, p.default_peak_bytes))
                    .collect::<Vec<_>>(),
                device.name,
                default_oom,
                reorder_fits
            ),
        ));
    }
    // Online criteria.
    if !online_stats.is_empty() {
        let total_swaps: u64 = online_stats.iter().map(|(_, _, s)| s.swaps).sum();
        let priced: bool = online_stats
            .iter()
            .all(|(_, _, s)| s.stagings == 0 || s.swap_ms > 0.0);
        checks.push((
            "online_hot_swaps_priced".to_owned(),
            total_swaps >= 1 && priced,
            format!("{total_swaps} hot swaps across online rows, every staging priced"),
        ));
        checks.push((
            "online_planning_amortized".to_owned(),
            online_stats.iter().all(|(_, _, s)| s.serve_plan_calls == 0),
            "online serving performs zero planning passes".to_owned(),
        ));
        checks.push((
            "online_no_execution_failures".to_owned(),
            online_stats.iter().all(|(_, _, s)| s.failed == 0),
            "typed engine errors during online serving".to_owned(),
        ));
        // Steady state: under EDF + shedding the completion tail must
        // not drift between the first and second half of the run — a
        // diverging queue would blow the second half up.
        let stable = online_stats
            .iter()
            .filter(|(_, _, s)| s.completed >= 1_000)
            .all(|(_, _, s)| s.p99_second_half_ms <= 1.5 * s.p99_first_half_ms);
        checks.push((
            "online_p99_stable".to_owned(),
            stable,
            format!(
                "p99 halves per row: {:?}",
                online_stats
                    .iter()
                    .map(|(n, p, s)| format!(
                        "{n}/{p} {:.1}->{:.1}",
                        s.p99_first_half_ms, s.p99_second_half_ms
                    ))
                    .collect::<Vec<_>>()
            ),
        ));
        if let Some((row, passed)) = &repro {
            checks.push((
                "online_bit_reproducible".to_owned(),
                *passed,
                format!("row {row} re-run in-process compares bit-identical"),
            ));
        }
    }

    let doc = Json::Object(vec![
        ("id".into(), Json::str("fleet_throughput")),
        ("device".into(), Json::str(device.name.clone())),
        ("workers".into(), Json::from(args.workers)),
        ("requests".into(), Json::from(args.requests)),
        ("online_requests".into(), Json::from(args.online_requests)),
        ("rate_per_sec".into(), Json::from(args.rate)),
        ("slo_ms".into(), Json::from(args.slo_ms)),
        ("seed".into(), Json::from(args.seed)),
        ("light".into(), Json::from(args.light)),
        ("planners".into(), Json::Array(rows)),
        ("online".into(), Json::Array(online_rows)),
        (
            "checks".into(),
            Json::Array(
                checks
                    .iter()
                    .map(|(name, passed, detail)| {
                        Json::Object(vec![
                            ("name".into(), Json::str(name.clone())),
                            ("passed".into(), Json::Bool(*passed)),
                            ("detail".into(), Json::str(detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&args.out, doc.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);

    let mut ok = true;
    for (name, passed, detail) in &checks {
        println!(
            "  [{}] {name} — {detail}",
            if *passed { "PASS" } else { "FAIL" }
        );
        ok &= *passed;
    }
    std::process::exit(i32::from(!ok));
}
