//! Fleet-throughput experiment: the same seeded request stream offered to
//! an N-device 128 KB fleet under vMCU, vMCU-fused (the multi-layer
//! segment fusion pipeline), vMCU-patched (patch-based front-stage
//! execution), TinyEngine, and HMCOS planning.
//!
//! Emits `BENCH_fleet.json` (requests/sec, admission rate, p50/p99
//! latency per planner — all in simulated device time, bit-reproducible
//! across machines) and exits non-zero unless vMCU planning admits
//! strictly more requests than both disjoint baselines and the fused
//! policy admits at least as many as single-layer vMCU. The CI bench
//! gate (`bench_gate`) consumes the emitted file.
//!
//! Flags: `--light` (shorter stream for CI), `--workers N`, `--requests N`,
//! `--seed S`, `--out PATH`.

use vmcu::prelude::*;
use vmcu_bench::json::Json;
use vmcu_serve::{random_stream, Fleet, FleetConfig, FleetStats, ModelCatalog};

struct Args {
    light: bool,
    workers: usize,
    requests: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        light: false,
        workers: 4,
        requests: 96,
        seed: 2024,
        out: "BENCH_fleet.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--light" => args.light = true,
            "--workers" => args.workers = value("--workers").parse().expect("--workers: integer"),
            "--requests" => {
                args.requests = value("--requests").parse().expect("--requests: integer");
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    if args.light {
        args.requests = args.requests.min(32);
    }
    args
}

fn stats_json(planner: &str, stats: &FleetStats) -> Json {
    Json::Object(vec![
        ("planner".into(), Json::str(planner)),
        ("offered".into(), Json::from(stats.offered)),
        ("admitted".into(), Json::from(stats.admitted)),
        ("completed".into(), Json::from(stats.completed)),
        ("rejected".into(), Json::from(stats.rejected)),
        ("failed".into(), Json::from(stats.failed)),
        ("admission_rate".into(), Json::from(stats.admission_rate)),
        (
            "requests_per_sec".into(),
            Json::from(stats.requests_per_sec),
        ),
        ("makespan_ms".into(), Json::from(stats.makespan_ms)),
        ("p50_latency_ms".into(), Json::from(stats.p50_latency_ms)),
        ("p99_latency_ms".into(), Json::from(stats.p99_latency_ms)),
        ("energy_mj".into(), Json::from(stats.energy_mj)),
        // Planning vs inference, separated: deploy-side plan calls are
        // paid once per fleet; serve-side calls (and their per-request
        // amortization) are the gated metric — 0 on the plan-once path.
        (
            "deploy_plan_calls".into(),
            Json::from(stats.deploy_plan_calls as usize),
        ),
        (
            "serve_plan_calls".into(),
            Json::from(stats.serve_plan_calls as usize),
        ),
        (
            "plan_calls_per_request".into(),
            Json::from(stats.plan_calls_per_request),
        ),
        ("planning_ms".into(), Json::from(stats.planning_ms)),
        ("host_wall_ms".into(), Json::from(stats.host_wall_ms)),
    ])
}

fn main() {
    let args = parse_args();
    let device = Device::stm32_f411re();
    let catalog = ModelCatalog::standard();
    let requests = random_stream(catalog.models(), args.requests, args.seed);

    let planners = [
        ("vMCU", PlannerKind::Vmcu(IbScheme::RowBuffer)),
        ("vMCU-fused", PlannerKind::VmcuFused(IbScheme::RowBuffer)),
        (
            "vMCU-patched",
            PlannerKind::VmcuPatched(IbScheme::RowBuffer),
        ),
        ("TinyEngine", PlannerKind::TinyEngine),
        ("HMCOS", PlannerKind::Hmcos),
    ];
    let mut rows = Vec::new();
    let mut per_planner = Vec::new();
    println!(
        "fleet_throughput: {} x {} | {} requests, seed {}",
        args.workers, device, args.requests, args.seed
    );
    for (name, kind) in planners {
        let fleet = Fleet::new(
            FleetConfig::new(device.clone(), args.workers, kind),
            catalog.clone(),
        );
        let report = fleet.run_batch(&requests);
        let s = &report.stats;
        println!(
            "  {name:<10} admitted {:>3}/{:<3} ({:>5.1}%)  {:>8.2} req/s  p50 {:>7.3} ms  p99 {:>7.3} ms  {:>7.2} mJ  plan {}+{} calls",
            s.admitted,
            s.offered,
            s.admission_rate * 100.0,
            s.requests_per_sec,
            s.p50_latency_ms,
            s.p99_latency_ms,
            s.energy_mj,
            s.deploy_plan_calls,
            s.serve_plan_calls
        );
        rows.push(stats_json(name, s));
        per_planner.push((name, s.clone()));
    }

    // The headline criteria: segment-level planning must admit strictly
    // more of the same offered load than both disjoint baselines, and
    // the fusion pass may only add capacity on top of it.
    let by_name = |wanted: &str| {
        &per_planner
            .iter()
            .find(|(name, _)| *name == wanted)
            .expect("planner ran")
            .1
    };
    let vmcu = by_name("vMCU");
    let fused = by_name("vMCU-fused");
    let patched = by_name("vMCU-patched");
    let checks: Vec<(String, bool, String)> = ["TinyEngine", "HMCOS"]
        .iter()
        .map(|name| {
            let s = by_name(name);
            (
                format!("vmcu_admits_more_than_{}", name.to_lowercase()),
                vmcu.admitted > s.admitted,
                format!("vMCU {} vs {} {}", vmcu.admitted, name, s.admitted),
            )
        })
        .chain(std::iter::once((
            "fused_admits_at_least_vmcu".to_owned(),
            fused.admitted >= vmcu.admitted,
            format!("vMCU-fused {} vs vMCU {}", fused.admitted, vmcu.admitted),
        )))
        .chain(std::iter::once((
            "patched_admits_at_least_vmcu".to_owned(),
            patched.admitted >= vmcu.admitted,
            format!(
                "vMCU-patched {} vs vMCU {}",
                patched.admitted, vmcu.admitted
            ),
        )))
        .chain(std::iter::once((
            "no_execution_failures".to_owned(),
            per_planner.iter().all(|(_, s)| s.failed == 0),
            "typed engine errors during admitted runs".to_owned(),
        )))
        .chain(std::iter::once((
            "planning_amortized".to_owned(),
            per_planner.iter().all(|(_, s)| s.serve_plan_calls == 0),
            format!(
                "serve-side plan calls per planner: {:?} (deploy-side: {:?})",
                per_planner
                    .iter()
                    .map(|(_, s)| s.serve_plan_calls)
                    .collect::<Vec<_>>(),
                per_planner
                    .iter()
                    .map(|(_, s)| s.deploy_plan_calls)
                    .collect::<Vec<_>>()
            ),
        )))
        .collect();

    let doc = Json::Object(vec![
        ("id".into(), Json::str("fleet_throughput")),
        ("device".into(), Json::str(device.name.clone())),
        ("workers".into(), Json::from(args.workers)),
        ("requests".into(), Json::from(args.requests)),
        ("seed".into(), Json::from(args.seed)),
        ("light".into(), Json::from(args.light)),
        ("planners".into(), Json::Array(rows)),
        (
            "checks".into(),
            Json::Array(
                checks
                    .iter()
                    .map(|(name, passed, detail)| {
                        Json::Object(vec![
                            ("name".into(), Json::str(name.clone())),
                            ("passed".into(), Json::Bool(*passed)),
                            ("detail".into(), Json::str(detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&args.out, doc.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);

    let mut ok = true;
    for (name, passed, detail) in &checks {
        println!(
            "  [{}] {name} — {detail}",
            if *passed { "PASS" } else { "FAIL" }
        );
        ok &= *passed;
    }
    std::process::exit(i32::from(!ok));
}
