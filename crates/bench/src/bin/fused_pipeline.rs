//! Fused-vs-unfused peak-RAM comparison: the paper's multi-layer case
//! (§5.2) measured per zoo model.
//!
//! For every chain-shaped zoo model this prices the multi-layer segment
//! fusion pipeline (`PlannerKind::VmcuFused`) against single-layer vMCU
//! and TinyEngine planning, reports which fit the 128 KB STM32-F411RE,
//! and emits `BENCH_fused.json`. Exit status is non-zero unless
//!
//! * the fused plan undercuts single-layer vMCU on the unfused
//!   MobileNetV2 block (the savings claim),
//! * the wide expand chain deploys **only** fused (the deployability
//!   claim),
//! * fusion never prices a model above single-layer vMCU (the admission
//!   monotonicity the fleet scheduler relies on).
//!
//! Flags: `--out PATH`.

use vmcu::prelude::*;
use vmcu_bench::json::Json;
use vmcu_graph::zoo;
use vmcu_plan::peak_demand_bytes;

fn parse_out() -> String {
    let mut out = "BENCH_fused.json".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a value"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    out
}

fn main() {
    let out_path = parse_out();
    let device = Device::stm32_f411re();
    let models = [
        ("mbv2-block-unfused", zoo::mbv2_block_unfused()),
        ("wide-expand-chain", zoo::wide_expand_chain()),
        ("demo-linear-net", zoo::demo_linear_net()),
    ];
    let fused_planner = FusedPlanner::default();
    let vmcu_planner = VmcuPlanner::default();

    println!("fused_pipeline: peak demand (bytes) on {device}");
    let mut rows = Vec::new();
    let mut demands = Vec::new();
    for (name, graph) in &models {
        let fused = peak_demand_bytes(&fused_planner, graph);
        let vmcu = peak_demand_bytes(&vmcu_planner, graph);
        let te = peak_demand_bytes(&TinyEnginePlanner, graph);
        let budget = device.usable_ram_bytes();
        let groups = vmcu_plan::fuse_graph(graph, IbScheme::RowBuffer).fused_groups();
        println!(
            "  {name:<22} fused {fused:>7}  vMCU {vmcu:>7}  TinyEngine {te:>7}  \
             ({groups} fused group{}, fused {} 128 KB)",
            if groups == 1 { "" } else { "s" },
            if fused <= budget { "fits" } else { "exceeds" },
        );
        rows.push(Json::Object(vec![
            ("model".into(), Json::str(*name)),
            ("fused_demand_bytes".into(), Json::from(fused)),
            ("vmcu_demand_bytes".into(), Json::from(vmcu)),
            ("tinyengine_demand_bytes".into(), Json::from(te)),
            ("fused_groups".into(), Json::from(groups)),
            ("fused_fits_128kb".into(), Json::Bool(fused <= budget)),
            ("vmcu_fits_128kb".into(), Json::Bool(vmcu <= budget)),
        ]));
        demands.push((*name, fused, vmcu));
    }

    let budget = device.usable_ram_bytes();
    let find = |wanted: &str| {
        demands
            .iter()
            .find(|(n, _, _)| *n == wanted)
            .expect("model priced")
    };
    let (_, mbv2_fused, mbv2_vmcu) = *find("mbv2-block-unfused");
    let (_, wide_fused, wide_vmcu) = *find("wide-expand-chain");
    let checks = [
        (
            "fused_undercuts_vmcu_on_mbv2_block",
            mbv2_fused < mbv2_vmcu,
            format!("fused {mbv2_fused} vs vMCU {mbv2_vmcu}"),
        ),
        (
            "wide_chain_fits_only_fused",
            wide_fused <= budget && wide_vmcu > budget,
            format!("fused {wide_fused} vs vMCU {wide_vmcu}, budget {budget}"),
        ),
        (
            "fusion_never_raises_demand",
            demands.iter().all(|(_, f, v)| f <= v),
            "fused demand <= vMCU demand on every model".to_owned(),
        ),
    ];

    let doc = Json::Object(vec![
        ("id".into(), Json::str("fused_pipeline")),
        ("device".into(), Json::str(device.name.clone())),
        ("models".into(), Json::Array(rows)),
        (
            "checks".into(),
            Json::Array(
                checks
                    .iter()
                    .map(|(name, passed, detail)| {
                        Json::Object(vec![
                            ("name".into(), Json::str(*name)),
                            ("passed".into(), Json::Bool(*passed)),
                            ("detail".into(), Json::str(detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut ok = true;
    for (name, passed, detail) in &checks {
        println!(
            "  [{}] {name} — {detail}",
            if *passed { "PASS" } else { "FAIL" }
        );
        ok &= *passed;
    }
    std::process::exit(i32::from(!ok));
}
