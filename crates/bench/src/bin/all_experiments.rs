//! Runs every experiment, prints the tables, writes `EXPERIMENTS.md` and
//! `results/*.json`, and exits non-zero if any shape check fails.
//!
//! Pass `--light` to skip the simulated executions (Figure 8, Table 3,
//! ablations) and only run the planning experiments.

use std::path::Path;

fn main() {
    let heavy = !std::env::args().any(|a| a == "--light");
    let results = vmcu_bench::experiments::run_all(heavy);
    let mut all_ok = true;
    for r in &results {
        all_ok &= vmcu_bench::report(r);
        println!();
        if let Err(e) = vmcu_bench::write_json(Path::new("results"), r) {
            eprintln!("warning: could not write results JSON: {e}");
        }
    }
    match vmcu_bench::write_experiments_md(Path::new("EXPERIMENTS.md"), &results) {
        Ok(()) => println!("wrote EXPERIMENTS.md ({} experiments)", results.len()),
        Err(e) => {
            eprintln!("error writing EXPERIMENTS.md: {e}");
            all_ok = false;
        }
    }
    let passed = results.iter().filter(|r| r.passed()).count();
    println!("shape checks: {passed}/{} experiments green", results.len());
    std::process::exit(i32::from(!all_ok));
}
