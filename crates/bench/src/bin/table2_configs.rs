//! Regenerates Table 2 (inverted-bottleneck configurations).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::tables::table2());
    std::process::exit(i32::from(!ok));
}
