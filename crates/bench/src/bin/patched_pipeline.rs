//! Patch-based front-stage comparison: the MCUNetV2-style spatial
//! bottleneck, measured per zoo model.
//!
//! For every chain-shaped zoo model this prices patch-based execution
//! (`PlannerKind::VmcuPatched`) against the fused pipeline, single-layer
//! vMCU, and TinyEngine planning, reports which fit the 128 KB
//! STM32-F411RE, measures the **halo recompute** of the patched front
//! (extra MACs from the accounting surface, extra cycles from actually
//! running the front patched vs unpatched on the simulated machine), and
//! emits `BENCH_patch.json`. Exit status is non-zero unless
//!
//! * `hires-front-stage` deploys **only** patched (the new-workload
//!   claim: its 147 KB input OOMs every whole-tensor policy),
//! * the patched output is bit-identical to the unpatched reference,
//! * patching never prices a model above the fused plan (the admission
//!   monotonicity the fleet scheduler relies on),
//! * the halo-recompute overhead stays under the planner's cap.
//!
//! Flags: `--out PATH`.

use vmcu::prelude::*;
use vmcu::vmcu_graph::exec;
use vmcu::vmcu_kernels::patched::{run_patched_front, PatchGrid, PatchedFront};
use vmcu::vmcu_sim::Machine;
use vmcu::vmcu_tensor::random;
use vmcu_bench::json::Json;
use vmcu_graph::zoo;
use vmcu_plan::peak_demand_bytes;

fn parse_out() -> String {
    let mut out = "BENCH_patch.json".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a value"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    out
}

/// Cycles of running `front` over `input` on a fresh machine.
fn front_cycles(device: Device, front: &PatchedFront, g: &Graph, seed: u64) -> u64 {
    let weights = g.random_weights(seed);
    let input = random::tensor_i8(&g.in_shape(), seed ^ 0xF00);
    let mut m = Machine::new(device);
    let flash: Vec<usize> = weights
        .iter()
        .take(front.ops().len())
        .map(|w| {
            let bytes = match w {
                LayerWeights::Pointwise(t)
                | LayerWeights::Depthwise(t)
                | LayerWeights::Conv2d(t) => t.as_bytes(),
                _ => unreachable!("patchable front"),
            };
            m.host_program_flash(&bytes).expect("flash fits")
        })
        .collect();
    run_patched_front(&mut m, front, &input, &flash).expect("front runs");
    m.counters.cycles
}

fn main() {
    let out_path = parse_out();
    let device = Device::stm32_f411re();
    let budget = device.usable_ram_bytes();
    let models = [
        ("hires-front-stage", zoo::hires_front_stage()),
        ("mbv2-block-unfused", zoo::mbv2_block_unfused()),
        ("wide-expand-chain", zoo::wide_expand_chain()),
        ("demo-linear-net", zoo::demo_linear_net()),
    ];
    let patched_planner = PatchedPlanner::default();

    println!("patched_pipeline: peak demand (bytes) on {device}");
    let mut rows = Vec::new();
    let mut demands = Vec::new();
    for (name, graph) in &models {
        let pplan = patched_planner.patch_plan(graph);
        let patched = pplan.peak_demand_bytes();
        let fused = peak_demand_bytes(&FusedPlanner::default(), graph);
        let vmcu = peak_demand_bytes(&VmcuPlanner::default(), graph);
        let te = peak_demand_bytes(&TinyEnginePlanner, graph);
        println!(
            "  {name:<22} patched {patched:>7}  fused {fused:>7}  vMCU {vmcu:>7}  TinyEngine {te:>7}  \
             ({}, patched {} 128 KB)",
            if pplan.is_patched() {
                format!("front {} layers @ {}", pplan.front_len, pplan.grid())
            } else {
                "unpatched".to_owned()
            },
            if patched <= budget { "fits" } else { "exceeds" },
        );
        rows.push(Json::Object(vec![
            ("model".into(), Json::str(*name)),
            ("patched_demand_bytes".into(), Json::from(patched)),
            ("fused_demand_bytes".into(), Json::from(fused)),
            ("vmcu_demand_bytes".into(), Json::from(vmcu)),
            ("tinyengine_demand_bytes".into(), Json::from(te)),
            ("is_patched".into(), Json::Bool(pplan.is_patched())),
            ("front_len".into(), Json::from(pplan.front_len)),
            ("grid".into(), Json::str(pplan.grid().to_string())),
            ("halo_overhead".into(), Json::from(pplan.halo_overhead)),
            ("patched_fits_128kb".into(), Json::Bool(patched <= budget)),
            ("fused_fits_128kb".into(), Json::Bool(fused <= budget)),
            ("vmcu_fits_128kb".into(), Json::Bool(vmcu <= budget)),
        ]));
        demands.push((*name, patched, fused));
    }

    // Halo recompute, measured: the patched front vs the same front
    // unpatched (1x1 "grid"), both on the 512 KB device — the unpatched
    // slab cannot fit the 128 KB device, and the cost model must be the
    // same on both sides for the subtraction to isolate the halo.
    let hires = zoo::hires_front_stage();
    let pplan = patched_planner.patch_plan(&hires);
    let front = pplan.front.clone().expect("hires patches");
    let unpatched_front =
        PatchedFront::new(front.ops().to_vec(), PatchGrid { gy: 1, gx: 1 }).expect("1x1 grid");
    let patched_cycles = front_cycles(Device::stm32_f767zi(), &front, &hires, 131);
    let unpatched_cycles = front_cycles(Device::stm32_f767zi(), &unpatched_front, &hires, 131);
    let recompute_cycles = patched_cycles.saturating_sub(unpatched_cycles);
    let recompute_macs = front.patched_macs() - front.unpatched_macs();
    println!(
        "  hires front @ {}: {} cycles patched vs {} unpatched \
         (+{} halo cycles, +{} halo MACs, {:.1}% overhead)",
        front.grid(),
        patched_cycles,
        unpatched_cycles,
        recompute_cycles,
        recompute_macs,
        pplan.halo_overhead * 100.0
    );

    // Bit-exactness of the whole patched model on the small device.
    let weights = hires.random_weights(141);
    let input = random::tensor_i8(&hires.in_shape(), 142);
    let reference = exec::run_reference(&hires, &weights, &input);
    let report = Engine::new(device.clone())
        .planner(PlannerKind::VmcuPatched(IbScheme::RowBuffer))
        .deploy(&hires, &weights)
        .expect("patched hires deploys at 128 KB")
        .session()
        .infer(&input)
        .expect("patched hires runs at 128 KB");
    let bit_exact = &report.output == reference.last().expect("non-empty model");

    let find = |wanted: &str| {
        demands
            .iter()
            .find(|(n, _, _)| *n == wanted)
            .expect("model priced")
    };
    let (_, hires_patched, hires_fused) = *find("hires-front-stage");
    let checks = [
        (
            "hires_deploys_only_patched",
            hires_patched <= budget && hires_fused > budget,
            format!("patched {hires_patched} vs fused {hires_fused}, budget {budget}"),
        ),
        (
            "patched_output_bit_identical",
            bit_exact,
            "patched hires output equals the unpatched reference".to_owned(),
        ),
        (
            "patching_never_raises_demand",
            demands.iter().all(|(_, p, f)| p <= f),
            "patched demand <= fused demand on every model".to_owned(),
        ),
        (
            "halo_overhead_within_cap",
            pplan.halo_overhead <= patched_planner.max_overhead(),
            format!(
                "{:.3} <= {:.2}",
                pplan.halo_overhead,
                patched_planner.max_overhead()
            ),
        ),
    ];

    let doc = Json::Object(vec![
        ("id".into(), Json::str("patched_pipeline")),
        ("device".into(), Json::str(device.name.clone())),
        ("models".into(), Json::Array(rows)),
        (
            "hires_front_halo".into(),
            Json::Object(vec![
                ("grid".into(), Json::str(front.grid().to_string())),
                ("patched_cycles".into(), Json::from(patched_cycles)),
                ("unpatched_cycles".into(), Json::from(unpatched_cycles)),
                ("recompute_cycles".into(), Json::from(recompute_cycles)),
                ("recompute_macs".into(), Json::from(recompute_macs)),
                ("overhead".into(), Json::from(pplan.halo_overhead)),
            ]),
        ),
        (
            "checks".into(),
            Json::Array(
                checks
                    .iter()
                    .map(|(name, passed, detail)| {
                        Json::Object(vec![
                            ("name".into(), Json::str(*name)),
                            ("passed".into(), Json::Bool(*passed)),
                            ("detail".into(), Json::str(detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut ok = true;
    for (name, passed, detail) in &checks {
        println!(
            "  [{}] {name} — {detail}",
            if *passed { "PASS" } else { "FAIL" }
        );
        ok &= *passed;
    }
    std::process::exit(i32::from(!ok));
}
