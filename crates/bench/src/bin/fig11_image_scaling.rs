//! Regenerates Figure 11 (image-size headroom at equal RAM).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::fig11_12::fig11());
    std::process::exit(i32::from(!ok));
}
