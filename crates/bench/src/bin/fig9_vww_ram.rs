//! Regenerates Figure 9 (MCUNet-5fps-VWW RAM on STM32-F411RE).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::fig9_10::fig9());
    std::process::exit(i32::from(!ok));
}
