//! Ablation: segment-size selection trade-off (§5.3).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::ablations::ablation_segment_size());
    std::process::exit(i32::from(!ok));
}
