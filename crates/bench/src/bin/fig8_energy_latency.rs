//! Regenerates Figure 8 (single-layer energy/latency on STM32-F767ZI).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::fig8::fig8());
    std::process::exit(i32::from(!ok));
}
