//! SIMD-aware kernel benchmark: scalar vs vectorized cycles/MAC across
//! the device capability ladder, plus host-side ns/MAC.
//!
//! Three measurements per device of `Device::simd_ladder()`:
//!
//! * **dot microbenchmark** — the lane-blocked `dot_tile_lanes` GEMM
//!   micro-kernel priced at `lanes_used = 1` (the scalar lowering a
//!   capability-unaware compiler emits) and at the device's native width;
//!   reported as simulated cycles/MAC and the scalar/vectorized ratio;
//! * **conv2d im2col end-to-end** — the full im2col + matmul lowering on
//!   a representative 3×3 conv, scalar vs vectorized, bit-exactness
//!   checked against the direct segment-aware kernel;
//! * **host ns/MAC** — wall-clock time of the direct conv2d kernel on
//!   this machine (the register-tiled `dot_tile_u8` hot loop), which is
//!   what CI trends to catch host-side slowdowns of the simulator itself.
//!
//! Emits `BENCH_simd.json`. Exit status is non-zero unless the
//! vectorized GEMM beats scalar by ≥ 1.8× cycles/MAC on both DSP boards
//! (Cortex-M4 and M7) and every lowering is bit-exact on every device.
//!
//! Flags: `--out PATH`.

use std::time::Instant;
use vmcu::vmcu_pool::SegmentPool;
use vmcu_bench::json::Json;
use vmcu_kernels::conv2d::{conv2d_exec_distance, run_conv2d};
use vmcu_kernels::im2col::run_conv2d_im2col;
use vmcu_kernels::intrinsics::dot_tile_lanes;
use vmcu_kernels::params::Conv2dParams;
use vmcu_sim::{Device, Machine};
use vmcu_tensor::{random, Requant, Tensor};

fn parse_out() -> String {
    let mut out = "BENCH_simd.json".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a value"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    out
}

/// Simulated cycles/MAC of the GEMM micro-kernel at the given lane count:
/// 64 tiles of ki=64 × ni=8 (32 768 MACs).
fn dot_cycles_per_mac(device: &Device, lanes: u64) -> f64 {
    let mut m = Machine::new(device.clone());
    let a: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    let b: Vec<u8> = (0..64 * 8u32).map(|i| (i * 91 + 5) as u8).collect();
    let mut acc = [0i32; 8];
    for _ in 0..64 {
        dot_tile_lanes(&mut m, &a, &b, 8, &mut acc, true, lanes);
    }
    m.counters.cycles as f64 / m.counters.macs as f64
}

struct ConvRun {
    out: Tensor<i8>,
    cycles: u64,
    macs: u64,
    wall_ns: u128,
}

fn conv_workload() -> Conv2dParams {
    Conv2dParams::new(12, 12, 8, 8, 3, 3, 1, 1, Requant::from_scale(1.0 / 64.0, 0))
}

/// Runs the conv either direct (`lanes = None`) or through the im2col
/// lowering at the given lane count, returning output + counters + wall
/// time.
fn run_conv(device: &Device, lanes: Option<u64>) -> ConvRun {
    let p = conv_workload();
    let mut m = Machine::new(device.clone());
    let input = random::tensor_i8(&[p.h, p.w, p.c], 31);
    let weight = random::tensor_i8(&[p.r, p.s, p.c, p.k], 32);
    let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
    let dist = conv2d_exec_distance(&p);
    let window = (p.in_bytes() + dist.max(0) as usize).max(p.out_bytes());
    let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
    pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
    let t0 = Instant::now();
    match lanes {
        None => run_conv2d(&mut m, &mut pool, &p, 0, -dist, w_base, None).unwrap(),
        Some(l) => {
            run_conv2d_im2col(&mut m, &mut pool, &p, 0, -dist, w_base, None, window, l).unwrap();
        }
    }
    let wall_ns = t0.elapsed().as_nanos();
    let out = pool.host_read(&m, -dist, p.out_bytes()).unwrap();
    ConvRun {
        out: Tensor::from_bytes(&[p.out_h(), p.out_w(), p.k], &out),
        cycles: m.counters.cycles,
        macs: m.counters.macs,
        wall_ns,
    }
}

fn main() {
    let out_path = parse_out();
    println!("simd_kernels: scalar vs vectorized across the capability ladder");
    let mut rows = Vec::new();
    let mut dsp_ratios = Vec::new();
    let mut all_bit_exact = true;
    for device in Device::simd_ladder() {
        let lanes = device.cost.simd.lanes;
        let scalar_cpm = dot_cycles_per_mac(&device, 1);
        let vector_cpm = dot_cycles_per_mac(&device, lanes);
        let ratio = scalar_cpm / vector_cpm;

        let direct = run_conv(&device, None);
        let im2col_scalar = run_conv(&device, Some(1));
        let im2col_vector = run_conv(&device, Some(lanes));
        let bit_exact = im2col_scalar.out == direct.out && im2col_vector.out == direct.out;
        all_bit_exact &= bit_exact;

        // Host ns/MAC from the fastest of a few direct-kernel repetitions
        // (minimum damps scheduler noise).
        let best_ns = (0..5)
            .map(|_| run_conv(&device, None).wall_ns)
            .min()
            .unwrap();
        let host_ns_per_mac = best_ns as f64 / direct.macs as f64;

        if matches!(device.cost.simd.lanes, 2) {
            dsp_ratios.push((device.name.clone(), ratio));
        }
        println!(
            "  {:<14} lanes {lanes}  dot {scalar_cpm:.3} -> {vector_cpm:.3} cyc/MAC ({ratio:.2}x)  \
             conv2d im2col {} -> {} cycles  host {host_ns_per_mac:.1} ns/MAC  bit-exact {}",
            device.name, im2col_scalar.cycles, im2col_vector.cycles, bit_exact
        );
        rows.push(Json::Object(vec![
            ("device".into(), Json::str(device.name.clone())),
            ("core".into(), Json::str(device.core.to_string())),
            ("lanes".into(), Json::from(lanes as usize)),
            ("dot_scalar_cycles_per_mac".into(), Json::from(scalar_cpm)),
            (
                "dot_vectorized_cycles_per_mac".into(),
                Json::from(vector_cpm),
            ),
            ("dot_speedup".into(), Json::from(ratio)),
            (
                "conv2d_im2col_scalar_cycles".into(),
                Json::from(im2col_scalar.cycles as usize),
            ),
            (
                "conv2d_im2col_vectorized_cycles".into(),
                Json::from(im2col_vector.cycles as usize),
            ),
            (
                "conv2d_direct_cycles".into(),
                Json::from(direct.cycles as usize),
            ),
            ("bit_exact_vs_direct".into(), Json::Bool(bit_exact)),
            ("host_ns_per_mac".into(), Json::from(host_ns_per_mac)),
        ]));
    }

    let min_dsp_ratio = dsp_ratios
        .iter()
        .map(|(_, r)| *r)
        .fold(f64::INFINITY, f64::min);
    let checks = [
        (
            "dsp_vectorization_beats_1p8x",
            dsp_ratios.len() == 2 && min_dsp_ratio >= 1.8,
            format!(
                "scalar/vectorized cycles per MAC ratio {:.2} on {} DSP boards (need >= 1.80)",
                min_dsp_ratio,
                dsp_ratios.len()
            ),
        ),
        (
            "lowerings_bit_exact_on_every_device",
            all_bit_exact,
            "im2col scalar and vectorized outputs match the direct kernel".to_owned(),
        ),
    ];

    let doc = Json::Object(vec![
        ("id".into(), Json::str("simd_kernels")),
        ("devices".into(), Json::Array(rows)),
        (
            "checks".into(),
            Json::Array(
                checks
                    .iter()
                    .map(|(name, passed, detail)| {
                        Json::Object(vec![
                            ("name".into(), Json::str(*name)),
                            ("passed".into(), Json::Bool(*passed)),
                            ("detail".into(), Json::str(detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut ok = true;
    for (name, passed, detail) in &checks {
        println!(
            "  [{}] {name} — {detail}",
            if *passed { "PASS" } else { "FAIL" }
        );
        ok &= *passed;
    }
    std::process::exit(i32::from(!ok));
}
