//! Regenerates Table 1 (hardware landscape).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::tables::table1());
    std::process::exit(i32::from(!ok));
}
