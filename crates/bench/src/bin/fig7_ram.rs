//! Regenerates Figure 7 (single-layer RAM on STM32-F411RE).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::fig7::fig7());
    std::process::exit(i32::from(!ok));
}
