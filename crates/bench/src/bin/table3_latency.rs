//! Regenerates Table 3 (inverted-bottleneck latency, STM32-F411RE).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::table3::table3());
    std::process::exit(i32::from(!ok));
}
