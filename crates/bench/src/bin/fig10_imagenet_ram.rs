//! Regenerates Figure 10 (MCUNet-320KB-ImageNet RAM on STM32-F767ZI).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::fig9_10::fig10());
    std::process::exit(i32::from(!ok));
}
