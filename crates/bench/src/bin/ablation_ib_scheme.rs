//! Ablation: PixelWindow vs RowBuffer fused workspace schemes.
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::ablations::ablation_ib_scheme());
    std::process::exit(i32::from(!ok));
}
