//! Regenerates Figure 12 (channel headroom at equal RAM).
fn main() {
    let ok = vmcu_bench::report(&vmcu_bench::experiments::fig11_12::fig12());
    std::process::exit(i32::from(!ok));
}
