//! CI bench-regression gate.
//!
//! Compares a freshly emitted `BENCH_fleet.json` (from `fleet_throughput`)
//! against the committed baseline and fails when requests/sec or the
//! admission rate drops more than the allowed fraction for any planner
//! present in both files. One direction-correctness carve-out: a
//! requests/sec drop that comes with *more admitted requests* is waived —
//! serving previously-rejected heavy models lengthens the makespan, and
//! punishing that would gate out genuine capacity improvements (rejecting
//! heavy work always looks "faster" per completed request).
//!
//! Fleet numbers are simulated device time, so on an unchanged tree
//! current == baseline exactly; the 20% margin only buys room for
//! intentional small trade-offs, not for machine noise.
//!
//! Online rows (the sustained serving simulator, keyed by
//! `(planner, profile)`) are gated on the two SLO-facing metrics:
//! `p99_sojourn_ms` and `shed_rate` must not rise more than the allowed
//! fraction above baseline (shed rate gets an extra 0.5-point absolute
//! slack so near-zero baselines don't gate on dust). A baseline online
//! row missing from the current report fails; a baseline that predates
//! the online section skips the online gate.
//!
//! The gate also holds the plan-once contract: each planner's
//! `plan_calls_per_request` (serving-side planning amortization, 0 on
//! the deploy-once worker path) must not rise above the baseline — the
//! replanning win is gated, not just claimed.
//!
//! The gate can additionally hold the SIMD kernel win: pass
//! `--simd-current BENCH_simd.json --simd-baseline ci/bench_simd_baseline.json`
//! and each device's vectorized GEMM cycles/MAC must not rise above the
//! committed baseline (cycles/MAC are simulated, so unchanged code
//! compares exactly), and no benchmark-internal check may have failed.
//!
//! A second, standalone mode holds the bit-reproducibility contract
//! across *processes*: `bench_gate --identical A.json B.json` compares
//! two `fleet_throughput` reports field by field after stripping the
//! host-time fields (`planning_ms`, `host_wall_ms`,
//! `host_requests_per_sec`) — every remaining number is simulated
//! device time and must compare bit-identical, or the gate fails. CI
//! runs `fleet_throughput` twice and feeds both files through this
//! mode.
//!
//! Usage:
//! `bench_gate [--current BENCH_fleet.json] [--baseline ci/bench_baseline.json] [--max-drop 0.20] [--simd-current PATH --simd-baseline PATH]`
//! `bench_gate --identical A.json B.json`

use vmcu_bench::json::Json;

struct Args {
    current: String,
    baseline: String,
    max_drop: f64,
    simd_current: Option<String>,
    simd_baseline: Option<String>,
    /// `--identical A B`: standalone mode, compare two reports'
    /// simulated fields bit for bit instead of gating against the
    /// baseline.
    identical: Option<(String, String)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        current: "BENCH_fleet.json".to_owned(),
        baseline: "ci/bench_baseline.json".to_owned(),
        max_drop: 0.20,
        simd_current: None,
        simd_baseline: None,
        identical: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--current" => args.current = value("--current"),
            "--baseline" => args.baseline = value("--baseline"),
            "--identical" => {
                let a = value("--identical");
                let b = value("--identical");
                args.identical = Some((a, b));
            }
            "--simd-current" => args.simd_current = Some(value("--simd-current")),
            "--simd-baseline" => args.simd_baseline = Some(value("--simd-baseline")),
            "--max-drop" => {
                args.max_drop = value("--max-drop").parse().expect("--max-drop: fraction");
                assert!(
                    (0.0..1.0).contains(&args.max_drop),
                    "--max-drop must be in [0, 1)"
                );
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert_eq!(
        args.simd_current.is_some(),
        args.simd_baseline.is_some(),
        "--simd-current and --simd-baseline must be passed together"
    );
    args
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading {path}: {e} (run fleet_throughput first?)"));
    Json::parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

struct PlannerRow {
    name: String,
    requests_per_sec: f64,
    admission_rate: f64,
    admitted: f64,
    /// Serving-side planning amortization (`serve_plan_calls / offered`);
    /// `None` for baselines that predate the metric.
    plan_calls_per_request: Option<f64>,
}

fn planner_rows(doc: &Json, path: &str) -> Vec<PlannerRow> {
    doc.get("planners")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{path}: missing `planners` array"))
        .iter()
        .map(|row| {
            let field = |key: &str| {
                row.get(key)
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("{path}: planner row missing number `{key}`"))
            };
            PlannerRow {
                name: row
                    .get("planner")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("{path}: planner row missing `planner`"))
                    .to_owned(),
                requests_per_sec: field("requests_per_sec"),
                admission_rate: field("admission_rate"),
                admitted: field("admitted"),
                plan_calls_per_request: row.get("plan_calls_per_request").and_then(Json::as_f64),
            }
        })
        .collect()
}

struct OnlineRow {
    planner: String,
    profile: String,
    p99_sojourn_ms: f64,
    shed_rate: f64,
}

/// Extracts the `online` rows; `None` when the file predates the
/// online serving section (pre-online baselines stay usable).
fn online_rows(doc: &Json, path: &str) -> Option<Vec<OnlineRow>> {
    Some(
        doc.get("online")?
            .as_array()
            .unwrap_or_else(|| panic!("{path}: `online` is not an array"))
            .iter()
            .map(|row| {
                let text = |key: &str| {
                    row.get(key)
                        .and_then(Json::as_str)
                        .unwrap_or_else(|| panic!("{path}: online row missing `{key}`"))
                        .to_owned()
                };
                let field = |key: &str| {
                    row.get(key)
                        .and_then(Json::as_f64)
                        .unwrap_or_else(|| panic!("{path}: online row missing number `{key}`"))
                };
                OnlineRow {
                    planner: text("planner"),
                    profile: text("profile"),
                    p99_sojourn_ms: field("p99_sojourn_ms"),
                    shed_rate: field("shed_rate"),
                }
            })
            .collect(),
    )
}

/// Gates the online serving rows: per `(planner, profile)` pair present
/// in the baseline, simulated p99 sojourn and shed rate must not rise
/// beyond the allowed margin. Both are simulated, so an unchanged tree
/// compares exactly.
fn gate_online(current: &[OnlineRow], baseline: &[OnlineRow], max_drop: f64) -> bool {
    let mut ok = true;
    for base in baseline {
        let key = format!("{}/{}", base.planner, base.profile);
        let Some(cur) = current
            .iter()
            .find(|r| r.planner == base.planner && r.profile == base.profile)
        else {
            println!("  [FAIL] online {key}: row missing from current report");
            ok = false;
            continue;
        };
        let p99_ceiling = base.p99_sojourn_ms * (1.0 + max_drop) + 1e-9;
        let p99_ok = cur.p99_sojourn_ms <= p99_ceiling;
        println!(
            "  [{}] online {key} p99_sojourn_ms: {:.3} vs baseline {:.3} (ceiling {:.3})",
            if p99_ok { "PASS" } else { "FAIL" },
            cur.p99_sojourn_ms,
            base.p99_sojourn_ms,
            p99_ceiling
        );
        // Relative margin plus half a percentage point of absolute slack:
        // a 0.1% -> 0.4% shed move is noise-scale churn in the queue
        // tail, but 10% -> 13% is a real capacity regression and fails.
        let shed_ceiling = base.shed_rate * (1.0 + max_drop) + 0.005;
        let shed_ok = cur.shed_rate <= shed_ceiling;
        println!(
            "  [{}] online {key} shed_rate: {:.4} vs baseline {:.4} (ceiling {:.4})",
            if shed_ok { "PASS" } else { "FAIL" },
            cur.shed_rate,
            base.shed_rate,
            shed_ceiling
        );
        ok &= p99_ok && shed_ok;
    }
    ok
}

/// Gates the SIMD kernel report: per-device vectorized cycles/MAC must
/// not exceed the committed baseline (simulated numbers compare exactly
/// on an unchanged tree), and the report's own checks must all pass.
fn gate_simd(current_path: &str, baseline_path: &str) -> bool {
    let current = load(current_path);
    let baseline = load(baseline_path);
    let devices = |doc: &Json, path: &str| -> Vec<(String, f64)> {
        doc.get("devices")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{path}: missing `devices` array"))
            .iter()
            .map(|row| {
                let name = row
                    .get("device")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("{path}: device row missing `device`"))
                    .to_owned();
                let cpm = row
                    .get("dot_vectorized_cycles_per_mac")
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| {
                        panic!("{path}: device row missing `dot_vectorized_cycles_per_mac`")
                    });
                (name, cpm)
            })
            .collect()
    };
    let mut ok = true;
    println!("simd gate: {current_path} vs baseline {baseline_path}");
    let cur_devices = devices(&current, current_path);
    for (name, base_cpm) in devices(&baseline, baseline_path) {
        let Some((_, cur_cpm)) = cur_devices.iter().find(|(n, _)| *n == name) else {
            println!("  [FAIL] {name}: device missing from current SIMD report");
            ok = false;
            continue;
        };
        // Simulated cycles are deterministic: any rise is a real kernel
        // or cost-model regression, not noise.
        let passed = *cur_cpm <= base_cpm + 1e-9;
        println!(
            "  [{}] {name} vectorized cycles/MAC: {cur_cpm:.4} vs baseline {base_cpm:.4}",
            if passed { "PASS" } else { "FAIL" }
        );
        ok &= passed;
    }
    for check in current
        .get("checks")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{current_path}: missing `checks` array"))
    {
        let name = check.get("name").and_then(Json::as_str).unwrap_or("?");
        let passed = matches!(check.get("passed"), Some(Json::Bool(true)));
        println!(
            "  [{}] simd check {name}",
            if passed { "PASS" } else { "FAIL" }
        );
        ok &= passed;
    }
    ok
}

/// Host-side wall-clock fields: the only numbers in a report that are
/// allowed to differ between two runs of the same build.
const HOST_TIME_KEYS: &[&str] = &["planning_ms", "host_wall_ms", "host_requests_per_sec"];

/// Recursively drops the host-time fields, leaving only simulated (and
/// therefore bit-reproducible) content.
fn strip_host_time(json: &Json) -> Json {
    match json {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .filter(|(k, _)| !HOST_TIME_KEYS.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), strip_host_time(v)))
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(strip_host_time).collect()),
        other => other.clone(),
    }
}

/// The cross-process bit-reproducibility gate: two `fleet_throughput`
/// reports must agree on every simulated field.
fn gate_identical(a_path: &str, b_path: &str) -> bool {
    let a = load(a_path);
    let b = load(b_path);
    println!("identical gate: {a_path} vs {b_path} (host-time fields excluded)");
    let mut ok = true;
    for section in ["planners", "online", "checks"] {
        let (sa, sb) = (a.get(section), b.get(section));
        let passed = match (sa, sb) {
            (Some(sa), Some(sb)) => {
                strip_host_time(sa).to_string_pretty() == strip_host_time(sb).to_string_pretty()
            }
            (None, None) => true,
            _ => false,
        };
        println!(
            "  [{}] section `{section}` compares bit-identical",
            if passed { "PASS" } else { "FAIL" }
        );
        ok &= passed;
    }
    let whole = strip_host_time(&a).to_string_pretty() == strip_host_time(&b).to_string_pretty();
    println!(
        "  [{}] whole report (minus host time) compares bit-identical",
        if whole { "PASS" } else { "FAIL" }
    );
    ok && whole
}

fn main() {
    let args = parse_args();
    if let Some((a, b)) = &args.identical {
        let ok = gate_identical(a, b);
        if !ok {
            println!(
                "simulated fields differ across processes — a nondeterminism bug, \
                 not a perf regression; bisect the fields above"
            );
        }
        std::process::exit(i32::from(!ok));
    }
    let current_doc = load(&args.current);
    let baseline_doc = load(&args.baseline);
    let current = planner_rows(&current_doc, &args.current);
    let baseline = planner_rows(&baseline_doc, &args.baseline);

    let mut ok = true;
    let mut compared = 0usize;
    println!(
        "bench gate: {} vs baseline {} (max drop {:.0}%)",
        args.current,
        args.baseline,
        args.max_drop * 100.0
    );
    for base in &baseline {
        let name = &base.name;
        let Some(cur) = current.iter().find(|r| r.name == *name) else {
            println!("  [FAIL] {name}: planner missing from current report");
            ok = false;
            continue;
        };
        compared += 1;
        for (metric, b, c) in [
            (
                "requests_per_sec",
                base.requests_per_sec,
                cur.requests_per_sec,
            ),
            ("admission_rate", base.admission_rate, cur.admission_rate),
        ] {
            let floor = b * (1.0 - args.max_drop);
            let mut passed = c >= floor;
            // Direction-correctness: completed-per-makespan drops when
            // previously-rejected heavy models get served. More admitted
            // work excuses a requests/sec drop (never the reverse).
            let mut tag = if passed { "PASS" } else { "FAIL" };
            if !passed && metric == "requests_per_sec" && cur.admitted > base.admitted {
                passed = true;
                tag = "WAIVED";
            }
            let delta = if b > 0.0 { (c - b) / b * 100.0 } else { 0.0 };
            println!(
                "  [{tag}] {name} {metric}: {c:.3} vs baseline {b:.3} ({delta:+.1}%){}",
                if tag == "WAIVED" {
                    format!(" — admitted rose {} -> {}", base.admitted, cur.admitted)
                } else {
                    String::new()
                }
            );
            ok &= passed;
        }
        // Planning amortization gates the other direction: the serve-side
        // replanning win must not regress (a *rise* in plan calls per
        // request fails). Skipped when either file predates the metric.
        if let (Some(b), Some(c)) = (base.plan_calls_per_request, cur.plan_calls_per_request) {
            let ceiling = b * (1.0 + args.max_drop) + 1e-9;
            let passed = c <= ceiling;
            println!(
                "  [{}] {name} plan_calls_per_request: {c:.4} vs baseline {b:.4} (ceiling {ceiling:.4})",
                if passed { "PASS" } else { "FAIL" }
            );
            ok &= passed;
        }
    }
    if compared == 0 {
        println!("  [FAIL] no planners in common between current and baseline");
        ok = false;
    }
    // Online serving gate: only when the baseline has online rows (so
    // pre-online baselines remain usable); the current report must then
    // carry every baseline row.
    if let Some(base_online) = online_rows(&baseline_doc, &args.baseline) {
        if base_online.is_empty() {
            println!("  online gate: baseline has no online rows, skipping");
        } else {
            let cur_online = online_rows(&current_doc, &args.current).unwrap_or_default();
            ok &= gate_online(&cur_online, &base_online, args.max_drop);
        }
    }
    if let (Some(sc), Some(sb)) = (&args.simd_current, &args.simd_baseline) {
        ok &= gate_simd(sc, sb);
    }
    if !ok {
        println!(
            "regression gate failed — if the slowdown is intentional, regenerate {} from \
             `cargo run --release --bin fleet_throughput -- --light` and commit it",
            args.baseline
        );
    }
    std::process::exit(i32::from(!ok));
}
