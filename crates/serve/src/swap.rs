//! Model residency and hot-swap accounting for one device.
//!
//! A device can only serve models that are *resident*: their weights
//! staged in Flash and their peak SRAM demand reserved. The
//! [`ResidencyLedger`] tracks the resident set under the device's two
//! budgets — SRAM (sum of peak demands) and Flash (sum of firmware
//! images) — and evicts least-recently-used models when an incoming
//! model needs room. Every staging is charged simulated
//! flash-programming time by the caller (the worker adds
//! [`vmcu::Deployment::staging_ms`] to its device clock, **exactly once
//! per staging**); a staging that had to evict is a *hot swap*.
//!
//! The ledger is pure bookkeeping — no clocks, no randomness — so the
//! swap sequence is a deterministic function of the request sequence.

/// Outcome of asking the ledger to make a model resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admit {
    /// Already resident — serve immediately, nothing to charge.
    Hit,
    /// Newly staged; the caller must charge one staging (simulated
    /// flash-programming time) before serving. `evicted` lists the
    /// models dropped to make room (empty on a cold, uncontended
    /// staging).
    Staged {
        /// Catalog indices of the models evicted to make room.
        evicted: Vec<usize>,
    },
    /// The model exceeds a device budget even on an empty device; it can
    /// never be served here.
    TooLarge,
}

#[derive(Debug, Clone)]
struct ResidentModel {
    model: usize,
    ram_bytes: usize,
    flash_bytes: usize,
    last_used: u64,
}

/// LRU residency ledger for one device: which models are staged, and
/// what it cost to get them there.
///
/// # Examples
///
/// ```
/// use vmcu_serve::{Admit, ResidencyLedger};
///
/// // A device with room for one of these two models at a time.
/// let mut ledger = ResidencyLedger::new(100, 1000);
/// assert_eq!(ledger.request(0, 80, 400), Admit::Staged { evicted: vec![] });
/// assert_eq!(ledger.request(0, 80, 400), Admit::Hit);
/// // Model 1 needs the RAM model 0 holds: staging it is a hot swap.
/// assert_eq!(ledger.request(1, 60, 400), Admit::Staged { evicted: vec![0] });
/// assert_eq!(ledger.stagings(), 2);
/// assert_eq!(ledger.swaps(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ResidencyLedger {
    ram_budget: usize,
    flash_budget: usize,
    resident: Vec<ResidentModel>,
    tick: u64,
    stagings: u64,
    swaps: u64,
    evictions: u64,
}

impl ResidencyLedger {
    /// A ledger over a device with `ram_budget` bytes of usable SRAM and
    /// `flash_budget` bytes of Flash.
    pub fn new(ram_budget: usize, flash_budget: usize) -> Self {
        Self {
            ram_budget,
            flash_budget,
            resident: Vec::new(),
            tick: 0,
            stagings: 0,
            swaps: 0,
            evictions: 0,
        }
    }

    /// Makes `model` resident (or refreshes its recency if it already
    /// is), evicting least-recently-used models as needed.
    ///
    /// # Panics
    ///
    /// Panics only if the eviction loop finds no resident model to
    /// evict — unreachable, because a model larger than the budget is
    /// refused with [`Admit::TooLarge`] before eviction starts.
    pub fn request(&mut self, model: usize, ram_bytes: usize, flash_bytes: usize) -> Admit {
        self.tick += 1;
        if let Some(r) = self.resident.iter_mut().find(|r| r.model == model) {
            r.last_used = self.tick;
            return Admit::Hit;
        }
        if ram_bytes > self.ram_budget || flash_bytes > self.flash_budget {
            return Admit::TooLarge;
        }
        let mut evicted = Vec::new();
        while self.ram_used() + ram_bytes > self.ram_budget
            || self.flash_used() + flash_bytes > self.flash_budget
        {
            let lru = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(i, _)| i)
                .expect("over budget implies something is resident");
            evicted.push(self.resident.remove(lru).model);
        }
        self.resident.push(ResidentModel {
            model,
            ram_bytes,
            flash_bytes,
            last_used: self.tick,
        });
        self.stagings += 1;
        if !evicted.is_empty() {
            self.swaps += 1;
            self.evictions += evicted.len() as u64;
        }
        Admit::Staged { evicted }
    }

    /// Whether `model` is currently resident.
    pub fn is_resident(&self, model: usize) -> bool {
        self.resident.iter().any(|r| r.model == model)
    }

    /// SRAM currently reserved by resident models.
    pub fn ram_used(&self) -> usize {
        self.resident.iter().map(|r| r.ram_bytes).sum()
    }

    /// Flash currently occupied by resident images.
    pub fn flash_used(&self) -> usize {
        self.resident.iter().map(|r| r.flash_bytes).sum()
    }

    /// Total stagings (every one was charged staging time once).
    pub fn stagings(&self) -> u64 {
        self.stagings
    }

    /// Stagings that had to evict at least one model — the hot swaps.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Models evicted over the ledger's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_staging_evicts_nothing() {
        let mut l = ResidencyLedger::new(1000, 1000);
        assert_eq!(l.request(3, 100, 100), Admit::Staged { evicted: vec![] });
        assert!(l.is_resident(3));
        assert_eq!((l.stagings(), l.swaps(), l.evictions()), (1, 0, 0));
        assert_eq!((l.ram_used(), l.flash_used()), (100, 100));
    }

    #[test]
    fn hits_do_not_restage() {
        let mut l = ResidencyLedger::new(1000, 1000);
        l.request(1, 100, 100);
        for _ in 0..10 {
            assert_eq!(l.request(1, 100, 100), Admit::Hit);
        }
        assert_eq!(l.stagings(), 1, "a resident model is never re-staged");
    }

    #[test]
    fn lru_is_evicted_first() {
        // Budget fits two of the three models.
        let mut l = ResidencyLedger::new(200, 10_000);
        l.request(0, 100, 10);
        l.request(1, 100, 10);
        l.request(0, 100, 10); // refresh 0 => 1 is now LRU
        assert_eq!(l.request(2, 100, 10), Admit::Staged { evicted: vec![1] });
        assert!(l.is_resident(0) && l.is_resident(2) && !l.is_resident(1));
        assert_eq!((l.swaps(), l.evictions()), (1, 1));
    }

    #[test]
    fn one_staging_can_evict_many() {
        let mut l = ResidencyLedger::new(300, 10_000);
        l.request(0, 100, 10);
        l.request(1, 100, 10);
        l.request(2, 100, 10);
        // One fat model displaces all three: one swap, three evictions.
        assert_eq!(
            l.request(3, 300, 10),
            Admit::Staged {
                evicted: vec![0, 1, 2]
            }
        );
        assert_eq!((l.swaps(), l.evictions()), (1, 3));
    }

    #[test]
    fn either_budget_can_force_the_swap() {
        // RAM is plentiful; Flash is the binding constraint.
        let mut l = ResidencyLedger::new(10_000, 100);
        l.request(0, 10, 80);
        assert_eq!(l.request(1, 10, 80), Admit::Staged { evicted: vec![0] });
        assert_eq!(l.swaps(), 1);
    }

    #[test]
    fn impossible_models_are_too_large_not_thrash() {
        let mut l = ResidencyLedger::new(100, 100);
        l.request(0, 50, 50);
        assert_eq!(l.request(1, 101, 10), Admit::TooLarge);
        assert_eq!(l.request(2, 10, 101), Admit::TooLarge);
        assert!(l.is_resident(0), "TooLarge must not evict anything");
        assert_eq!(l.stagings(), 1);
    }
}
