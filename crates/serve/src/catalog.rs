//! The fleet's model catalog: the set of deployable models requests may
//! name.

use vmcu_graph::zoo::{self, NamedGraph};

/// Name-indexed collection of deployable models.
#[derive(Debug, Clone)]
pub struct ModelCatalog {
    models: Vec<NamedGraph>,
}

impl ModelCatalog {
    /// Builds a catalog from explicit models.
    ///
    /// # Panics
    ///
    /// Panics if two models share a name — requests address models by
    /// name, so ambiguity would route traffic nondeterministically.
    pub fn new(models: Vec<NamedGraph>) -> Self {
        let mut names: Vec<&str> = models.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), models.len(), "catalog names must be unique");
        Self { models }
    }

    /// The standard serving catalog ([`zoo::fleet_catalog`]).
    pub fn standard() -> Self {
        Self::new(zoo::fleet_catalog())
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<&NamedGraph> {
        self.models.iter().find(|m| m.name == name)
    }

    /// All models, in catalog order.
    pub fn models(&self) -> &[NamedGraph] {
        &self.models
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_resolves_names() {
        let cat = ModelCatalog::standard();
        assert!(cat.get("demo-linear-net").is_some());
        assert!(cat.get("vww-s5").is_some());
        assert!(cat.get("no-such-model").is_none());
        assert!(!cat.models().is_empty());
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_names_are_rejected() {
        let m = ModelCatalog::standard().models()[0].clone();
        let _ = ModelCatalog::new(vec![m.clone(), m]);
    }
}
