//! Fleet-level statistics: latency percentiles, throughput, admission
//! rate.
//!
//! Everything here is computed from *simulated* device time, so the
//! numbers are bit-reproducible across hosts — which is what lets CI gate
//! on them without noise margins. Host wall-clock is carried separately,
//! for information only.

use vmcu_sim::Counters;

/// Aggregated execution record of one worker (device) over a batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Requests this worker executed.
    pub executed: usize,
    /// Simulated busy time in milliseconds (sum of inference latencies).
    pub busy_ms: f64,
    /// Simulated energy in millijoules.
    pub energy_mj: f64,
    /// Summed device counters (MACs, RAM/flash traffic, cycles).
    pub counters: Counters,
    /// Planning passes this worker performed while serving its slice
    /// (per-thread [`vmcu_plan::telemetry`] delta). Always 0 on the
    /// deploy-once path — workers execute memoized plans.
    pub plan_calls: u64,
}

/// Planning-side accounting of one batch, kept separate from inference
/// time: the whole point of the deploy-once flow is that planning cost
/// is paid once per model, not once per request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanningStats {
    /// Host milliseconds spent deploying the catalog (fit validation and
    /// plan memoization). Informational — host time, not simulated time,
    /// and therefore not bit-reproducible.
    pub deploy_ms: f64,
    /// Planning passes performed at deploy time (once per fleet, not per
    /// batch). Deterministic.
    pub deploy_plan_calls: u64,
    /// Planning passes performed while serving the batch: admission
    /// pricing plus worker execution. Near zero on the deploy-once path
    /// (only models that failed to deploy are priced on first sight).
    /// Deterministic.
    pub serve_plan_calls: u64,
}

/// Whole-fleet statistics over one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Requests offered to the fleet.
    pub offered: usize,
    /// Requests admitted by the controller.
    pub admitted: usize,
    /// Requests admitted and executed to completion.
    pub completed: usize,
    /// Requests refused by admission control.
    pub rejected: usize,
    /// Admitted requests that failed during execution (a planner/kernel
    /// bug surfaced as a typed error; always 0 in a healthy build).
    pub failed: usize,
    /// `admitted / offered` in `[0, 1]` (1 for an empty batch).
    pub admission_rate: f64,
    /// Simulated makespan: the busiest worker's total device time, ms.
    pub makespan_ms: f64,
    /// Completed requests per simulated second of makespan.
    pub requests_per_sec: f64,
    /// Median simulated inference latency, ms.
    pub p50_latency_ms: f64,
    /// 99th-percentile simulated inference latency, ms.
    pub p99_latency_ms: f64,
    /// Total simulated energy, mJ.
    pub energy_mj: f64,
    /// Host milliseconds spent planning (deploying the catalog),
    /// amortized across every batch the fleet serves. Informational and
    /// non-deterministic, like [`host_wall_ms`](Self::host_wall_ms).
    pub planning_ms: f64,
    /// Planning passes at deploy time (deterministic).
    pub deploy_plan_calls: u64,
    /// Planning passes while serving this batch (deterministic; ~0 on
    /// the deploy-once path).
    pub serve_plan_calls: u64,
    /// Serving-side planning amortization: `serve_plan_calls / offered`
    /// (0 for an empty batch). The bench gate fails when this rises —
    /// the replanning win is gated, not just claimed.
    pub plan_calls_per_request: f64,
    /// Real host time the batch took, ms (informational;
    /// non-deterministic).
    pub host_wall_ms: f64,
}

/// Nearest-rank percentile of an unsorted sample (`q` in `[0, 1]`).
/// Returns 0 for an empty sample.
pub fn percentile_ms(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl FleetStats {
    /// Assembles fleet statistics from per-request latencies and
    /// per-worker records.
    pub fn aggregate(
        offered: usize,
        rejected: usize,
        failed: usize,
        latencies_ms: &[f64],
        workers: &[WorkerStats],
        planning: &PlanningStats,
        host_wall_ms: f64,
    ) -> Self {
        let completed = latencies_ms.len();
        let admitted = completed + failed;
        let makespan_ms = workers.iter().map(|w| w.busy_ms).fold(0.0, f64::max);
        let serve_plan_calls =
            planning.serve_plan_calls + workers.iter().map(|w| w.plan_calls).sum::<u64>();
        Self {
            offered,
            admitted,
            completed,
            rejected,
            failed,
            admission_rate: if offered == 0 {
                1.0
            } else {
                admitted as f64 / offered as f64
            },
            makespan_ms,
            requests_per_sec: if makespan_ms > 0.0 {
                completed as f64 * 1e3 / makespan_ms
            } else {
                0.0
            },
            p50_latency_ms: percentile_ms(latencies_ms, 0.50),
            p99_latency_ms: percentile_ms(latencies_ms, 0.99),
            energy_mj: workers.iter().map(|w| w.energy_mj).sum(),
            planning_ms: planning.deploy_ms,
            deploy_plan_calls: planning.deploy_plan_calls,
            serve_plan_calls,
            plan_calls_per_request: if offered == 0 {
                0.0
            } else {
                serve_plan_calls as f64 / offered as f64
            },
            host_wall_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_ms(&s, 0.5), 2.0);
        assert_eq!(percentile_ms(&s, 0.99), 4.0);
        assert_eq!(percentile_ms(&s, 0.0), 1.0);
        assert_eq!(percentile_ms(&s, 1.0), 4.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn aggregate_computes_rates_and_makespan() {
        let workers = vec![
            WorkerStats {
                executed: 2,
                busy_ms: 10.0,
                energy_mj: 1.0,
                counters: Counters::new(),
                plan_calls: 1,
            },
            WorkerStats {
                executed: 1,
                busy_ms: 40.0,
                energy_mj: 2.0,
                counters: Counters::new(),
                plan_calls: 0,
            },
        ];
        let planning = PlanningStats {
            deploy_ms: 3.0,
            deploy_plan_calls: 12,
            serve_plan_calls: 4,
        };
        let s = FleetStats::aggregate(5, 2, 0, &[10.0, 5.0, 40.0], &workers, &planning, 7.0);
        assert_eq!(s.offered, 5);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.completed, 3);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.admission_rate, 0.6);
        assert_eq!(s.makespan_ms, 40.0);
        assert_eq!(s.requests_per_sec, 3.0 * 1e3 / 40.0);
        assert_eq!(s.p50_latency_ms, 10.0);
        assert_eq!(s.energy_mj, 3.0);
        assert_eq!(s.host_wall_ms, 7.0);
        // Planning accounting: deploy-side carried through, serve-side
        // summed over admission (4) and worker (1) planning passes.
        assert_eq!(s.planning_ms, 3.0);
        assert_eq!(s.deploy_plan_calls, 12);
        assert_eq!(s.serve_plan_calls, 5);
        assert_eq!(s.plan_calls_per_request, 1.0);
    }

    #[test]
    fn empty_batch_does_not_divide_by_zero() {
        let s = FleetStats::aggregate(0, 0, 0, &[], &[], &PlanningStats::default(), 0.1);
        assert_eq!(s.admission_rate, 1.0);
        assert_eq!(s.requests_per_sec, 0.0);
        assert_eq!(s.p50_latency_ms, 0.0);
        assert_eq!(s.plan_calls_per_request, 0.0);
    }
}
