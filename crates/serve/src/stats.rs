//! Fleet-level statistics: latency percentiles, throughput, admission
//! rate.
//!
//! Everything here is computed from *simulated* device time, so the
//! numbers are bit-reproducible across hosts — which is what lets CI gate
//! on them without noise margins. Host wall-clock is carried separately,
//! for information only.

use vmcu_sim::Counters;

/// Aggregated execution record of one worker (device) over a batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Requests this worker executed.
    pub executed: usize,
    /// Simulated busy time in milliseconds (sum of inference latencies).
    pub busy_ms: f64,
    /// Simulated energy in millijoules.
    pub energy_mj: f64,
    /// Summed device counters (MACs, RAM/flash traffic, cycles).
    pub counters: Counters,
    /// Planning passes this worker performed while serving its slice
    /// (per-thread [`vmcu_plan::telemetry`] delta). Always 0 on the
    /// deploy-once path — workers execute memoized plans.
    pub plan_calls: u64,
}

/// Planning-side accounting of one batch, kept separate from inference
/// time: the whole point of the deploy-once flow is that planning cost
/// is paid once per model, not once per request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanningStats {
    /// Host milliseconds spent deploying the catalog (fit validation and
    /// plan memoization). Informational — host time, not simulated time,
    /// and therefore not bit-reproducible.
    pub deploy_ms: f64,
    /// Planning passes performed at deploy time (once per fleet, not per
    /// batch). Deterministic.
    pub deploy_plan_calls: u64,
    /// Planning passes performed while serving the batch: admission
    /// pricing plus worker execution. Near zero on the deploy-once path
    /// (only models that failed to deploy are priced on first sight).
    /// Deterministic.
    pub serve_plan_calls: u64,
}

/// Whole-fleet statistics over one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Requests offered to the fleet.
    pub offered: usize,
    /// Requests admitted by the controller.
    pub admitted: usize,
    /// Requests admitted and executed to completion.
    pub completed: usize,
    /// Requests refused by admission control.
    pub rejected: usize,
    /// Admitted requests that failed during execution (a planner/kernel
    /// bug surfaced as a typed error; always 0 in a healthy build).
    pub failed: usize,
    /// `admitted / offered` in `[0, 1]` (1 for an empty batch).
    pub admission_rate: f64,
    /// Simulated makespan: the busiest worker's total device time, ms.
    pub makespan_ms: f64,
    /// Completed requests per simulated second of makespan.
    pub requests_per_sec: f64,
    /// Median simulated inference latency, ms.
    pub p50_latency_ms: f64,
    /// 99th-percentile simulated inference latency, ms.
    pub p99_latency_ms: f64,
    /// Total simulated energy, mJ.
    pub energy_mj: f64,
    /// Host milliseconds spent planning (deploying the catalog),
    /// amortized across every batch the fleet serves. Informational and
    /// non-deterministic, like [`host_wall_ms`](Self::host_wall_ms).
    pub planning_ms: f64,
    /// Planning passes at deploy time (deterministic).
    pub deploy_plan_calls: u64,
    /// Planning passes while serving this batch (deterministic; ~0 on
    /// the deploy-once path).
    pub serve_plan_calls: u64,
    /// Serving-side planning amortization: `serve_plan_calls / offered`
    /// (0 for an empty batch). The bench gate fails when this rises —
    /// the replanning win is gated, not just claimed.
    pub plan_calls_per_request: f64,
    /// Real host time the batch took, ms (informational;
    /// non-deterministic).
    pub host_wall_ms: f64,
}

/// Aggregated record of one worker (device) over an online run.
///
/// All `_us` fields are integer microseconds of simulated time — the
/// online event loop never touches floating point on its hot path, so
/// every field here is bit-reproducible across hosts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineWorkerStats {
    /// Requests routed to this device's queue.
    pub routed: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed at dispatch (deadline passed before service could
    /// start).
    pub shed: usize,
    /// Served requests that *finished* past their deadline (admitted to
    /// service in time, but completed late).
    pub slo_violations: usize,
    /// Served requests whose execution failed (typed engine error;
    /// always 0 in a healthy build).
    pub failed: usize,
    /// Model stagings (each charged simulated flash-programming time
    /// exactly once).
    pub stagings: u64,
    /// Stagings that evicted a resident model — the hot swaps.
    pub swaps: u64,
    /// Models evicted over the run.
    pub evictions: u64,
    /// Simulated service time, µs (sum of inference latencies).
    pub busy_us: u64,
    /// Simulated staging time charged, µs.
    pub staging_us: u64,
    /// The device clock when the queue drained, µs.
    pub clock_us: u64,
    /// Simulated energy, mJ.
    pub energy_mj: f64,
    /// Planning passes during the run (always 0 — workers execute
    /// memoized plans).
    pub plan_calls: u64,
}

/// Whole-fleet statistics over one online run.
///
/// Everything except the `host_*` and `planning_ms` fields is computed
/// from simulated device time and is bit-reproducible across hosts —
/// compare runs with [`OnlineStats::simulated`].
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    /// Requests in the arrival stream.
    pub offered: usize,
    /// Requests routed to a device queue (`offered - rejected`).
    pub routed: usize,
    /// Requests refused at routing: the model never deployed on this
    /// fleet (planner capacity rejection), so no device can serve it.
    pub rejected: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed at dispatch (deadline already passed).
    pub shed: usize,
    /// Requests whose execution failed (always 0 in a healthy build).
    pub failed: usize,
    /// `shed / routed` in `[0, 1]` (0 when nothing was routed).
    pub shed_rate: f64,
    /// Served requests that completed past their deadline.
    pub slo_violations: usize,
    /// Median simulated sojourn (arrival → completion), ms.
    pub p50_sojourn_ms: f64,
    /// 99th-percentile simulated sojourn, ms.
    pub p99_sojourn_ms: f64,
    /// p99 sojourn over the first half of completions (by completion
    /// time) — compare with
    /// [`p99_second_half_ms`](Self::p99_second_half_ms) to check the
    /// run reached a steady state instead of a diverging queue.
    pub p99_first_half_ms: f64,
    /// p99 sojourn over the second half of completions.
    pub p99_second_half_ms: f64,
    /// Model stagings across the fleet (each priced once).
    pub stagings: u64,
    /// Hot swaps (stagings that evicted) across the fleet.
    pub swaps: u64,
    /// Evictions across the fleet.
    pub evictions: u64,
    /// Total simulated staging time charged, ms.
    pub swap_ms: f64,
    /// Simulated makespan: the last device clock to drain, ms.
    pub makespan_ms: f64,
    /// Completed requests per simulated second.
    pub sim_requests_per_sec: f64,
    /// Total simulated energy, mJ.
    pub energy_mj: f64,
    /// Host milliseconds spent planning (deploying the catalog);
    /// informational and non-deterministic.
    pub planning_ms: f64,
    /// Planning passes at deploy time (deterministic).
    pub deploy_plan_calls: u64,
    /// Planning passes while serving the stream (deterministic; 0 on
    /// the deploy-once path).
    pub serve_plan_calls: u64,
    /// Real host time the run took, ms (informational).
    pub host_wall_ms: f64,
    /// Completed requests per *host* second — how fast the simulator
    /// itself chews through load (informational).
    pub host_requests_per_sec: f64,
}

impl OnlineStats {
    /// A copy with the non-deterministic host-side fields zeroed —
    /// two runs of the same seeded config must compare equal under
    /// this projection, bit for bit.
    pub fn simulated(&self) -> Self {
        Self {
            planning_ms: 0.0,
            host_wall_ms: 0.0,
            host_requests_per_sec: 0.0,
            ..self.clone()
        }
    }

    /// Assembles fleet statistics from per-worker records and the merged
    /// completion log (`(completion_us, sojourn_us)`, any order).
    pub fn aggregate(
        offered: usize,
        rejected: usize,
        completions: &mut [(u64, u64)],
        workers: &[OnlineWorkerStats],
        planning: &PlanningStats,
        host_wall_ms: f64,
    ) -> Self {
        completions.sort_unstable();
        let completed = completions.len();
        let sojourns: Vec<u64> = completions.iter().map(|&(_, s)| s).collect();
        let (first, second) = sojourns.split_at(completed / 2);
        let routed = offered - rejected;
        let shed = workers.iter().map(|w| w.shed).sum::<usize>();
        let clock_us = workers.iter().map(|w| w.clock_us).max().unwrap_or(0);
        let makespan_ms = clock_us as f64 / 1e3;
        let host_wall_sec = host_wall_ms / 1e3;
        Self {
            offered,
            routed,
            rejected,
            completed,
            shed,
            failed: workers.iter().map(|w| w.failed).sum(),
            shed_rate: if routed == 0 {
                0.0
            } else {
                shed as f64 / routed as f64
            },
            slo_violations: workers.iter().map(|w| w.slo_violations).sum(),
            p50_sojourn_ms: percentile_us(&sojourns, 0.50),
            p99_sojourn_ms: percentile_us(&sojourns, 0.99),
            p99_first_half_ms: percentile_us(first, 0.99),
            p99_second_half_ms: percentile_us(second, 0.99),
            stagings: workers.iter().map(|w| w.stagings).sum(),
            swaps: workers.iter().map(|w| w.swaps).sum(),
            evictions: workers.iter().map(|w| w.evictions).sum(),
            swap_ms: workers.iter().map(|w| w.staging_us).sum::<u64>() as f64 / 1e3,
            makespan_ms,
            sim_requests_per_sec: if clock_us > 0 {
                completed as f64 * 1e6 / clock_us as f64
            } else {
                0.0
            },
            energy_mj: workers.iter().map(|w| w.energy_mj).sum(),
            planning_ms: planning.deploy_ms,
            deploy_plan_calls: planning.deploy_plan_calls,
            serve_plan_calls: planning.serve_plan_calls
                + workers.iter().map(|w| w.plan_calls).sum::<u64>(),
            host_wall_ms,
            host_requests_per_sec: if host_wall_sec > 0.0 {
                completed as f64 / host_wall_sec
            } else {
                0.0
            },
        }
    }
}

/// Nearest-rank percentile of unsorted integer-microsecond samples,
/// reported in milliseconds (`q` in `[0, 1]`). Returns 0 for an empty
/// sample. Integer sorting keeps the result bit-reproducible.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile_us(samples: &[u64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1e3
}

/// Nearest-rank percentile of an unsorted sample (`q` in `[0, 1]`).
/// Returns 0 for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile_ms(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl FleetStats {
    /// Assembles fleet statistics from per-request latencies and
    /// per-worker records.
    pub fn aggregate(
        offered: usize,
        rejected: usize,
        failed: usize,
        latencies_ms: &[f64],
        workers: &[WorkerStats],
        planning: &PlanningStats,
        host_wall_ms: f64,
    ) -> Self {
        let completed = latencies_ms.len();
        let admitted = completed + failed;
        let makespan_ms = workers.iter().map(|w| w.busy_ms).fold(0.0, f64::max);
        let serve_plan_calls =
            planning.serve_plan_calls + workers.iter().map(|w| w.plan_calls).sum::<u64>();
        Self {
            offered,
            admitted,
            completed,
            rejected,
            failed,
            admission_rate: if offered == 0 {
                1.0
            } else {
                admitted as f64 / offered as f64
            },
            makespan_ms,
            requests_per_sec: if makespan_ms > 0.0 {
                completed as f64 * 1e3 / makespan_ms
            } else {
                0.0
            },
            p50_latency_ms: percentile_ms(latencies_ms, 0.50),
            p99_latency_ms: percentile_ms(latencies_ms, 0.99),
            energy_mj: workers.iter().map(|w| w.energy_mj).sum(),
            planning_ms: planning.deploy_ms,
            deploy_plan_calls: planning.deploy_plan_calls,
            serve_plan_calls,
            plan_calls_per_request: if offered == 0 {
                0.0
            } else {
                serve_plan_calls as f64 / offered as f64
            },
            host_wall_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_ms(&s, 0.5), 2.0);
        assert_eq!(percentile_ms(&s, 0.99), 4.0);
        assert_eq!(percentile_ms(&s, 0.0), 1.0);
        assert_eq!(percentile_ms(&s, 1.0), 4.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn aggregate_computes_rates_and_makespan() {
        let workers = vec![
            WorkerStats {
                executed: 2,
                busy_ms: 10.0,
                energy_mj: 1.0,
                counters: Counters::new(),
                plan_calls: 1,
            },
            WorkerStats {
                executed: 1,
                busy_ms: 40.0,
                energy_mj: 2.0,
                counters: Counters::new(),
                plan_calls: 0,
            },
        ];
        let planning = PlanningStats {
            deploy_ms: 3.0,
            deploy_plan_calls: 12,
            serve_plan_calls: 4,
        };
        let s = FleetStats::aggregate(5, 2, 0, &[10.0, 5.0, 40.0], &workers, &planning, 7.0);
        assert_eq!(s.offered, 5);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.completed, 3);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.admission_rate, 0.6);
        assert_eq!(s.makespan_ms, 40.0);
        assert_eq!(s.requests_per_sec, 3.0 * 1e3 / 40.0);
        assert_eq!(s.p50_latency_ms, 10.0);
        assert_eq!(s.energy_mj, 3.0);
        assert_eq!(s.host_wall_ms, 7.0);
        // Planning accounting: deploy-side carried through, serve-side
        // summed over admission (4) and worker (1) planning passes.
        assert_eq!(s.planning_ms, 3.0);
        assert_eq!(s.deploy_plan_calls, 12);
        assert_eq!(s.serve_plan_calls, 5);
        assert_eq!(s.plan_calls_per_request, 1.0);
    }

    #[test]
    fn percentile_us_is_nearest_rank_in_ms() {
        let s = [4000u64, 1000, 3000, 2000];
        assert_eq!(percentile_us(&s, 0.5), 2.0);
        assert_eq!(percentile_us(&s, 0.99), 4.0);
        assert_eq!(percentile_us(&s, 1.0), 4.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }

    #[test]
    fn online_aggregate_merges_workers() {
        let workers = vec![
            OnlineWorkerStats {
                routed: 3,
                served: 2,
                shed: 1,
                slo_violations: 1,
                stagings: 2,
                swaps: 1,
                evictions: 1,
                busy_us: 5_000,
                staging_us: 10_000,
                clock_us: 40_000,
                energy_mj: 1.0,
                ..Default::default()
            },
            OnlineWorkerStats {
                routed: 2,
                served: 2,
                clock_us: 30_000,
                energy_mj: 0.5,
                ..Default::default()
            },
        ];
        let mut completions = vec![
            (30_000, 6_000),
            (10_000, 2_000),
            (20_000, 4_000),
            (40_000, 8_000),
        ];
        let planning = PlanningStats {
            deploy_ms: 3.0,
            deploy_plan_calls: 12,
            serve_plan_calls: 0,
        };
        let s = OnlineStats::aggregate(6, 1, &mut completions, &workers, &planning, 2.0);
        assert_eq!(s.offered, 6);
        assert_eq!(s.routed, 5);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 4);
        assert_eq!(s.shed, 1);
        assert_eq!(s.shed_rate, 0.2);
        assert_eq!(s.slo_violations, 1);
        assert_eq!((s.stagings, s.swaps, s.evictions), (2, 1, 1));
        assert_eq!(s.swap_ms, 10.0);
        assert_eq!(s.makespan_ms, 40.0);
        assert_eq!(s.sim_requests_per_sec, 4.0 * 1e6 / 40_000.0);
        // Halves split by completion time: {2,4} then {6,8} ms sojourns.
        assert_eq!(s.p99_first_half_ms, 4.0);
        assert_eq!(s.p99_second_half_ms, 8.0);
        assert_eq!(s.p50_sojourn_ms, 4.0);
        assert_eq!(s.energy_mj, 1.5);
        assert_eq!(s.host_requests_per_sec, 4.0 / 0.002);
        // The determinism projection zeroes exactly the host fields.
        let sim = s.simulated();
        assert_eq!(sim.host_wall_ms, 0.0);
        assert_eq!(sim.host_requests_per_sec, 0.0);
        assert_eq!(sim.planning_ms, 0.0);
        assert_eq!(sim.completed, s.completed);
    }

    #[test]
    fn empty_online_run_does_not_divide_by_zero() {
        let s = OnlineStats::aggregate(0, 0, &mut [], &[], &PlanningStats::default(), 0.0);
        assert_eq!(s.shed_rate, 0.0);
        assert_eq!(s.sim_requests_per_sec, 0.0);
        assert_eq!(s.host_requests_per_sec, 0.0);
        assert_eq!(s.p99_sojourn_ms, 0.0);
    }

    #[test]
    fn empty_batch_does_not_divide_by_zero() {
        let s = FleetStats::aggregate(0, 0, 0, &[], &[], &PlanningStats::default(), 0.1);
        assert_eq!(s.admission_rate, 1.0);
        assert_eq!(s.requests_per_sec, 0.0);
        assert_eq!(s.p50_latency_ms, 0.0);
        assert_eq!(s.plan_calls_per_request, 0.0);
    }
}
