//! Inference requests and their outcomes.
//!
//! A request names a model from the fleet's [catalog](crate::ModelCatalog)
//! and carries a seed for its synthetic input; what comes back is either a
//! completed execution record or a typed rejection from admission control.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use vmcu_graph::zoo::NamedGraph;

/// One inference request offered to the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpec {
    /// Stable request id (order of submission).
    pub id: u64,
    /// Catalog name of the model to run.
    pub model: String,
    /// Seed for the request's synthetic input tensor.
    pub seed: u64,
}

/// Why admission control refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The model name is not in the fleet's catalog.
    UnknownModel,
    /// The model plans to zero SRAM demand (e.g. an empty graph): there
    /// is nothing to execute, and admitting it would sidestep capacity
    /// accounting entirely.
    EmptyModel,
    /// Even an empty device cannot host this model under the fleet's
    /// planner — the paper's "fails to run" outcome.
    TooLargeForDevice {
        /// Peak SRAM demand of the model (activations + workspace +
        /// runtime overhead).
        needed: usize,
        /// Device SRAM capacity.
        available: usize,
    },
    /// Every device's remaining SRAM is already committed to resident
    /// models.
    NoCapacity {
        /// Peak SRAM demand the request would have added.
        needed: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::UnknownModel => f.write_str("model not in catalog"),
            RejectReason::EmptyModel => f.write_str("model plans to zero SRAM demand"),
            RejectReason::TooLargeForDevice { needed, available } => write!(
                f,
                "model needs {needed} bytes but the device has {available}"
            ),
            RejectReason::NoCapacity { needed } => {
                write!(f, "no device has {needed} bytes of SRAM left")
            }
        }
    }
}

/// Execution record of a completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Worker (device) index that executed the request.
    pub worker: usize,
    /// Simulated on-device latency in milliseconds.
    pub latency_ms: f64,
    /// Simulated energy in millijoules.
    pub energy_mj: f64,
    /// Peak measured RAM of the inference in bytes.
    pub peak_ram_bytes: usize,
}

/// Outcome of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Admitted and executed.
    Completed(Completion),
    /// Refused by admission control.
    Rejected(RejectReason),
    /// Admitted but failed during execution — a planner/kernel bug
    /// surfaced as a typed engine error (rendered); never expected in a
    /// healthy build, but a serving system must not panic on it.
    Failed(String),
}

impl Outcome {
    /// The completion record, if the request was admitted and executed.
    pub fn completion(&self) -> Option<&Completion> {
        match self {
            Outcome::Completed(c) => Some(c),
            Outcome::Rejected(_) | Outcome::Failed(_) => None,
        }
    }
}

/// A deterministic request stream: `n` requests drawn uniformly from the
/// catalog, seeded so that every run (and every CI machine) offers the
/// fleet the same load.
///
/// # Panics
///
/// Panics if the catalog is empty.
pub fn random_stream(catalog: &[NamedGraph], n: usize, seed: u64) -> Vec<RequestSpec> {
    assert!(!catalog.is_empty(), "catalog must not be empty");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let model = catalog[rng.gen_range(0..catalog.len())].name.to_owned();
            RequestSpec {
                id,
                model,
                seed: rng.next_u64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_graph::zoo;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let cat = zoo::fleet_catalog();
        let a = random_stream(&cat, 32, 7);
        let b = random_stream(&cat, 32, 7);
        assert_eq!(a, b);
        let c = random_stream(&cat, 32, 8);
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.len(), 32);
        assert!(a.iter().enumerate().all(|(i, r)| r.id == i as u64));
    }

    #[test]
    fn reject_reasons_render_with_numbers() {
        let s = RejectReason::TooLargeForDevice {
            needed: 253_000,
            available: 131_072,
        }
        .to_string();
        assert!(s.contains("253000") && s.contains("131072"));
        assert!(RejectReason::NoCapacity { needed: 9 }
            .to_string()
            .contains('9'));
    }
}
