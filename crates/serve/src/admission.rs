//! Planner-driven admission control.
//!
//! Each simulated device can keep several models *resident* at once —
//! weights in flash, an SRAM arena reserved per model — and serves their
//! requests one inference at a time. The admission controller is the
//! gatekeeper: it prices every model at its planner's peak-RAM estimate
//! ([`vmcu_plan::peak_demand_bytes`]) and only admits a request when some
//! device still has that much SRAM uncommitted. Because vMCU's
//! segment-level plans peak far below tensor-level plans, the same fleet
//! admits strictly more concurrent models under vMCU — the paper's §7 RAM
//! savings, restated as serving capacity.

use crate::request::RejectReason;
use vmcu::prelude::MemoryPlanner;
use vmcu::PlannerKind;
use vmcu_graph::Graph;
use vmcu_sim::Device;

/// Per-worker SRAM ledger.
#[derive(Debug, Clone, Default)]
struct Ledger {
    /// Bytes committed to resident models.
    committed: usize,
    /// Names of resident models (each priced once — requests to an
    /// already-resident model reuse its arena).
    resident: Vec<String>,
    /// Requests assigned so far (load-balance key).
    assigned: usize,
}

/// Deterministic admission controller for a homogeneous fleet.
pub struct AdmissionController {
    device: Device,
    /// The planning policy object, resolved **once** at construction —
    /// pricing a model must not re-box a planner per call.
    planner: Box<dyn MemoryPlanner>,
    workers: Vec<Ledger>,
    /// Demand per model name. Seeded from cached deployment plans via
    /// [`with_priced_models`](Self::with_priced_models) so the serving
    /// path never replans; unseeded models (e.g. ones that failed to
    /// deploy) are priced once on first sight.
    demand_cache: std::collections::HashMap<String, usize>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("device", &self.device.name)
            .field("planner", &self.planner.name())
            .field("workers", &self.workers.len())
            .field("priced_models", &self.demand_cache.len())
            .finish()
    }
}

impl AdmissionController {
    /// Creates a controller for `workers` copies of `device` planned with
    /// `kind`, resolving the planning policy object once.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero — a fleet needs at least one device.
    pub fn new(device: Device, kind: PlannerKind, workers: usize) -> Self {
        Self::with_priced_models(device, kind, workers, [])
    }

    /// [`new`](Self::new), with the demand cache pre-seeded from prices
    /// already computed elsewhere — the fleet scheduler seeds it from its
    /// cached deployment [`MemoryPlan`](vmcu_plan::MemoryPlan)s, so
    /// admitting a batch does zero planning work.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn with_priced_models(
        device: Device,
        kind: PlannerKind,
        workers: usize,
        prices: impl IntoIterator<Item = (String, usize)>,
    ) -> Self {
        assert!(workers > 0, "fleet needs at least one worker");
        Self {
            device,
            planner: kind.planner(),
            workers: vec![Ledger::default(); workers],
            demand_cache: prices.into_iter().collect(),
        }
    }

    /// Peak SRAM a model commits on whichever device hosts it
    /// (activations + workspace at the bottleneck layer; the fixed
    /// runtime overhead is paid once per device, not per model). Priced
    /// with the cached planner.
    pub fn demand_bytes(&self, graph: &Graph) -> usize {
        vmcu_plan::peak_demand_bytes(&*self.planner, graph)
    }

    /// Decides one request: `Ok(worker)` pins the request to a device,
    /// `Err` carries the typed rejection.
    ///
    /// Deterministic given the call sequence: workers already hosting the
    /// model are preferred (their arena is already paid for), then the
    /// least-loaded worker with enough SRAM; ties break to the lowest
    /// index.
    ///
    /// # Errors
    ///
    /// [`RejectReason::EmptyModel`] for a model with zero planned
    /// demand; [`RejectReason::TooLargeForDevice`] when even an empty
    /// device cannot host the model; [`RejectReason::NoCapacity`] when
    /// all devices' SRAM is committed.
    pub fn admit(&mut self, model: &str, graph: &Graph) -> Result<usize, RejectReason> {
        let demand = match self.demand_cache.get(model) {
            Some(d) => *d,
            None => {
                let d = self.demand_bytes(graph);
                self.demand_cache.insert(model.to_owned(), d);
                d
            }
        };
        let budget = self.device.usable_ram_bytes();
        // A zero-demand model (empty graph) would be admitted without
        // bound while `capacity::concurrent_capacity` reports 0 for it;
        // keep the two surfaces agreeing by refusing it outright.
        if demand == 0 {
            return Err(RejectReason::EmptyModel);
        }
        if demand > budget {
            return Err(RejectReason::TooLargeForDevice {
                needed: demand + self.device.runtime_overhead_bytes,
                available: self.device.ram_bytes,
            });
        }
        // Already resident somewhere: route to the least-loaded host.
        if let Some((w, _)) = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.resident.iter().any(|m| m == model))
            .min_by_key(|(i, l)| (l.assigned, *i))
        {
            self.workers[w].assigned += 1;
            return Ok(w);
        }
        // Otherwise commit the arena on the least-loaded worker that
        // still has room.
        if let Some((w, _)) = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.committed + demand <= budget)
            .min_by_key(|(i, l)| (l.assigned, *i))
        {
            let ledger = &mut self.workers[w];
            ledger.committed += demand;
            ledger.resident.push(model.to_owned());
            ledger.assigned += 1;
            return Ok(w);
        }
        Err(RejectReason::NoCapacity { needed: demand })
    }

    /// Bytes committed on a worker.
    pub fn committed_bytes(&self, worker: usize) -> usize {
        self.workers[worker].committed
    }

    /// Total distinct model residencies across the fleet.
    pub fn resident_models(&self) -> usize {
        self.workers.iter().map(|l| l.resident.len()).sum()
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu::prelude::IbScheme;
    use vmcu_graph::zoo;

    fn single(name: &str) -> Graph {
        zoo::fleet_catalog()
            .into_iter()
            .find(|m| m.name == name)
            .expect("model in catalog")
            .graph
    }

    #[test]
    fn vmcu_admits_more_residencies_than_tinyengine_at_128kb() {
        let g = single("vww-s6");
        let mut admitted = Vec::new();
        for kind in [
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            PlannerKind::TinyEngine,
        ] {
            let mut ac = AdmissionController::new(Device::stm32_f411re(), kind, 1);
            let mut count = 0usize;
            // Each distinct name forces a fresh residency commitment.
            for i in 0..64 {
                if ac.admit(&format!("clone-{i}"), &g).is_ok() {
                    count += 1;
                }
            }
            admitted.push(count);
        }
        assert!(
            admitted[0] > admitted[1],
            "vMCU residencies {} must exceed TinyEngine {}",
            admitted[0],
            admitted[1]
        );
        assert!(admitted[1] > 0, "S6 fits at least once under TinyEngine");
    }

    #[test]
    fn too_large_models_are_rejected_with_numbers() {
        let g = single("fig7-hw80-c16-k16");
        let mut ac = AdmissionController::new(Device::stm32_f411re(), PlannerKind::TinyEngine, 2);
        match ac.admit("case1", &g) {
            Err(RejectReason::TooLargeForDevice { needed, available }) => {
                assert!(needed > available);
                assert_eq!(available, 128 * 1024);
            }
            other => panic!("expected TooLargeForDevice, got {other:?}"),
        }
        // The same model is admitted under the vMCU policy.
        let mut ac = AdmissionController::new(
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            2,
        );
        assert!(ac.admit("case1", &g).is_ok());
    }

    #[test]
    fn zero_demand_models_are_refused_like_capacity_zero() {
        // An empty graph plans to zero bytes; `concurrent_capacity`
        // reports 0 for it, and admission must agree instead of
        // admitting it without bound.
        let empty = Graph::linear("empty", vec![]).unwrap();
        let mut ac = AdmissionController::new(
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            1,
        );
        assert_eq!(ac.admit("empty", &empty), Err(RejectReason::EmptyModel));
        assert_eq!(ac.resident_models(), 0);
    }

    #[test]
    fn repeat_requests_reuse_residency_and_balance_load() {
        let g = single("vww-s5");
        let mut ac = AdmissionController::new(
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            2,
        );
        let w0 = ac.admit("vww-s5", &g).unwrap();
        let committed = ac.committed_bytes(w0);
        // A second request to the same model stays on its host without
        // committing more SRAM.
        let w1 = ac.admit("vww-s5", &g).unwrap();
        assert_eq!(w0, w1);
        assert_eq!(ac.committed_bytes(w0), committed);
        assert_eq!(ac.resident_models(), 1);
        // A different model lands on the other (less loaded) worker.
        let w2 = ac.admit("vww-s5-b", &g).unwrap();
        assert_ne!(w2, w0);
    }
}
