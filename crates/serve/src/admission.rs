//! Planner-driven admission control.
//!
//! Each simulated device can keep several models *resident* at once —
//! weights in flash, an SRAM arena reserved per model — and serves their
//! requests one inference at a time. The admission controller is the
//! gatekeeper: it prices every model at its planner's peak-RAM estimate
//! ([`vmcu_plan::peak_demand_bytes`]) and only admits a request when some
//! device still has that much SRAM uncommitted. Because vMCU's
//! segment-level plans peak far below tensor-level plans, the same fleet
//! admits strictly more concurrent models under vMCU — the paper's §7 RAM
//! savings, restated as serving capacity.
//!
//! Under the split policy (`PlannerKind::VmcuSplit`) a model is priced
//! as a *vector* of per-stage demands and admitted against the fleet's
//! **aggregate** RAM: each pipeline stage commits its arena on a
//! distinct device, so a model that fits no single device deploys the
//! moment enough devices jointly have the room. Requests pin to the
//! entry (stage-0) device, which drives the pipeline.

use crate::request::RejectReason;
use vmcu::prelude::MemoryPlanner;
use vmcu::PlannerKind;
use vmcu_graph::Graph;
use vmcu_sim::Device;

/// Per-worker SRAM ledger.
#[derive(Debug, Clone, Default)]
struct Ledger {
    /// Bytes committed to resident models.
    committed: usize,
    /// Names of resident models (each priced once — requests to an
    /// already-resident model reuse its arena).
    resident: Vec<String>,
    /// Requests assigned so far (load-balance key).
    assigned: usize,
}

/// Deterministic admission controller for a homogeneous fleet.
pub struct AdmissionController {
    device: Device,
    kind: PlannerKind,
    /// The planning policy object, resolved **once** at construction —
    /// pricing a model must not re-box a planner per call.
    planner: Box<dyn MemoryPlanner>,
    workers: Vec<Ledger>,
    /// Per-stage demands per model name (single-element for every
    /// non-split policy). Seeded from cached deployment plans via
    /// [`with_priced_models`](Self::with_priced_models) /
    /// [`with_priced_stage_demands`](Self::with_priced_stage_demands) so
    /// the serving path never replans; unseeded models (e.g. ones that
    /// failed to deploy) are priced once on first sight.
    demand_cache: std::collections::HashMap<String, Vec<usize>>,
    /// Worker indices hosting each resident model's stages, entry
    /// (stage-0) worker first.
    placements: std::collections::HashMap<String, Vec<usize>>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("device", &self.device.name)
            .field("planner", &self.planner.name())
            .field("workers", &self.workers.len())
            .field("priced_models", &self.demand_cache.len())
            .finish()
    }
}

impl AdmissionController {
    /// Creates a controller for `workers` copies of `device` planned with
    /// `kind`, resolving the planning policy object once.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero — a fleet needs at least one device.
    pub fn new(device: Device, kind: PlannerKind, workers: usize) -> Self {
        Self::with_priced_models(device, kind, workers, [])
    }

    /// [`new`](Self::new), with the demand cache pre-seeded from prices
    /// already computed elsewhere — the fleet scheduler seeds it from its
    /// cached deployment [`MemoryPlan`](vmcu_plan::MemoryPlan)s, so
    /// admitting a batch does zero planning work.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn with_priced_models(
        device: Device,
        kind: PlannerKind,
        workers: usize,
        prices: impl IntoIterator<Item = (String, usize)>,
    ) -> Self {
        Self::with_priced_stage_demands(
            device,
            kind,
            workers,
            prices.into_iter().map(|(name, d)| (name, vec![d])),
        )
    }

    /// [`with_priced_models`](Self::with_priced_models), with each model
    /// priced as a **vector of per-stage demands** — the split policy's
    /// shape, harvested from `vmcu::Deployment::split_plan`. Non-split
    /// models pass single-element vectors.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn with_priced_stage_demands(
        device: Device,
        kind: PlannerKind,
        workers: usize,
        prices: impl IntoIterator<Item = (String, Vec<usize>)>,
    ) -> Self {
        assert!(workers > 0, "fleet needs at least one worker");
        Self {
            device,
            kind,
            planner: kind.planner(),
            workers: vec![Ledger::default(); workers],
            demand_cache: prices.into_iter().collect(),
            placements: std::collections::HashMap::new(),
        }
    }

    /// Peak SRAM a model commits on whichever device hosts it
    /// (activations + workspace at the bottleneck layer; the fixed
    /// runtime overhead is paid once per device, not per model). Priced
    /// with the cached planner.
    pub fn demand_bytes(&self, graph: &Graph) -> usize {
        vmcu_plan::peak_demand_bytes(&*self.planner, graph)
    }

    /// Per-stage demands for a model: the split partition's stage peaks
    /// under `VmcuSplit`, a single-element vector under every other
    /// policy.
    fn stage_demands(&self, graph: &Graph) -> Vec<usize> {
        match self.kind {
            PlannerKind::VmcuSplit { devices, scheme } => {
                vmcu_plan::plan_split(graph, devices, scheme).stage_demands()
            }
            _ => vec![self.demand_bytes(graph)],
        }
    }

    /// Decides one request: `Ok(worker)` pins the request to a device,
    /// `Err` carries the typed rejection.
    ///
    /// Deterministic given the call sequence: a model already resident
    /// routes to its entry worker; otherwise each stage commits its
    /// arena on a **distinct** least-loaded worker with room (stage
    /// count is 1 under every non-split policy, so this degenerates to
    /// the classic single-device placement); ties break to the lowest
    /// index.
    ///
    /// # Errors
    ///
    /// [`RejectReason::EmptyModel`] for a model with zero planned
    /// demand; [`RejectReason::TooLargeForDevice`] when some stage
    /// exceeds even an empty device; [`RejectReason::NoCapacity`] when
    /// the fleet's aggregate uncommitted SRAM (or worker count) cannot
    /// host every stage at once.
    ///
    /// # Panics
    ///
    /// Panics only if the demand vector is empty past the zero-demand
    /// refusal above — unreachable.
    pub fn admit(&mut self, model: &str, graph: &Graph) -> Result<usize, RejectReason> {
        let demands = match self.demand_cache.get(model) {
            Some(d) => d.clone(),
            None => {
                let d = self.stage_demands(graph);
                self.demand_cache.insert(model.to_owned(), d.clone());
                d
            }
        };
        let budget = self.device.usable_ram_bytes();
        let total: usize = demands.iter().sum();
        // A zero-demand model (empty graph) would be admitted without
        // bound while `capacity::concurrent_capacity` reports 0 for it;
        // keep the two surfaces agreeing by refusing it outright.
        if total == 0 {
            return Err(RejectReason::EmptyModel);
        }
        let max_stage = *demands.iter().max().expect("non-empty demands");
        if max_stage > budget {
            return Err(RejectReason::TooLargeForDevice {
                needed: max_stage + self.device.runtime_overhead_bytes,
                available: self.device.ram_bytes,
            });
        }
        if demands.len() > self.workers.len() {
            return Err(RejectReason::NoCapacity { needed: total });
        }
        // Already resident: route to the entry (stage-0) worker, which
        // drives the pipeline — the arenas are already paid for.
        if let Some(placement) = self.placements.get(model) {
            let entry = placement[0];
            self.workers[entry].assigned += 1;
            return Ok(entry);
        }
        // Place every stage on a distinct least-loaded worker with room
        // before committing anything, so a partial fit never leaks
        // commitments.
        let mut chosen: Vec<usize> = Vec::with_capacity(demands.len());
        for demand in &demands {
            let Some((w, _)) = self
                .workers
                .iter()
                .enumerate()
                .filter(|(w, l)| !chosen.contains(w) && l.committed + demand <= budget)
                .min_by_key(|(w, l)| (l.assigned, *w))
            else {
                return Err(RejectReason::NoCapacity { needed: total });
            };
            chosen.push(w);
        }
        for (&w, &demand) in chosen.iter().zip(&demands) {
            let ledger = &mut self.workers[w];
            ledger.committed += demand;
            ledger.resident.push(model.to_owned());
        }
        self.placements.insert(model.to_owned(), chosen.clone());
        let entry = chosen[0];
        self.workers[entry].assigned += 1;
        Ok(entry)
    }

    /// Bytes committed on a worker.
    pub fn committed_bytes(&self, worker: usize) -> usize {
        self.workers[worker].committed
    }

    /// Total stage residencies across the fleet (one per model under
    /// the single-device policies, one per pipeline stage under split).
    pub fn resident_models(&self) -> usize {
        self.workers.iter().map(|l| l.resident.len()).sum()
    }

    /// The worker indices hosting a resident model's stages (entry
    /// worker first), when it is resident.
    pub fn placement(&self, model: &str) -> Option<&[usize]> {
        self.placements.get(model).map(Vec::as_slice)
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu::prelude::IbScheme;
    use vmcu_graph::zoo;

    fn single(name: &str) -> Graph {
        zoo::fleet_catalog()
            .into_iter()
            .find(|m| m.name == name)
            .expect("model in catalog")
            .graph
    }

    #[test]
    fn vmcu_admits_more_residencies_than_tinyengine_at_128kb() {
        let g = single("vww-s6");
        let mut admitted = Vec::new();
        for kind in [
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            PlannerKind::TinyEngine,
        ] {
            let mut ac = AdmissionController::new(Device::stm32_f411re(), kind, 1);
            let mut count = 0usize;
            // Each distinct name forces a fresh residency commitment.
            for i in 0..64 {
                if ac.admit(&format!("clone-{i}"), &g).is_ok() {
                    count += 1;
                }
            }
            admitted.push(count);
        }
        assert!(
            admitted[0] > admitted[1],
            "vMCU residencies {} must exceed TinyEngine {}",
            admitted[0],
            admitted[1]
        );
        assert!(admitted[1] > 0, "S6 fits at least once under TinyEngine");
    }

    #[test]
    fn too_large_models_are_rejected_with_numbers() {
        let g = single("fig7-hw80-c16-k16");
        let mut ac = AdmissionController::new(Device::stm32_f411re(), PlannerKind::TinyEngine, 2);
        match ac.admit("case1", &g) {
            Err(RejectReason::TooLargeForDevice { needed, available }) => {
                assert!(needed > available);
                assert_eq!(available, 128 * 1024);
            }
            other => panic!("expected TooLargeForDevice, got {other:?}"),
        }
        // The same model is admitted under the vMCU policy.
        let mut ac = AdmissionController::new(
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            2,
        );
        assert!(ac.admit("case1", &g).is_ok());
    }

    #[test]
    fn zero_demand_models_are_refused_like_capacity_zero() {
        // An empty graph plans to zero bytes; `concurrent_capacity`
        // reports 0 for it, and admission must agree instead of
        // admitting it without bound.
        let empty = Graph::linear("empty", vec![]).unwrap();
        let mut ac = AdmissionController::new(
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            1,
        );
        assert_eq!(ac.admit("empty", &empty), Err(RejectReason::EmptyModel));
        assert_eq!(ac.resident_models(), 0);
    }

    #[test]
    fn repeat_requests_reuse_residency_and_balance_load() {
        let g = single("vww-s5");
        let mut ac = AdmissionController::new(
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            2,
        );
        let w0 = ac.admit("vww-s5", &g).unwrap();
        let committed = ac.committed_bytes(w0);
        // A second request to the same model stays on its host without
        // committing more SRAM.
        let w1 = ac.admit("vww-s5", &g).unwrap();
        assert_eq!(w0, w1);
        assert_eq!(ac.committed_bytes(w0), committed);
        assert_eq!(ac.resident_models(), 1);
        // A different model lands on the other (less loaded) worker.
        let w2 = ac.admit("vww-s5-b", &g).unwrap();
        assert_ne!(w2, w0);
    }

    #[test]
    fn split_admits_against_aggregate_ram_across_distinct_workers() {
        // hires-split-only OOMs every single device but partitions into
        // stages that each fit; a 4-worker fleet must admit it by
        // committing one stage per worker.
        let g = single("hires-split-only");
        let split = PlannerKind::VmcuSplit {
            devices: 4,
            scheme: IbScheme::RowBuffer,
        };
        let mut ac = AdmissionController::new(Device::stm32_f411re(), split, 4);
        let entry = ac.admit("hires", &g).unwrap();
        let placement = ac.placement("hires").unwrap().to_vec();
        assert_eq!(placement[0], entry, "requests pin to the entry worker");
        assert!(placement.len() >= 2, "the model must actually be split");
        let mut distinct = placement.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            placement.len(),
            "stages on distinct workers"
        );
        assert_eq!(ac.resident_models(), placement.len());
        // Every placed stage committed SRAM on its worker.
        for &w in &placement {
            assert!(ac.committed_bytes(w) > 0);
        }
        // Repeat requests reuse the pipeline without committing more.
        let committed: Vec<_> = (0..4).map(|w| ac.committed_bytes(w)).collect();
        assert_eq!(ac.admit("hires", &g).unwrap(), entry);
        assert_eq!(
            (0..4).map(|w| ac.committed_bytes(w)).collect::<Vec<_>>(),
            committed
        );
    }

    #[test]
    fn split_needs_enough_workers_for_its_stages() {
        // The same model on a single-worker fleet: each stage fits a
        // device, but there are not enough devices to host the pipeline.
        let g = single("hires-split-only");
        let split = PlannerKind::VmcuSplit {
            devices: 4,
            scheme: IbScheme::RowBuffer,
        };
        let mut ac = AdmissionController::new(Device::stm32_f411re(), split, 1);
        match ac.admit("hires", &g) {
            Err(RejectReason::NoCapacity { needed }) => {
                assert!(needed > Device::stm32_f411re().usable_ram_bytes());
            }
            other => panic!("expected NoCapacity, got {other:?}"),
        }
        assert_eq!(ac.resident_models(), 0, "a failed placement leaks nothing");
        // And under every single-device policy the model is simply too
        // large, regardless of fleet width.
        let mut ac = AdmissionController::new(
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
            8,
        );
        assert!(matches!(
            ac.admit("hires", &g),
            Err(RejectReason::TooLargeForDevice { .. })
        ));
    }
}
